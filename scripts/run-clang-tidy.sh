#!/usr/bin/env bash
# Runs clang-tidy over the first-party sources using the compilation
# database that CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
#   scripts/run-clang-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits non-zero on any finding (.clang-tidy sets WarningsAsErrors: '*'),
# which is what the CI job keys off. Third-party code pulled in via
# FetchContent lives under the build dir and is excluded by construction:
# only files under src/ and tests/ are passed to clang-tidy.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

# Prefer an explicit override, then versioned binaries, then the default.
if [[ -n "${CLANG_TIDY:-}" ]]; then
  TIDY="${CLANG_TIDY}"
else
  TIDY=""
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
  if [[ -z "${TIDY}" ]]; then
    echo "error: clang-tidy not found on PATH (set CLANG_TIDY=/path/to/it)" >&2
    exit 2
  fi
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "  configure first:  cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${ROOT}"

# Every first-party translation unit that appears in the compilation
# database. Headers are covered transitively via HeaderFilterRegex.
mapfile -t FILES < <(python3 - "${BUILD_DIR}" <<'PY'
import json, os, sys
build_dir = sys.argv[1]
with open(os.path.join(build_dir, "compile_commands.json")) as f:
    db = json.load(f)
root = os.getcwd()
seen = []
for entry in db:
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "tests/")) and rel not in seen:
        seen.append(rel)
print("\n".join(seen))
PY
)

if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "error: no src/ or tests/ files in the compilation database" >&2
  exit 2
fi

echo "clang-tidy: ${TIDY} ($(${TIDY} --version | head -n1))"
echo "checking ${#FILES[@]} translation units..."

# Sequential by default (CI runners are small); parallelise with
# LILSM_TIDY_JOBS=N when running locally on a bigger box.
JOBS="${LILSM_TIDY_JOBS:-1}"
STATUS=0
if [[ "${JOBS}" -gt 1 ]]; then
  printf '%s\n' "${FILES[@]}" |
    xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet "$@" ||
    STATUS=$?
else
  for f in "${FILES[@]}"; do
    "${TIDY}" -p "${BUILD_DIR}" --quiet "$@" "${f}" || STATUS=$?
  done
fi

if [[ "${STATUS}" -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (or suppressed with a" >&2
  echo "reasoned NOLINT) before merging." >&2
fi
exit "${STATUS}"
