# Opt-in sanitizer instrumentation, applied globally so the library,
# tests, and benches all agree on the ABI:
#
#   -DLILSM_SANITIZE=ON  AddressSanitizer + UBSan; CI runs the full suite
#                        this way with ASAN_OPTIONS=detect_leaks=1.
#   -DLILSM_TSAN=ON      ThreadSanitizer; CI runs the concurrency suites
#                        (db_concurrency_test and friends) this way.
#
# The two are mutually exclusive (ASan and TSan cannot share a process).
option(LILSM_SANITIZE "Build with AddressSanitizer + UBSan" OFF)
option(LILSM_TSAN "Build with ThreadSanitizer" OFF)

if(LILSM_SANITIZE AND LILSM_TSAN)
  message(FATAL_ERROR "LILSM_SANITIZE and LILSM_TSAN are mutually exclusive")
endif()

if(LILSM_SANITIZE OR LILSM_TSAN)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "sanitizer builds require gcc or clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()
endif()

if(LILSM_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()

if(LILSM_TSAN)
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
endif()
