# Opt-in AddressSanitizer + UndefinedBehaviorSanitizer instrumentation
# (-DLILSM_SANITIZE=ON). Applied globally so the library, tests, and
# benches all agree on the ABI; CI runs the full suite this way with
# ASAN_OPTIONS=detect_leaks=1.
option(LILSM_SANITIZE "Build with AddressSanitizer + UBSan" OFF)

if(LILSM_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "LILSM_SANITIZE requires gcc or clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
