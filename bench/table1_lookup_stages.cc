// Table 1: per-stage point-lookup times for PLR at position boundary 10,
// across SSTable sizes — the table that shows disk I/O (~2.1 us) dominating
// every other stage regardless of granularity.
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  ExperimentDefaults base = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Table 1", "point-lookup stage times, PLR, boundary 10",
                     base);

  ReportTable table("Table 1: stage times (us/op), PLR, boundary 10");
  table.SetHeader({"process", "SST=small", "SST=medium", "SST=large"});

  const uint64_t sst_sizes[] = {base.sstable_target_size / 2,
                                base.sstable_target_size * 2,
                                base.sstable_target_size * 8};
  std::vector<Stats> snapshots;
  for (uint64_t sst : sst_sizes) {
    ExperimentDefaults d = base;
    d.sstable_target_size = sst;
    IndexSetup setup;
    setup.type = IndexType::kPLR;
    setup.position_boundary = 10;
    std::unique_ptr<Testbed> bed;
    Status s = bench::MakeTestbed("table1", setup, d, &bed);
    if (!s.ok()) {
      std::fprintf(stderr, "table1: %s\n", s.ToString().c_str());
      return 1;
    }
    RunMetrics metrics;
    s = bed->RunPointLookups(d.num_ops, false, &metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "table1: %s\n", s.ToString().c_str());
      return 1;
    }
    snapshots.push_back(metrics.stats);
  }

  const struct {
    const char* label;
    Timer timer;
  } rows[] = {
      {"Table Lookup", Timer::kTableLookup},
      {"Prediction", Timer::kIndexPredict},
      {"Disk I/O", Timer::kDiskRead},
      {"Binary Search", Timer::kBinarySearch},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (const Stats& stats : snapshots) {
      cells.push_back(FormatMicros(stats.TimeNanos(row.timer) / 1000.0 /
                                   base.num_ops));
    }
    table.AddRow(cells);
  }
  table.Emit();
  return 0;
}
