// Figure 8: impact of index granularity — SSTable size sweep plus the
// level-granularity model (Observation 3: memory shrinks ~10x with coarser
// granularity while latency stays flat).
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  ExperimentDefaults base = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 8", "index granularity (SSTable size / level)",
                     base);

  // Paper sweeps 8..128 MiB; scaled by the same 1/16 factor as the data.
  const uint64_t sst_sizes[] = {base.sstable_target_size / 2,
                                base.sstable_target_size,
                                base.sstable_target_size * 2,
                                base.sstable_target_size * 4};
  const uint32_t boundaries[] = {128, 64, 32};

  ReportTable latency("Figure 8: lookup latency (us/op) by granularity");
  ReportTable memory("Figure 8: index memory (bytes) by granularity");
  std::vector<std::string> header = {"index"};
  for (uint64_t sst : sst_sizes) {
    header.push_back(std::to_string(sst >> 10) + "KiB");
  }
  header.push_back("Level");
  latency.SetHeader(header);
  memory.SetHeader(header);

  // One testbed per SSTable size (the data layout changes), reconfigured
  // across index types in place.
  struct Cell {
    double latency_us;
    size_t memory;
  };
  std::vector<std::vector<Cell>> cells(
      std::size(kAllIndexTypes),
      std::vector<Cell>(std::size(sst_sizes) + 1));

  for (size_t si = 0; si < std::size(sst_sizes) + 1; si++) {
    ExperimentDefaults d = base;
    const bool level_model = si == std::size(sst_sizes);
    d.sstable_target_size = level_model ? base.sstable_target_size * 4
                                        : sst_sizes[si];
    IndexSetup setup;
    setup.type = IndexType::kPGM;
    setup.position_boundary = 64;
    setup.granularity =
        level_model ? IndexGranularity::kLevel : IndexGranularity::kFile;
    std::unique_ptr<Testbed> bed;
    Status s = bench::MakeTestbed("fig8", setup, d, &bed);
    if (!s.ok()) {
      std::fprintf(stderr, "fig8: %s\n", s.ToString().c_str());
      return 1;
    }
    for (size_t ti = 0; ti < std::size(kAllIndexTypes); ti++) {
      IndexSetup config;
      config.type = kAllIndexTypes[ti];
      config.position_boundary = 64;
      config.granularity = setup.granularity;
      if (!(s = bed->Reconfigure(config)).ok()) break;
      RunMetrics metrics;
      if (!(s = bed->RunPointLookups(d.num_ops, false, &metrics)).ok()) break;
      cells[ti][si] = {metrics.MeanLatencyUs(), metrics.index_memory};
    }
    if (!s.ok()) {
      std::fprintf(stderr, "fig8: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  for (size_t ti = 0; ti < std::size(kAllIndexTypes); ti++) {
    std::vector<std::string> lat_row = {IndexTypeName(kAllIndexTypes[ti])};
    std::vector<std::string> mem_row = {IndexTypeName(kAllIndexTypes[ti])};
    for (const Cell& cell : cells[ti]) {
      lat_row.push_back(FormatMicros(cell.latency_us));
      mem_row.push_back(std::to_string(cell.memory));
    }
    latency.AddRow(lat_row);
    memory.AddRow(mem_row);
  }
  (void)boundaries;
  latency.Emit();
  memory.Emit();
  return 0;
}
