// Figure 6: point-lookup latency and index memory versus position boundary
// {256..8} for all seven index types (Observations 1 and 2). Dataset
// selectable via LILSM_DATASET; LILSM_ALL_DATASETS=1 sweeps all seven.
#include "bench/bench_common.h"

using namespace lilsm;

namespace {

void RunDataset(Dataset dataset, const ExperimentDefaults& base) {
  ExperimentDefaults d = base;
  d.dataset = dataset;

  IndexSetup setup;  // initial build; every config is a Reconfigure away
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  std::unique_ptr<Testbed> bed;
  Status s = bench::MakeTestbed("fig6", setup, d, &bed);
  if (!s.ok()) {
    std::fprintf(stderr, "fig6: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  ReportTable latency(std::string("Figure 6(") + DatasetName(dataset) +
                      "): point lookup latency (us/op)");
  ReportTable memory(std::string("Figure 6(") + DatasetName(dataset) +
                     "): index memory (bytes)");
  std::vector<std::string> header = {"index"};
  for (uint32_t b : kPositionBoundaries) {
    header.push_back("b=" + std::to_string(b));
  }
  latency.SetHeader(header);
  memory.SetHeader(header);

  for (IndexType type : kAllIndexTypes) {
    std::vector<std::string> lat_row = {IndexTypeName(type)};
    std::vector<std::string> mem_row = {IndexTypeName(type)};
    for (uint32_t boundary : kPositionBoundaries) {
      IndexSetup config;
      config.type = type;
      config.position_boundary = boundary;
      s = bed->Reconfigure(config);
      if (!s.ok()) {
        std::fprintf(stderr, "fig6: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      RunMetrics metrics;
      s = bed->RunPointLookups(d.num_ops, /*zipfian=*/false, &metrics);
      if (!s.ok()) {
        std::fprintf(stderr, "fig6: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      lat_row.push_back(FormatMicros(metrics.MeanLatencyUs()));
      mem_row.push_back(std::to_string(metrics.index_memory));
    }
    latency.AddRow(lat_row);
    memory.AddRow(mem_row);
  }
  latency.Emit();
  memory.Emit();
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 6",
                     "latency & memory vs position boundary, all indexes", d);
  if (std::getenv("LILSM_ALL_DATASETS") != nullptr) {
    for (Dataset dataset : kAllDatasets) RunDataset(dataset, d);
  } else {
    RunDataset(d.dataset, d);
  }
  return 0;
}
