// Figure 14 (beyond the paper): level-model freshness under write churn —
// the payoff of training level models on the write path (Bourbon-style)
// instead of rebuilding them lazily at read time.
//
// A YCSB-A mix (50% reads / 50% updates, zipfian) over a level-granularity
// tree keeps flushes and compactions installing new versions. Under
// kLazyRebuild every install leaves the successor's model slots empty, so
// the next read pays a full-level key scan per touched level; under
// kCompactionMaintained the install stitches the outputs' per-file
// segments into the level models with zero key re-reads. The bench
// reports model-(re)build bytes read, stitch/retrain counts, and read p50
// under both policies — and proves the policies return identical Get
// results via a running checksum of every read.
//
//   fig14_model_churn                      # sweep both policies
//   fig14_model_churn --level-model=maintained
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "lsm/db.h"
#include "util/histogram.h"
#include "workload/dataset.h"
#include "workload/ycsb.h"

using namespace lilsm;

namespace {

struct PolicyResult {
  uint64_t model_bytes = 0;
  uint64_t lazy_builds = 0;
  uint64_t stitches = 0;
  uint64_t retrains = 0;
  double read_p50_us = 0;
  double kops = 0;
  uint64_t checksum = 0;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

Status RunPolicy(LevelModelPolicy policy, const ExperimentDefaults& d,
                 const std::string& dbdir, PolicyResult* result) {
  DBOptions options;
  // Scale the buffer to the data so the tree has levels >= 1 and the
  // measured window sees flush/compaction churn at any --n (a load of
  // ~8 memtables, an update stream of ~4 more).
  const uint64_t entry_size = d.key_size + 8 + d.value_size;
  options.write_buffer_size = std::max<size_t>(
      32 << 10, std::min<uint64_t>(d.write_buffer_size,
                                   d.num_keys * entry_size / 8));
  options.sstable_target_size = options.write_buffer_size / 2;
  options.size_ratio = d.size_ratio;
  options.bloom_bits_per_key = d.bloom_bits_per_key;
  options.key_size = d.key_size;
  options.value_size = d.value_size;
  options.index_granularity = IndexGranularity::kLevel;
  options.level_model_policy = policy;
  options.index_config = IndexConfig::FromPositionBoundary(64);

  DB::Destroy(options, dbdir);
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbdir, &db);
  if (!s.ok()) return s;

  std::vector<Key> keys = GenerateKeys(d.dataset, d.num_keys, d.seed);
  {
    std::vector<size_t> order(keys.size());
    for (size_t i = 0; i < order.size(); i++) order[i] = i;
    Random rnd(d.seed ^ 0x10ad);
    for (size_t i = order.size(); i > 1; i--) {
      std::swap(order[i - 1], order[rnd.Uniform(i)]);
    }
    for (size_t i : order) {
      s = db->Put(keys[i], DeriveValue(keys[i], d.value_size));
      if (!s.ok()) return s;
    }
  }
  s = db->FlushMemTable();
  if (!s.ok()) return s;
  db->stats()->Reset();

  Env* env = Env::Default();
  Histogram read_ns;
  uint64_t checksum = 1469598103934665603ull;  // FNV offset basis
  YcsbGenerator gen(YcsbWorkload::kA, keys.size(), d.seed ^ 0x5ca1ab1e);
  std::string value;
  const uint64_t run_start = env->NowNanos();
  for (size_t i = 0; i < d.num_ops; i++) {
    const YcsbOp op = gen.Next();
    const Key key = keys[op.key_index % keys.size()];
    if (op.type == YcsbOp::Type::kUpdate ||
        op.type == YcsbOp::Type::kInsert) {
      s = db->Put(key, DeriveValue(key ^ i, d.value_size));
      if (!s.ok()) return s;
      continue;
    }
    const uint64_t t0 = env->NowNanos();
    s = db->Get(key, &value);
    read_ns.Add(static_cast<double>(env->NowNanos() - t0));
    if (s.IsNotFound()) {
      checksum = Fnv1a(checksum, key);
      continue;
    }
    if (!s.ok()) return s;
    checksum = Fnv1a(checksum, key);
    for (size_t b = 0; b + 8 <= value.size(); b += 8) {
      uint64_t word = 0;
      std::memcpy(&word, value.data() + b, 8);
      checksum = Fnv1a(checksum, word);
    }
  }
  const double seconds = (env->NowNanos() - run_start) / 1e9;

  const Stats& stats = *db->stats();
  result->model_bytes = stats.Count(Counter::kModelBuildBytesRead);
  result->lazy_builds = stats.TimerCount(Timer::kLevelIndexBuild);
  result->stitches = stats.Count(Counter::kModelsStitched);
  result->retrains = stats.Count(Counter::kModelRetrains);
  result->read_p50_us = read_ns.Percentile(50) / 1000.0;
  result->kops = d.num_ops / seconds / 1000.0;
  result->checksum = checksum;
  db.reset();
  DB::Destroy(options, dbdir);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  bool ops_from_flags = false;
  std::string level_model;
  ExperimentDefaults d =
      bench::BenchDefaults(argc, argv, &ops_from_flags, nullptr, &level_model);
  // Churn needs enough updates to drive flushes and compactions through
  // the measured window; default to one op per loaded key.
  if (!ops_from_flags) d.num_ops = d.num_keys;
  bench::PrintHeader("Figure 14", "level-model build cost under YCSB-A churn",
                     d);

  std::vector<LevelModelPolicy> policies;
  if (level_model.empty()) {
    policies = {LevelModelPolicy::kLazyRebuild,
                LevelModelPolicy::kCompactionMaintained};
  } else {
    policies = {bench::ParseLevelModelPolicy(level_model)};
  }

  ReportTable table(
      "Figure 14: model (re)build cost + read latency by policy");
  table.SetHeader({"policy", "model_build_MB", "lazy_builds", "stitches",
                   "retrains", "read_p50_us", "kops/s"});
  std::vector<PolicyResult> results(policies.size());
  const std::string dbdir = bench::BenchDir("fig14");
  for (size_t p = 0; p < policies.size(); p++) {
    Status s = RunPolicy(policies[p], d, dbdir, &results[p]);
    if (!s.ok()) {
      std::fprintf(stderr, "fig14: %s\n", s.ToString().c_str());
      return 1;
    }
    const PolicyResult& r = results[p];
    table.AddRow({policies[p] == LevelModelPolicy::kLazyRebuild
                      ? "lazy"
                      : "maintained",
                  FormatMicros(r.model_bytes / 1048576.0),
                  std::to_string(r.lazy_builds), std::to_string(r.stitches),
                  std::to_string(r.retrains), FormatMicros(r.read_p50_us),
                  FormatMicros(r.kops)});
  }
  table.Emit();

  if (policies.size() == 2) {
    if (results[0].checksum != results[1].checksum) {
      std::fprintf(stderr,
                   "fig14: policies returned DIFFERENT Get results "
                   "(checksum %llx vs %llx)\n",
                   static_cast<unsigned long long>(results[0].checksum),
                   static_cast<unsigned long long>(results[1].checksum));
      return 1;
    }
    std::printf("# Get results identical across policies (checksum %llx)\n",
                static_cast<unsigned long long>(results[0].checksum));
    if (results[1].model_bytes > 0) {
      std::printf("# model-build bytes: lazy/maintained = %.1fx\n",
                  static_cast<double>(results[0].model_bytes) /
                      results[1].model_bytes);
    } else {
      std::printf("# model-build bytes: lazy %.2f MB, maintained 0 "
                  "(stitch-only)\n",
                  results[0].model_bytes / 1048576.0);
    }
  }
  return 0;
}
