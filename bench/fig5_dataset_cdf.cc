// Figure 5: CDFs of the seven datasets. Emits (key, cdf) series suitable
// for plotting, plus per-dataset hardness markers (PGM segment counts).
#include "bench/bench_common.h"
#include "workload/dataset.h"

int main(int argc, char** argv) {
  using namespace lilsm;
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 5", "dataset CDFs", d);

  for (Dataset dataset : kAllDatasets) {
    std::vector<Key> keys = GenerateKeys(dataset, d.num_keys, d.seed);
    auto cdf = SampleCdf(keys, 21);

    ReportTable table(std::string("Figure 5: CDF of ") +
                      DatasetName(dataset));
    table.SetHeader({"key", "cdf"});
    for (const auto& [key, proportion] : cdf) {
      table.AddRow({std::to_string(key), FormatMicros(proportion)});
    }
    table.Emit();
  }

  // Hardness summary: segments the optimal PLA needs at epsilon=32.
  ReportTable summary("Figure 5 summary: PLA hardness (PGM segments, eps=32)");
  summary.SetHeader({"dataset", "segments", "keys/segment"});
  for (Dataset dataset : kAllDatasets) {
    std::vector<Key> keys = GenerateKeys(dataset, d.num_keys, d.seed);
    auto index = CreateIndex(IndexType::kPGM);
    index->Build(keys.data(), keys.size(),
                 IndexConfig::FromPositionBoundary(64));
    summary.AddRow({DatasetName(dataset),
                    std::to_string(index->SegmentCount()),
                    std::to_string(keys.size() / index->SegmentCount())});
  }
  summary.Emit();
  return 0;
}
