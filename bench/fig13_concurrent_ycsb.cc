// Figure 13 (beyond the paper): aggregate YCSB throughput against thread
// count under ConcurrencyMode::kBackground — the payoff of moving flushes
// and compactions off the foreground path. Readers pin refcounted state
// and proceed concurrently; writers serialize on the DB mutex but only
// stall on the L0 triggers. Compare e.g.:
//   fig13_concurrent_ycsb --threads 1
//   fig13_concurrent_ycsb --threads 4
//
// Device model: a SimEnv in sleep mode — every table read blocks for a
// disk-class latency instead of busy-spinning, so concurrent readers
// overlap their waits exactly the way a real device serves a queue of
// outstanding I/Os. That makes the speedup visible even on a single core
// (the paper figures are unaffected: they all run kInline with the
// spinning SimEnv; see EXPERIMENTS.md).
//
// Write-heavy mode (PR 6): --workload=writeheavy switches to the parallel
// write path experiment — N writer threads issue sync'd Puts on disjoint
// key stripes against a device model that charges a ~100 us fsync
// (SimEnvOptions::sync_latency_ns). Group commit amortizes that fsync
// across the writer queue, so aggregate throughput scales with --writers;
// the run reports group-commit/stall/subcompaction counters alongside the
// ops table. Compare e.g.:
//   fig13_concurrent_ycsb --workload=writeheavy --writers=1
//   fig13_concurrent_ycsb --workload=writeheavy --writers=4
// Knobs: --group-commit=0|1 (default on here), --bg-jobs=N and
// --subcompactions=N (default 2 each here, 1 in YCSB mode).
//
// Server mode (PR 8): --server --clients=N runs the same zipfian read
// workload through the service layer instead of in-process calls — a
// lilsm_server embedded in the bench process, N client threads each with
// its own unix-socket connection, every request one MultiGet batch
// (default 256 keys) in one frame each way. Client batches land on the
// worker pool and overlap their device waits, so aggregate throughput
// scales with --clients the way in-process threads scale in YCSB mode.
// The run reports the kServerRequests / kServerBatchKeys / kServerBytes*
// counters and the parse-to-worker queue delay. Compare e.g.:
//   fig13_concurrent_ycsb --server --clients=1
//   fig13_concurrent_ycsb --server --clients=4
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "client/client.h"
#include "lsm/db.h"
#include "server/server.h"
#include "util/sim_env.h"
#include "workload/dataset.h"
#include "workload/ycsb.h"

using namespace lilsm;

namespace {

struct ThreadResult {
  uint64_t ops = 0;
  uint64_t not_found = 0;
  Status status;
};

void RunWorker(DB* db, const std::vector<Key>& keys, YcsbWorkload workload,
               size_t ops, uint32_t value_size, uint64_t seed,
               size_t thread_id, size_t num_threads, size_t multiget_batch,
               ThreadResult* result) {
  YcsbGenerator gen(workload, keys.size(), seed);
  const Key max_key = keys.back();
  std::string value;
  std::vector<std::pair<Key, std::string>> range;
  std::vector<Key> pending;  // buffered reads for --multiget-batch
  std::vector<std::string> mg_values;
  std::vector<Status> mg_statuses;
  auto flush_reads = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    Status s = db->MultiGet(ReadOptions(), pending, &mg_values,
                            &mg_statuses);
    if (s.ok()) {
      for (const Status& st : mg_statuses) {
        if (st.IsNotFound()) {
          result->not_found++;
        } else if (!st.ok()) {
          s = st;
          break;
        }
      }
    }
    result->ops += pending.size();
    pending.clear();
    return s;
  };
  for (size_t i = 0; i < ops; i++) {
    const YcsbOp op = gen.Next();
    // Inserts address indexes past the loaded set: synthesize fresh keys
    // above max_key, striped so threads do not collide.
    const Key key =
        op.key_index < keys.size()
            ? keys[op.key_index]
            : max_key + 1 +
                  (op.key_index - keys.size()) * num_threads + thread_id;
    Status s;
    if (multiget_batch > 1 && op.type == YcsbOp::Type::kRead) {
      pending.push_back(key);
      if (pending.size() >= multiget_batch) {
        s = flush_reads();
        if (!s.ok()) {
          result->status = s;
          return;
        }
      }
      continue;
    }
    if (multiget_batch > 1 && !pending.empty()) {
      // A write/scan op follows buffered reads: flush so those reads are
      // not reordered past it.
      s = flush_reads();
      if (!s.ok()) {
        result->status = s;
        return;
      }
    }
    switch (op.type) {
      case YcsbOp::Type::kRead:
        s = db->Get(key, &value);
        if (s.IsNotFound()) {
          result->not_found++;
          s = Status::OK();
        }
        break;
      case YcsbOp::Type::kUpdate:
      case YcsbOp::Type::kInsert:
        s = db->Put(key, DeriveValue(key + i, value_size));
        break;
      case YcsbOp::Type::kScan:
        s = db->RangeLookup(key, op.scan_length, &range);
        break;
      case YcsbOp::Type::kReadModifyWrite:
        s = db->Get(key, &value);
        if (s.IsNotFound()) {
          result->not_found++;
          s = Status::OK();
        }
        if (s.ok()) {
          s = db->Put(key, DeriveValue(key + i + 1, value_size));
        }
        break;
    }
    if (!s.ok()) {
      result->status = s;
      return;
    }
    result->ops++;
  }
  result->status = flush_reads();
}

/// One write-heavy worker: sync'd Puts on the writer's disjoint key
/// stripe (w * 2^32 + i), fresh keys throughout — an ingest stream.
void RunWriteWorker(DB* db, size_t ops, uint32_t value_size, size_t writer,
                    ThreadResult* result) {
  WriteOptions wopts;
  wopts.sync = true;  // every write wants durability; groups amortize it
  for (size_t i = 0; i < ops; i++) {
    const Key key = (static_cast<Key>(writer) << 32) + i + 1;
    Status s = db->Put(wopts, key, DeriveValue(key, value_size));
    if (!s.ok()) {
      result->status = s;
      return;
    }
    result->ops++;
  }
}

/// The write-heavy experiment: aggregate sync'd-Put throughput for one
/// writer count. Fresh DB per call; returns false on failure.
bool RunWriteHeavy(const DBOptions& options, const std::string& dbdir,
                   Env* env, const ExperimentDefaults& d, size_t writers,
                   ReportTable* table) {
  DB::Destroy(options, dbdir);
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbdir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "fig13: open: %s\n", s.ToString().c_str());
    return false;
  }
  const size_t ops_per_writer = d.num_ops / writers;
  std::vector<ThreadResult> results(writers);
  const uint64_t start = env->NowNanos();
  {
    std::vector<std::thread> workers;
    for (size_t w = 0; w < writers; w++) {
      workers.emplace_back(RunWriteWorker, db.get(), ops_per_writer,
                           d.value_size, w, &results[w]);
    }
    for (std::thread& w : workers) w.join();
  }
  const double seconds = (env->NowNanos() - start) / 1e9;

  uint64_t total_ops = 0;
  for (const ThreadResult& r : results) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "fig13: writer: %s\n", r.status.ToString().c_str());
      return false;
    }
    total_ops += r.ops;
  }
  const Stats* stats = db->stats();
  const uint64_t groups = stats->Count(Counter::kGroupCommits);
  const uint64_t served = stats->Count(Counter::kGroupCommitBatchSize);
  const double mean_group =
      groups > 0 ? static_cast<double>(served) / groups : 0.0;
  const double kops_per_sec = total_ops / seconds / 1000.0;
  table->AddRow({"writeheavy", std::to_string(writers),
                 std::to_string(total_ops), FormatMicros(kops_per_sec),
                 FormatMicros(seconds * 1e6 * writers / total_ops)});
  std::printf(
      "# writers=%zu: group_commits=%llu mean_group=%.2f write_stalls=%llu "
      "write_slowdowns=%llu subcompactions=%llu flushes=%llu "
      "compactions=%llu\n",
      writers, static_cast<unsigned long long>(groups), mean_group,
      static_cast<unsigned long long>(stats->Count(Counter::kWriteStalls)),
      static_cast<unsigned long long>(stats->Count(Counter::kWriteSlowdowns)),
      static_cast<unsigned long long>(stats->Count(Counter::kSubcompactions)),
      static_cast<unsigned long long>(stats->Count(Counter::kFlushes)),
      static_cast<unsigned long long>(stats->Count(Counter::kCompactions)));
  db.reset();
  DB::Destroy(options, dbdir);
  return true;
}

/// One service-layer client: a dedicated socket connection issuing the
/// zipfian YCSB-C read stream as MultiGet batches, one frame per batch.
void RunServerClient(const std::string& socket_path,
                     const std::vector<Key>& keys, size_t ops, uint64_t seed,
                     size_t batch, ThreadResult* result) {
  std::unique_ptr<Client> client;
  Status s = Client::Connect(socket_path, &client);
  if (!s.ok()) {
    result->status = s;
    return;
  }
  YcsbGenerator gen(YcsbWorkload::kC, keys.size(), seed);
  std::vector<Key> pending;
  std::vector<std::string> values;
  std::vector<Status> statuses;
  pending.reserve(batch);
  for (size_t i = 0; i < ops; i += pending.size()) {
    pending.clear();
    const size_t want = std::min(batch, ops - i);
    while (pending.size() < want) {
      pending.push_back(keys[gen.Next().key_index]);
    }
    s = client->MultiGet(pending, &values, &statuses);
    if (!s.ok()) {
      result->status = s;
      return;
    }
    for (const Status& st : statuses) {
      if (st.IsNotFound()) result->not_found++;
    }
    result->ops += pending.size();
  }
}

/// The client-scaling experiment: aggregate MultiGet throughput through
/// lilsm_server for one client count. Fresh DB per call.
bool RunServerMode(const DBOptions& options, const std::string& dbdir,
                   Env* env, const ExperimentDefaults& d, size_t clients,
                   size_t batch, ReportTable* table) {
  DB::Destroy(options, dbdir);
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbdir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "fig13: open: %s\n", s.ToString().c_str());
    return false;
  }
  std::vector<Key> keys = GenerateKeys(d.dataset, d.num_keys, d.seed);
  for (Key key : keys) {
    s = db->Put(key, DeriveValue(key, d.value_size));
    if (!s.ok()) break;
  }
  if (s.ok()) s = db->FlushMemTable();
  if (!s.ok()) {
    std::fprintf(stderr, "fig13: load: %s\n", s.ToString().c_str());
    return false;
  }
  db->stats()->Reset();  // report steady-state service counters only

  ServerOptions server_options;
  // Next to (not inside) the DB dir: Destroy wipes the directory.
  server_options.socket_path = dbdir + ".sock";
  server_options.num_workers =
      static_cast<int>(std::max<size_t>(4, clients));
  std::unique_ptr<Server> server;
  s = Server::Start(db.get(), server_options, &server);
  if (!s.ok()) {
    std::fprintf(stderr, "fig13: server: %s\n", s.ToString().c_str());
    return false;
  }

  const size_t ops_per_client = d.num_ops / clients;
  std::vector<ThreadResult> results(clients);
  const uint64_t start = env->NowNanos();
  {
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; c++) {
      workers.emplace_back(RunServerClient, server_options.socket_path,
                           std::cref(keys), ops_per_client,
                           d.seed + 2000 + c, batch, &results[c]);
    }
    for (std::thread& w : workers) w.join();
  }
  const double seconds = (env->NowNanos() - start) / 1e9;
  server->Stop();
  server.reset();

  uint64_t total_ops = 0;
  for (const ThreadResult& r : results) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "fig13: client: %s\n", r.status.ToString().c_str());
      return false;
    }
    total_ops += r.ops;
  }
  const Stats* stats = db->stats();
  const double kops_per_sec = total_ops / seconds / 1000.0;
  table->AddRow({"server/C", std::to_string(clients),
                 std::to_string(total_ops), FormatMicros(kops_per_sec),
                 FormatMicros(seconds * 1e6 * clients / total_ops)});
  std::printf(
      "# clients=%zu: server_requests=%llu batch_keys=%llu "
      "bytes_in=%llu bytes_out=%llu queue_us=%.1f\n",
      clients,
      static_cast<unsigned long long>(stats->Count(Counter::kServerRequests)),
      static_cast<unsigned long long>(stats->Count(Counter::kServerBatchKeys)),
      static_cast<unsigned long long>(stats->Count(Counter::kServerBytesIn)),
      static_cast<unsigned long long>(stats->Count(Counter::kServerBytesOut)),
      stats->MeanMicros(Timer::kServerQueue));
  db.reset();
  DB::Destroy(options, dbdir);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 2;
  size_t multiget_batch = 0;
  size_t block_cache_mb = 0;
  // fig13-specific flags are stripped before BenchDefaults (which rejects
  // unknown flags); the rest pass through.
  std::string workload_mode;
  size_t writers = 4;
  size_t group_commit = 1;
  size_t bg_jobs = 2;
  size_t subcompactions = 2;
  bool server_mode = false;
  size_t clients = 4;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; i++) {
    size_t value = 0;
    if (std::strcmp(argv[i], "--server") == 0) {
      server_mode = true;
    } else if (bench::ParseSizeFlag(argc, argv, &i, "--clients", &value)) {
      if (value == 0) {
        std::fprintf(stderr, "--clients must be positive\n");
        return 2;
      }
      server_mode = true;
      clients = value;
    } else if (bench::ParseStringFlag(argc, argv, &i, "--workload",
                                      &workload_mode)) {
      if (workload_mode != "writeheavy" && workload_mode != "ycsb") {
        std::fprintf(stderr,
                     "--workload must be 'ycsb' or 'writeheavy' (got '%s')\n",
                     workload_mode.c_str());
        return 2;
      }
    } else if (bench::ParseSizeFlag(argc, argv, &i, "--writers", &value)) {
      if (value == 0) {
        std::fprintf(stderr, "--writers must be positive\n");
        return 2;
      }
      writers = value;
    } else if (bench::ParseSizeFlag(argc, argv, &i, "--group-commit",
                                    &value)) {
      group_commit = value;
    } else if (bench::ParseSizeFlag(argc, argv, &i, "--bg-jobs", &value)) {
      if (value == 0) {
        std::fprintf(stderr, "--bg-jobs must be positive\n");
        return 2;
      }
      bg_jobs = value;
    } else if (bench::ParseSizeFlag(argc, argv, &i, "--subcompactions",
                                    &value)) {
      if (value == 0) {
        std::fprintf(stderr, "--subcompactions must be positive\n");
        return 2;
      }
      subcompactions = value;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        std::printf(
            "fig13 extras: [--workload ycsb|writeheavy] [--writers N] "
            "[--group-commit 0|1] [--bg-jobs N] [--subcompactions N] "
            "[--server] [--clients N]\n");
      }
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  size_t io_depth = 0;
  size_t readahead = 0;
  ExperimentDefaults d =
      bench::BenchDefaults(pass_argc, passthrough.data(), nullptr, &threads,
                           nullptr, &multiget_batch, &block_cache_mb,
                           &io_depth, &readahead);
  const bool writeheavy = workload_mode == "writeheavy";

  if (server_mode) {
    bench::PrintHeader("Figure 13", "service-layer client scaling", d);
    // Batch-first default: one frame carries a whole MultiGet batch.
    const size_t batch = multiget_batch > 1 ? multiget_batch : 256;
    // Same blocking device model as YCSB mode, so client batches overlap
    // their read waits on the worker pool.
    SimEnvOptions sim_options = SimEnv::OptionsFromEnvironment();
    sim_options.sleep_instead_of_spin = true;
    if (std::getenv("LILSM_READ_LAT_NS") == nullptr) {
      sim_options.read_base_latency_ns = 20'000;
    }
    SimEnv sim_env(Env::Default(), sim_options);
    std::printf(
        "# clients=%zu, multiget batch=%zu, one frame per batch, "
        "blocking-read device model (%.0f us + OS timer slack)\n\n",
        clients, batch, sim_options.read_base_latency_ns / 1000.0);

    DBOptions options;
    options.env = &sim_env;
    options.concurrency = ConcurrencyMode::kBackground;
    options.group_commit = true;
    options.write_buffer_size = d.write_buffer_size;
    options.sstable_target_size = d.sstable_target_size;
    options.size_ratio = d.size_ratio;
    options.bloom_bits_per_key = d.bloom_bits_per_key;
    options.key_size = d.key_size;
    options.value_size = d.value_size;
    options.block_cache_bytes = d.block_cache_bytes;
    options.io_depth = d.io_depth;
    const std::string dbdir = bench::BenchDir("fig13");

    ReportTable table("Figure 13 (server): MultiGet throughput by clients");
    table.SetHeader({"workload", "clients", "total ops", "kops/s",
                     "mean us/op"});
    if (!RunServerMode(options, dbdir, &sim_env, d, clients, batch,
                       &table)) {
      return 1;
    }
    table.Emit();
    return 0;
  }

  if (writeheavy) {
    bench::PrintHeader("Figure 13", "parallel write path throughput", d);
    // Blocking device model with an fsync cost: every WAL Sync charges a
    // flash-class ~100 us unless LILSM_SYNC_LAT_NS overrides it. This is
    // the serial cost group commit amortizes across a writer group.
    SimEnvOptions sim_options = SimEnv::OptionsFromEnvironment();
    sim_options.sleep_instead_of_spin = true;
    if (std::getenv("LILSM_SYNC_LAT_NS") == nullptr) {
      sim_options.sync_latency_ns = 100'000;
    }
    SimEnv sim_env(Env::Default(), sim_options);
    std::printf(
        "# writers=%zu, group_commit=%s, bg_jobs=%zu, subcompactions=%zu, "
        "fsync model %.0f us\n\n",
        writers, group_commit != 0 ? "on" : "off", bg_jobs, subcompactions,
        sim_options.sync_latency_ns / 1000.0);

    DBOptions options;
    options.env = &sim_env;
    options.concurrency = ConcurrencyMode::kBackground;
    options.group_commit = group_commit != 0;
    options.max_background_jobs = static_cast<int>(bg_jobs);
    options.max_subcompactions = static_cast<int>(subcompactions);
    options.write_buffer_size = d.write_buffer_size;
    options.sstable_target_size = d.sstable_target_size;
    options.size_ratio = d.size_ratio;
    options.bloom_bits_per_key = d.bloom_bits_per_key;
    options.key_size = d.key_size;
    options.value_size = d.value_size;
    const std::string dbdir = bench::BenchDir("fig13");

    ReportTable table("Figure 13 (write-heavy): sync'd Put throughput");
    table.SetHeader({"workload", "writers", "total ops", "kops/s",
                     "mean us/op"});
    if (!RunWriteHeavy(options, dbdir, &sim_env, d, writers, &table)) {
      return 1;
    }
    table.Emit();
    return 0;
  }
  bench::PrintHeader("Figure 13", "concurrent YCSB aggregate throughput", d);
  if (multiget_batch > 1) {
    std::printf("# reads served through MultiGet, batch=%zu\n\n",
                multiget_batch);
  }
  if (d.block_cache_bytes > 0) {
    std::printf("# shared block cache: %zu MiB\n\n",
                d.block_cache_bytes >> 20);
  }
  if (d.io_depth > 1 || d.readahead_blocks > 0) {
    std::printf("# async I/O: io_depth=%d readahead=%zu blocks\n\n",
                d.io_depth, d.readahead_blocks);
  }

  // Blocking (sleeping) device model: waits overlap across threads. The
  // effective floor is the OS timer slack (~60 us), i.e. a loaded
  // SATA-class read; LILSM_READ_LAT_NS still overrides the target.
  SimEnvOptions sim_options = SimEnv::OptionsFromEnvironment();
  sim_options.sleep_instead_of_spin = true;
  if (std::getenv("LILSM_READ_LAT_NS") == nullptr) {
    sim_options.read_base_latency_ns = 20'000;
  }
  SimEnv sim_env(Env::Default(), sim_options);
  std::printf(
      "# threads=%zu, concurrency=kBackground, blocking-read device model "
      "(%.0f us + OS timer slack)\n\n",
      threads, sim_options.read_base_latency_ns / 1000.0);

  DBOptions options;
  options.env = &sim_env;
  options.concurrency = ConcurrencyMode::kBackground;
  options.write_buffer_size = d.write_buffer_size;
  options.sstable_target_size = d.sstable_target_size;
  options.size_ratio = d.size_ratio;
  options.bloom_bits_per_key = d.bloom_bits_per_key;
  options.key_size = d.key_size;
  options.value_size = d.value_size;
  options.block_cache_bytes = d.block_cache_bytes;
  options.io_depth = d.io_depth;
  const std::string dbdir = bench::BenchDir("fig13");

  ReportTable table("Figure 13: aggregate throughput by workload");
  table.SetHeader({"workload", "threads", "total ops", "kops/s",
                   "mean us/op"});

  for (YcsbWorkload workload :
       {YcsbWorkload::kC, YcsbWorkload::kB, YcsbWorkload::kA}) {
    // Fresh load per workload: writes mutate the tree.
    DB::Destroy(options, dbdir);
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, dbdir, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "fig13: open: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<Key> keys = GenerateKeys(d.dataset, d.num_keys, d.seed);
    {
      // Shuffled load, as a YCSB load phase would issue it.
      std::vector<size_t> order(keys.size());
      for (size_t i = 0; i < order.size(); i++) order[i] = i;
      Random rnd(d.seed);
      for (size_t i = order.size(); i > 1; i--) {
        std::swap(order[i - 1], order[rnd.Uniform(i)]);
      }
      for (size_t i : order) {
        s = db->Put(keys[i], DeriveValue(keys[i], d.value_size));
        if (!s.ok()) break;
      }
    }
    if (s.ok()) s = db->FlushMemTable();
    if (!s.ok()) {
      std::fprintf(stderr, "fig13: load: %s\n", s.ToString().c_str());
      return 1;
    }

    std::vector<ThreadResult> results(threads);
    Env* env = &sim_env;
    const uint64_t start = env->NowNanos();
    {
      std::vector<std::thread> workers;
      for (size_t t = 0; t < threads; t++) {
        workers.emplace_back(RunWorker, db.get(), std::cref(keys), workload,
                             d.num_ops, d.value_size, d.seed + 1000 + t, t,
                             threads, multiget_batch, &results[t]);
      }
      for (std::thread& w : workers) w.join();
    }
    const double seconds = (env->NowNanos() - start) / 1e9;

    uint64_t total_ops = 0;
    for (const ThreadResult& r : results) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "fig13: worker: %s\n",
                     r.status.ToString().c_str());
        return 1;
      }
      total_ops += r.ops;
    }
    const double kops_per_sec = total_ops / seconds / 1000.0;
    const double mean_us = seconds * 1e6 * threads / total_ops;
    table.AddRow({YcsbWorkloadName(workload), std::to_string(threads),
                  std::to_string(total_ops), FormatMicros(kops_per_sec),
                  FormatMicros(mean_us)});
    db.reset();
    DB::Destroy(options, dbdir);
  }
  table.Emit();
  return 0;
}
