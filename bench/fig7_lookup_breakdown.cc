// Figure 7: query time breakdown. (A) per index type at boundary 64:
// I/O vs prediction vs binary search (I/O dominates ~10x). (B) prediction
// time as the boundary shrinks.
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 7", "point-lookup time breakdown", d);

  IndexSetup setup;
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  std::unique_ptr<Testbed> bed;
  Status s = bench::MakeTestbed("fig7", setup, d, &bed);
  if (!s.ok()) {
    std::fprintf(stderr, "fig7: %s\n", s.ToString().c_str());
    return 1;
  }

  ReportTable breakdown("Figure 7(A): per-op stage time at boundary 64 (us)");
  breakdown.SetHeader({"index", "io", "predict", "binary_search", "bloom",
                       "io_share"});
  for (IndexType type : kAllIndexTypes) {
    IndexSetup config;
    config.type = type;
    config.position_boundary = 64;
    if (!(s = bed->Reconfigure(config)).ok()) break;
    RunMetrics metrics;
    if (!(s = bed->RunPointLookups(d.num_ops, false, &metrics)).ok()) break;
    const Stats& stats = metrics.stats;
    const double ops = static_cast<double>(d.num_ops);
    const double io = stats.TimeNanos(Timer::kDiskRead) / 1000.0 / ops;
    const double predict =
        stats.TimeNanos(Timer::kIndexPredict) / 1000.0 / ops;
    const double search =
        stats.TimeNanos(Timer::kBinarySearch) / 1000.0 / ops;
    const double bloom = stats.TimeNanos(Timer::kBloomCheck) / 1000.0 / ops;
    char share[16];
    std::snprintf(share, sizeof(share), "%.0f%%",
                  100.0 * io / (io + predict + search + bloom));
    breakdown.AddRow({IndexTypeName(type), FormatMicros(io),
                      FormatMicros(predict), FormatMicros(search),
                      FormatMicros(bloom), share});
  }
  if (!s.ok()) {
    std::fprintf(stderr, "fig7: %s\n", s.ToString().c_str());
    return 1;
  }
  breakdown.Emit();

  ReportTable predict_cost(
      "Figure 7(B): prediction time vs position boundary (us/op)");
  std::vector<std::string> header = {"index"};
  for (uint32_t b : {128u, 32u, 8u}) header.push_back("b=" + std::to_string(b));
  predict_cost.SetHeader(header);
  for (IndexType type : kAllIndexTypes) {
    std::vector<std::string> row = {IndexTypeName(type)};
    for (uint32_t boundary : {128u, 32u, 8u}) {
      IndexSetup config;
      config.type = type;
      config.position_boundary = boundary;
      if (!(s = bed->Reconfigure(config)).ok()) break;
      RunMetrics metrics;
      if (!(s = bed->RunPointLookups(d.num_ops, false, &metrics)).ok()) break;
      row.push_back(FormatMicros(metrics.stats.TimeNanos(Timer::kIndexPredict) /
                                 1000.0 / d.num_ops));
    }
    predict_cost.AddRow(row);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "fig7: %s\n", s.ToString().c_str());
    return 1;
  }
  predict_cost.Emit();
  return 0;
}
