// Figure 9: compaction time and breakdown under a write-only workload
// (Observation 4: training + model writing stay under ~5% of compaction,
// PLEX around 10-15%).
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 9", "compaction time and breakdown, write-only",
                     d);

  ReportTable table("Figure 9: compaction breakdown (write-only workload)");
  table.SetHeader({"index", "compact_ms", "kv_io_ms", "train_ms",
                   "write_model_ms", "train_share", "index_bytes"});

  for (IndexType type : kAllIndexTypes) {
    IndexSetup setup;
    setup.type = type;
    setup.position_boundary = 32;
    std::unique_ptr<Testbed> bed;
    Status s = bench::MakeTestbed("fig9", setup, d, &bed);
    if (!s.ok()) {
      std::fprintf(stderr, "fig9: %s\n", s.ToString().c_str());
      return 1;
    }
    RunMetrics metrics;
    s = bed->RunWriteOnly(d.num_ops * 4, &metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "fig9: %s\n", s.ToString().c_str());
      return 1;
    }
    const Stats& stats = metrics.stats;
    const double total = stats.TimeNanos(Timer::kCompactTotal) / 1e6;
    const double kv = stats.TimeNanos(Timer::kCompactKvIo) / 1e6;
    const double train = stats.TimeNanos(Timer::kCompactTrain) / 1e6;
    const double model = stats.TimeNanos(Timer::kCompactWriteModel) / 1e6;
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  total > 0 ? 100.0 * (train + model) / total : 0.0);
    table.AddRow({IndexTypeName(type), FormatMicros(total),
                  FormatMicros(kv), FormatMicros(train), FormatMicros(model),
                  share, std::to_string(metrics.index_memory)});
  }
  table.Emit();
  return 0;
}
