// Figure 15 (beyond the paper): restart time with persisted learned
// models. One compacted level-granularity tree is opened four ways —
//
//   sidecar   kCompactionMaintained + kSidecar: models stitched from the
//             tables' persisted sidecar blocks (zero key scans)
//   stitch    kCompactionMaintained + kStitchInMemory: models stitched
//             from each reader's decoded index blob (zero key re-reads,
//             but every table is opened and parsed)
//   retrain   kCompactionMaintained + kRetrainOnOpen: models rebuilt
//             from a full key scan at open
//   lazy      kLazyRebuild: open does no model work; the first reads pay
//             the full-level scans instead
//
// — reporting DB::Open wall time, first-read latency, and the mean of
// the first 100 reads, plus the model-load counters that prove where the
// work went. A running checksum over identical read sequences proves all
// four opens serve bit-identical results. Results also land in
// BENCH_pr10.json (cwd) for CI artifact upload.
//
//   fig15_restart            # full sweep
//   fig15_restart --n 4000   # the smoke_fig15_restart ctest entry
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "lsm/db.h"
#include "workload/dataset.h"

using namespace lilsm;

namespace {

struct Mode {
  const char* name;
  LevelModelPolicy policy;
  ModelPersistence persistence;
};

constexpr Mode kModes[] = {
    {"sidecar", LevelModelPolicy::kCompactionMaintained,
     ModelPersistence::kSidecar},
    {"stitch", LevelModelPolicy::kCompactionMaintained,
     ModelPersistence::kStitchInMemory},
    {"retrain", LevelModelPolicy::kCompactionMaintained,
     ModelPersistence::kRetrainOnOpen},
    {"lazy", LevelModelPolicy::kLazyRebuild, ModelPersistence::kSidecar},
};

struct ModeResult {
  double open_ms = 0;
  double first_read_us = 0;
  double mean100_read_us = 0;
  uint64_t models_from_disk = 0;
  uint64_t sidecar_fallbacks = 0;
  uint64_t model_build_bytes = 0;
  uint64_t checksum = 0;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

DBOptions RestartOptions(const ExperimentDefaults& d, const Mode& mode) {
  DBOptions options;
  const uint64_t entry_size = d.key_size + 8 + d.value_size;
  options.write_buffer_size = std::max<size_t>(
      32 << 10, std::min<uint64_t>(d.write_buffer_size,
                                   d.num_keys * entry_size / 8));
  options.sstable_target_size = options.write_buffer_size / 2;
  options.size_ratio = d.size_ratio;
  options.bloom_bits_per_key = d.bloom_bits_per_key;
  options.key_size = d.key_size;
  options.value_size = d.value_size;
  options.index_granularity = IndexGranularity::kLevel;
  options.level_model_policy = mode.policy;
  options.model_persistence = mode.persistence;
  options.index_config = IndexConfig::FromPositionBoundary(64);
  return options;
}

Status RunMode(const Mode& mode, const ExperimentDefaults& d,
               const std::string& dbdir, const std::vector<Key>& keys,
               const std::vector<Key>& probes, ModeResult* result) {
  Env* env = Env::Default();
  DBOptions options = RestartOptions(d, mode);
  std::unique_ptr<DB> db;
  const uint64_t open_start = env->NowNanos();
  Status s = DB::Open(options, dbdir, &db);
  if (!s.ok()) return s;
  result->open_ms = (env->NowNanos() - open_start) / 1e6;

  uint64_t checksum = 1469598103934665603ull;  // FNV offset basis
  std::string value;
  double first_100_ns = 0;
  for (size_t i = 0; i < probes.size(); i++) {
    const uint64_t t0 = env->NowNanos();
    s = db->Get(probes[i], &value);
    const uint64_t dt = env->NowNanos() - t0;
    if (!s.ok()) return s;
    if (i == 0) result->first_read_us = dt / 1e3;
    if (i < 100) first_100_ns += static_cast<double>(dt);
    checksum = Fnv1a(checksum, probes[i]);
    for (size_t b = 0; b + 8 <= value.size(); b += 8) {
      uint64_t word = 0;
      std::memcpy(&word, value.data() + b, 8);
      checksum = Fnv1a(checksum, word);
    }
  }
  result->mean100_read_us =
      first_100_ns / std::min<size_t>(probes.size(), 100) / 1e3;
  result->checksum = checksum;

  const Stats& stats = *db->stats();
  result->models_from_disk = stats.Count(Counter::kModelsLoadedFromDisk);
  result->sidecar_fallbacks = stats.Count(Counter::kModelSidecarFallbacks);
  result->model_build_bytes = stats.Count(Counter::kModelBuildBytesRead);
  (void)keys;
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 15",
                     "restart time with persisted learned models", d);

  // Build one compacted tree all four opens share.
  const std::string dbdir = bench::BenchDir("fig15");
  std::vector<Key> keys = GenerateKeys(d.dataset, d.num_keys, d.seed);
  {
    DBOptions options = RestartOptions(d, kModes[0]);
    DB::Destroy(options, dbdir);
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, dbdir, &db);
    if (s.ok()) {
      for (Key key : keys) {
        s = db->Put(key, DeriveValue(key, d.value_size));
        if (!s.ok()) break;
      }
    }
    if (s.ok()) s = db->CompactAll();
    if (!s.ok()) {
      std::fprintf(stderr, "fig15: load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // A fixed probe sequence every mode replays identically.
  std::vector<Key> probes;
  {
    Random rnd(d.seed ^ 0xF15);
    const size_t n = std::min<size_t>(keys.size(), 2000);
    probes.reserve(n);
    for (size_t i = 0; i < n; i++) {
      probes.push_back(keys[rnd.Uniform(keys.size())]);
    }
  }

  ReportTable table("Figure 15: open + first-read cost by model source");
  table.SetHeader({"mode", "open_ms", "first_read_us", "mean100_read_us",
                   "models_from_disk", "model_scan_MB"});
  ModeResult results[4];
  for (size_t m = 0; m < 4; m++) {
    Status s = RunMode(kModes[m], d, dbdir, keys, probes, &results[m]);
    if (!s.ok()) {
      std::fprintf(stderr, "fig15 %s: %s\n", kModes[m].name,
                   s.ToString().c_str());
      return 1;
    }
    table.AddRow({kModes[m].name, FormatMicros(results[m].open_ms),
                  FormatMicros(results[m].first_read_us),
                  FormatMicros(results[m].mean100_read_us),
                  std::to_string(results[m].models_from_disk),
                  FormatMicros(results[m].model_build_bytes / 1048576.0)});
  }
  table.Emit();

  for (size_t m = 1; m < 4; m++) {
    if (results[m].checksum != results[0].checksum) {
      std::fprintf(stderr,
                   "fig15: mode %s returned DIFFERENT Get results\n",
                   kModes[m].name);
      return 1;
    }
  }
  std::printf("# Get results identical across all four open modes "
              "(checksum %llx)\n",
              static_cast<unsigned long long>(results[0].checksum));
  if (results[0].model_build_bytes != 0) {
    std::fprintf(stderr, "fig15: sidecar open scanned %llu key bytes\n",
                 static_cast<unsigned long long>(
                     results[0].model_build_bytes));
    return 1;
  }

  FILE* json = std::fopen("BENCH_pr10.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"bench\":\"fig15_restart\",\"n\":%zu,\"modes\":[",
                 d.num_keys);
    for (size_t m = 0; m < 4; m++) {
      const ModeResult& r = results[m];
      std::fprintf(
          json,
          "%s{\"mode\":\"%s\",\"open_ms\":%.3f,\"first_read_us\":%.2f,"
          "\"mean100_read_us\":%.2f,\"models_from_disk\":%llu,"
          "\"sidecar_fallbacks\":%llu,\"model_build_bytes\":%llu}",
          m == 0 ? "" : ",", kModes[m].name, r.open_ms, r.first_read_us,
          r.mean100_read_us,
          static_cast<unsigned long long>(r.models_from_disk),
          static_cast<unsigned long long>(r.sidecar_fallbacks),
          static_cast<unsigned long long>(r.model_build_bytes));
    }
    std::fprintf(json, "]}\n");
    std::fclose(json);
    std::printf("# wrote BENCH_pr10.json\n");
  }
  {
    DBOptions options = RestartOptions(d, kModes[0]);
    DB::Destroy(options, dbdir);
  }
  return 0;
}
