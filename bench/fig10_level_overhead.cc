// Figure 10 (left): per-level read overhead, index size and level size
// under uniform and read-latest distributions (Observation 5: skew breaks
// the proportionality between level size and read cost).
#include "bench/bench_common.h"

using namespace lilsm;

namespace {

Status RunDistribution(Testbed* bed, const ExperimentDefaults& d,
                       bool zipfian, const char* label) {
  RunMetrics metrics;
  Status s = bed->RunPointLookups(d.num_ops, zipfian, &metrics);
  if (!s.ok()) return s;

  uint64_t total_read_ns = 0;
  uint64_t total_entries = 0;
  size_t total_index = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_read_ns += metrics.stats.LevelReadNanos(level);
    total_entries += bed->db()->EntriesAtLevel(level);
    total_index += bed->db()->LevelIndexMemory(level);
  }
  ReportTable table(std::string("Figure 10: per-level proportions (") +
                    label + " query distribution)");
  table.SetHeader({"level", "read_overhead", "index_size", "level_size",
                   "files"});
  for (int level = 0; level < kNumLevels; level++) {
    if (bed->db()->NumFilesAtLevel(level) == 0 &&
        metrics.stats.LevelReads(level) == 0) {
      continue;
    }
    auto pct = [](uint64_t part, uint64_t whole) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    whole > 0 ? static_cast<double>(part) / whole : 0.0);
      return std::string(buf);
    };
    table.AddRow({"L" + std::to_string(level),
                  pct(metrics.stats.LevelReadNanos(level), total_read_ns),
                  pct(bed->db()->LevelIndexMemory(level), total_index),
                  pct(bed->db()->EntriesAtLevel(level), total_entries),
                  std::to_string(bed->db()->NumFilesAtLevel(level))});
  }
  table.Emit();
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentDefaults d = bench::BenchDefaults(argc, argv);
  bench::PrintHeader("Figure 10", "read overhead across LSM levels", d);

  IndexSetup setup;
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  std::unique_ptr<Testbed> bed;
  Status s = bench::MakeTestbed("fig10", setup, d, &bed);
  if (s.ok()) s = RunDistribution(bed.get(), d, /*zipfian=*/false, "uniform");
  if (s.ok()) s = RunDistribution(bed.get(), d, /*zipfian=*/true, "zipfian");
  if (!s.ok()) {
    std::fprintf(stderr, "fig10: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
