// Figure 11: range lookups — short ranges behave like point lookups
// (boundary matters); long ranges are scan-dominated and the learned
// advantage fades (Observation 6).
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  bool ops_from_flags = false;
  ExperimentDefaults d = bench::BenchDefaults(argc, argv, &ops_from_flags);
  if (!ops_from_flags) {
    d.num_ops = std::max<size_t>(200, d.num_ops / 10);  // scans are heavy
  }
  bench::PrintHeader("Figure 11", "range lookups vs boundary and length", d);

  IndexSetup setup;
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  std::unique_ptr<Testbed> bed;
  Status s = bench::MakeTestbed("fig11", setup, d, &bed);
  if (!s.ok()) {
    std::fprintf(stderr, "fig11: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t range_lengths[] = {2, 128, 512};
  const uint32_t boundaries[] = {128, 64, 32};

  for (size_t range_len : range_lengths) {
    ReportTable table("Figure 11: range lookup latency (us/op), range=" +
                      std::to_string(range_len));
    std::vector<std::string> header = {"index"};
    for (uint32_t b : boundaries) header.push_back("b=" + std::to_string(b));
    header.push_back("memory_b32");
    table.SetHeader(header);
    for (IndexType type : kAllIndexTypes) {
      std::vector<std::string> row = {IndexTypeName(type)};
      size_t memory = 0;
      for (uint32_t boundary : boundaries) {
        IndexSetup config;
        config.type = type;
        config.position_boundary = boundary;
        if (!(s = bed->Reconfigure(config)).ok()) break;
        RunMetrics metrics;
        if (!(s = bed->RunRangeLookups(d.num_ops, range_len, &metrics)).ok()) {
          break;
        }
        row.push_back(FormatMicros(metrics.MeanLatencyUs()));
        memory = metrics.index_memory;
      }
      if (!s.ok()) break;
      row.push_back(std::to_string(memory));
      table.AddRow(row);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "fig11: %s\n", s.ToString().c_str());
      return 1;
    }
    table.Emit();
  }
  return 0;
}
