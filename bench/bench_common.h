// Shared scaffolding for the figure benches: environment-scaled defaults
// and testbed construction. Every bench honours the LILSM_* overrides
// documented in core/config.h so a full-size (paper-scale) run is one
// command away.
#ifndef LILSM_BENCH_BENCH_COMMON_H_
#define LILSM_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/report.h"
#include "core/testbed.h"

namespace lilsm {
namespace bench {

inline ExperimentDefaults BenchDefaults() {
  ExperimentDefaults d = ExperimentDefaults::FromEnvironment();
  if (std::getenv("LILSM_N") == nullptr) d.num_keys = 60'000;
  if (std::getenv("LILSM_OPS") == nullptr) d.num_ops = 6'000;
  if (std::getenv("LILSM_VALUE_SIZE") == nullptr) d.value_size = 120;
  if (std::getenv("LILSM_SST_MB") == nullptr) {
    d.sstable_target_size = 1 << 20;
  }
  d.write_buffer_size = 1 << 20;
  return d;
}

/// Parses "--flag N" / "--flag=N"; returns true and advances *i on match.
/// A matched flag with a missing, non-numeric, negative, or overflowing
/// value is a hard error (exit 2) — strtoull alone would silently wrap
/// "-1" to 2^64-1 and clamp overflow to ULLONG_MAX.
inline bool ParseSizeFlag(int argc, char** argv, int* i, const char* flag,
                          size_t* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  const char* value = nullptr;
  if (arg[flag_len] == '=') {
    value = arg + flag_len + 1;
  } else if (arg[flag_len] == '\0') {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    value = argv[++*i];
  } else {
    return false;  // a different flag sharing this prefix, e.g. --no-x
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  // Require a leading digit: strtoull itself skips whitespace and accepts
  // a sign, silently wrapping " -1" to 2^64-1.
  if (value[0] < '0' || value[0] > '9' || end == value || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, value);
    std::exit(2);
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

/// Parses "--flag VALUE" / "--flag=VALUE" string flags; returns true and
/// advances *i on match. A matched flag with a missing value is a hard
/// error (exit 2), mirroring ParseSizeFlag.
inline bool ParseStringFlag(int argc, char** argv, int* i, const char* flag,
                            std::string* out) {
  const char* arg = argv[*i];
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
  } else if (arg[flag_len] == '\0') {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    *out = argv[++*i];
  } else {
    return false;  // a different flag sharing this prefix
  }
  return true;
}

/// Maps a --level-model value to the policy; exits 2 on unknown values.
inline LevelModelPolicy ParseLevelModelPolicy(const std::string& name) {
  if (name == "lazy") return LevelModelPolicy::kLazyRebuild;
  if (name == "maintained") return LevelModelPolicy::kCompactionMaintained;
  std::fprintf(stderr,
               "--level-model must be 'lazy' or 'maintained' (got '%s')\n",
               name.c_str());
  std::exit(2);
}

/// BenchDefaults() plus command-line overrides. CLI flags win over the
/// LILSM_* environment variables; --n is what the bench_smoke ctest
/// entries use to keep every figure bench fast under tier-1.
///
/// ops_from_flags (optional) reports whether --ops was given, so benches
/// that rescale the default op count (fig11, fig12) can leave an explicit
/// request untouched.
///
/// threads (optional) enables the --threads flag for the multi-threaded
/// benches (fig13); when null, --threads is rejected like any unknown
/// flag so single-threaded benches stay strict.
///
/// level_model (optional) enables the --level-model={lazy,maintained}
/// flag for the model-lifecycle benches (fig14); it receives the raw
/// value (empty when the flag was not given) so a bench can default to
/// sweeping both policies.
///
/// multiget_batch (optional) enables the --multiget-batch=N flag for the
/// lookup benches (fig12, fig13): read ops are served through
/// DB::MultiGet in batches of N (0 or 1 keeps the per-key Get path).
///
/// block_cache (optional) enables the --block-cache-mb=N flag for the
/// lookup benches (fig12, fig13): the DB is opened with an N MiB shared
/// block cache (0, the default, keeps the paper's uncached read path).
/// The parsed capacity lands in ExperimentDefaults::block_cache_bytes;
/// the pointer just opts the flag in and reports the raw MiB value.
///
/// io_depth (optional) enables the --io-depth=N flag (fig12, fig13):
/// the DB is opened with DBOptions::io_depth = N, so MultiGet fetches
/// each level's runs through one async read batch (1, the default, keeps
/// the synchronous paper path). Lands in ExperimentDefaults::io_depth.
///
/// readahead (optional) enables the --readahead=N flag (fig12, fig13):
/// scan phases pass ReadOptions::readahead_blocks = N so iterators
/// prefetch upcoming blocks (0, the default, keeps scans synchronous).
/// Lands in ExperimentDefaults::readahead_blocks.
inline ExperimentDefaults BenchDefaults(int argc, char** argv,
                                        bool* ops_from_flags = nullptr,
                                        size_t* threads = nullptr,
                                        std::string* level_model = nullptr,
                                        size_t* multiget_batch = nullptr,
                                        size_t* block_cache_mb = nullptr,
                                        size_t* io_depth = nullptr,
                                        size_t* readahead = nullptr) {
  ExperimentDefaults d = BenchDefaults();
  if (ops_from_flags != nullptr) *ops_from_flags = false;
  auto require_positive = [](const char* flag, size_t value) {
    if (value == 0) {
      std::fprintf(stderr, "%s must be positive\n", flag);
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; i++) {
    size_t value = 0;
    if (ParseSizeFlag(argc, argv, &i, "--n", &value)) {
      require_positive("--n", value);
      d.num_keys = value;
    } else if (ParseSizeFlag(argc, argv, &i, "--ops", &value)) {
      require_positive("--ops", value);
      d.num_ops = value;
      if (ops_from_flags != nullptr) *ops_from_flags = true;
    } else if (ParseSizeFlag(argc, argv, &i, "--value-size", &value)) {
      require_positive("--value-size", value);
      if (value > UINT32_MAX) {
        std::fprintf(stderr, "--value-size too large (max %u)\n",
                     UINT32_MAX);
        std::exit(2);
      }
      d.value_size = static_cast<uint32_t>(value);
    } else if (ParseSizeFlag(argc, argv, &i, "--seed", &value)) {
      d.seed = value;
    } else if (threads != nullptr &&
               ParseSizeFlag(argc, argv, &i, "--threads", &value)) {
      require_positive("--threads", value);
      *threads = value;
    } else if (level_model != nullptr &&
               ParseStringFlag(argc, argv, &i, "--level-model",
                               level_model)) {
      ParseLevelModelPolicy(*level_model);  // validate eagerly
    } else if (multiget_batch != nullptr &&
               ParseSizeFlag(argc, argv, &i, "--multiget-batch", &value)) {
      *multiget_batch = value;
    } else if (block_cache_mb != nullptr &&
               ParseSizeFlag(argc, argv, &i, "--block-cache-mb", &value)) {
      *block_cache_mb = value;
      d.block_cache_bytes = value << 20;
    } else if (io_depth != nullptr &&
               ParseSizeFlag(argc, argv, &i, "--io-depth", &value)) {
      require_positive("--io-depth", value);
      if (value > 1024) {
        std::fprintf(stderr, "--io-depth too large (max 1024)\n");
        std::exit(2);
      }
      *io_depth = value;
      d.io_depth = static_cast<int>(value);
    } else if (readahead != nullptr &&
               ParseSizeFlag(argc, argv, &i, "--readahead", &value)) {
      *readahead = value;
      d.readahead_blocks = value;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--n KEYS] [--ops OPS] [--value-size BYTES] "
          "[--seed SEED]%s%s%s%s%s%s\n"
          "Environment overrides (LILSM_N, LILSM_OPS, ...) are documented "
          "in src/core/config.h; flags take precedence.\n",
          argv[0], threads != nullptr ? " [--threads T]" : "",
          level_model != nullptr ? " [--level-model lazy|maintained]" : "",
          multiget_batch != nullptr ? " [--multiget-batch N]" : "",
          block_cache_mb != nullptr ? " [--block-cache-mb MB]" : "",
          io_depth != nullptr ? " [--io-depth N]" : "",
          readahead != nullptr ? " [--readahead BLOCKS]" : "");
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (try --help)\n", argv[0],
                   argv[i]);
      std::exit(2);
    }
  }
  return d;
}

inline std::string BenchDir(const std::string& name) {
  const char* base = std::getenv("LILSM_BENCH_DIR");
  return std::string(base != nullptr ? base : "/tmp") + "/lilsm_bench_" +
         name;
}

inline Status MakeTestbed(const std::string& name, const IndexSetup& setup,
                          const ExperimentDefaults& defaults,
                          std::unique_ptr<Testbed>* bed) {
  Testbed::Options options;
  options.dir = BenchDir(name);
  options.defaults = defaults;
  options.setup = setup;
  options.sim = SimEnv::OptionsFromEnvironment();
  return Testbed::Create(options, bed);
}

inline void PrintHeader(const char* figure, const char* what,
                        const ExperimentDefaults& d) {
  std::printf(
      "# %s — %s\n"
      "# scaled run: N=%zu keys, %u B values, %zu ops, SST=%.1f MiB "
      "(paper: 6.4M keys, 1000 B values, 1M ops; see EXPERIMENTS.md)\n\n",
      figure, what, d.num_keys, d.value_size, d.num_ops,
      d.sstable_target_size / 1048576.0);
}

}  // namespace bench
}  // namespace lilsm

#endif  // LILSM_BENCH_BENCH_COMMON_H_
