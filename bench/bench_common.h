// Shared scaffolding for the figure benches: environment-scaled defaults
// and testbed construction. Every bench honours the LILSM_* overrides
// documented in core/config.h so a full-size (paper-scale) run is one
// command away.
#ifndef LILSM_BENCH_BENCH_COMMON_H_
#define LILSM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/report.h"
#include "core/testbed.h"

namespace lilsm {
namespace bench {

inline ExperimentDefaults BenchDefaults() {
  ExperimentDefaults d = ExperimentDefaults::FromEnvironment();
  if (std::getenv("LILSM_N") == nullptr) d.num_keys = 60'000;
  if (std::getenv("LILSM_OPS") == nullptr) d.num_ops = 6'000;
  if (std::getenv("LILSM_VALUE_SIZE") == nullptr) d.value_size = 120;
  if (std::getenv("LILSM_SST_MB") == nullptr) {
    d.sstable_target_size = 1 << 20;
  }
  d.write_buffer_size = 1 << 20;
  return d;
}

inline std::string BenchDir(const std::string& name) {
  const char* base = std::getenv("LILSM_BENCH_DIR");
  return std::string(base != nullptr ? base : "/tmp") + "/lilsm_bench_" +
         name;
}

inline Status MakeTestbed(const std::string& name, const IndexSetup& setup,
                          const ExperimentDefaults& defaults,
                          std::unique_ptr<Testbed>* bed) {
  Testbed::Options options;
  options.dir = BenchDir(name);
  options.defaults = defaults;
  options.setup = setup;
  options.sim = SimEnv::OptionsFromEnvironment();
  return Testbed::Create(options, bed);
}

inline void PrintHeader(const char* figure, const char* what,
                        const ExperimentDefaults& d) {
  std::printf(
      "# %s — %s\n"
      "# scaled run: N=%zu keys, %u B values, %zu ops, SST=%.1f MiB "
      "(paper: 6.4M keys, 1000 B values, 1M ops; see EXPERIMENTS.md)\n\n",
      figure, what, d.num_keys, d.value_size, d.num_ops,
      d.sstable_target_size / 1048576.0);
}

}  // namespace bench
}  // namespace lilsm

#endif  // LILSM_BENCH_BENCH_COMMON_H_
