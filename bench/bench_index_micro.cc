// Microbenchmarks (google-benchmark): index build and predict costs per
// type, plus the DESIGN.md ablations — PGM's EpsilonRecursive and
// RadixSpline's RadixBits (the paper fixes them at 4 and 1).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "index/index.h"
#include "util/random.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

// Key count for every micro; overridden by --n (the bench_smoke ctest
// entry passes a tiny value so bit-rot is caught without a full run).
size_t bench_num_keys = 200000;

const std::vector<Key>& BenchKeys() {
  static const std::vector<Key> keys =
      GenerateKeys(Dataset::kRandom, bench_num_keys, 42);
  return keys;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto type = static_cast<IndexType>(state.range(0));
  const uint32_t boundary = static_cast<uint32_t>(state.range(1));
  const std::vector<Key>& keys = BenchKeys();
  IndexConfig config = IndexConfig::FromPositionBoundary(boundary);
  for (auto _ : state) {
    auto index = CreateIndex(type);
    Status s = index->Build(keys.data(), keys.size(), config);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  auto index = CreateIndex(type);
  index->Build(keys.data(), keys.size(), config);
  state.counters["segments"] = static_cast<double>(index->SegmentCount());
  state.counters["memory_bytes"] =
      static_cast<double>(index->MemoryUsage());
  state.SetLabel(IndexTypeName(type));
}

void BM_IndexPredict(benchmark::State& state) {
  const auto type = static_cast<IndexType>(state.range(0));
  const uint32_t boundary = static_cast<uint32_t>(state.range(1));
  const std::vector<Key>& keys = BenchKeys();
  auto index = CreateIndex(type);
  IndexConfig config = IndexConfig::FromPositionBoundary(boundary);
  Status s = index->Build(keys.data(), keys.size(), config);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Random rnd(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Predict(keys[rnd.Uniform(keys.size())]));
  }
  state.SetLabel(IndexTypeName(type));
}

void BM_PgmEpsilonRecursive(benchmark::State& state) {
  // Ablation: the paper keeps EpsilonRecursive=4 after finding it barely
  // matters in LSM-trees; this sweep regenerates that observation.
  const std::vector<Key>& keys = BenchKeys();
  IndexConfig config = IndexConfig::FromPositionBoundary(64);
  config.epsilon_recursive = static_cast<uint32_t>(state.range(0));
  auto index = CreateIndex(IndexType::kPGM);
  Status s = index->Build(keys.data(), keys.size(), config);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Random rnd(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Predict(keys[rnd.Uniform(keys.size())]));
  }
  state.counters["memory_bytes"] =
      static_cast<double>(index->MemoryUsage());
}

void BM_RadixSplineBits(benchmark::State& state) {
  // Ablation: RadixBits (paper picks 1 as the LSM sweet spot).
  const std::vector<Key>& keys = BenchKeys();
  IndexConfig config = IndexConfig::FromPositionBoundary(64);
  config.radix_bits = static_cast<uint32_t>(state.range(0));
  auto index = CreateIndex(IndexType::kRadixSpline);
  Status s = index->Build(keys.data(), keys.size(), config);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  Random rnd(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Predict(keys[rnd.Uniform(keys.size())]));
  }
  state.counters["memory_bytes"] =
      static_cast<double>(index->MemoryUsage());
}

void RegisterAll() {
  for (IndexType type : kAllIndexTypes) {
    for (int64_t boundary : {256, 32, 8}) {
      benchmark::RegisterBenchmark("BM_IndexBuild",
                                   BM_IndexBuild)
          ->Args({static_cast<int64_t>(type), boundary})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark("BM_IndexPredict", BM_IndexPredict)
          ->Args({static_cast<int64_t>(type), boundary})
          ->MinTime(0.05);
    }
  }
  for (int64_t er : {1, 4, 16, 64}) {
    benchmark::RegisterBenchmark("BM_PgmEpsilonRecursive",
                                 BM_PgmEpsilonRecursive)
        ->Arg(er)
        ->MinTime(0.05);
  }
  for (int64_t bits : {1, 4, 8, 16}) {
    benchmark::RegisterBenchmark("BM_RadixSplineBits", BM_RadixSplineBits)
        ->Arg(bits)
        ->MinTime(0.05);
  }
}

}  // namespace
}  // namespace lilsm

int main(int argc, char** argv) {
  // Consume --n before google-benchmark sees the argument list; the rest
  // (--benchmark_filter, --benchmark_out, ...) passes through untouched.
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    size_t value = 0;
    if (lilsm::bench::ParseSizeFlag(argc, argv, &i, "--n", &value)) {
      if (value == 0) {
        std::fprintf(stderr, "--n must be positive\n");
        return 2;
      }
      lilsm::bench_num_keys = value;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  lilsm::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
