// Figure 12: the six YCSB mixes — average operation latency against index
// memory across index types (Observation 7: mixed-workload tradeoffs
// mirror the read-only ones; PGM stays on the frontier).
//
// --multiget-batch=N routes read ops through DB::MultiGet in batches of N
// (0/1 keeps per-key Get). The blm+prd/op column reports bloom probes and
// index predictions per operation; batching amortizes both across each
// sorted run of keys, so compare a batched run against the default to see
// the per-key probe reduction (EXPERIMENTS.md records the numbers).
//
// --block-cache-mb=N opens the DB with an N MiB shared block cache; the
// extra hit% column then reports the block-cache hit rate per config, and
// the io/op column the Env reads actually issued per operation — sweep N
// to trade memory for device reads on the zipfian mixes (EXPERIMENTS.md).
//
// --io-depth=N opens the DB with DBOptions::io_depth = N so batched reads
// fetch each level's runs as one async batch; --readahead=K makes scan
// ops prefetch K blocks ahead. Both default off (synchronous paper path);
// combine with --multiget-batch to reproduce the io-depth scaling table
// in EXPERIMENTS.md (BENCH_pr7.json).
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  bool ops_from_flags = false;
  size_t multiget_batch = 0;
  size_t block_cache_mb = 0;
  size_t io_depth = 0;
  size_t readahead = 0;
  ExperimentDefaults d = bench::BenchDefaults(argc, argv, &ops_from_flags,
                                              nullptr, nullptr,
                                              &multiget_batch,
                                              &block_cache_mb, &io_depth,
                                              &readahead);
  if (!ops_from_flags) d.num_ops = std::max<size_t>(500, d.num_ops / 2);
  bench::PrintHeader("Figure 12", "YCSB A-F: latency vs index memory", d);
  if (multiget_batch > 1) {
    std::printf("# reads served through MultiGet, batch=%zu\n\n",
                multiget_batch);
  }
  if (d.io_depth > 1 || d.readahead_blocks > 0) {
    std::printf("# async I/O: io_depth=%d readahead=%zu blocks\n\n",
                d.io_depth, d.readahead_blocks);
  }
  // The env override (LILSM_BLOCK_CACHE_MB) enables the cache too, so
  // key the extra columns off the resolved capacity, not the flag.
  const bool cached = d.block_cache_bytes > 0;
  if (cached) {
    std::printf("# shared block cache: %zu MiB\n\n",
                d.block_cache_bytes >> 20);
  }

  for (YcsbWorkload workload : kAllYcsbWorkloads) {
    // Writes mutate the tree, so each workload gets a fresh load.
    IndexSetup setup;
    setup.type = IndexType::kPGM;
    setup.position_boundary = 64;
    std::unique_ptr<Testbed> bed;
    Status s = bench::MakeTestbed("fig12", setup, d, &bed);
    if (!s.ok()) {
      std::fprintf(stderr, "fig12: %s\n", s.ToString().c_str());
      return 1;
    }
    ReportTable table(std::string("Figure 12: YCSB-") +
                      YcsbWorkloadName(workload));
    std::vector<std::string> header;
    for (uint32_t boundary : {128u, 16u}) {
      const std::string prefix = "b=" + std::to_string(boundary);
      header.push_back(prefix + " us");
      header.push_back(prefix + " mem");
      header.push_back(prefix + " blm+prd/op");
      if (cached) {
        header.push_back(prefix + " hit%");
        header.push_back(prefix + " io/op");
      }
    }
    header.insert(header.begin(), "index");
    table.SetHeader(header);
    for (IndexType type : kAllIndexTypes) {
      std::vector<std::string> row = {IndexTypeName(type)};
      for (uint32_t boundary : {128u, 16u}) {
        IndexSetup config;
        config.type = type;
        config.position_boundary = boundary;
        if (!(s = bed->Reconfigure(config)).ok()) break;
        RunMetrics metrics;
        if (!(s = bed->RunYcsb(workload, d.num_ops, &metrics,
                               multiget_batch))
                 .ok()) {
          break;
        }
        row.push_back(FormatMicros(metrics.MeanLatencyUs()));
        row.push_back(std::to_string(metrics.index_memory));
        const double ops = static_cast<double>(d.num_ops);
        char probes[64];
        std::snprintf(
            probes, sizeof(probes), "%.2f+%.2f",
            metrics.stats.TimerCount(Timer::kBloomCheck) / ops,
            metrics.stats.TimerCount(Timer::kIndexPredict) / ops);
        row.push_back(probes);
        if (cached) {
          const double hits = static_cast<double>(
              metrics.stats.Count(Counter::kBlockCacheHits));
          const double misses = static_cast<double>(
              metrics.stats.Count(Counter::kBlockCacheMisses));
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        hits + misses > 0 ? 100.0 * hits / (hits + misses)
                                          : 0.0);
          row.push_back(buf);
          std::snprintf(buf, sizeof(buf), "%.2f",
                        static_cast<double>(metrics.io_reads) / ops);
          row.push_back(buf);
        }
      }
      if (!s.ok()) break;
      table.AddRow(row);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "fig12: %s\n", s.ToString().c_str());
      return 1;
    }
    table.Emit();
  }
  return 0;
}
