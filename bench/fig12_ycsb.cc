// Figure 12: the six YCSB mixes — average operation latency against index
// memory across index types (Observation 7: mixed-workload tradeoffs
// mirror the read-only ones; PGM stays on the frontier).
//
// --multiget-batch=N routes read ops through DB::MultiGet in batches of N
// (0/1 keeps per-key Get). The blm+prd/op column reports bloom probes and
// index predictions per operation; batching amortizes both across each
// sorted run of keys, so compare a batched run against the default to see
// the per-key probe reduction (EXPERIMENTS.md records the numbers).
#include "bench/bench_common.h"

using namespace lilsm;

int main(int argc, char** argv) {
  bool ops_from_flags = false;
  size_t multiget_batch = 0;
  ExperimentDefaults d = bench::BenchDefaults(argc, argv, &ops_from_flags,
                                              nullptr, nullptr,
                                              &multiget_batch);
  if (!ops_from_flags) d.num_ops = std::max<size_t>(500, d.num_ops / 2);
  bench::PrintHeader("Figure 12", "YCSB A-F: latency vs index memory", d);
  if (multiget_batch > 1) {
    std::printf("# reads served through MultiGet, batch=%zu\n\n",
                multiget_batch);
  }

  for (YcsbWorkload workload : kAllYcsbWorkloads) {
    // Writes mutate the tree, so each workload gets a fresh load.
    IndexSetup setup;
    setup.type = IndexType::kPGM;
    setup.position_boundary = 64;
    std::unique_ptr<Testbed> bed;
    Status s = bench::MakeTestbed("fig12", setup, d, &bed);
    if (!s.ok()) {
      std::fprintf(stderr, "fig12: %s\n", s.ToString().c_str());
      return 1;
    }
    ReportTable table(std::string("Figure 12: YCSB-") +
                      YcsbWorkloadName(workload));
    table.SetHeader({"index", "b=128 us", "b=128 mem", "b=128 blm+prd/op",
                     "b=16 us", "b=16 mem", "b=16 blm+prd/op"});
    for (IndexType type : kAllIndexTypes) {
      std::vector<std::string> row = {IndexTypeName(type)};
      for (uint32_t boundary : {128u, 16u}) {
        IndexSetup config;
        config.type = type;
        config.position_boundary = boundary;
        if (!(s = bed->Reconfigure(config)).ok()) break;
        RunMetrics metrics;
        if (!(s = bed->RunYcsb(workload, d.num_ops, &metrics,
                               multiget_batch))
                 .ok()) {
          break;
        }
        row.push_back(FormatMicros(metrics.MeanLatencyUs()));
        row.push_back(std::to_string(metrics.index_memory));
        const double ops = static_cast<double>(d.num_ops);
        char probes[64];
        std::snprintf(
            probes, sizeof(probes), "%.2f+%.2f",
            metrics.stats.TimerCount(Timer::kBloomCheck) / ops,
            metrics.stats.TimerCount(Timer::kIndexPredict) / ops);
        row.push_back(probes);
      }
      if (!s.ok()) break;
      table.AddRow(row);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "fig12: %s\n", s.ToString().c_str());
      return 1;
    }
    table.Emit();
  }
  return 0;
}
