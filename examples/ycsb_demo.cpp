// Runs a YCSB workload against the testbed and prints latency, memory and
// I/O metrics — the paper's Figure 12 for one configuration.
//
//   ./ycsb_demo [workload A-F] [index type] [position boundary]
#include <cstdio>
#include <cstdlib>

#include "core/report.h"
#include "core/testbed.h"

using namespace lilsm;

int main(int argc, char** argv) {
  YcsbWorkload workload = YcsbWorkload::kB;
  if (argc > 1 && !ParseYcsbWorkload(argv[1], &workload)) {
    std::fprintf(stderr, "unknown workload %s (use A-F)\n", argv[1]);
    return 1;
  }
  IndexSetup setup;
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  if (argc > 2 && !ParseIndexType(argv[2], &setup.type)) {
    std::fprintf(stderr, "unknown index type %s\n", argv[2]);
    return 1;
  }
  if (argc > 3) {
    setup.position_boundary =
        static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10));
  }

  Testbed::Options options;
  options.dir = "/tmp/lilsm_ycsb_demo";
  options.defaults = ExperimentDefaults::FromEnvironment();
  options.defaults.num_keys = 100'000;
  options.setup = setup;
  options.sim = SimEnv::OptionsFromEnvironment();

  std::printf("loading %zu keys (%s dataset), index %s...\n",
              options.defaults.num_keys,
              DatasetName(options.defaults.dataset), setup.ToString().c_str());
  std::unique_ptr<Testbed> bed;
  Status s = Testbed::Create(options, &bed);
  if (!s.ok()) {
    std::fprintf(stderr, "testbed: %s\n", s.ToString().c_str());
    return 1;
  }

  RunMetrics metrics;
  const size_t ops = options.defaults.num_ops;
  std::printf("running %zu YCSB-%s operations...\n\n", ops,
              YcsbWorkloadName(workload));
  s = bed->RunYcsb(workload, ops, &metrics);
  if (!s.ok()) {
    std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
    return 1;
  }

  ReportTable table(std::string("YCSB-") + YcsbWorkloadName(workload) +
                    " with " + setup.ToString());
  table.SetHeader({"metric", "value"});
  table.AddRow({"mean latency (us/op)", FormatMicros(metrics.MeanLatencyUs())});
  table.AddRow({"p99 latency (us/op)", FormatMicros(metrics.P99LatencyUs())});
  table.AddRow({"index memory (bytes)", std::to_string(metrics.index_memory)});
  table.AddRow({"filter memory (bytes)",
                std::to_string(metrics.filter_memory)});
  table.AddRow({"preads", std::to_string(metrics.io_reads)});
  table.AddRow({"4KiB blocks fetched", std::to_string(metrics.io_blocks)});
  table.Emit();

  std::printf("engine stats:\n%s", metrics.stats.ToString().c_str());
  return 0;
}
