// Quickstart: open a learned-index LSM-tree, write, read, scan, and peek
// at the engine's internals.
//
//   ./quickstart [db_dir]
#include <cstdio>

#include "lsm/db.h"
#include "workload/dataset.h"

using namespace lilsm;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/lilsm_quickstart";

  // An LSM-tree whose per-table index is a PGM model with position
  // boundary 64 (predictions are within +-32 entries).
  DBOptions options;
  options.value_size = 64;                 // fixed-size values (paper setup)
  options.index_type = IndexType::kPGM;
  options.index_config = IndexConfig::FromPositionBoundary(64);
  options.write_buffer_size = 1 << 20;
  options.sstable_target_size = 1 << 20;

  DB::Destroy(options, dir);
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Write 50k entries; flushes and compactions run inline, training a
  // learned index for every table they produce. Load phases skip the WAL
  // (WriteOptions::disable_wal) — the flush below makes them durable.
  std::printf("loading 50000 entries (WAL disabled for the bulk load)...\n");
  WriteOptions load_opts;
  load_opts.disable_wal = true;
  for (Key key = 0; key < 50000; key++) {
    s = db->Put(load_opts, key * 7, DeriveValue(key * 7, options.value_size));
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db->FlushMemTable();

  // Point lookup.
  std::string value;
  s = db->Get(21 * 7, &value);
  std::printf("Get(%d) -> %s (%zu bytes)\n", 21 * 7, s.ToString().c_str(),
              value.size());

  // Batched point lookup: one pinned view, sorted runs, shared bloom and
  // index work per table (see DB::MultiGet).
  std::vector<Key> batch = {7, 70, 700, 7000, 9999999};
  std::vector<std::string> batch_values;
  std::vector<Status> batch_statuses;
  s = db->MultiGet(ReadOptions(), batch, &batch_values, &batch_statuses);
  std::printf("MultiGet(5 keys) -> %s\n", s.ToString().c_str());
  for (size_t i = 0; i < batch.size(); i++) {
    std::printf("  key=%llu %s\n",
                static_cast<unsigned long long>(batch[i]),
                batch_statuses[i].ToString().c_str());
  }

  // Delete + lookup.
  db->Delete(21 * 7);
  s = db->Get(21 * 7, &value);
  std::printf("after Delete: Get -> %s\n", s.ToString().c_str());

  // Range lookup: 5 entries from key >= 1000.
  std::vector<std::pair<Key, std::string>> range;
  db->RangeLookup(1000, 5, &range);
  std::printf("RangeLookup(1000, 5):\n");
  for (const auto& [key, v] : range) {
    std::printf("  key=%llu value_bytes=%zu\n",
                static_cast<unsigned long long>(key), v.size());
  }

  // Engine introspection: the LSM shape and the memory the learned
  // indexes cost (versus the bloom filters).
  std::printf("\nLSM shape:\n");
  for (int level = 0; level < kNumLevels; level++) {
    if (db->NumFilesAtLevel(level) == 0) continue;
    std::printf("  L%d: %d files, %llu entries\n", level,
                db->NumFilesAtLevel(level),
                static_cast<unsigned long long>(db->EntriesAtLevel(level)));
  }
  std::printf("index memory:  %zu bytes\n", db->TotalIndexMemory());
  std::printf("filter memory: %zu bytes\n", db->TotalFilterMemory());

  // Swap every table's index to RMI without rewriting any file.
  s = db->ReconfigureIndexes(IndexType::kRMI,
                             IndexConfig::FromPositionBoundary(32));
  std::printf("\nreconfigured to RMI/b32: %s, index memory now %zu bytes\n",
              s.ToString().c_str(), db->TotalIndexMemory());
  s = db->Get(1001 * 7, &value);
  std::printf("Get under RMI -> %s\n", s.ToString().c_str());

  std::printf("\nengine stats:\n%s", db->stats()->ToString().c_str());
  return 0;
}
