// Builds every learned index over every dataset and reports segment
// counts, memory, build time and measured error windows — a standalone
// tour of the index library (no LSM-tree involved).
//
//   ./index_explorer [num_keys]
#include <cstdio>
#include <cstdlib>

#include "core/report.h"
#include "index/rmi.h"
#include "util/env.h"
#include "workload/dataset.h"

using namespace lilsm;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  Env* env = Env::Default();

  for (Dataset dataset : kAllDatasets) {
    std::vector<Key> keys = GenerateKeys(dataset, n, 42);
    ReportTable table(std::string("index explorer: ") +
                      DatasetName(dataset) + " (" + std::to_string(n) +
                      " keys, boundary 64)");
    table.SetHeader({"index", "segments", "memory", "bytes/key",
                     "build_ms", "max_window"});
    for (IndexType type : kAllIndexTypes) {
      auto index = CreateIndex(type);
      IndexConfig config = IndexConfig::FromPositionBoundary(64);
      const uint64_t t0 = env->NowNanos();
      Status s = index->Build(keys.data(), keys.size(), config);
      const double build_ms = (env->NowNanos() - t0) / 1e6;
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", IndexTypeName(type),
                     s.ToString().c_str());
        return 1;
      }
      // Measure the widest window the index actually returns.
      size_t max_window = 0;
      for (size_t i = 0; i < keys.size(); i += 17) {
        max_window = std::max(max_window, index->Predict(keys[i]).width());
      }
      char per_key[32];
      std::snprintf(per_key, sizeof(per_key), "%.3f",
                    static_cast<double>(index->MemoryUsage()) / n);
      table.AddRow({IndexTypeName(type),
                    std::to_string(index->SegmentCount()),
                    FormatBytes(static_cast<double>(index->MemoryUsage())),
                    per_key, FormatMicros(build_ms),
                    std::to_string(max_window)});
    }
    table.Emit();
  }
  return 0;
}
