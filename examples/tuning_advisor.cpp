// Applies the paper's Section 6 tuning guidelines to a described workload:
// give it a memory budget and a read/write mix, get a configuration and
// the rationale behind it.
//
//   ./tuning_advisor [budget_bytes] [write_fraction] [dataset]
#include <cstdio>
#include <cstdlib>

#include "core/tuning_advisor.h"

using namespace lilsm;

int main(int argc, char** argv) {
  TuningRequest request;
  request.index_memory_budget =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (4 << 20);
  request.workload.write_fraction =
      argc > 2 ? std::strtod(argv[2], nullptr) : 0.1;
  request.workload.point_lookup_fraction =
      1.0 - request.workload.write_fraction - 0.05;
  request.workload.range_lookup_fraction = 0.05;
  Dataset dataset = Dataset::kRandom;
  if (argc > 3 && !ParseDataset(argv[3], &dataset)) {
    std::fprintf(stderr, "unknown dataset %s\n", argv[3]);
    return 1;
  }
  request.sample_keys = GenerateKeys(dataset, 100'000, 7);
  request.total_keys = 6'400'000;  // the paper's dataset size
  request.value_size = 1000;

  std::printf("workload: %.0f%% point lookups, %.0f%% ranges, %.0f%% writes\n",
              100 * request.workload.point_lookup_fraction,
              100 * request.workload.range_lookup_fraction,
              100 * request.workload.write_fraction);
  std::printf("index memory budget: %zu bytes; dataset sample: %s\n\n",
              request.index_memory_budget, DatasetName(dataset));

  TuningRecommendation rec;
  Status s = TuningAdvisor::Recommend(request, &rec);
  if (!s.ok()) {
    std::fprintf(stderr, "advisor: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("recommended configuration: %s\n", rec.setup.ToString().c_str());
  std::printf("  SSTable target size:   %llu MiB\n",
              static_cast<unsigned long long>(rec.sstable_target_size >> 20));
  std::printf("  estimated index memory: %zu bytes\n",
              rec.estimated_index_memory);
  std::printf("  diminishing-returns boundary: %u entries (one I/O block)\n\n",
              rec.diminishing_returns_boundary);
  std::printf("rationale:\n");
  for (const std::string& line : rec.rationale) {
    std::printf("  * %s\n", line.c_str());
  }
  return 0;
}
