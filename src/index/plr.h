// PlrIndex: Bourbon-style Piece-wise Linear Regression (paper Figure 2A).
// Greedy shrinking-cone segmentation; segments are indexed by a plain
// sorted array searched with binary search — the lightest-weight inner
// index among the learned index types.
#ifndef LILSM_INDEX_PLR_H_
#define LILSM_INDEX_PLR_H_

#include <vector>

#include "index/pla.h"

namespace lilsm {

class PlrIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kPLR; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override { return segments_.size(); }
  size_t MemoryUsage() const override;
  bool ExportSegments(std::vector<LinearSegment>* out,
                      uint32_t* epsilon) const override;
  Status BuildFromSegments(std::vector<LinearSegment> segments, size_t n,
                           const IndexConfig& config) override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

 private:
  std::vector<LinearSegment> segments_;
  uint32_t epsilon_ = 0;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_PLR_H_
