// RmiIndex (paper Figure 2F): a two-level Recursive Model Index. The root
// linear model routes a key to one of L second-level linear models; each
// leaf records its exact signed error bounds during training, so the
// position boundary is a trained property rather than a preset (the paper
// varies it by adjusting the second-level size).
#ifndef LILSM_INDEX_RMI_H_
#define LILSM_INDEX_RMI_H_

#include <vector>

#include "index/index.h"

namespace lilsm {

class RmiIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kRMI; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override { return leaves_.size(); }
  size_t MemoryUsage() const override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

  /// Mean over leaves of the trained error-window width (the effective
  /// position boundary RMI achieved; reported by the benches).
  double MeanErrorWindow() const;
  /// Maximum trained error window across leaves.
  size_t MaxErrorWindow() const;

 private:
  struct LinearModel {
    double slope = 0.0;
    double intercept = 0.0;
    double Predict(double x) const { return slope * x + intercept; }
  };

  struct Leaf {
    LinearModel model;
    // Signed error bounds recorded during training:
    //   true_pos - floor(pred) is in [err_lo, err_hi] for every trained key.
    int32_t err_lo = 0;
    int32_t err_hi = 0;
  };

  /// Trains with an explicit second-level size (one adaptive round of
  /// Build may call this several times to hit the epsilon target).
  void TrainWithLeafCount(const Key* keys, size_t n, size_t leaf_count);
  size_t LeafFor(Key key) const;

  LinearModel root_;
  std::vector<Leaf> leaves_;
  size_t n_ = 0;
  uint32_t epsilon_target_ = 0;  // informational; bounds come from training
};

}  // namespace lilsm

#endif  // LILSM_INDEX_RMI_H_
