#include "index/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace lilsm {

void SegmentBTree::Clear() {
  nodes_.clear();
  root_ = 0;
  height_ = 0;
}

void SegmentBTree::BulkLoad(const std::vector<Key>& keys, uint32_t fanout) {
  Clear();
  if (keys.empty()) return;
  fanout = std::max<uint32_t>(2, fanout);

  // Build leaves left to right.
  std::vector<uint32_t> level;  // node ids of the current level
  for (size_t start = 0; start < keys.size(); start += fanout) {
    Node node;
    node.leaf = true;
    node.first_value = start;
    size_t end = std::min(keys.size(), start + fanout);
    node.keys.assign(keys.begin() + start, keys.begin() + end);
    node.keys.shrink_to_fit();
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(node));
  }
  height_ = 1;

  // Build internal levels bottom-up until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    for (size_t start = 0; start < level.size(); start += fanout) {
      Node node;
      node.leaf = false;
      size_t end = std::min(level.size(), start + fanout);
      for (size_t i = start; i < end; i++) {
        node.keys.push_back(nodes_[level[i]].keys.front());
        node.children.push_back(level[i]);
      }
      node.keys.shrink_to_fit();
      node.children.shrink_to_fit();
      parent_level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(node));
    }
    level.swap(parent_level);
    height_++;
  }
  root_ = level.front();
}

size_t SegmentBTree::Find(Key key) const {
  assert(!nodes_.empty());
  uint32_t node_id = root_;
  while (true) {
    const Node& node = nodes_[node_id];
    auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key);
    size_t slot = (it == node.keys.begin())
                      ? 0
                      : static_cast<size_t>(it - node.keys.begin()) - 1;
    if (node.leaf) {
      return node.first_value + slot;
    }
    node_id = node.children[slot];
  }
}

size_t SegmentBTree::MemoryUsage() const {
  size_t total = sizeof(*this) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.keys.capacity() * sizeof(Key);
    total += node.children.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace lilsm
