// Greedy spline corridor construction shared by RadixSpline and PLEX.
// Produces a subset of the data points ("spline points", always including
// the first and last key) such that linear interpolation between adjacent
// spline points predicts every data position within +-epsilon.
#ifndef LILSM_INDEX_SPLINE_H_
#define LILSM_INDEX_SPLINE_H_

#include <cstdint>
#include <vector>

#include "index/index.h"

namespace lilsm {

struct SplinePoint {
  Key x = 0;
  uint64_t y = 0;  // position of x in the data
};

/// Single-pass corridor algorithm (Neumann & Michel; used by RadixSpline).
std::vector<SplinePoint> BuildSplineCorridor(const Key* keys, size_t n,
                                             uint32_t epsilon);

/// Interpolates the position of `key` within the spline segment
/// [points[i], points[i+1]]; `i + 1 < points.size()` is required.
double InterpolateSpline(const std::vector<SplinePoint>& points, size_t i,
                         Key key);

/// Index of the spline segment containing key: largest i with
/// points[i].x <= key, clamped to [0, points.size() - 2].
/// A binary-search fallback used by tests and by PLEX leaves.
size_t FindSplineSegment(const std::vector<SplinePoint>& points, Key key);

void EncodeSplinePoints(const std::vector<SplinePoint>& points,
                        std::string* dst);
Status DecodeSplinePoints(Slice* input, std::vector<SplinePoint>* points);

}  // namespace lilsm

#endif  // LILSM_INDEX_SPLINE_H_
