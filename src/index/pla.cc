#include "index/pla.h"

#include <cassert>
#include <limits>

namespace lilsm {

// ---------------------------------------------------------------------------
// GreedyPlaBuilder: shrinking cone anchored at the segment's first point.
// ---------------------------------------------------------------------------

bool GreedyPlaBuilder::AddPoint(Key x, int64_t y) {
  if (count_ == 0) {
    first_x_ = x;
    first_y_ = static_cast<double>(y);
    last_x_ = x;
    slope_lo_ = 0;
    slope_hi_ = std::numeric_limits<double>::infinity();
    count_ = 1;
    return true;
  }
  assert(x > last_x_);
  const double dx = static_cast<double>(x - first_x_);
  const double dy = static_cast<double>(y) - first_y_;
  // The line anchored at (first_x_, first_y_) must pass within +-epsilon of
  // (x, y): its slope must lie in [(dy - eps)/dx, (dy + eps)/dx].
  const double lo = (dy - epsilon_) / dx;
  const double hi = (dy + epsilon_) / dx;
  const double new_lo = lo > slope_lo_ ? lo : slope_lo_;
  const double new_hi = hi < slope_hi_ ? hi : slope_hi_;
  if (new_lo > new_hi) {
    return false;
  }
  slope_lo_ = new_lo;
  slope_hi_ = new_hi;
  last_x_ = x;
  count_++;
  return true;
}

LinearSegment GreedyPlaBuilder::Finish() {
  assert(count_ > 0);
  LinearSegment seg;
  seg.first_key = first_x_;
  seg.intercept = first_y_;
  if (count_ == 1 || slope_hi_ == std::numeric_limits<double>::infinity()) {
    seg.slope = 0.0;
  } else {
    seg.slope = (slope_lo_ + slope_hi_) / 2.0;
  }
  count_ = 0;
  return seg;
}

std::vector<LinearSegment> GreedyPla(const Key* keys, size_t n,
                                     uint32_t epsilon) {
  std::vector<LinearSegment> segments;
  GreedyPlaBuilder builder(epsilon);
  for (size_t i = 0; i < n; i++) {
    if (!builder.AddPoint(keys[i], static_cast<int64_t>(i))) {
      segments.push_back(builder.Finish());
      builder.AddPoint(keys[i], static_cast<int64_t>(i));
    }
  }
  if (builder.has_points()) {
    segments.push_back(builder.Finish());
  }
  return segments;
}

// ---------------------------------------------------------------------------
// OptimalPlaBuilder: PGM-index streaming convex-hull algorithm.
// ---------------------------------------------------------------------------

OptimalPlaBuilder::OptimalPlaBuilder(uint32_t epsilon)
    : epsilon_(static_cast<int64_t>(epsilon)) {
  lower_.reserve(1024);
  upper_.reserve(1024);
}

bool OptimalPlaBuilder::AddPoint(Key x, int64_t y) {
  const P p1{static_cast<__int128>(x), static_cast<__int128>(y) + epsilon_};
  const P p2{static_cast<__int128>(x), static_cast<__int128>(y) - epsilon_};

  if (points_in_hull_ > 0 && x <= last_x_) {
    // Strictly increasing x is a precondition; treat violations as a
    // forced segment break so callers cannot corrupt the hull.
    assert(false && "OptimalPlaBuilder: non-increasing x");
    return false;
  }

  if (points_in_hull_ == 0) {
    first_x_ = x;
    last_x_ = x;
    rect_[0] = p1;
    rect_[1] = p2;
    upper_.clear();
    lower_.clear();
    upper_.push_back(p1);
    lower_.push_back(p2);
    upper_start_ = lower_start_ = 0;
    points_in_hull_ = 1;
    return true;
  }

  if (points_in_hull_ == 1) {
    last_x_ = x;
    rect_[2] = p2;
    rect_[3] = p1;
    upper_.push_back(p1);
    lower_.push_back(p2);
    points_in_hull_ = 2;
    return true;
  }

  const V slope1 = Sub(rect_[2], rect_[0]);  // current maximum slope
  const V slope2 = Sub(rect_[3], rect_[1]);  // current minimum slope
  const bool outside_line1 = Sub(p1, rect_[2]) < slope1;
  const bool outside_line2 = Sub(p2, rect_[3]) > slope2;
  if (outside_line1 || outside_line2) {
    return false;  // feasible region would become empty
  }

  if (Sub(p1, rect_[1]) < slope2) {
    // p1 tightens the minimum slope: scan the lower hull for the support
    // point minimizing the slope to p1.
    V min_v = Sub(lower_[lower_start_], p1);
    size_t min_i = lower_start_;
    for (size_t i = lower_start_ + 1; i < lower_.size(); i++) {
      V val = Sub(lower_[i], p1);
      if (val > min_v) break;
      min_v = val;
      min_i = i;
    }
    rect_[1] = lower_[min_i];
    rect_[3] = p1;
    lower_start_ = min_i;

    size_t end = upper_.size();
    while (end >= upper_start_ + 2 &&
           Cross(upper_[end - 2], upper_[end - 1], p1) <= 0) {
      --end;
    }
    upper_.resize(end);
    upper_.push_back(p1);
  }

  if (Sub(p2, rect_[0]) > slope1) {
    // p2 tightens the maximum slope: scan the upper hull for the support
    // point maximizing the slope to p2.
    V max_v = Sub(upper_[upper_start_], p2);
    size_t max_i = upper_start_;
    for (size_t i = upper_start_ + 1; i < upper_.size(); i++) {
      V val = Sub(upper_[i], p2);
      if (val < max_v) break;
      max_v = val;
      max_i = i;
    }
    rect_[0] = upper_[max_i];
    rect_[2] = p2;
    upper_start_ = max_i;

    size_t end = lower_.size();
    while (end >= lower_start_ + 2 &&
           Cross(lower_[end - 2], lower_[end - 1], p2) >= 0) {
      --end;
    }
    lower_.resize(end);
    lower_.push_back(p2);
  }

  points_in_hull_++;
  last_x_ = x;
  return true;
}

LinearSegment OptimalPlaBuilder::Finish() {
  assert(points_in_hull_ > 0);
  LinearSegment seg;
  seg.first_key = first_x_;

  if (points_in_hull_ == 1) {
    seg.slope = 0.0;
    seg.intercept =
        static_cast<double>(rect_[0].y + rect_[1].y) / 2.0;  // == y
    points_in_hull_ = 0;
    return seg;
  }

  // Intersection of the two extreme-slope support lines.
  const V slope1 = Sub(rect_[2], rect_[0]);
  const V slope2 = Sub(rect_[3], rect_[1]);
  long double i_x, i_y;
  if (slope1 == slope2) {
    i_x = static_cast<long double>(rect_[0].x);
    i_y = static_cast<long double>(rect_[0].y);
  } else {
    const V p0p1 = Sub(rect_[1], rect_[0]);
    const __int128 a = slope1.dx * slope2.dy - slope1.dy * slope2.dx;
    const long double b =
        static_cast<long double>(p0p1.dx * slope2.dy - p0p1.dy * slope2.dx) /
        static_cast<long double>(a);
    i_x = static_cast<long double>(rect_[0].x) +
          b * static_cast<long double>(slope1.dx);
    i_y = static_cast<long double>(rect_[0].y) +
          b * static_cast<long double>(slope1.dy);
  }

  const long double max_slope = static_cast<long double>(slope1.dy) /
                                static_cast<long double>(slope1.dx);
  const long double min_slope = static_cast<long double>(slope2.dy) /
                                static_cast<long double>(slope2.dx);
  const long double slope = (min_slope + max_slope) / 2.0L;
  const long double intercept =
      i_y - (i_x - static_cast<long double>(first_x_)) * slope;

  seg.slope = static_cast<double>(slope);
  seg.intercept = static_cast<double>(intercept);
  points_in_hull_ = 0;
  return seg;
}

std::vector<LinearSegment> OptimalPla(const Key* keys, size_t n,
                                      uint32_t epsilon) {
  std::vector<LinearSegment> segments;
  OptimalPlaBuilder builder(epsilon);
  for (size_t i = 0; i < n; i++) {
    if (!builder.AddPoint(keys[i], static_cast<int64_t>(i))) {
      segments.push_back(builder.Finish());
      builder.AddPoint(keys[i], static_cast<int64_t>(i));
    }
  }
  if (builder.has_points()) {
    segments.push_back(builder.Finish());
  }
  return segments;
}

}  // namespace lilsm
