#include "index/plr.h"

#include <algorithm>

#include "index/segment_io.h"

namespace lilsm {

Status PlrIndex::Build(const Key* keys, size_t n, const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  n_ = n;
  segments_ = GreedyPla(keys, n, epsilon_);
  return Status::OK();
}

PredictResult PlrIndex::Predict(Key key) const {
  if (n_ == 0 || segments_.empty()) return PredictResult{};
  // Last segment whose first_key <= key.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](Key k, const LinearSegment& s) { return k < s.first_key; });
  const LinearSegment& seg = (it == segments_.begin()) ? *it : *(it - 1);
  const Key anchored = key < seg.first_key ? seg.first_key : key;
  return ClampPrediction(seg.PredictF(anchored), n_, epsilon_);
}

bool PlrIndex::ExportSegments(std::vector<LinearSegment>* out,
                              uint32_t* epsilon) const {
  out->insert(out->end(), segments_.begin(), segments_.end());
  *epsilon = epsilon_;
  return true;
}

Status PlrIndex::BuildFromSegments(std::vector<LinearSegment> segments,
                                   size_t n, const IndexConfig& config) {
  Status s = CheckStitchableSegments(segments, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  n_ = n;
  segments_ = std::move(segments);
  return Status::OK();
}

size_t PlrIndex::MemoryUsage() const {
  return sizeof(*this) + segments_.capacity() * sizeof(LinearSegment);
}

void PlrIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_);
  EncodeSegments(segments_, dst);
}

Status PlrIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0;
  uint32_t epsilon = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon)) {
    return Status::Corruption("plr index: bad header");
  }
  Status s = DecodeSegments(input, &segments_);
  if (!s.ok()) return s;
  n_ = n;
  epsilon_ = epsilon;
  return Status::OK();
}

}  // namespace lilsm
