#include "index/fence.h"

#include <algorithm>

#include "util/coding.h"

namespace lilsm {

Status FencePointerIndex::Build(const Key* keys, size_t n,
                                const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  fences_.clear();
  n_ = n;
  step_ = std::max<uint32_t>(1, config.position_boundary());
  stored_key_bytes_ = std::max<uint32_t>(8, config.stored_key_bytes);
  fences_.reserve(n / step_ + 1);
  for (size_t i = 0; i < n; i += step_) {
    fences_.push_back(keys[i]);
  }
  return Status::OK();
}

PredictResult FencePointerIndex::Predict(Key key) const {
  PredictResult r;
  if (n_ == 0) return r;
  // Index of the last fence <= key (first range if key precedes all data).
  auto it = std::upper_bound(fences_.begin(), fences_.end(), key);
  size_t fence = (it == fences_.begin())
                     ? 0
                     : static_cast<size_t>(it - fences_.begin()) - 1;
  r.lo = fence * step_;
  r.hi = std::min(n_ - 1, r.lo + step_ - 1);
  r.pos = r.lo + (r.hi - r.lo) / 2;
  return r;
}

size_t FencePointerIndex::MemoryUsage() const {
  // A fence pointer retains the raw stored key (stored_key_bytes_ wide);
  // the in-memory u64 view is an implementation shortcut possible only
  // because this testbed's user keys are numeric.
  return sizeof(*this) + fences_.size() * stored_key_bytes_;
}

void FencePointerIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, step_);
  PutVarint32(dst, stored_key_bytes_);
  PutVarint64(dst, fences_.size());
  for (Key k : fences_) {
    PutFixed64(dst, k);
  }
}

Status FencePointerIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0, count = 0;
  uint32_t step = 0, stored_key_bytes = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &step) ||
      !GetVarint32(input, &stored_key_bytes) || !GetVarint64(input, &count) ||
      step == 0 || stored_key_bytes < 8) {
    return Status::Corruption("fence index: bad header");
  }
  fences_.clear();
  fences_.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    Key k = 0;
    if (!GetFixed64(input, &k)) {
      return Status::Corruption("fence index: truncated");
    }
    fences_.push_back(k);
  }
  n_ = n;
  step_ = step;
  stored_key_bytes_ = stored_key_bytes;
  return Status::OK();
}

}  // namespace lilsm
