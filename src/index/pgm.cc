#include "index/pgm.h"

#include <algorithm>

#include "index/segment_io.h"

namespace lilsm {

Status PgmIndex::Build(const Key* keys, size_t n, const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  epsilon_recursive_ = std::max<uint32_t>(1, config.epsilon_recursive);
  n_ = n;
  levels_.clear();
  if (n == 0) return Status::OK();

  levels_.push_back(OptimalPla(keys, n, epsilon_));
  BuildUpperLevels();
  return Status::OK();
}

// Recursively index segment first-keys until one segment remains.
void PgmIndex::BuildUpperLevels() {
  while (levels_.back().size() > 1) {
    const std::vector<LinearSegment>& below = levels_.back();
    std::vector<LinearSegment> level;
    OptimalPlaBuilder builder(epsilon_recursive_);
    for (size_t i = 0; i < below.size(); i++) {
      if (!builder.AddPoint(below[i].first_key, static_cast<int64_t>(i))) {
        level.push_back(builder.Finish());
        builder.AddPoint(below[i].first_key, static_cast<int64_t>(i));
      }
    }
    if (builder.has_points()) {
      level.push_back(builder.Finish());
    }
    levels_.push_back(std::move(level));
  }
}

bool PgmIndex::ExportSegments(std::vector<LinearSegment>* out,
                              uint32_t* epsilon) const {
  *epsilon = epsilon_;
  if (levels_.empty()) return n_ == 0;
  out->insert(out->end(), levels_[0].begin(), levels_[0].end());
  return true;
}

Status PgmIndex::BuildFromSegments(std::vector<LinearSegment> segments,
                                   size_t n, const IndexConfig& config) {
  Status s = CheckStitchableSegments(segments, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  epsilon_recursive_ = std::max<uint32_t>(1, config.epsilon_recursive);
  n_ = n;
  levels_.clear();
  if (n == 0) return Status::OK();
  levels_.push_back(std::move(segments));
  BuildUpperLevels();
  return Status::OK();
}

PredictResult PgmIndex::Predict(Key key) const {
  if (n_ == 0 || levels_.empty()) return PredictResult{};

  // Descend from the root, each level narrowing to one segment below.
  size_t idx = 0;  // segment index within the current level
  for (size_t lvl = levels_.size() - 1; lvl >= 1; lvl--) {
    const LinearSegment& seg = levels_[lvl][idx];
    const std::vector<LinearSegment>& below = levels_[lvl - 1];
    const Key anchored = key < seg.first_key ? seg.first_key : key;
    double pred = seg.PredictF(anchored);
    // A query key can fall past the segment's last trained point, where the
    // model is unconstrained; clamp by the next segment's intercept (its
    // prediction for its own first key), as the PGM-index does, so the
    // search window below still covers the true rank.
    if (idx + 1 < levels_[lvl].size()) {
      pred = std::min(pred, levels_[lvl][idx + 1].intercept);
    }
    if (pred < 0) pred = 0;
    const size_t center = std::min(
        below.size() - 1, static_cast<size_t>(pred));
    // +-(epsilon_recursive + 2): +1 absorbs the floor of the prediction,
    // +1 the clamp's own epsilon_recursive-bounded error.
    const size_t margin = epsilon_recursive_ + 2;
    const size_t lo = center >= margin ? center - margin : 0;
    const size_t hi = std::min(below.size() - 1, center + margin);
    // Last segment in [lo, hi] with first_key <= key.
    auto first = below.begin() + lo;
    auto last = below.begin() + hi + 1;
    auto it = std::upper_bound(
        first, last, key,
        [](Key k, const LinearSegment& s) { return k < s.first_key; });
    idx = (it == first) ? lo : static_cast<size_t>(it - below.begin()) - 1;
    // The window provably covers the true rank for non-negative segment
    // slopes; fall back to a full search if a degenerate model violated it
    // (correctness must never depend on the models).
    const bool miss_left = below[idx].first_key > key && idx > 0;
    const bool miss_right =
        idx + 1 < below.size() && below[idx + 1].first_key <= key;
    if (miss_left || miss_right) {
      auto safe = std::upper_bound(
          below.begin(), below.end(), key,
          [](Key k, const LinearSegment& s) { return k < s.first_key; });
      idx = (safe == below.begin())
                ? 0
                : static_cast<size_t>(safe - below.begin()) - 1;
    }
  }

  const LinearSegment& leaf = levels_[0][idx];
  const Key anchored = key < leaf.first_key ? leaf.first_key : key;
  return ClampPrediction(leaf.PredictF(anchored), n_, epsilon_);
}

size_t PgmIndex::MemoryUsage() const {
  size_t total = sizeof(*this) + levels_.capacity() * sizeof(levels_[0]);
  for (const auto& level : levels_) {
    total += level.capacity() * sizeof(LinearSegment);
  }
  return total;
}

void PgmIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_);
  PutVarint32(dst, epsilon_recursive_);
  PutVarint32(dst, static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) {
    EncodeSegments(level, dst);
  }
}

Status PgmIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0;
  uint32_t epsilon = 0, epsilon_recursive = 0, num_levels = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon) ||
      !GetVarint32(input, &epsilon_recursive) ||
      !GetVarint32(input, &num_levels)) {
    return Status::Corruption("pgm index: bad header");
  }
  levels_.clear();
  levels_.resize(num_levels);
  for (uint32_t i = 0; i < num_levels; i++) {
    Status s = DecodeSegments(input, &levels_[i]);
    if (!s.ok()) return s;
  }
  if (num_levels > 0 &&
      (levels_.back().size() != 1 || levels_.front().empty())) {
    return Status::Corruption("pgm index: malformed level structure");
  }
  n_ = n;
  epsilon_ = epsilon;
  epsilon_recursive_ = epsilon_recursive;
  return Status::OK();
}

}  // namespace lilsm
