#include "index/spline.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/coding.h"

namespace lilsm {

std::vector<SplinePoint> BuildSplineCorridor(const Key* keys, size_t n,
                                             uint32_t epsilon) {
  std::vector<SplinePoint> points;
  if (n == 0) return points;
  const double eps = std::max<uint32_t>(1, epsilon);

  points.push_back(SplinePoint{keys[0], 0});
  if (n == 1) return points;

  SplinePoint base = points.back();
  SplinePoint prev{keys[1], 1};
  // Feasible slope corridor from `base` keeping every skipped point within
  // +-epsilon of the interpolated line.
  double slope_lo = (1.0 - eps) / static_cast<double>(keys[1] - base.x);
  double slope_hi = (1.0 + eps) / static_cast<double>(keys[1] - base.x);

  for (size_t i = 2; i < n; i++) {
    const double dx = static_cast<double>(keys[i] - base.x);
    const double dy = static_cast<double>(i) - static_cast<double>(base.y);
    const double slope = dy / dx;
    if (slope < slope_lo || slope > slope_hi) {
      // The line base->keys[i] would leave the corridor: emit `prev` as a
      // spline point and restart the corridor from it.
      points.push_back(prev);
      base = prev;
      const double ndx = static_cast<double>(keys[i] - base.x);
      const double ndy = static_cast<double>(i) - static_cast<double>(base.y);
      slope_lo = (ndy - eps) / ndx;
      slope_hi = (ndy + eps) / ndx;
    } else {
      slope_lo = std::max(slope_lo, (dy - eps) / dx);
      slope_hi = std::min(slope_hi, (dy + eps) / dx);
    }
    prev = SplinePoint{keys[i], i};
  }
  points.push_back(prev);  // the last key is always a spline point
  return points;
}

double InterpolateSpline(const std::vector<SplinePoint>& points, size_t i,
                         Key key) {
  assert(i + 1 < points.size());
  const SplinePoint& a = points[i];
  const SplinePoint& b = points[i + 1];
  if (key <= a.x) return static_cast<double>(a.y);
  if (key >= b.x) return static_cast<double>(b.y);
  const double frac = static_cast<double>(key - a.x) /
                      static_cast<double>(b.x - a.x);
  return static_cast<double>(a.y) +
         frac * static_cast<double>(b.y - a.y);
}

size_t FindSplineSegment(const std::vector<SplinePoint>& points, Key key) {
  assert(points.size() >= 2);
  auto it = std::upper_bound(
      points.begin(), points.end(), key,
      [](Key k, const SplinePoint& p) { return k < p.x; });
  size_t i = (it == points.begin())
                 ? 0
                 : static_cast<size_t>(it - points.begin()) - 1;
  return std::min(i, points.size() - 2);
}

void EncodeSplinePoints(const std::vector<SplinePoint>& points,
                        std::string* dst) {
  PutVarint64(dst, points.size());
  for (const SplinePoint& p : points) {
    PutFixed64(dst, p.x);
    PutVarint64(dst, p.y);
  }
}

Status DecodeSplinePoints(Slice* input, std::vector<SplinePoint>* points) {
  uint64_t count = 0;
  if (!GetVarint64(input, &count)) {
    return Status::Corruption("spline: bad count");
  }
  points->clear();
  points->reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    SplinePoint p;
    if (!GetFixed64(input, &p.x) || !GetVarint64(input, &p.y)) {
      return Status::Corruption("spline: truncated");
    }
    points->push_back(p);
  }
  return Status::OK();
}

}  // namespace lilsm
