#include "index/fitting_tree.h"

#include <algorithm>

#include "index/segment_io.h"

namespace lilsm {

Status FitingTreeIndex::Build(const Key* keys, size_t n,
                              const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  fanout_ = std::max<uint32_t>(2, config.btree_fanout);
  n_ = n;
  segments_ = GreedyPla(keys, n, epsilon_);
  RebuildTree();
  return Status::OK();
}

void FitingTreeIndex::RebuildTree() {
  std::vector<Key> segment_keys;
  segment_keys.reserve(segments_.size());
  for (const LinearSegment& seg : segments_) {
    segment_keys.push_back(seg.first_key);
  }
  tree_.BulkLoad(segment_keys, fanout_);
}

PredictResult FitingTreeIndex::Predict(Key key) const {
  if (n_ == 0 || segments_.empty()) return PredictResult{};
  const LinearSegment& seg = segments_[tree_.Find(key)];
  const Key anchored = key < seg.first_key ? seg.first_key : key;
  return ClampPrediction(seg.PredictF(anchored), n_, epsilon_);
}

bool FitingTreeIndex::ExportSegments(std::vector<LinearSegment>* out,
                                     uint32_t* epsilon) const {
  out->insert(out->end(), segments_.begin(), segments_.end());
  *epsilon = epsilon_;
  return true;
}

Status FitingTreeIndex::BuildFromSegments(std::vector<LinearSegment> segments,
                                          size_t n,
                                          const IndexConfig& config) {
  Status s = CheckStitchableSegments(segments, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  fanout_ = std::max<uint32_t>(2, config.btree_fanout);
  n_ = n;
  segments_ = std::move(segments);
  RebuildTree();
  return Status::OK();
}

size_t FitingTreeIndex::MemoryUsage() const {
  return sizeof(*this) + segments_.capacity() * sizeof(LinearSegment) +
         tree_.MemoryUsage();
}

void FitingTreeIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_);
  PutVarint32(dst, fanout_);
  EncodeSegments(segments_, dst);
}

Status FitingTreeIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0;
  uint32_t epsilon = 0, fanout = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon) ||
      !GetVarint32(input, &fanout) || fanout < 2) {
    return Status::Corruption("fiting-tree index: bad header");
  }
  Status s = DecodeSegments(input, &segments_);
  if (!s.ok()) return s;
  n_ = n;
  epsilon_ = epsilon;
  fanout_ = fanout;
  RebuildTree();
  return Status::OK();
}

}  // namespace lilsm
