// SegmentBTree: a bulk-loaded in-memory B+-tree mapping keys to the index
// of the last entry <= key. FITing-Tree uses it as the inner index over
// segment first-keys (paper Figure 2B); the extra pointer structure is what
// gives FITing-Tree its higher memory footprint relative to PLR's plain
// sorted array.
#ifndef LILSM_INDEX_BPLUS_TREE_H_
#define LILSM_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <vector>

#include "index/index.h"

namespace lilsm {

class SegmentBTree {
 public:
  /// Builds the tree over strictly increasing `keys`; value of keys[i] is i.
  /// fanout must be >= 2.
  void BulkLoad(const std::vector<Key>& keys, uint32_t fanout);

  /// Index of the last key <= `key`; 0 if `key` precedes all keys.
  /// Valid only after BulkLoad with a non-empty key set.
  size_t Find(Key key) const;

  size_t MemoryUsage() const;
  size_t height() const { return height_; }
  bool empty() const { return nodes_.empty(); }
  void Clear();

 private:
  struct Node {
    std::vector<Key> keys;
    // Internal nodes: children[i] is the node id for keys[i].
    // Leaves: children is empty; value = first_value + offset.
    std::vector<uint32_t> children;
    uint64_t first_value = 0;
    bool leaf = false;
  };

  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t height_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_BPLUS_TREE_H_
