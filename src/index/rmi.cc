#include "index/rmi.h"

#include <algorithm>
#include <cmath>

#include "index/segment_io.h"

namespace lilsm {

namespace {

/// Least-squares fit of y = slope * x + intercept over (xs[i], i + y0).
/// Mean-centered accumulation keeps the fit stable for 64-bit keys.
void FitLinear(const Key* xs, size_t n, double y0, double* slope,
               double* intercept) {
  if (n == 0) {
    *slope = 0;
    *intercept = y0;
    return;
  }
  if (n == 1) {
    *slope = 0;
    *intercept = y0;
    return;
  }
  long double mean_x = 0, mean_y = 0;
  for (size_t i = 0; i < n; i++) {
    mean_x += static_cast<long double>(xs[i]);
    mean_y += static_cast<long double>(y0) + i;
  }
  mean_x /= n;
  mean_y /= n;
  long double sxy = 0, sxx = 0;
  for (size_t i = 0; i < n; i++) {
    const long double dx = static_cast<long double>(xs[i]) - mean_x;
    const long double dy =
        (static_cast<long double>(y0) + i) - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
  }
  if (sxx == 0) {
    *slope = 0;
    *intercept = static_cast<double>(mean_y);
    return;
  }
  *slope = static_cast<double>(sxy / sxx);
  *intercept = static_cast<double>(mean_y - (sxy / sxx) * mean_x);
}

}  // namespace

size_t RmiIndex::LeafFor(Key key) const {
  const double p = root_.Predict(static_cast<double>(key));
  const double scaled =
      p * static_cast<double>(leaves_.size()) / static_cast<double>(n_);
  if (scaled <= 0) return 0;
  const size_t leaf = static_cast<size_t>(scaled);
  return std::min(leaf, leaves_.size() - 1);
}

void RmiIndex::TrainWithLeafCount(const Key* keys, size_t n,
                                  size_t leaf_count) {
  leaves_.assign(leaf_count, Leaf{});
  n_ = n;

  FitLinear(keys, n, 0.0, &root_.slope, &root_.intercept);
  // A least-squares fit over increasing data has non-negative slope, so
  // leaf assignment below is monotone and ranges are contiguous.

  size_t start = 0;
  for (size_t leaf_id = 0; leaf_id < leaf_count; leaf_id++) {
    // Keys routed to this leaf form the contiguous range [start, end).
    size_t end = start;
    while (end < n && LeafFor(keys[end]) == leaf_id) end++;

    Leaf& leaf = leaves_[leaf_id];
    if (end == start) {
      // Empty leaf: constant model at the boundary position.
      leaf.model.slope = 0;
      leaf.model.intercept = static_cast<double>(start);
      leaf.err_lo = 0;
      leaf.err_hi = 0;
    } else {
      FitLinear(keys + start, end - start, static_cast<double>(start),
                &leaf.model.slope, &leaf.model.intercept);
      int64_t err_lo = 0, err_hi = 0;
      for (size_t i = start; i < end; i++) {
        double pred = leaf.model.Predict(static_cast<double>(keys[i]));
        if (pred < 0) pred = 0;
        const double max_pos = static_cast<double>(n - 1);
        if (pred > max_pos) pred = max_pos;
        const int64_t diff =
            static_cast<int64_t>(i) - static_cast<int64_t>(pred);
        err_lo = std::min(err_lo, diff);
        err_hi = std::max(err_hi, diff);
      }
      leaf.err_lo = static_cast<int32_t>(err_lo);
      leaf.err_hi = static_cast<int32_t>(err_hi);
    }
    start = end;
  }
}

Status RmiIndex::Build(const Key* keys, size_t n, const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_target_ = std::max<uint32_t>(1, config.epsilon);
  n_ = n;
  leaves_.clear();
  if (n == 0) return Status::OK();

  if (config.rmi_leaf_models > 0) {
    TrainWithLeafCount(keys, n, std::min<size_t>(config.rmi_leaf_models, n));
    return Status::OK();
  }

  // Derive the second-level size from the epsilon target: start with leaves
  // covering ~4*epsilon keys (smooth data usually lands well below the
  // target) and double until the p90 leaf error window fits, mirroring how
  // the paper tunes RMI by growing the second level.
  size_t leaf_count = std::max<size_t>(
      1, n / std::max<size_t>(1, 4 * static_cast<size_t>(epsilon_target_)));
  for (int round = 0; round < 6; round++) {
    TrainWithLeafCount(keys, n, std::min(leaf_count, n));
    // p90 of per-leaf half-window.
    std::vector<int64_t> half_windows;
    half_windows.reserve(leaves_.size());
    for (const Leaf& leaf : leaves_) {
      half_windows.push_back(
          std::max<int64_t>(-leaf.err_lo, leaf.err_hi));
    }
    std::nth_element(half_windows.begin(),
                     half_windows.begin() + half_windows.size() * 9 / 10,
                     half_windows.end());
    const int64_t p90 = half_windows[half_windows.size() * 9 / 10];
    if (p90 <= static_cast<int64_t>(epsilon_target_) || leaf_count >= n) {
      break;
    }
    leaf_count *= 2;
  }
  return Status::OK();
}

PredictResult RmiIndex::Predict(Key key) const {
  PredictResult r;
  if (n_ == 0 || leaves_.empty()) return r;
  const Leaf& leaf = leaves_[LeafFor(key)];
  double pred = leaf.model.Predict(static_cast<double>(key));
  if (pred < 0) pred = 0;
  const double max_pos = static_cast<double>(n_ - 1);
  if (pred > max_pos) pred = max_pos;
  const size_t pos = static_cast<size_t>(pred);
  const int64_t lo64 = static_cast<int64_t>(pos) + leaf.err_lo;
  const int64_t hi64 = static_cast<int64_t>(pos) + leaf.err_hi + 1;
  r.pos = pos;
  r.lo = lo64 < 0 ? 0 : std::min<size_t>(static_cast<size_t>(lo64), n_ - 1);
  r.hi = hi64 < 0 ? 0 : std::min<size_t>(static_cast<size_t>(hi64), n_ - 1);
  if (r.lo > r.hi) std::swap(r.lo, r.hi);
  r.pos = std::clamp(r.pos, r.lo, r.hi);
  return r;
}

double RmiIndex::MeanErrorWindow() const {
  if (leaves_.empty()) return 0;
  double total = 0;
  for (const Leaf& leaf : leaves_) {
    total += static_cast<double>(leaf.err_hi - leaf.err_lo + 1);
  }
  return total / static_cast<double>(leaves_.size());
}

size_t RmiIndex::MaxErrorWindow() const {
  size_t max_window = 0;
  for (const Leaf& leaf : leaves_) {
    max_window = std::max<size_t>(
        max_window, static_cast<size_t>(leaf.err_hi - leaf.err_lo + 1));
  }
  return max_window;
}

size_t RmiIndex::MemoryUsage() const {
  return sizeof(*this) + leaves_.capacity() * sizeof(Leaf);
}

void RmiIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_target_);
  PutDouble(dst, root_.slope);
  PutDouble(dst, root_.intercept);
  PutVarint64(dst, leaves_.size());
  for (const Leaf& leaf : leaves_) {
    PutDouble(dst, leaf.model.slope);
    PutDouble(dst, leaf.model.intercept);
    PutFixed32(dst, static_cast<uint32_t>(leaf.err_lo));
    PutFixed32(dst, static_cast<uint32_t>(leaf.err_hi));
  }
}

Status RmiIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0, leaf_count = 0;
  uint32_t epsilon_target = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon_target) ||
      !GetDouble(input, &root_.slope) || !GetDouble(input, &root_.intercept) ||
      !GetVarint64(input, &leaf_count)) {
    return Status::Corruption("rmi index: bad header");
  }
  leaves_.clear();
  leaves_.reserve(leaf_count);
  for (uint64_t i = 0; i < leaf_count; i++) {
    Leaf leaf;
    uint32_t lo = 0, hi = 0;
    if (!GetDouble(input, &leaf.model.slope) ||
        !GetDouble(input, &leaf.model.intercept) || !GetFixed32(input, &lo) ||
        !GetFixed32(input, &hi)) {
      return Status::Corruption("rmi index: truncated");
    }
    leaf.err_lo = static_cast<int32_t>(lo);
    leaf.err_hi = static_cast<int32_t>(hi);
    leaves_.push_back(leaf);
  }
  n_ = n;
  epsilon_target_ = epsilon_target;
  return Status::OK();
}

}  // namespace lilsm
