// FencePointerIndex: the traditional LSM-tree index (paper Figure 1B).
// Stores the smallest key of every position-boundary-sized range; lookups
// binary-search the stored keys. This is the baseline every learned index
// is compared against ("FP" in the paper's figures).
#ifndef LILSM_INDEX_FENCE_H_
#define LILSM_INDEX_FENCE_H_

#include <vector>

#include "index/index.h"

namespace lilsm {

class FencePointerIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kFencePointer; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override { return fences_.size(); }
  size_t MemoryUsage() const override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

 private:
  std::vector<Key> fences_;  // fences_[i] = keys[i * step_]
  uint32_t step_ = 1;        // entries per fence == position boundary
  uint32_t stored_key_bytes_ = 24;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_FENCE_H_
