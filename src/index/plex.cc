#include "index/plex.h"

#include <algorithm>
#include <bit>

#include "index/segment_io.h"

namespace lilsm {

Status PlexIndex::Build(const Key* keys, size_t n, const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  leaf_threshold_ = std::max<uint32_t>(2, config.plex_leaf_threshold);
  n_ = n;
  points_ = BuildSplineCorridor(keys, n, epsilon_);
  BuildHistTree();
  return Status::OK();
}

void PlexIndex::BuildHistTree() {
  nodes_.clear();
  root_ = -1;
  if (points_.size() <= 1) return;
  const Key min_key = points_.front().x;
  const Key range = points_.back().x - min_key;
  const uint32_t span_bits =
      range == 0 ? 1 : 64 - static_cast<uint32_t>(std::countl_zero(range));
  root_ = BuildNode(0, points_.size(), min_key, span_bits);
}

int32_t PlexIndex::BuildNode(size_t lo, size_t hi, Key base,
                             uint32_t span_bits) {
  const size_t count = hi - lo;
  if (count <= leaf_threshold_ || span_bits == 0) {
    return -1;
  }

  // Self-tuning fanout: enough bins that an average bin holds roughly
  // leaf_threshold points, bounded by the remaining key span.
  uint32_t bits = static_cast<uint32_t>(
      std::bit_width(count / static_cast<size_t>(leaf_threshold_)));
  bits = std::min(bits, span_bits);
  bits = std::min<uint32_t>(bits, 16);
  bits = std::max<uint32_t>(bits, 1);
  const uint32_t shift = span_bits - bits;
  const size_t num_bins = size_t{1} << bits;

  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    HistNode& node = nodes_.back();
    node.base = base;
    node.shift = shift;
    node.child.assign(num_bins, -1);
    node.bin_start.assign(num_bins + 1, 0);
  }

  // Partition [lo, hi) by bin; points are sorted so bins are contiguous.
  std::vector<uint32_t> bin_start(num_bins + 1, 0);
  {
    size_t i = lo;
    for (size_t b = 0; b < num_bins; b++) {
      bin_start[b] = static_cast<uint32_t>(i);
      while (i < hi &&
             ((points_[i].x - base) >> shift) == static_cast<Key>(b)) {
        i++;
      }
    }
    bin_start[num_bins] = static_cast<uint32_t>(hi);
  }

  for (size_t b = 0; b < num_bins; b++) {
    const size_t bin_lo = bin_start[b];
    const size_t bin_hi = bin_start[b + 1];
    if (bin_hi - bin_lo > leaf_threshold_) {
      const Key child_base = base + (static_cast<Key>(b) << shift);
      // Note: BuildNode may reallocate nodes_, so write through the id.
      int32_t child = BuildNode(bin_lo, bin_hi, child_base, shift);
      nodes_[node_id].child[b] = child;
    }
  }
  nodes_[node_id].bin_start = std::move(bin_start);
  return node_id;
}

PredictResult PlexIndex::Predict(Key key) const {
  if (n_ == 0 || points_.empty()) return PredictResult{};
  if (points_.size() == 1 || key <= points_.front().x) {
    return ClampPrediction(0.0, n_, epsilon_);
  }
  if (key >= points_.back().x) {
    return ClampPrediction(static_cast<double>(points_.back().y), n_,
                           epsilon_);
  }

  size_t search_lo = 0;
  size_t search_hi = points_.size();
  int32_t node_id = root_;
  while (node_id >= 0) {
    const HistNode& node = nodes_[node_id];
    const size_t num_bins = node.child.size();
    size_t b = static_cast<size_t>((key - node.base) >> node.shift);
    if (b >= num_bins) b = num_bins - 1;
    search_lo = node.bin_start[b];
    // +1: the first spline point with x >= key may be the first point of
    // the next bin (same reasoning as the radix table upper bound).
    search_hi = std::min<size_t>(points_.size(), node.bin_start[b + 1] + 1);
    node_id = node.child[b];
  }

  auto it = std::lower_bound(
      points_.begin() + search_lo, points_.begin() + search_hi, key,
      [](const SplinePoint& p, Key k) { return p.x < k; });
  size_t upper = static_cast<size_t>(it - points_.begin());
  if (upper == 0) upper = 1;
  const size_t seg = upper - 1;
  return ClampPrediction(InterpolateSpline(points_, seg, key), n_, epsilon_);
}

size_t PlexIndex::TreeHeight() const {
  if (root_ < 0) return 0;
  // Iterative depth computation over the child arrays.
  size_t max_depth = 1;
  std::vector<std::pair<int32_t, size_t>> stack{{root_, 1}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (int32_t child : nodes_[id].child) {
      if (child >= 0) stack.emplace_back(child, depth + 1);
    }
  }
  return max_depth;
}

size_t PlexIndex::MemoryUsage() const {
  size_t total = sizeof(*this) + points_.capacity() * sizeof(SplinePoint) +
                 nodes_.capacity() * sizeof(HistNode);
  for (const HistNode& node : nodes_) {
    total += node.child.capacity() * sizeof(int32_t);
    total += node.bin_start.capacity() * sizeof(uint32_t);
  }
  return total;
}

void PlexIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_);
  PutVarint32(dst, leaf_threshold_);
  EncodeSplinePoints(points_, dst);
}

Status PlexIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0;
  uint32_t epsilon = 0, leaf_threshold = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon) ||
      !GetVarint32(input, &leaf_threshold) || leaf_threshold < 2) {
    return Status::Corruption("plex index: bad header");
  }
  Status s = DecodeSplinePoints(input, &points_);
  if (!s.ok()) return s;
  n_ = n;
  epsilon_ = epsilon;
  leaf_threshold_ = leaf_threshold;
  BuildHistTree();
  return Status::OK();
}

}  // namespace lilsm
