// Piecewise linear approximation (PLA) builders shared by the learned
// indexes:
//
//  * GreedyPla — the shrinking-cone algorithm used by Bourbon's PLR and by
//    FITing-Tree: anchor a segment at its first point and narrow the
//    feasible slope cone point by point.
//  * OptimalPla — the streaming convex-hull algorithm of the PGM-index
//    (O'Rourke's feasibility test): produces the provably minimum number of
//    epsilon-bounded segments in a single left-to-right pass.
//
// Both guarantee |predicted(keys[i]) - i| <= epsilon for every indexed key.
#ifndef LILSM_INDEX_PLA_H_
#define LILSM_INDEX_PLA_H_

#include <cstdint>
#include <vector>

#include "index/index.h"

namespace lilsm {

/// One epsilon-bounded linear segment: position(key) ~= slope * (key -
/// first_key) + intercept for keys in [first_key, next segment's first_key).
struct LinearSegment {
  Key first_key = 0;
  double slope = 0.0;
  double intercept = 0.0;

  double PredictF(Key key) const {
    return slope * static_cast<double>(key - first_key) + intercept;
  }
};

/// Greedy shrinking-cone segmentation (PLR / FITing-Tree).
std::vector<LinearSegment> GreedyPla(const Key* keys, size_t n,
                                     uint32_t epsilon);

/// Optimal streaming segmentation (PGM). `positions` may be null, in which
/// case position i is used for keys[i]; PGM's recursive levels pass
/// explicit positions when indexing segment keys.
std::vector<LinearSegment> OptimalPla(const Key* keys, size_t n,
                                      uint32_t epsilon);

/// Streaming optimal PLA over arbitrary (x, y) pairs with strictly
/// increasing x. Used directly by PGM's recursive construction.
class OptimalPlaBuilder {
 public:
  explicit OptimalPlaBuilder(uint32_t epsilon);

  /// Tries to extend the current segment with (x, y). Returns false when
  /// the point cannot be covered: the caller must take Finish(), then
  /// start a new segment (the same point is accepted afterwards).
  bool AddPoint(Key x, int64_t y);

  /// Closes the current segment. Valid when at least one point was added
  /// since the last Finish().
  LinearSegment Finish();

  bool has_points() const { return points_in_hull_ > 0; }

 private:
  struct P {
    __int128 x;
    __int128 y;
  };

  static __int128 Cross(const P& o, const P& a, const P& b) {
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
  }

  // Slope comparison by cross-multiplication, replicating the PGM-index
  // convention: vectors compared together always share a dx sign.
  struct V {
    __int128 dx;
    __int128 dy;
    bool operator<(const V& o) const { return dy * o.dx < o.dy * dx; }
    bool operator>(const V& o) const { return dy * o.dx > o.dy * dx; }
    bool operator==(const V& o) const { return dy * o.dx == o.dy * dx; }
  };

  static V Sub(const P& a, const P& b) { return V{a.x - b.x, a.y - b.y}; }

  const int64_t epsilon_;
  size_t points_in_hull_ = 0;
  P rect_[4] = {};
  std::vector<P> lower_;
  std::vector<P> upper_;
  size_t lower_start_ = 0;
  size_t upper_start_ = 0;
  Key first_x_ = 0;
  Key last_x_ = 0;
};

/// Greedy shrinking-cone counterpart usable in streaming form.
class GreedyPlaBuilder {
 public:
  explicit GreedyPlaBuilder(uint32_t epsilon) : epsilon_(epsilon) {}

  bool AddPoint(Key x, int64_t y);
  LinearSegment Finish();
  bool has_points() const { return count_ > 0; }

 private:
  const double epsilon_;
  size_t count_ = 0;
  Key first_x_ = 0;
  double first_y_ = 0;
  Key last_x_ = 0;
  double slope_lo_ = 0;
  double slope_hi_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_PLA_H_
