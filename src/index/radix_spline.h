// RadixSplineIndex (paper Figure 2D): greedy spline corridor over the data
// plus a flat radix table mapping key prefixes to spline-point ranges.
// RadixBits defaults to 1, the value the paper finds best in LSM-trees.
#ifndef LILSM_INDEX_RADIX_SPLINE_H_
#define LILSM_INDEX_RADIX_SPLINE_H_

#include <vector>

#include "index/spline.h"

namespace lilsm {

class RadixSplineIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kRadixSpline; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override {
    return points_.empty() ? 0 : points_.size() - 1;
  }
  size_t MemoryUsage() const override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

 private:
  void RebuildRadixTable();

  std::vector<SplinePoint> points_;
  std::vector<uint32_t> radix_table_;  // prefix -> first spline idx >= prefix
  uint32_t radix_bits_ = 1;
  uint32_t shift_ = 0;
  Key min_key_ = 0;
  uint32_t epsilon_ = 0;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_RADIX_SPLINE_H_
