// The unified learned-index interface of the testbed (paper Section 4).
//
// Every index is built over a strictly increasing array of u64 keys and
// answers Predict(key) with a position estimate plus an inclusive [lo, hi]
// range guaranteed to contain the true position if the key is present.
// The range width is the paper's "position boundary" (2 * epsilon).
//
// Seven implementations are provided, matching the paper's six
// LSM-compatible learned indexes plus the traditional fence-pointer
// baseline:
//   FencePointer, PLR, FITing-Tree, PGM, RadixSpline, PLEX, RMI.
#ifndef LILSM_INDEX_INDEX_H_
#define LILSM_INDEX_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

/// Learned indexes operate on unsigned 64-bit keys; the storage layer maps
/// its fixed-width big-endian user keys to/from this type losslessly.
using Key = uint64_t;

enum class IndexType : uint8_t {
  kFencePointer = 0,
  kPLR = 1,
  kFITingTree = 2,
  kPGM = 3,
  kRadixSpline = 4,
  kPLEX = 5,
  kRMI = 6,
};

inline constexpr IndexType kAllIndexTypes[] = {
    IndexType::kFencePointer, IndexType::kPLR,  IndexType::kFITingTree,
    IndexType::kPGM,          IndexType::kRadixSpline,
    IndexType::kPLEX,         IndexType::kRMI,
};

/// Short display name used in benchmark output ("FP", "PGM", ...).
const char* IndexTypeName(IndexType type);
/// Parses both short and long spellings; returns false on unknown names.
bool ParseIndexType(const std::string& name, IndexType* type);

/// Tuning knobs for all index types; unknown knobs are ignored by types
/// they do not apply to (paper Section 4.1: the unified configuration
/// space keys on epsilon; the rest are per-type structure parameters).
struct IndexConfig {
  /// Error bound: predictions are within +-epsilon entries, so the
  /// position boundary is 2 * epsilon.
  uint32_t epsilon = 32;
  /// PGM: error bound of the recursive internal levels (paper default 4).
  uint32_t epsilon_recursive = 4;
  /// RadixSpline: number of radix-table prefix bits (paper default 1).
  uint32_t radix_bits = 1;
  /// FITing-Tree: B+-tree fanout over segments.
  uint32_t btree_fanout = 16;
  /// PLEX: maximum spline points scanned in a hist-tree leaf before the
  /// node splits further (its self-tuning threshold).
  uint32_t plex_leaf_threshold = 16;
  /// RMI: number of second-level models; 0 derives it from epsilon and n
  /// so that RMI lands near the requested position boundary.
  uint32_t rmi_leaf_models = 0;
  /// Width of the stored user keys. Fence pointers must retain the raw key
  /// bytes (the paper uses 24-byte keys), whereas learned models keep only
  /// their numeric interpretation; this drives FP's memory accounting.
  uint32_t stored_key_bytes = 24;

  /// Convenience: the paper's "position boundary" view of epsilon.
  uint32_t position_boundary() const { return 2 * epsilon; }
  static IndexConfig FromPositionBoundary(uint32_t boundary) {
    IndexConfig cfg;
    cfg.epsilon = boundary < 2 ? 1 : boundary / 2;
    return cfg;
  }
};

/// Result of a position prediction. Bounds are inclusive and clamped to
/// [0, n-1]; if the key exists its position is in [lo, hi].
struct PredictResult {
  size_t pos = 0;
  size_t lo = 0;
  size_t hi = 0;

  size_t width() const { return hi - lo + 1; }
};

struct LinearSegment;

class LearnedIndex {
 public:
  virtual ~LearnedIndex() = default;

  virtual IndexType type() const = 0;

  /// Trains the index over `n` strictly increasing keys. Replaces any
  /// previous state. Returns InvalidArgument on unsorted/duplicate input.
  virtual Status Build(const Key* keys, size_t n,
                       const IndexConfig& config) = 0;

  /// Predicts the position of `key`. Valid only after a successful Build
  /// (or DecodeFrom) with n > 0.
  virtual PredictResult Predict(Key key) const = 0;

  /// Number of keys the index was built over.
  virtual size_t num_keys() const = 0;

  /// Number of leaf segments / spline intervals / leaf models: the unit
  /// whose metadata dominates index memory (paper Section 5.2).
  virtual size_t SegmentCount() const = 0;

  /// In-memory footprint in bytes of the query-time structure.
  virtual size_t MemoryUsage() const = 0;

  /// Appends the leaf epsilon-bounded linear segments (positions local to
  /// this index's key array) to *out in first_key order and stores the
  /// error bound they were trained under in *epsilon (a consumer adopting
  /// the segments must predict with at least that bound). Returns false
  /// for types whose leaves are not LinearSegments (RMI, splines, fences)
  /// — those cannot feed segment stitching and callers fall back to a
  /// full retrain. Default: false.
  virtual bool ExportSegments(std::vector<LinearSegment>* out,
                              uint32_t* epsilon) const;

  /// Adopts pre-trained leaf segments covering positions [0, n) instead of
  /// re-segmenting raw keys — the ModelCatalog's O(segments) stitch path.
  /// Segments must be epsilon-bounded under `config` with strictly
  /// increasing first keys; only the inner structure (recursive levels,
  /// B+-tree) is rebuilt. NotSupported for types that cannot represent
  /// foreign segments. Default: NotSupported.
  virtual Status BuildFromSegments(std::vector<LinearSegment> segments,
                                   size_t n, const IndexConfig& config);

  /// Serializes the trained structure (without the keys).
  virtual void EncodeTo(std::string* dst) const = 0;
  /// Restores a structure produced by EncodeTo; consumes from `input`.
  virtual Status DecodeFrom(Slice* input) = 0;

  const char* Name() const { return IndexTypeName(type()); }
};

/// Creates an empty (untrained) index of the given type.
std::unique_ptr<LearnedIndex> CreateIndex(IndexType type);

/// Envelope serialization: a type tag followed by EncodeTo payload, so a
/// table file can be opened without knowing its index type in advance.
void EncodeIndexWithType(const LearnedIndex& index, std::string* dst);
Status DecodeIndexWithType(Slice* input,
                           std::unique_ptr<LearnedIndex>* result);

/// Shared validation used by all Build implementations.
Status CheckStrictlyIncreasing(const Key* keys, size_t n);

/// Shared validation used by the BuildFromSegments implementations:
/// non-empty iff n > 0, strictly increasing first keys.
Status CheckStitchableSegments(const std::vector<LinearSegment>& segments,
                               size_t n);

}  // namespace lilsm

#endif  // LILSM_INDEX_INDEX_H_
