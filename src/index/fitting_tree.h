// FitingTreeIndex: greedy shrinking-cone segments indexed by an in-memory
// B+-tree (paper Figure 2B). Same segmentation as PLR; the inner index
// trades memory for segment-lookup speed.
#ifndef LILSM_INDEX_FITTING_TREE_H_
#define LILSM_INDEX_FITTING_TREE_H_

#include <vector>

#include "index/bplus_tree.h"
#include "index/pla.h"

namespace lilsm {

class FitingTreeIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kFITingTree; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override { return segments_.size(); }
  size_t MemoryUsage() const override;
  bool ExportSegments(std::vector<LinearSegment>* out,
                      uint32_t* epsilon) const override;
  Status BuildFromSegments(std::vector<LinearSegment> segments, size_t n,
                           const IndexConfig& config) override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

 private:
  void RebuildTree();

  std::vector<LinearSegment> segments_;
  SegmentBTree tree_;
  uint32_t epsilon_ = 0;
  uint32_t fanout_ = 16;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_FITTING_TREE_H_
