#include "index/radix_spline.h"

#include <algorithm>
#include <bit>

#include "index/segment_io.h"

namespace lilsm {

Status RadixSplineIndex::Build(const Key* keys, size_t n,
                               const IndexConfig& config) {
  Status s = CheckStrictlyIncreasing(keys, n);
  if (!s.ok()) return s;
  epsilon_ = std::max<uint32_t>(1, config.epsilon);
  radix_bits_ = std::min<uint32_t>(24, std::max<uint32_t>(1, config.radix_bits));
  n_ = n;
  points_ = BuildSplineCorridor(keys, n, epsilon_);
  RebuildRadixTable();
  return Status::OK();
}

void RadixSplineIndex::RebuildRadixTable() {
  radix_table_.clear();
  if (points_.empty()) return;
  min_key_ = points_.front().x;
  const Key range = points_.back().x - min_key_;
  const uint32_t range_bits =
      range == 0 ? 1 : 64 - static_cast<uint32_t>(std::countl_zero(range));
  shift_ = range_bits > radix_bits_ ? range_bits - radix_bits_ : 0;

  const size_t table_size = (size_t{1} << radix_bits_) + 2;
  radix_table_.assign(table_size, static_cast<uint32_t>(points_.size()));
  // radix_table_[p] = first spline index whose prefix >= p.
  size_t prev_prefix = 0;
  radix_table_[0] = 0;
  for (size_t i = 0; i < points_.size(); i++) {
    const size_t prefix =
        static_cast<size_t>((points_[i].x - min_key_) >> shift_);
    for (size_t p = prev_prefix + 1; p <= prefix; p++) {
      radix_table_[p] = static_cast<uint32_t>(i);
    }
    prev_prefix = prefix;
  }
  for (size_t p = prev_prefix + 1; p < table_size; p++) {
    radix_table_[p] = static_cast<uint32_t>(points_.size());
  }
}

PredictResult RadixSplineIndex::Predict(Key key) const {
  if (n_ == 0 || points_.empty()) return PredictResult{};
  if (points_.size() == 1 || key <= points_.front().x) {
    return ClampPrediction(0.0, n_, epsilon_);
  }
  if (key >= points_.back().x) {
    return ClampPrediction(static_cast<double>(points_.back().y), n_,
                           epsilon_);
  }

  const size_t prefix = static_cast<size_t>((key - min_key_) >> shift_);
  const size_t begin = radix_table_[prefix];
  const size_t end =
      std::min<size_t>(points_.size(), radix_table_[prefix + 1] + 1);
  // First spline point with x >= key lies in [begin, end).
  auto it = std::lower_bound(
      points_.begin() + begin, points_.begin() + end, key,
      [](const SplinePoint& p, Key k) { return p.x < k; });
  size_t upper = static_cast<size_t>(it - points_.begin());
  if (upper == 0) upper = 1;
  const size_t seg = upper - 1;
  return ClampPrediction(InterpolateSpline(points_, seg, key), n_, epsilon_);
}

size_t RadixSplineIndex::MemoryUsage() const {
  return sizeof(*this) + points_.capacity() * sizeof(SplinePoint) +
         radix_table_.capacity() * sizeof(uint32_t);
}

void RadixSplineIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, n_);
  PutVarint32(dst, epsilon_);
  PutVarint32(dst, radix_bits_);
  EncodeSplinePoints(points_, dst);
}

Status RadixSplineIndex::DecodeFrom(Slice* input) {
  uint64_t n = 0;
  uint32_t epsilon = 0, radix_bits = 0;
  if (!GetVarint64(input, &n) || !GetVarint32(input, &epsilon) ||
      !GetVarint32(input, &radix_bits) || radix_bits == 0 ||
      radix_bits > 24) {
    return Status::Corruption("radix-spline index: bad header");
  }
  Status s = DecodeSplinePoints(input, &points_);
  if (!s.ok()) return s;
  n_ = n;
  epsilon_ = epsilon;
  radix_bits_ = radix_bits;
  RebuildRadixTable();
  return Status::OK();
}

}  // namespace lilsm
