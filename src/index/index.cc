#include "index/index.h"

#include "index/fence.h"
#include "index/fitting_tree.h"
#include "index/pgm.h"
#include "index/plex.h"
#include "index/plr.h"
#include "index/radix_spline.h"
#include "index/rmi.h"
#include "util/coding.h"

namespace lilsm {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kFencePointer:
      return "FP";
    case IndexType::kPLR:
      return "PLR";
    case IndexType::kFITingTree:
      return "FT";
    case IndexType::kPGM:
      return "PGM";
    case IndexType::kRadixSpline:
      return "RS";
    case IndexType::kPLEX:
      return "PLEX";
    case IndexType::kRMI:
      return "RMI";
  }
  return "unknown";
}

bool ParseIndexType(const std::string& name, IndexType* type) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "fp" || lower == "fence" || lower == "fencepointer") {
    *type = IndexType::kFencePointer;
  } else if (lower == "plr") {
    *type = IndexType::kPLR;
  } else if (lower == "ft" || lower == "fiting-tree" || lower == "fitingtree" ||
             lower == "fitting-tree" || lower == "fittingtree") {
    *type = IndexType::kFITingTree;
  } else if (lower == "pgm") {
    *type = IndexType::kPGM;
  } else if (lower == "rs" || lower == "radixspline") {
    *type = IndexType::kRadixSpline;
  } else if (lower == "plex") {
    *type = IndexType::kPLEX;
  } else if (lower == "rmi") {
    *type = IndexType::kRMI;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<LearnedIndex> CreateIndex(IndexType type) {
  switch (type) {
    case IndexType::kFencePointer:
      return std::make_unique<FencePointerIndex>();
    case IndexType::kPLR:
      return std::make_unique<PlrIndex>();
    case IndexType::kFITingTree:
      return std::make_unique<FitingTreeIndex>();
    case IndexType::kPGM:
      return std::make_unique<PgmIndex>();
    case IndexType::kRadixSpline:
      return std::make_unique<RadixSplineIndex>();
    case IndexType::kPLEX:
      return std::make_unique<PlexIndex>();
    case IndexType::kRMI:
      return std::make_unique<RmiIndex>();
  }
  return nullptr;
}

void EncodeIndexWithType(const LearnedIndex& index, std::string* dst) {
  dst->push_back(static_cast<char>(index.type()));
  index.EncodeTo(dst);
}

Status DecodeIndexWithType(Slice* input,
                           std::unique_ptr<LearnedIndex>* result) {
  if (input->empty()) {
    return Status::Corruption("index blob: empty");
  }
  uint8_t tag = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  if (tag > static_cast<uint8_t>(IndexType::kRMI)) {
    return Status::Corruption("index blob: unknown index type tag");
  }
  auto index = CreateIndex(static_cast<IndexType>(tag));
  Status s = index->DecodeFrom(input);
  if (!s.ok()) return s;
  *result = std::move(index);
  return Status::OK();
}

Status CheckStrictlyIncreasing(const Key* keys, size_t n) {
  for (size_t i = 1; i < n; i++) {
    if (keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument(
          "index build requires strictly increasing keys");
    }
  }
  return Status::OK();
}

// Out of line (not defaulted in the header): LinearSegment is only
// forward-declared there, and the defaults must destroy the vector.
bool LearnedIndex::ExportSegments(std::vector<LinearSegment>* /*out*/,
                                  uint32_t* /*epsilon*/) const {
  return false;
}

Status LearnedIndex::BuildFromSegments(
    std::vector<LinearSegment> /*segments*/, size_t /*n*/,
    const IndexConfig& /*config*/) {
  return Status::NotSupported("index type cannot adopt foreign segments");
}

Status CheckStitchableSegments(const std::vector<LinearSegment>& segments,
                               size_t n) {
  if (n > 0 && segments.empty()) {
    return Status::InvalidArgument("segment stitch: no segments for n > 0");
  }
  for (size_t i = 1; i < segments.size(); i++) {
    if (segments[i].first_key <= segments[i - 1].first_key) {
      return Status::InvalidArgument(
          "segment stitch requires strictly increasing segment keys");
    }
  }
  return Status::OK();
}

}  // namespace lilsm
