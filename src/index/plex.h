// PlexIndex (paper Figure 2E): spline corridor plus a hierarchical,
// self-tuning hist/radix tree over the spline points. Each tree node picks
// its own fanout from the local point count so that every leaf scans at
// most `plex_leaf_threshold` spline points; this is the self-tuning that
// costs PLEX extra training time (paper Section 5.3 measures ~10-15% of
// compaction versus <5% for the others).
#ifndef LILSM_INDEX_PLEX_H_
#define LILSM_INDEX_PLEX_H_

#include <vector>

#include "index/spline.h"

namespace lilsm {

class PlexIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kPLEX; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override {
    return points_.empty() ? 0 : points_.size() - 1;
  }
  size_t MemoryUsage() const override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

  /// Hist-tree depth (for tests/ablation).
  size_t TreeHeight() const;

 private:
  struct HistNode {
    Key base = 0;       // smallest key covered by this node
    uint32_t shift = 0; // bin = (key - base) >> shift
    // Per bin: child node id, or leaf spline range. bin_start[i] is the
    // first spline index in bin i; bin_start has 2^bits + 1 entries.
    std::vector<int32_t> child;      // -1 = leaf bin
    std::vector<uint32_t> bin_start;
  };

  void BuildHistTree();
  /// Builds the subtree over points_[lo, hi) covering keys
  /// [base, base + 2^span_bits); returns the node id or -1 for leaf ranges.
  int32_t BuildNode(size_t lo, size_t hi, Key base, uint32_t span_bits);

  std::vector<SplinePoint> points_;
  std::vector<HistNode> nodes_;
  int32_t root_ = -1;
  uint32_t leaf_threshold_ = 16;
  uint32_t epsilon_ = 0;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_PLEX_H_
