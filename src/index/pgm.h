// PgmIndex: the Piecewise Geometric Model index (paper Figure 2C).
// Leaf segments come from the optimal streaming PLA (provably minimal
// segment count for a given epsilon); internal levels recursively index the
// segment first-keys with error bound epsilon_recursive (paper default 4).
#ifndef LILSM_INDEX_PGM_H_
#define LILSM_INDEX_PGM_H_

#include <vector>

#include "index/pla.h"

namespace lilsm {

class PgmIndex final : public LearnedIndex {
 public:
  IndexType type() const override { return IndexType::kPGM; }

  Status Build(const Key* keys, size_t n, const IndexConfig& config) override;
  PredictResult Predict(Key key) const override;
  size_t num_keys() const override { return n_; }
  size_t SegmentCount() const override {
    return levels_.empty() ? 0 : levels_[0].size();
  }
  size_t MemoryUsage() const override;
  bool ExportSegments(std::vector<LinearSegment>* out,
                      uint32_t* epsilon) const override;
  Status BuildFromSegments(std::vector<LinearSegment> segments, size_t n,
                           const IndexConfig& config) override;
  void EncodeTo(std::string* dst) const override;
  Status DecodeFrom(Slice* input) override;

  /// Number of levels including the leaf level (>= 1 once built).
  size_t Height() const { return levels_.size(); }

 private:
  /// Builds the recursive levels over levels_[0] (which must be set).
  void BuildUpperLevels();
  // levels_[0]: epsilon-bounded segments over the data positions;
  // levels_[k>0]: epsilon_recursive-bounded segments over the first-keys of
  // level k-1. The top level always has exactly one segment.
  std::vector<std::vector<LinearSegment>> levels_;
  uint32_t epsilon_ = 0;
  uint32_t epsilon_recursive_ = 4;
  size_t n_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_INDEX_PGM_H_
