// Serialization helpers shared by the index implementations.
#ifndef LILSM_INDEX_SEGMENT_IO_H_
#define LILSM_INDEX_SEGMENT_IO_H_

#include <bit>
#include <cstring>
#include <vector>

#include "index/pla.h"
#include "util/coding.h"

namespace lilsm {

inline void PutDouble(std::string* dst, double v) {
  PutFixed64(dst, std::bit_cast<uint64_t>(v));
}

inline bool GetDouble(Slice* input, double* v) {
  uint64_t bits = 0;
  if (!GetFixed64(input, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

inline void EncodeSegments(const std::vector<LinearSegment>& segments,
                           std::string* dst) {
  PutVarint64(dst, segments.size());
  for (const LinearSegment& s : segments) {
    PutFixed64(dst, s.first_key);
    PutDouble(dst, s.slope);
    PutDouble(dst, s.intercept);
  }
}

inline Status DecodeSegments(Slice* input,
                             std::vector<LinearSegment>* segments) {
  uint64_t count = 0;
  if (!GetVarint64(input, &count)) {
    return Status::Corruption("segments: bad count");
  }
  segments->clear();
  segments->reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    LinearSegment s;
    if (!GetFixed64(input, &s.first_key) || !GetDouble(input, &s.slope) ||
        !GetDouble(input, &s.intercept)) {
      return Status::Corruption("segments: truncated");
    }
    segments->push_back(s);
  }
  return Status::OK();
}

/// Clamps a floating prediction into [0, n-1] with an inclusive
/// +-epsilon window, the contract of PredictResult.
///
/// The upper bound carries one extra entry: the models guarantee
/// |prediction - true| <= epsilon in exact arithmetic, and the double
/// round-trip can exceed it by strictly less than one position (the
/// PGM-index widens its own search window the same way). Flooring the
/// prediction already over-protects the lower side.
inline PredictResult ClampPrediction(double predicted, size_t n,
                                     uint32_t epsilon) {
  PredictResult r;
  if (n == 0) return r;
  double p = predicted;
  if (p < 0) p = 0;
  const double max_pos = static_cast<double>(n - 1);
  if (p > max_pos) p = max_pos;
  r.pos = static_cast<size_t>(p);
  const size_t eps = epsilon;
  r.lo = r.pos >= eps ? r.pos - eps : 0;
  r.hi = r.pos + eps + 1 <= n - 1 ? r.pos + eps + 1 : n - 1;
  return r;
}

}  // namespace lilsm

#endif  // LILSM_INDEX_SEGMENT_IO_H_
