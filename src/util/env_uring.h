// io_uring ReadBatch backend, compiled unconditionally but only active
// when CMake found liburing (LILSM_HAVE_URING). PosixEnv::NewReadBatch
// calls the factory below and falls back to the portable ThreadPool
// backend when it returns nullptr.
#ifndef LILSM_UTIL_ENV_URING_H_
#define LILSM_UTIL_ENV_URING_H_

#include <memory>

#include "util/env.h"

namespace lilsm {

/// Returns an io_uring-backed ReadBatch with an SQ depth of `io_depth`,
/// or nullptr when the build has no liburing or the kernel refuses ring
/// setup (old kernels, seccomp). Requests whose file exposes no
/// descriptor (FileDescriptor() < 0) are served with FullyRead on the
/// reaping thread instead of being submitted to the ring.
std::unique_ptr<ReadBatch> TryNewUringReadBatch(int io_depth);

}  // namespace lilsm

#endif  // LILSM_UTIL_ENV_URING_H_
