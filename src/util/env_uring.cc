#include "util/env_uring.h"

#ifdef LILSM_HAVE_URING

#include <liburing.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace lilsm {
namespace {

class UringReadBatch final : public ReadBatch {
 public:
  UringReadBatch(struct io_uring ring, int io_depth)
      : ring_(ring), io_depth_(io_depth) {}

  ~UringReadBatch() override { io_uring_queue_exit(&ring_); }

  void Add(ReadRequest* req) override { requests_.push_back(req); }

  Status Wait() override {
    // Submit in waves of at most io_depth_ SQEs; files without a raw
    // descriptor (wrappers, in-memory) are served synchronously here.
    // Short ring reads are retried from the completion offset, so the
    // "full span or EOF" contract matches FullyRead.
    size_t submitted = 0;
    size_t inflight = 0;
    std::vector<size_t> done_bytes(requests_.size(), 0);
    while (submitted < requests_.size() || inflight > 0) {
      while (submitted < requests_.size() &&
             inflight < static_cast<size_t>(io_depth_)) {
        ReadRequest* r = requests_[submitted];
        const int fd = r->file->FileDescriptor();
        if (fd < 0) {
          r->status = FullyRead(r->file, r->offset, r->n, &r->result,
                                r->scratch);
          submitted++;
          continue;
        }
        struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
        if (sqe == nullptr) break;  // SQ full: reap first.
        io_uring_prep_read(sqe, fd, r->scratch, static_cast<unsigned>(r->n),
                           r->offset);
        io_uring_sqe_set_data64(sqe, static_cast<uint64_t>(submitted));
        submitted++;
        inflight++;
      }
      if (inflight == 0) continue;
      io_uring_submit(&ring_);
      struct io_uring_cqe* cqe = nullptr;
      const int rc = io_uring_wait_cqe(&ring_, &cqe);
      if (rc < 0) {
        if (rc == -EINTR) continue;
        for (size_t i = 0; i < requests_.size(); i++) {
          if (requests_[i]->status.ok() && done_bytes[i] < requests_[i]->n) {
            requests_[i]->status =
                Status::IOError("io_uring_wait_cqe", std::strerror(-rc));
          }
        }
        break;
      }
      const size_t idx = static_cast<size_t>(io_uring_cqe_get_data64(cqe));
      ReadRequest* r = requests_[idx];
      const int res = cqe->res;
      io_uring_cqe_seen(&ring_, cqe);
      inflight--;
      if (res < 0) {
        if (res == -EINTR || res == -EAGAIN) {
          Resubmit(idx, done_bytes[idx], &inflight);
          continue;
        }
        r->result = Slice();
        r->status = Status::IOError("io_uring read", std::strerror(-res));
      } else if (res == 0 || done_bytes[idx] + static_cast<size_t>(res) >=
                                 r->n) {
        // EOF or range complete.
        done_bytes[idx] += static_cast<size_t>(res);
        r->result = Slice(r->scratch, done_bytes[idx]);
        r->status = Status::OK();
      } else {
        done_bytes[idx] += static_cast<size_t>(res);
        Resubmit(idx, done_bytes[idx], &inflight);
      }
    }
    Status s;
    for (ReadRequest* r : requests_) {
      if (s.ok() && !r->status.ok()) s = r->status;
    }
    requests_.clear();
    return s;
  }

 private:
  void Resubmit(size_t idx, size_t done, size_t* inflight) {
    ReadRequest* r = requests_[idx];
    struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
    if (sqe == nullptr) {
      // SQ exhausted mid-retry (cannot happen with inflight < depth, but
      // stay safe): finish the straggler synchronously.
      Slice rest;
      r->status = FullyRead(r->file, r->offset + done, r->n - done, &rest,
                            r->scratch + done);
      if (r->status.ok()) r->result = Slice(r->scratch, done + rest.size());
      return;
    }
    io_uring_prep_read(sqe, r->file->FileDescriptor(), r->scratch + done,
                       static_cast<unsigned>(r->n - done), r->offset + done);
    io_uring_sqe_set_data64(sqe, static_cast<uint64_t>(idx));
    (*inflight)++;
  }

  struct io_uring ring_;
  const int io_depth_;
  std::vector<ReadRequest*> requests_;
};

}  // namespace

std::unique_ptr<ReadBatch> TryNewUringReadBatch(int io_depth) {
  io_depth = std::max(1, io_depth);
  struct io_uring ring;
  if (io_uring_queue_init(static_cast<unsigned>(io_depth), &ring, 0) != 0) {
    return nullptr;  // Old kernel or seccomp: portable backend takes over.
  }
  return std::make_unique<UringReadBatch>(ring, io_depth);
}

}  // namespace lilsm

#else  // !LILSM_HAVE_URING

namespace lilsm {

std::unique_ptr<ReadBatch> TryNewUringReadBatch(int /*io_depth*/) {
  return nullptr;
}

}  // namespace lilsm

#endif  // LILSM_HAVE_URING
