// LILSM_CHECK / LILSM_ASSERT: invariant macros replacing ad-hoc assert().
//
//  * LILSM_CHECK(cond)  — always compiled in, every build type. For
//    invariants whose violation must never ship silently (lock-boundary
//    contracts, refcount underflow, protocol state machines).
//  * LILSM_ASSERT(cond) — debug builds only; compiled out under NDEBUG
//    (the condition is not evaluated). For hot-path sanity checks.
//
// Both print `file:line: <macro> failed: <condition>` to stderr and
// abort, so a violation pinpoints its source in any test log or core.
#ifndef LILSM_UTIL_CHECK_H_
#define LILSM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lilsm {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* what, const char* cond) {
  std::fprintf(stderr, "%s:%d: %s failed: %s\n", file, line, what, cond);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace lilsm

#define LILSM_CHECK(cond)                                        \
  ((cond) ? (void)0                                              \
          : ::lilsm::internal::CheckFailed(__FILE__, __LINE__,   \
                                           "LILSM_CHECK", #cond))

#ifdef NDEBUG
// sizeof keeps the expression unevaluated while still "using" every
// variable it names, so release builds get no unused-variable warnings.
#define LILSM_ASSERT(cond) ((void)sizeof(!(cond)))
#else
#define LILSM_ASSERT(cond)                                        \
  ((cond) ? (void)0                                               \
          : ::lilsm::internal::CheckFailed(__FILE__, __LINE__,    \
                                           "LILSM_ASSERT", #cond))
#endif

#endif  // LILSM_UTIL_CHECK_H_
