// Arena: bump-pointer allocator backing the memtable skiplist. All memory
// is released at once when the arena is destroyed.
#ifndef LILSM_UTIL_ARENA_H_
#define LILSM_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lilsm {

class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated memory block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// As Allocate, with the alignment guarantee required for placement of
  /// pointer-holding structures (skiplist nodes).
  char* AllocateAligned(size_t bytes);

  /// Total memory allocated from the system by the arena. Safe to read
  /// concurrently with the (single) allocating thread, which is how the
  /// write path polls a memtable's size while readers pin it.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace lilsm

#endif  // LILSM_UTIL_ARENA_H_
