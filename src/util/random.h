// Deterministic pseudo-random generators used by workloads and tests.
// xorshift128+ core: fast, seedable, and identical across platforms.
#ifndef LILSM_UTIL_RANDOM_H_
#define LILSM_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace lilsm {

class Random {
  static constexpr double kPi = 3.14159265358979323846;

 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding avoids the all-zero state and decorrelates
    // adjacent seeds.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Skewed: pick base in [0, max_log] uniformly, then return a value
  /// uniform in [0, 2^base). Favors small numbers.
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(max_log + 1));
  }

  /// Standard normal via Box-Muller (one sample per call; simple and
  /// deterministic, speed is irrelevant for generation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97f4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace lilsm

#endif  // LILSM_UTIL_RANDOM_H_
