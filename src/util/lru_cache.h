// Sharded, charged-capacity LRU cache (the LevelDB/RocksDB block-cache
// shape). `LRUCache<K, V>` is the generic engine: entries live in
// per-shard LRU lists guarded by per-shard mutexes, each entry carries a
// byte charge, and a shard evicts from its cold end whenever its charged
// bytes exceed its slice of the capacity. Values are handed out as
// `shared_ptr<const V>`, so an evicted entry stays alive for whoever is
// still reading it — eviction only drops the cache's own reference.
//
// `BlockCache` is the concrete instantiation the read stack shares: table
// blocks keyed by (file_number, block_offset). Both table formats consult
// it before touching the Env (see DESIGN.md "Block cache").
#ifndef LILSM_UTIL_LRU_CACHE_H_
#define LILSM_UTIL_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {

template <typename K, typename V, typename Hash = std::hash<K>>
class LRUCache {
 public:
  /// `capacity_bytes` is the total charged capacity across all shards;
  /// `num_shards` is rounded up to a power of two. More shards cut mutex
  /// contention at a small granularity cost (each shard enforces only its
  /// slice of the capacity). Because an entry larger than its shard's
  /// slice self-evicts on insert, the shard count is clamped down until
  /// every slice holds at least kMinShardSlice bytes — a small cache
  /// must degrade to fewer shards, not to a silent 100% miss rate.
  explicit LRUCache(size_t capacity_bytes, size_t num_shards = 16)
      : capacity_(capacity_bytes) {
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    while (shards > 1 && capacity_bytes / shards < kMinShardSlice) {
      shards >>= 1;
    }
    shard_mask_ = shards - 1;
    shards_ = std::vector<Shard>(shards);
    per_shard_capacity_ = capacity_bytes / shards;
  }

  LRUCache(const LRUCache&) = delete;
  LRUCache& operator=(const LRUCache&) = delete;

  /// Returns the cached value and promotes it to most-recently-used, or
  /// null on a miss. Hit/miss tallies are kept internally; callers that
  /// attribute them to a per-call Stats sink count on their side too.
  std::shared_ptr<const V> Lookup(const K& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (it->second != shard.lru.begin()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts (or replaces) `key` with `value` charged at `charge` bytes
  /// and returns how many entries were evicted to make room. An entry
  /// larger than its shard's capacity slice is evicted immediately — the
  /// caller keeps its own copy of the data, so nothing is lost.
  size_t Insert(const K& key, V value, size_t charge) {
    Shard& shard = ShardFor(key);
    size_t evicted = 0;
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.usage -= it->second->charge;
      shard.lru.erase(it->second);
      shard.map.erase(it);
    }
    shard.lru.push_front(
        Entry{key, std::make_shared<const V>(std::move(value)), charge});
    shard.map[key] = shard.lru.begin();
    shard.usage += charge;
    while (shard.usage > per_shard_capacity_ && !shard.lru.empty()) {
      const Entry& cold = shard.lru.back();
      shard.usage -= cold.charge;
      shard.map.erase(cold.key);
      shard.lru.pop_back();
      evicted++;
    }
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
    }
    return evicted;
  }

  void Erase(const K& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return;
    shard.usage -= it->second->charge;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }

  /// Drops every entry matching `pred` (the invalidation hook: purge a
  /// deleted file's blocks). Linear in the cache size; invalidation is
  /// compaction-rate, not lookup-rate.
  template <typename Pred>
  void EraseIf(Pred pred) {
    for (Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(it->key)) {
          shard.usage -= it->charge;
          shard.map.erase(it->key);
          it = shard.lru.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      shard.lru.clear();
      shard.map.clear();
      shard.usage = 0;
    }
  }

  /// Total charged bytes currently held (summed per shard; not an atomic
  /// snapshot under concurrent mutation, like the Stats accessors).
  size_t MemoryUsage() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      total += shard.usage;
    }
    return total;
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    K key;
    std::shared_ptr<const V> value;
    size_t charge;
  };

  /// Cache-line aligned so neighbouring shard mutexes do not false-share.
  struct alignas(64) Shard {
    mutable Mutex mu;
    /// front = most recently used.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> map
        GUARDED_BY(mu);
    size_t usage GUARDED_BY(mu) = 0;  // charged bytes
  };

  Shard& ShardFor(const K& key) { return shards_[Hash{}(key) & shard_mask_]; }

  /// Floor on a shard's capacity slice (see the constructor).
  static constexpr size_t kMinShardSlice = 64 << 10;

  const size_t capacity_;
  size_t per_shard_capacity_ = 0;
  size_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// The shared block cache: table blocks keyed by (file_number, offset).
/// File numbers are never reused (VersionSet::NewFileNumber is monotonic),
/// so a stale entry can never alias a new file's blocks — invalidation via
/// EraseFile reclaims memory rather than guarding correctness.
class BlockCache {
 public:
  using BlockRef = std::shared_ptr<const std::string>;

  explicit BlockCache(size_t capacity_bytes);

  BlockRef Lookup(uint64_t file_number, uint64_t offset);
  /// Caches `block` and returns the number of entries evicted.
  size_t Insert(uint64_t file_number, uint64_t offset, std::string block);
  /// Purges every block of `file_number` (the file was deleted).
  void EraseFile(uint64_t file_number);
  /// Purges every block of the given (sorted or unsorted) files in one
  /// cache scan — obsolete-file GC retires whole compaction input sets,
  /// and a scan per file would block readers K times over.
  void EraseFiles(const std::vector<uint64_t>& file_numbers);
  void Clear();

  size_t MemoryUsage() const;
  size_t size() const;
  size_t capacity() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct BlockKey {
    uint64_t file_number;
    uint64_t offset;
    bool operator==(const BlockKey& other) const {
      return file_number == other.file_number && offset == other.offset;
    }
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& key) const;
  };

  /// Per-entry bookkeeping overhead added to each block's byte charge
  /// (key, list node, map slot) so tiny blocks cannot blow past the
  /// configured memory budget.
  static constexpr size_t kEntryOverhead = 64;

  /// Shard count scaled to the capacity: capacity is enforced per shard
  /// slice, and a slice smaller than a handful of table blocks would
  /// self-evict every insert, so small caches get fewer shards (1 shard
  /// below 512 KiB, the full 16 from 4 MiB up).
  static size_t ShardsForCapacity(size_t capacity_bytes);

  LRUCache<BlockKey, std::string, BlockKeyHash> cache_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_LRU_CACHE_H_
