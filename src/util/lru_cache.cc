#include "util/lru_cache.h"

#include <algorithm>

namespace lilsm {

size_t BlockCache::BlockKeyHash::operator()(const BlockKey& key) const {
  // 64-bit mix (splitmix64 finalizer) over the xor-folded pair; both
  // fields are low-entropy counters, so a plain xor would collide shards.
  uint64_t x = key.file_number * 0x9e3779b97f4a7c15ull ^ key.offset;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

size_t BlockCache::ShardsForCapacity(size_t capacity_bytes) {
  // Keep every shard slice at >= 256 KiB (~64 typical 4 KiB blocks) so
  // the per-slice eviction loop has real LRU depth to work with.
  size_t shards = 1;
  while (shards < 16 && capacity_bytes / (shards * 2) >= (256u << 10)) {
    shards *= 2;
  }
  return shards;
}

BlockCache::BlockCache(size_t capacity_bytes)
    : cache_(capacity_bytes, ShardsForCapacity(capacity_bytes)) {}

BlockCache::BlockRef BlockCache::Lookup(uint64_t file_number,
                                        uint64_t offset) {
  return cache_.Lookup(BlockKey{file_number, offset});
}

size_t BlockCache::Insert(uint64_t file_number, uint64_t offset,
                          std::string block) {
  const size_t charge = block.size() + kEntryOverhead;
  return cache_.Insert(BlockKey{file_number, offset}, std::move(block),
                       charge);
}

void BlockCache::EraseFile(uint64_t file_number) {
  cache_.EraseIf([file_number](const BlockKey& key) {
    return key.file_number == file_number;
  });
}

void BlockCache::EraseFiles(const std::vector<uint64_t>& file_numbers) {
  if (file_numbers.empty()) return;
  if (file_numbers.size() == 1) {
    EraseFile(file_numbers[0]);
    return;
  }
  std::vector<uint64_t> sorted = file_numbers;
  std::sort(sorted.begin(), sorted.end());
  cache_.EraseIf([&sorted](const BlockKey& key) {
    return std::binary_search(sorted.begin(), sorted.end(),
                              key.file_number);
  });
}

void BlockCache::Clear() { cache_.Clear(); }

size_t BlockCache::MemoryUsage() const { return cache_.MemoryUsage(); }
size_t BlockCache::size() const { return cache_.size(); }
size_t BlockCache::capacity() const { return cache_.capacity(); }
uint64_t BlockCache::hits() const { return cache_.hits(); }
uint64_t BlockCache::misses() const { return cache_.misses(); }
uint64_t BlockCache::evictions() const { return cache_.evictions(); }

}  // namespace lilsm
