#include "util/stats.h"

#include <cstdio>

namespace lilsm {

const char* TimerName(Timer t) {
  switch (t) {
    case Timer::kTableLookup:
      return "table_lookup";
    case Timer::kIndexPredict:
      return "index_predict";
    case Timer::kDiskRead:
      return "disk_read";
    case Timer::kBinarySearch:
      return "binary_search";
    case Timer::kBloomCheck:
      return "bloom_check";
    case Timer::kMemtableGet:
      return "memtable_get";
    case Timer::kCompactTotal:
      return "compact_total";
    case Timer::kCompactKvIo:
      return "compact_kv_io";
    case Timer::kCompactTrain:
      return "compact_train";
    case Timer::kCompactWriteModel:
      return "compact_write_model";
    case Timer::kLevelIndexBuild:
      return "level_index_build";
    case Timer::kModelStitch:
      return "model_stitch";
    case Timer::kModelRetrain:
      return "model_retrain";
    case Timer::kBackgroundWork:
      return "background_work";
    case Timer::kMultiGet:
      return "multiget";
    case Timer::kAsyncReap:
      return "async_reap";
    case Timer::kServerQueue:
      return "server_queue";
    case Timer::kRecover:
      return "recover";
    case Timer::kModelLoad:
      return "model_load";
    default:
      return "unknown";
  }
}

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kPointLookups:
      return "point_lookups";
    case Counter::kRangeLookups:
      return "range_lookups";
    case Counter::kWrites:
      return "writes";
    case Counter::kBloomNegatives:
      return "bloom_negatives";
    case Counter::kBloomTruePositive:
      return "bloom_true_positive";
    case Counter::kBloomFalsePositive:
      return "bloom_false_positive";
    case Counter::kTablesConsulted:
      return "tables_consulted";
    case Counter::kSegmentsFetched:
      return "segments_fetched";
    case Counter::kCompactions:
      return "compactions";
    case Counter::kFlushes:
      return "flushes";
    case Counter::kEntriesCompacted:
      return "entries_compacted";
    case Counter::kModelsTrained:
      return "models_trained";
    case Counter::kModelsStitched:
      return "models_stitched";
    case Counter::kModelRetrains:
      return "model_retrains";
    case Counter::kModelBuildBytesRead:
      return "model_build_bytes_read";
    case Counter::kWriteSlowdowns:
      return "write_slowdowns";
    case Counter::kWriteStalls:
      return "write_stalls";
    case Counter::kMultiGetKeys:
      return "multiget_keys";
    case Counter::kMultiGetBatches:
      return "multiget_batches";
    case Counter::kBlockCacheHits:
      return "block_cache_hits";
    case Counter::kBlockCacheMisses:
      return "block_cache_misses";
    case Counter::kBlockCacheEvictions:
      return "block_cache_evictions";
    case Counter::kGroupCommits:
      return "group_commits";
    case Counter::kGroupCommitBatchSize:
      return "group_commit_batch_size";
    case Counter::kSubcompactions:
      return "subcompactions";
    case Counter::kAsyncBatches:
      return "async_batches";
    case Counter::kAsyncReads:
      return "async_reads";
    case Counter::kReadaheadHits:
      return "readahead_hits";
    case Counter::kReadaheadWasted:
      return "readahead_wasted";
    case Counter::kServerRequests:
      return "server_requests";
    case Counter::kServerBatchKeys:
      return "server_batch_keys";
    case Counter::kServerBytesIn:
      return "server_bytes_in";
    case Counter::kServerBytesOut:
      return "server_bytes_out";
    case Counter::kWalRecordsReplayed:
      return "wal_records_replayed";
    case Counter::kModelsLoadedFromDisk:
      return "models_loaded_from_disk";
    case Counter::kModelSidecarFallbacks:
      return "model_sidecar_fallbacks";
    default:
      return "unknown";
  }
}

namespace {

std::atomic<size_t> next_shard{0};

template <typename Array>
void FillZero(Array& array) {
  for (auto& cell : array) cell.store(0, std::memory_order_relaxed);
}

template <typename Array>
void CopyCells(Array& dst, const Array& src) {
  for (size_t i = 0; i < src.size(); i++) {
    dst[i].store(src[i].load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }
}

template <typename Array>
uint64_t CellAt(const Array& array, int i) {
  return array[i].load(std::memory_order_relaxed);
}

}  // namespace

size_t Stats::ShardIndex() {
  thread_local const size_t idx =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

void Stats::Reset() {
  for (Shard& shard : shards_) {
    FillZero(shard.timer_ns);
    FillZero(shard.timer_count);
    FillZero(shard.counters);
    FillZero(shard.level_read_ns);
    FillZero(shard.level_reads);
  }
}

void Stats::CopyFrom(const Stats& other) {
  for (int s = 0; s < kShards; s++) {
    CopyCells(shards_[s].timer_ns, other.shards_[s].timer_ns);
    CopyCells(shards_[s].timer_count, other.shards_[s].timer_count);
    CopyCells(shards_[s].counters, other.shards_[s].counters);
    CopyCells(shards_[s].level_read_ns, other.shards_[s].level_read_ns);
    CopyCells(shards_[s].level_reads, other.shards_[s].level_reads);
  }
}

uint64_t Stats::TimeNanos(Timer t) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += CellAt(shard.timer_ns, static_cast<int>(t));
  }
  return total;
}

uint64_t Stats::TimerCount(Timer t) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += CellAt(shard.timer_count, static_cast<int>(t));
  }
  return total;
}

uint64_t Stats::Count(Counter c) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += CellAt(shard.counters, static_cast<int>(c));
  }
  return total;
}

uint64_t Stats::LevelReadNanos(int level) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += CellAt(shard.level_read_ns, level);
  }
  return total;
}

uint64_t Stats::LevelReads(int level) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += CellAt(shard.level_reads, level);
  }
  return total;
}

std::string Stats::ToString() const {
  std::string out;
  char buf[160];
  for (int i = 0; i < static_cast<int>(Timer::kNumTimers); i++) {
    Timer t = static_cast<Timer>(i);
    if (TimerCount(t) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-20s total=%10.3f ms  mean=%8.3f us  n=%llu\n",
                  TimerName(t), TimeNanos(t) / 1e6, MeanMicros(t),
                  static_cast<unsigned long long>(TimerCount(t)));
    out += buf;
  }
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); i++) {
    Counter c = static_cast<Counter>(i);
    if (Count(c) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-20s %llu\n", CounterName(c),
                  static_cast<unsigned long long>(Count(c)));
    out += buf;
  }
  return out;
}

}  // namespace lilsm
