#include "util/stats.h"

#include <cstdio>

namespace lilsm {

const char* TimerName(Timer t) {
  switch (t) {
    case Timer::kTableLookup:
      return "table_lookup";
    case Timer::kIndexPredict:
      return "index_predict";
    case Timer::kDiskRead:
      return "disk_read";
    case Timer::kBinarySearch:
      return "binary_search";
    case Timer::kBloomCheck:
      return "bloom_check";
    case Timer::kMemtableGet:
      return "memtable_get";
    case Timer::kCompactTotal:
      return "compact_total";
    case Timer::kCompactKvIo:
      return "compact_kv_io";
    case Timer::kCompactTrain:
      return "compact_train";
    case Timer::kCompactWriteModel:
      return "compact_write_model";
    case Timer::kLevelIndexBuild:
      return "level_index_build";
    default:
      return "unknown";
  }
}

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kPointLookups:
      return "point_lookups";
    case Counter::kRangeLookups:
      return "range_lookups";
    case Counter::kWrites:
      return "writes";
    case Counter::kBloomNegatives:
      return "bloom_negatives";
    case Counter::kBloomTruePositive:
      return "bloom_true_positive";
    case Counter::kBloomFalsePositive:
      return "bloom_false_positive";
    case Counter::kTablesConsulted:
      return "tables_consulted";
    case Counter::kSegmentsFetched:
      return "segments_fetched";
    case Counter::kCompactions:
      return "compactions";
    case Counter::kFlushes:
      return "flushes";
    case Counter::kEntriesCompacted:
      return "entries_compacted";
    case Counter::kModelsTrained:
      return "models_trained";
    default:
      return "unknown";
  }
}

void Stats::Reset() {
  timer_ns_.fill(0);
  timer_count_.fill(0);
  counters_.fill(0);
  level_read_ns_.fill(0);
  level_reads_.fill(0);
}

std::string Stats::ToString() const {
  std::string out;
  char buf[160];
  for (int i = 0; i < static_cast<int>(Timer::kNumTimers); i++) {
    Timer t = static_cast<Timer>(i);
    if (TimerCount(t) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-20s total=%10.3f ms  mean=%8.3f us  n=%llu\n",
                  TimerName(t), TimeNanos(t) / 1e6, MeanMicros(t),
                  static_cast<unsigned long long>(TimerCount(t)));
    out += buf;
  }
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); i++) {
    Counter c = static_cast<Counter>(i);
    if (Count(c) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-20s %llu\n", CounterName(c),
                  static_cast<unsigned long long>(Count(c)));
    out += buf;
  }
  return out;
}

}  // namespace lilsm
