#include "util/fault_env.h"

#include <utility>

#include "util/random.h"

namespace lilsm {

namespace {

Status PowerCut(const std::string& what) {
  return Status::IOError(what, "simulated power cut");
}

}  // namespace

/// Routes every append and sync through the owning FaultEnv so the
/// injection state is consulted under one lock. Flush and Close stay
/// process-local: they move bytes between user buffers and the OS but
/// never change what survives a crash, so they work even "powered off"
/// (the process outlives the simulated machine and must tear down).
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::string fname, FaultEnv::InodePtr ino,
                    std::unique_ptr<WritableFile> base)
      : env_(env),
        fname_(std::move(fname)),
        ino_(std::move(ino)),
        base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    return env_->DoAppend(fname_, ino_, base_.get(), data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return env_->DoSync(fname_, ino_, base_.get()); }
  Status Close() override { return base_->Close(); }

 private:
  FaultEnv* const env_;
  const std::string fname_;
  const FaultEnv::InodePtr ino_;
  const std::unique_ptr<WritableFile> base_;
};

FaultEnv::FaultEnv(Env* base, FaultEnvOptions options)
    : base_(base), options_(options) {}

FaultEnv::~FaultEnv() = default;

std::string FaultEnv::DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FaultEnv::CheckMutation(const std::string& what) {
  if (powered_off_) return PowerCut(what);
  if (options_.fail_after_ops > 0 && ops_used_ >= options_.fail_after_ops) {
    powered_off_ = true;
    return PowerCut(what);
  }
  ops_used_++;
  return Status::OK();
}

void FaultEnv::AdoptDir(const std::string& dir) {
  if (!tracked_dirs_.insert(dir).second) return;
  std::vector<std::string> children;
  if (!base_->GetChildren(dir, &children).ok()) return;
  for (const std::string& child : children) {
    if (child == "." || child == "..") continue;
    const std::string path = dir + "/" + child;
    if (live_ns_.count(path) != 0) continue;
    std::string contents;
    // Subdirectories and unreadable entries fail here and stay untracked.
    if (!ReadFileToString(base_, path, &contents).ok()) continue;
    InodePtr ino = std::make_shared<Inode>();
    ino->durable = contents.size();
    ino->written = std::move(contents);
    live_ns_[path] = ino;
    durable_ns_[path] = ino;
  }
}

Status FaultEnv::DoAppend(const std::string& fname, const InodePtr& ino,
                          WritableFile* base_file, const Slice& data) {
  MutexLock l(&mu_);
  Status s = CheckMutation(fname);
  if (!s.ok()) return s;
  uint64_t allowed = data.size();
  bool cut = false;
  if (options_.fail_after_bytes > 0 &&
      bytes_used_ + data.size() > options_.fail_after_bytes) {
    allowed = options_.fail_after_bytes > bytes_used_
                  ? options_.fail_after_bytes - bytes_used_
                  : 0;
    cut = true;
  }
  bytes_used_ += allowed;
  ino->written.append(data.data(), static_cast<size_t>(allowed));
  s = base_file->Append(Slice(data.data(), static_cast<size_t>(allowed)));
  if (cut) {
    powered_off_ = true;
    return PowerCut(fname);
  }
  return s;
}

Status FaultEnv::DoSync(const std::string& fname, const InodePtr& ino,
                        WritableFile* base_file) {
  MutexLock l(&mu_);
  Status s = CheckMutation(fname);
  if (!s.ok()) return s;
  // Flush so live readers of the base filesystem observe the bytes; the
  // real fsync is intentionally skipped (durability is modeled here).
  s = base_file->Flush();
  if (!s.ok()) return s;
  if (!options_.drop_syncs) ino->durable = ino->written.size();
  return Status::OK();
}

Status FaultEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  {
    MutexLock l(&mu_);
    if (powered_off_) {
      result->reset();
      return PowerCut(fname);
    }
    AdoptDir(DirOf(fname));
  }
  return base_->NewRandomAccessFile(fname, result);
}

Status FaultEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  MutexLock l(&mu_);
  AdoptDir(DirOf(fname));
  Status s = CheckMutation(fname);
  if (!s.ok()) {
    result->reset();
    return s;
  }
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) {
    result->reset();
    return s;
  }
  // O_TRUNC semantics: the name now binds a fresh inode. If the old
  // binding was durable, a crash before the next SyncDir resurrects the
  // old contents — the adversarial reading of an un-journaled truncate.
  InodePtr ino = std::make_shared<Inode>();
  live_ns_[fname] = ino;
  *result = std::make_unique<FaultWritableFile>(this, fname, std::move(ino),
                                                std::move(base_file));
  return Status::OK();
}

Status FaultEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) {
  {
    MutexLock l(&mu_);
    if (powered_off_) {
      result->reset();
      return PowerCut(fname);
    }
    AdoptDir(DirOf(fname));
  }
  return base_->NewSequentialFile(fname, result);
}

bool FaultEnv::FileExists(const std::string& fname) {
  {
    MutexLock l(&mu_);
    if (powered_off_) return false;
  }
  return base_->FileExists(fname);
}

Status FaultEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  {
    MutexLock l(&mu_);
    if (powered_off_) return PowerCut(dir);
    AdoptDir(dir);
  }
  return base_->GetChildren(dir, result);
}

Status FaultEnv::RemoveFile(const std::string& fname) {
  MutexLock l(&mu_);
  AdoptDir(DirOf(fname));
  Status s = CheckMutation(fname);
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) live_ns_.erase(fname);
  return s;
}

Status FaultEnv::CreateDir(const std::string& dirname) {
  MutexLock l(&mu_);
  Status s = CheckMutation(dirname);
  if (!s.ok()) return s;
  s = base_->CreateDir(dirname);
  // Directory creation is treated as immediately durable (the engine
  // creates its one db directory long before any crash of interest).
  if (s.ok()) AdoptDir(dirname);
  return s;
}

Status FaultEnv::RemoveDir(const std::string& dirname) {
  MutexLock l(&mu_);
  Status s = CheckMutation(dirname);
  if (!s.ok()) return s;
  s = base_->RemoveDir(dirname);
  if (s.ok()) tracked_dirs_.erase(dirname);
  return s;
}

Status FaultEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  {
    MutexLock l(&mu_);
    if (powered_off_) {
      *size = 0;
      return PowerCut(fname);
    }
  }
  return base_->GetFileSize(fname, size);
}

Status FaultEnv::RenameFile(const std::string& src,
                            const std::string& target) {
  MutexLock l(&mu_);
  AdoptDir(DirOf(src));
  AdoptDir(DirOf(target));
  Status s = CheckMutation(src);
  if (!s.ok()) return s;
  s = base_->RenameFile(src, target);
  if (!s.ok()) return s;
  auto it = live_ns_.find(src);
  if (it != live_ns_.end()) {
    live_ns_[target] = it->second;
    live_ns_.erase(src);
  }
  return Status::OK();
}

Status FaultEnv::SyncDir(const std::string& dirname) {
  MutexLock l(&mu_);
  AdoptDir(dirname);
  Status s = CheckMutation(dirname);
  if (!s.ok()) return s;
  if (options_.drop_syncs) return Status::OK();
  // The journal flush: name->inode bindings in this directory become
  // durable, removals included. (No base fsync — durability lives here.)
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (DirOf(it->first) == dirname && live_ns_.count(it->first) == 0) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, ino] : live_ns_) {
    if (DirOf(name) == dirname) durable_ns_[name] = ino;
  }
  return Status::OK();
}

void FaultEnv::CutPower() {
  MutexLock l(&mu_);
  powered_off_ = true;
}

bool FaultEnv::powered_off() const {
  MutexLock l(&mu_);
  return powered_off_;
}

Status FaultEnv::MaterializeCrash(CrashSurvival survival, uint64_t seed) {
  MutexLock l(&mu_);
  powered_off_ = true;  // materializing implies the cut happened
  Random rnd(seed);
  if (survival == CrashSurvival::kEverything) {
    // The lucky crash loses nothing: unsynced directory entries survive
    // along with unsynced bytes.
    durable_ns_ = live_ns_;
  }
  // 1. Sweep the tracked directories: anything without a durable entry
  //    never survived the crash.
  for (const std::string& dir : tracked_dirs_) {
    std::vector<std::string> children;
    Status s = base_->GetChildren(dir, &children);
    if (!s.ok()) continue;  // directory itself gone: nothing to sweep
    for (const std::string& child : children) {
      if (child == "." || child == "..") continue;
      const std::string path = dir + "/" + child;
      if (tracked_dirs_.count(path) != 0) continue;
      // Failures (a subdirectory, say) leave the entry in place.
      base_->RemoveFile(path);
    }
  }
  // 2. Rebuild each durably-named file: its synced prefix plus however
  //    much of the unsynced suffix this crash happens to preserve.
  for (const auto& [name, ino] : durable_ns_) {
    const uint64_t pending = ino->written.size() - ino->durable;
    uint64_t extra = 0;
    switch (survival) {
      case CrashSurvival::kDurableOnly:
        break;
      case CrashSurvival::kRandomPrefix:
        extra = pending == 0 ? 0 : rnd.Uniform(pending + 1);
        break;
      case CrashSurvival::kEverything:
        extra = pending;
        break;
    }
    std::string survived =
        ino->written.substr(0, static_cast<size_t>(ino->durable + extra));
    std::unique_ptr<WritableFile> f;
    Status s = base_->NewWritableFile(name, &f);
    if (!s.ok()) return s;
    s = f->Append(survived);
    if (s.ok()) s = f->Close();
    if (!s.ok()) return s;
    // After reboot the surviving bytes are on the platter: fully durable.
    ino->written = std::move(survived);
    ino->durable = ino->written.size();
  }
  live_ns_ = durable_ns_;
  powered_off_ = false;
  ops_used_ = 0;
  bytes_used_ = 0;
  options_.fail_after_ops = 0;
  options_.fail_after_bytes = 0;
  return Status::OK();
}

void FaultEnv::SetFailAfterOps(uint64_t n) {
  MutexLock l(&mu_);
  options_.fail_after_ops = n;
  ops_used_ = 0;
}

void FaultEnv::SetFailAfterBytes(uint64_t n) {
  MutexLock l(&mu_);
  options_.fail_after_bytes = n;
  bytes_used_ = 0;
}

void FaultEnv::SetDropSyncs(bool v) {
  MutexLock l(&mu_);
  options_.drop_syncs = v;
}

uint64_t FaultEnv::ops_used() const {
  MutexLock l(&mu_);
  return ops_used_;
}

uint64_t FaultEnv::DurableBytes(const std::string& fname) const {
  MutexLock l(&mu_);
  auto it = live_ns_.find(fname);
  return it == live_ns_.end() ? 0 : it->second->durable;
}

uint64_t FaultEnv::WrittenBytes(const std::string& fname) const {
  MutexLock l(&mu_);
  auto it = live_ns_.find(fname);
  return it == live_ns_.end() ? 0 : it->second->written.size();
}

bool FaultEnv::EntryDurable(const std::string& fname) const {
  MutexLock l(&mu_);
  return durable_ns_.count(fname) != 0;
}

}  // namespace lilsm
