#include "util/status.h"

namespace lilsm {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

Status Status::FromWire(uint8_t code, const Slice& msg) {
  if (code == kOk) return Status();
  if (code > kIOError) {
    return Status(kCorruption, "status wire code out of range", Slice());
  }
  Status s;
  s.code_ = static_cast<Code>(code);
  s.msg_.assign(msg.data(), msg.size());
  return s;
}

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case kOk:
      return "OK";
    case kNotFound:
      type = "NotFound: ";
      break;
    case kCorruption:
      type = "Corruption: ";
      break;
    case kNotSupported:
      type = "Not implemented: ";
      break;
    case kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case kIOError:
      type = "IO error: ";
      break;
    default:
      type = "Unknown code: ";
      break;
  }
  std::string result(type);
  result.append(msg_);
  return result;
}

}  // namespace lilsm
