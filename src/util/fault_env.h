// FaultEnv: a fault-injecting Env decorator for crash-recovery testing.
// It composes over any base Env (PosixEnv, SimEnv) and models exactly
// which bytes survive a power cut: every file tracks a durable prefix
// (advanced only by Sync), and every directory entry tracks whether it
// was made durable by a SyncDir of the parent. Injection knobs cut power
// after N mutating ops or after byte N of appended data (tearing the
// write that crosses the boundary), and can make syncs lie (a volatile
// write cache). MaterializeCrash() then rewrites the on-disk state to
// what such a crash would leave — files truncated to their durable
// prefix plus a chosen amount of unsynced suffix, un-synced creations
// and renames rolled back — so a reopened DB recovers against a
// faithful post-crash image.
#ifndef LILSM_UTIL_FAULT_ENV_H_
#define LILSM_UTIL_FAULT_ENV_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/mutex.h"

namespace lilsm {

class FaultWritableFile;

/// How much of each file's unsynced suffix a simulated crash preserves.
enum class CrashSurvival {
  kDurableOnly,   // exactly the synced prefix — the adversarial crash
  kRandomPrefix,  // a seed-derived prefix of the unsynced bytes (torn write)
  kEverything,    // the lucky crash: every written byte survives
};

struct FaultEnvOptions {
  /// Syncs lie: Sync()/SyncDir() return OK without advancing durability —
  /// a volatile write cache that drops its contents at power loss. This
  /// also subsumes reordered syncs: with no durable floor, any write-back
  /// order is admissible and MaterializeCrash picks one.
  bool drop_syncs = false;
  /// Cut power after this many mutating env ops succeed (0 = unlimited).
  /// Stepping this limit 1, 2, 3, ... walks a crash through every
  /// durability-relevant step of a protocol (the CURRENT-install matrix).
  uint64_t fail_after_ops = 0;
  /// Cut power once this many appended bytes succeed (0 = unlimited).
  /// The append crossing the limit is torn: its leading bytes land, the
  /// rest never reach the device.
  uint64_t fail_after_bytes = 0;
};

/// Thread-safe: the engine calls in from writers and background threads.
/// Durability is modeled entirely inside the wrapper, so base-level
/// fsyncs are skipped — thousand-schedule torture runs stay fast and the
/// base filesystem's own durability never masks an injected fault.
class FaultEnv final : public Env {
 public:
  explicit FaultEnv(Env* base, FaultEnvOptions options = {});
  ~FaultEnv() override;

  FaultEnv(const FaultEnv&) = delete;
  FaultEnv& operator=(const FaultEnv&) = delete;

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status SyncDir(const std::string& dirname) override;
  uint64_t NowNanos() override { return base_->NowNanos(); }
  void Schedule(std::function<void()> work) override {
    base_->Schedule(std::move(work));
  }
  std::unique_ptr<ReadBatch> NewReadBatch(int io_depth) override {
    return base_->NewReadBatch(io_depth);
  }

  // --- fault controls ---

  /// Freezes durable state: every subsequent mutating op through this env
  /// fails with IOError, and nothing a caller does afterwards (the DB
  /// destructor's best-effort WAL sync, say) can rescue unsynced bytes.
  void CutPower();
  bool powered_off() const;

  /// Rewrites the tracked directories on disk to the post-crash image and
  /// re-arms the env (power restored, op/byte limits cleared) so the same
  /// wrapper can serve the recovery run. Requires no live writable files.
  Status MaterializeCrash(CrashSurvival survival, uint64_t seed = 0);

  void SetFailAfterOps(uint64_t n);
  void SetFailAfterBytes(uint64_t n);
  void SetDropSyncs(bool v);
  /// Mutating ops that succeeded since construction or the last
  /// MaterializeCrash — the step counter the crash-matrix tests walk.
  uint64_t ops_used() const;

  // --- durability accounting (tests) ---

  /// Bytes of `fname` guaranteed to survive a crash (its synced prefix).
  uint64_t DurableBytes(const std::string& fname) const;
  /// Bytes of `fname` written through this env (the survivable maximum).
  uint64_t WrittenBytes(const std::string& fname) const;
  /// Whether the directory entry for `fname` would survive a crash.
  bool EntryDurable(const std::string& fname) const;

 private:
  friend class FaultWritableFile;

  /// One file's contents: `written` mirrors every appended byte, of which
  /// the leading `durable` are guaranteed after a crash. Shared between
  /// the live and durable namespaces — data durability (fsync) and entry
  /// durability (dir fsync) advance independently, as on a real disk.
  struct Inode {
    std::string written;
    uint64_t durable = 0;
  };
  using InodePtr = std::shared_ptr<Inode>;

  static std::string DirOf(const std::string& path);

  Status CheckMutation(const std::string& what) REQUIRES(mu_);
  /// First touch of a directory adopts its pre-existing files as durable,
  /// so MaterializeCrash never deletes state the env did not create.
  void AdoptDir(const std::string& dir) REQUIRES(mu_);

  Status DoAppend(const std::string& fname, const InodePtr& ino,
                  WritableFile* base_file, const Slice& data);
  Status DoSync(const std::string& fname, const InodePtr& ino,
                WritableFile* base_file);

  Env* const base_;
  mutable Mutex mu_;
  FaultEnvOptions options_ GUARDED_BY(mu_);
  bool powered_off_ GUARDED_BY(mu_) = false;
  uint64_t ops_used_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_used_ GUARDED_BY(mu_) = 0;
  std::map<std::string, InodePtr> live_ns_ GUARDED_BY(mu_);
  std::map<std::string, InodePtr> durable_ns_ GUARDED_BY(mu_);
  std::set<std::string> tracked_dirs_ GUARDED_BY(mu_);
};

}  // namespace lilsm

#endif  // LILSM_UTIL_FAULT_ENV_H_
