// Latency histogram with log-spaced buckets; reports mean and percentiles.
// Values are unit-agnostic (the benches record nanoseconds).
#ifndef LILSM_UTIL_HISTOGRAM_H_
#define LILSM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lilsm {

class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  uint64_t Count() const { return num_; }
  double Min() const { return num_ == 0 ? 0 : min_; }
  double Max() const { return max_; }
  double Sum() const { return sum_; }
  double Mean() const { return num_ == 0 ? 0 : sum_ / num_; }
  double StdDev() const;
  /// Linear interpolation within the containing bucket, LevelDB-style.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string ToString() const;

 private:
  // Buckets cover [1, 1e13] with ~20% geometric spacing (see Limits() in
  // histogram.cc).
  uint64_t num_;
  double min_;
  double max_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_HISTOGRAM_H_
