// Endian-safe fixed-width and varint encodings shared by the WAL, table
// formats, and index serialization. Little-endian on disk, like LevelDB.
#ifndef LILSM_UTIL_CODING_H_
#define LILSM_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace lilsm {

inline void EncodeFixed32(char* dst, uint32_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  buffer[0] = static_cast<uint8_t>(value);
  buffer[1] = static_cast<uint8_t>(value >> 8);
  buffer[2] = static_cast<uint8_t>(value >> 16);
  buffer[3] = static_cast<uint8_t>(value >> 24);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  for (int i = 0; i < 8; i++) {
    buffer[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline uint32_t DecodeFixed32(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  return (static_cast<uint32_t>(buffer[0])) |
         (static_cast<uint32_t>(buffer[1]) << 8) |
         (static_cast<uint32_t>(buffer[2]) << 16) |
         (static_cast<uint32_t>(buffer[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result |= static_cast<uint64_t>(buffer[i]) << (8 * i);
  }
  return result;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Encodes `v` as a varint into `dst`; returns the byte past the end.
/// `dst` must have at least 5 bytes available.
char* EncodeVarint32(char* dst, uint32_t v);
/// As above with up to 10 bytes.
char* EncodeVarint64(char* dst, uint64_t v);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parsers consume bytes from the front of `input` and return false on
/// truncated or malformed data.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes EncodeVarint64 would produce.
int VarintLength(uint64_t v);

// ---- inline implementations ----

inline char* EncodeVarint32(char* dst, uint32_t v) {
  uint8_t* ptr = reinterpret_cast<uint8_t*>(dst);
  static const int B = 128;
  while (v >= static_cast<uint32_t>(B)) {
    *(ptr++) = v | B;
    v >>= 7;
  }
  *(ptr++) = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

inline char* EncodeVarint64(char* dst, uint64_t v) {
  static const int B = 128;
  uint8_t* ptr = reinterpret_cast<uint8_t*>(dst);
  while (v >= static_cast<uint64_t>(B)) {
    *(ptr++) = v | B;
    v >>= 7;
  }
  *(ptr++) = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

inline void PutVarint32(std::string* dst, uint32_t value) {
  char buf[5];
  char* ptr = EncodeVarint32(buf, value);
  dst->append(buf, ptr - buf);
}

inline void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  char* ptr = EncodeVarint64(buf, value);
  dst->append(buf, ptr - buf);
}

inline void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

inline int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 128) {
    v >>= 7;
    len++;
  }
  return len;
}

inline bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input->data());
  const uint8_t* limit = p + input->size();
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = *p;
    p++;
    if (byte & 128) {
      result |= ((byte & 127) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      input->remove_prefix(p - reinterpret_cast<const uint8_t*>(input->data()));
      return true;
    }
  }
  return false;
}

inline bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

inline bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len = 0;
  if (GetVarint32(input, &len) && input->size() >= len) {
    *result = Slice(input->data(), len);
    input->remove_prefix(len);
    return true;
  }
  return false;
}

inline bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace lilsm

#endif  // LILSM_UTIL_CODING_H_
