// Status: the result of an operation that can fail. Used instead of
// exceptions on all storage paths, following the LevelDB/RocksDB idiom.
#ifndef LILSM_UTIL_STATUS_H_
#define LILSM_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace lilsm {

class Status {
 public:
  Status() : code_(kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }

  bool ok() const { return code_ == kOk; }
  bool IsNotFound() const { return code_ == kNotFound; }
  bool IsCorruption() const { return code_ == kCorruption; }
  bool IsIOError() const { return code_ == kIOError; }
  bool IsNotSupported() const { return code_ == kNotSupported; }
  bool IsInvalidArgument() const { return code_ == kInvalidArgument; }

  /// Human-readable representation, e.g. "Corruption: bad footer".
  std::string ToString() const;

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_STATUS_H_
