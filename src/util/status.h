// Status: the result of an operation that can fail. Used instead of
// exceptions on all storage paths, following the LevelDB/RocksDB idiom.
#ifndef LILSM_UTIL_STATUS_H_
#define LILSM_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace lilsm {

class Status {
 public:
  Status() : code_(kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }

  bool ok() const { return code_ == kOk; }
  bool IsNotFound() const { return code_ == kNotFound; }
  bool IsCorruption() const { return code_ == kCorruption; }
  bool IsIOError() const { return code_ == kIOError; }
  bool IsNotSupported() const { return code_ == kNotSupported; }
  bool IsInvalidArgument() const { return code_ == kInvalidArgument; }

  /// Human-readable representation, e.g. "Corruption: bad footer".
  std::string ToString() const;

  // ---- wire transport (src/server/wire_protocol.h) ----
  // A Status crosses the process boundary as one code byte plus its raw
  // message, so the client reconstructs exactly the status the server's
  // DB call produced (ToString on both sides agrees byte-for-byte).

  /// The numeric code for wire encoding (kOk == 0).
  uint8_t code_byte() const { return static_cast<uint8_t>(code_); }
  /// The raw message without the ToString code prefix (empty for OK).
  const std::string& message() const { return msg_; }
  /// Rebuilds a Status from code_byte()/message(). An out-of-range code
  /// decodes as Corruption so a garbled frame cannot fabricate an OK.
  static Status FromWire(uint8_t code, const Slice& msg);

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_STATUS_H_
