// CRC32C (Castagnoli) checksums used by the WAL and table footers.
#ifndef LILSM_UTIL_CRC32C_H_
#define LILSM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lilsm {
namespace crc32c {

/// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
/// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

/// Masked CRCs are stored on disk so that a CRC of data that itself
/// contains embedded CRCs does not degrade (LevelDB convention).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace lilsm

#endif  // LILSM_UTIL_CRC32C_H_
