// SimEnv: an Env decorator that models storage-device read latency and
// counts I/O operations.
//
// The paper's testbed runs on an NVMe SSD where a 4 KiB random read costs
// ~2.1 us (its Table 1). On a development machine the table files sit in the
// page cache and preads return in ~100 ns, which would erase the paper's
// central effect (point lookups are I/O-dominated). SimEnv restores the
// device cost by spinning the monotonic clock for
//     latency = base_latency_ns + bytes * per_byte_ns
// on every RandomAccessFile::Read, and keeps atomic counters so each
// experiment can also be reported in exact I/O units (reads, blocks, bytes).
#ifndef LILSM_UTIL_SIM_ENV_H_
#define LILSM_UTIL_SIM_ENV_H_

#include <atomic>
#include <cstdint>

#include "util/env.h"

namespace lilsm {

struct IoStats {
  std::atomic<uint64_t> random_reads{0};
  std::atomic<uint64_t> random_read_bytes{0};
  std::atomic<uint64_t> blocks_read{0};  // 4 KiB units, rounded up per read
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> simulated_wait_ns{0};

  void Reset() {
    random_reads = 0;
    random_read_bytes = 0;
    blocks_read = 0;
    writes = 0;
    write_bytes = 0;
    simulated_wait_ns = 0;
  }
};

struct SimEnvOptions {
  /// Fixed cost per random read (seek + command overhead).
  uint64_t read_base_latency_ns = 1900;
  /// Transfer cost; 50 ns/KiB ~= 20 GB/s NVMe bus after the fixed cost.
  double read_per_byte_ns = 50.0 / 1024.0;
  /// Per-write-call fixed cost applied to appends (0 disables; compaction
  /// write cost is already dominated by real syscalls + fdatasync).
  uint64_t write_base_latency_ns = 0;
  double write_per_byte_ns = 0.0;
  /// Fixed cost per WritableFile::Sync call (0 disables). Models the
  /// device flush an fdatasync pays (~100 us on SATA, ~20 us NVMe) even
  /// when the backing file sits in the page cache — the serial cost that
  /// group commit amortizes, so the write-heavy bench (fig13) sets this
  /// to make sync'd-writer scaling visible on a dev machine.
  uint64_t sync_latency_ns = 0;
  /// Block size used only for the blocks_read counter.
  uint64_t io_block_size = 4096;
  /// How the wait is served. false (default): busy-spin — precise at
  /// microsecond scales and deterministic, the right model for the paper's
  /// single-threaded measurements. true: nanosleep — releases the CPU, so
  /// concurrent requests overlap like a queued device serving multiple
  /// outstanding I/Os; granularity is OS timer slack (~60 us on Linux), so
  /// pair it with disk-class latencies. The concurrent-throughput bench
  /// (fig13) uses this to demonstrate read overlap even on one core.
  bool sleep_instead_of_spin = false;
  /// Device queue depth for batched reads (NewReadBatch). Overlapped
  /// requests in one batch are charged in waves of up to
  /// min(batch io_depth, this) requests, each wave costing the max of its
  /// members' latencies instead of their sum. 0 means the device imposes
  /// no cap beyond the caller's io_depth. LILSM_IO_DEPTH overrides.
  int io_depth = 0;
};

class SimEnv final : public Env {
 public:
  /// Wraps `base` (not owned). Latency injection applies to random-access
  /// reads (the lookup path); sequential reads and writes are counted only
  /// unless write latency is configured.
  explicit SimEnv(Env* base, SimEnvOptions options = SimEnvOptions());

  /// Reads SimEnvOptions overrides from LILSM_READ_LAT_NS /
  /// LILSM_READ_PER_BYTE_NS / LILSM_SYNC_LAT_NS / LILSM_SIM_SLEEP /
  /// LILSM_IO_DEPTH environment variables, if present.
  static SimEnvOptions OptionsFromEnvironment();

  IoStats* io_stats() { return &stats_; }
  const SimEnvOptions& options() const { return options_; }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  uint64_t NowNanos() override { return base_->NowNanos(); }
  void Schedule(std::function<void()> work) override {
    base_->Schedule(std::move(work));
  }

  /// Deterministic queue-depth model: requests execute serially (counters
  /// identical to sequential Reads) but their modeled waits are charged in
  /// waves of min(io_depth, options().io_depth) requests, each wave
  /// costing the max of its members — overlapped I/O costs max, not sum.
  /// io_depth=1 degenerates to the exact sequential sum.
  std::unique_ptr<ReadBatch> NewReadBatch(int io_depth) override;

  /// Waits `ns` nanoseconds (spinning or sleeping per the options) and
  /// accounts the wait. Exposed for the file wrappers; not intended for
  /// external callers.
  void SpinFor(uint64_t ns);

 private:
  Env* const base_;
  const SimEnvOptions options_;
  IoStats stats_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_SIM_ENV_H_
