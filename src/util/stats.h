// Fine-grained timers and counters instrumenting the read and compaction
// paths. These back the paper's Figure 7 (lookup breakdown), Figure 9
// (compaction breakdown), Figure 10 / Table 1 (per-stage, per-level costs).
#ifndef LILSM_UTIL_STATS_H_
#define LILSM_UTIL_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/env.h"

namespace lilsm {

enum class Timer : int {
  kTableLookup = 0,   // locating the candidate table within a level
  kIndexPredict,      // inner-index traversal + model prediction
  kDiskRead,          // fetching the predicted segment from disk
  kBinarySearch,      // in-segment search after the fetch
  kBloomCheck,        // bloom filter probes
  kMemtableGet,       // memtable lookups
  kCompactTotal,      // whole compaction job
  kCompactKvIo,       // reading inputs + writing merged entries
  kCompactTrain,      // training the learned index over the new table
  kCompactWriteModel, // serializing + writing the index blob
  kLevelIndexBuild,   // lazy-policy level-model rebuilds (read path)
  kModelStitch,       // stitching per-file segments into a level model
  kModelRetrain,      // maintained-policy full-retrain fallback
  kBackgroundWork,    // one background flush-or-compaction pass
  kMultiGet,          // one whole MultiGet batch
  kAsyncReap,         // blocking in ReadBatch::Wait for batched reads
  kServerQueue,       // request frame parsed -> worker picks it up
  kRecover,           // DB::Open recovery: manifest + WAL replay + models
  kModelLoad,         // rebuilding level models during DB::Open
  kNumTimers
};

enum class Counter : int {
  kPointLookups = 0,
  kRangeLookups,
  kWrites,
  kBloomNegatives,     // probes answered "definitely absent"
  kBloomTruePositive,
  kBloomFalsePositive,
  kTablesConsulted,
  kSegmentsFetched,
  kCompactions,
  kFlushes,
  kEntriesCompacted,
  kModelsTrained,
  kModelsStitched,     // level models produced by segment stitching
  kModelRetrains,      // stitch fallbacks to a full level retrain
  kModelBuildBytesRead,  // table bytes scanned to (re)build level models
  kWriteSlowdowns,     // writes delayed by the L0 slowdown trigger
  kWriteStalls,        // writes blocked waiting on background work
  kMultiGetKeys,       // keys served through MultiGet batches
  kMultiGetBatches,    // MultiGet calls
  kBlockCacheHits,     // table blocks served from the shared block cache
  kBlockCacheMisses,   // table blocks fetched from the Env
  kBlockCacheEvictions,  // cache entries dropped under capacity pressure
  kGroupCommits,       // write groups committed by a queue leader
  kGroupCommitBatchSize,  // writers served across all groups (sum of sizes)
  kSubcompactions,     // compaction shards run by sharded compactions
  kAsyncBatches,       // ReadBatch::Wait calls that reached the Env
  kAsyncReads,         // read requests submitted through batches
  kReadaheadHits,      // iterator blocks served from the readahead window
  kReadaheadWasted,    // prefetched blocks dropped before any use
  kServerRequests,     // request frames executed by the service layer
  kServerBatchKeys,    // keys carried by served Get/MultiGet frames
  kServerBytesIn,      // wire bytes read from client connections
  kServerBytesOut,     // wire bytes written to client connections
  kWalRecordsReplayed,   // WAL records re-applied during recovery
  kModelsLoadedFromDisk,  // per-file models loaded from segment sidecars
  kModelSidecarFallbacks,  // sidecar loads that fell back to the reader
  kNumCounters
};

const char* TimerName(Timer t);
const char* CounterName(Counter c);

/// Sharded relaxed-atomic accumulation. The inline engine stays exact and
/// deterministic (one thread, one shard), while ConcurrencyMode::kBackground
/// lets readers, writers, and the background worker all feed the same sink
/// without races — and without cache-line ping-pong: each thread lands in
/// its own cache-aligned shard (the instrumentation is hot enough that
/// shared counters alone were measured to erase read scaling). Writes are
/// exact per cell; read accessors sum the shards, so cross-cell reads are
/// not a consistent snapshot (copy the Stats between runs, as the testbed
/// does).
class Stats {
 public:
  Stats() { Reset(); }

  // Copyable despite the atomics: copies load each cell individually
  // (RunMetrics snapshots a live Stats at the end of a run).
  Stats(const Stats& other) { CopyFrom(other); }
  Stats& operator=(const Stats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void Reset();

  void AddTime(Timer t, uint64_t nanos) {
    Shard& shard = LocalShard();
    shard.timer_ns[static_cast<int>(t)].fetch_add(nanos,
                                                  std::memory_order_relaxed);
    shard.timer_count[static_cast<int>(t)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void Add(Counter c, uint64_t delta = 1) {
    LocalShard().counters[static_cast<int>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t TimeNanos(Timer t) const;
  uint64_t TimerCount(Timer t) const;
  double MeanMicros(Timer t) const {
    uint64_t c = TimerCount(t);
    return c == 0 ? 0.0 : TimeNanos(t) / 1000.0 / static_cast<double>(c);
  }
  uint64_t Count(Counter c) const;

  /// Per-level read accounting (Figure 10): lookup time and probe count
  /// attributed to each LSM level.
  static constexpr int kMaxLevels = 8;
  void AddLevelRead(int level, uint64_t nanos) {
    if (level >= 0 && level < kMaxLevels) {
      Shard& shard = LocalShard();
      shard.level_read_ns[level].fetch_add(nanos, std::memory_order_relaxed);
      shard.level_reads[level].fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t LevelReadNanos(int level) const;
  uint64_t LevelReads(int level) const;

  std::string ToString() const;

 private:
  static constexpr int kShards = 8;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, static_cast<int>(Timer::kNumTimers)>
        timer_ns;
    std::array<std::atomic<uint64_t>, static_cast<int>(Timer::kNumTimers)>
        timer_count;
    std::array<std::atomic<uint64_t>, static_cast<int>(Counter::kNumCounters)>
        counters;
    std::array<std::atomic<uint64_t>, kMaxLevels> level_read_ns;
    std::array<std::atomic<uint64_t>, kMaxLevels> level_reads;
  };

  /// This thread's shard: threads are striped round-robin across shards at
  /// first use, so collisions are possible (still correct, just shared)
  /// but rare at bench-scale thread counts.
  Shard& LocalShard() { return shards_[ShardIndex()]; }
  static size_t ShardIndex();

  void CopyFrom(const Stats& other);

  Shard shards_[kShards];
};

/// RAII timer. Created with a possibly-null Stats target so callers can
/// leave instrumentation compiled in but disabled.
class ScopedTimer {
 public:
  ScopedTimer(Stats* stats, Timer t, Env* env)
      : stats_(stats), timer_(t), env_(env),
        start_(stats ? env->NowNanos() : 0) {}

  ~ScopedTimer() {
    if (stats_ != nullptr) {
      stats_->AddTime(timer_, env_->NowNanos() - start_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stats* const stats_;
  const Timer timer_;
  Env* const env_;
  const uint64_t start_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_STATS_H_
