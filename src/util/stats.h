// Fine-grained timers and counters instrumenting the read and compaction
// paths. These back the paper's Figure 7 (lookup breakdown), Figure 9
// (compaction breakdown), Figure 10 / Table 1 (per-stage, per-level costs).
#ifndef LILSM_UTIL_STATS_H_
#define LILSM_UTIL_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/env.h"

namespace lilsm {

enum class Timer : int {
  kTableLookup = 0,   // locating the candidate table within a level
  kIndexPredict,      // inner-index traversal + model prediction
  kDiskRead,          // fetching the predicted segment from disk
  kBinarySearch,      // in-segment search after the fetch
  kBloomCheck,        // bloom filter probes
  kMemtableGet,       // memtable lookups
  kCompactTotal,      // whole compaction job
  kCompactKvIo,       // reading inputs + writing merged entries
  kCompactTrain,      // training the learned index over the new table
  kCompactWriteModel, // serializing + writing the index blob
  kLevelIndexBuild,   // rebuilding level-granularity models
  kNumTimers
};

enum class Counter : int {
  kPointLookups = 0,
  kRangeLookups,
  kWrites,
  kBloomNegatives,     // probes answered "definitely absent"
  kBloomTruePositive,
  kBloomFalsePositive,
  kTablesConsulted,
  kSegmentsFetched,
  kCompactions,
  kFlushes,
  kEntriesCompacted,
  kModelsTrained,
  kNumCounters
};

const char* TimerName(Timer t);
const char* CounterName(Counter c);

/// Plain (non-atomic) accumulation: the engine is single-threaded by design
/// (compactions run inline), which keeps every measurement deterministic.
class Stats {
 public:
  Stats() { Reset(); }

  void Reset();

  void AddTime(Timer t, uint64_t nanos) {
    timer_ns_[static_cast<int>(t)] += nanos;
    timer_count_[static_cast<int>(t)]++;
  }
  void Add(Counter c, uint64_t delta = 1) {
    counters_[static_cast<int>(c)] += delta;
  }

  uint64_t TimeNanos(Timer t) const { return timer_ns_[static_cast<int>(t)]; }
  uint64_t TimerCount(Timer t) const {
    return timer_count_[static_cast<int>(t)];
  }
  double MeanMicros(Timer t) const {
    uint64_t c = TimerCount(t);
    return c == 0 ? 0.0 : TimeNanos(t) / 1000.0 / static_cast<double>(c);
  }
  uint64_t Count(Counter c) const { return counters_[static_cast<int>(c)]; }

  /// Per-level read accounting (Figure 10): lookup time and probe count
  /// attributed to each LSM level.
  static constexpr int kMaxLevels = 8;
  void AddLevelRead(int level, uint64_t nanos) {
    if (level >= 0 && level < kMaxLevels) {
      level_read_ns_[level] += nanos;
      level_reads_[level]++;
    }
  }
  uint64_t LevelReadNanos(int level) const { return level_read_ns_[level]; }
  uint64_t LevelReads(int level) const { return level_reads_[level]; }

  std::string ToString() const;

 private:
  std::array<uint64_t, static_cast<int>(Timer::kNumTimers)> timer_ns_;
  std::array<uint64_t, static_cast<int>(Timer::kNumTimers)> timer_count_;
  std::array<uint64_t, static_cast<int>(Counter::kNumCounters)> counters_;
  std::array<uint64_t, kMaxLevels> level_read_ns_;
  std::array<uint64_t, kMaxLevels> level_reads_;
};

/// RAII timer. Created with a possibly-null Stats target so callers can
/// leave instrumentation compiled in but disabled.
class ScopedTimer {
 public:
  ScopedTimer(Stats* stats, Timer t, Env* env)
      : stats_(stats), timer_(t), env_(env),
        start_(stats ? env->NowNanos() : 0) {}

  ~ScopedTimer() {
    if (stats_ != nullptr) {
      stats_->AddTime(timer_, env_->NowNanos() - start_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stats* const stats_;
  const Timer timer_;
  Env* const env_;
  const uint64_t start_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_STATS_H_
