#include "util/crc32c.h"

#include <array>

namespace lilsm {
namespace crc32c {

namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated at startup; a byte-at-a-time loop is plenty for our file sizes.
struct Table {
  std::array<uint32_t, 256> t;
  Table() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
  }
};

const Table kTable;

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = kTable.t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace lilsm
