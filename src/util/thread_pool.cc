#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace lilsm {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> work) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(work));
  }
  work_cv_.Signal();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && active_ == 0)) {
    idle_cv_.Wait();
  }
}

size_t ThreadPool::QueueDepth() {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) {
      work_cv_.Wait();
    }
    // On stop, keep draining: Submit-then-wait callers rely on every
    // accepted closure eventually running.
    if (queue_.empty()) {
      if (stop_) break;
      continue;
    }
    std::function<void()> work = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    mu_.Unlock();
    work();
    mu_.Lock();
    LILSM_ASSERT(active_ > 0);
    active_--;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.SignalAll();
    }
  }
  mu_.Unlock();
}

}  // namespace lilsm
