#include "util/thread_pool.h"

#include <algorithm>

namespace lilsm {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // On stop, keep draining: Submit-then-wait callers rely on every
    // accepted closure eventually running.
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> work = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    lock.unlock();
    work();
    lock.lock();
    active_--;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace lilsm
