// Clang Thread Safety Analysis annotations (the Abseil/RocksDB macro
// set). Under clang the macros expand to the `guarded_by`/`requires`/...
// attributes and `-Wthread-safety` turns every missing-lock access into a
// compile error; under gcc (no such attributes) they expand to nothing,
// so the same sources build everywhere. The annotated capability types
// the engine uses are in util/mutex.h.
//
// Conventions (see DESIGN.md "Correctness & static analysis"):
//  * every member a mutex guards carries GUARDED_BY(mu_);
//  * every function documented "REQUIRES mu_" carries REQUIRES(mu_);
//  * lock-dropping sections call mu_.Unlock()/mu_.Lock() explicitly
//    inside a REQUIRES function — the analysis checks the rebalance;
//  * fields owned by a single thread by construction (event-loop state,
//    construction-time constants) stay unannotated with a comment.
#ifndef LILSM_UTIL_THREAD_ANNOTATIONS_H_
#define LILSM_UTIL_THREAD_ANNOTATIONS_H_

// Active only under clang with the capability attributes available;
// build_sanity_test asserts this is 1 whenever __clang__ is defined.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LILSM_THREAD_SAFETY_ANALYSIS_ENABLED 1
#endif
#endif
#ifndef LILSM_THREAD_SAFETY_ANALYSIS_ENABLED
#define LILSM_THREAD_SAFETY_ANALYSIS_ENABLED 0
#endif

#if LILSM_THREAD_SAFETY_ANALYSIS_ENABLED
#define LILSM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define LILSM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) LILSM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY LILSM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) LILSM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) LILSM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  LILSM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // LILSM_UTIL_THREAD_ANNOTATIONS_H_
