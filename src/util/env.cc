#include "util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/env_uring.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace lilsm {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, std::strerror(err));
  }
  return Status::IOError(context, std::strerror(err));
}

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    // pread may return fewer bytes than asked (signals, readahead limits,
    // network filesystems); loop until the range is full or EOF. r == 0
    // is genuine end-of-file, and the short slice must be reported as-is:
    // footer and corruption checks rely on that semantic.
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        *result = Slice();
        return PosixError(fname_, errno);
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  int FileDescriptor() const override { return fd_; }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd), pos_(0) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();

    size_t copy_size = std::min(write_size, kBufSize - pos_);
    std::memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    Status s = FlushBuffer();
    if (!s.ok()) return s;

    if (write_size < kBufSize) {
      std::memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    if (::fdatasync(fd_) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (::close(fd_) != 0 && s.ok()) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

 private:
  Status FlushBuffer() {
    Status s = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return s;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ssize_t r = ::write(fd_, data, size);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      data += r;
      size -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  static constexpr size_t kBufSize = 64 * 1024;

  const std::string fname_;
  int fd_;
  char buf_[kBufSize];
  size_t pos_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

/// Process-wide I/O pool backing the portable ReadBatch. Sized for disk
/// parallelism, not CPU work: threads block in pread almost all the time.
ThreadPool* IoPool() {
  static ThreadPool pool(static_cast<int>(
      std::clamp(std::thread::hardware_concurrency(), 2u, 16u)));
  return &pool;
}

/// Portable batch backend: the waiting thread and up to io_depth-1 pool
/// helpers pull requests from a shared index and serve each one with a
/// blocking FullyRead. Per-wave concurrency thus never exceeds io_depth,
/// matching what an SQ-depth-limited ring would admit.
class ThreadPoolReadBatch final : public ReadBatch {
 public:
  explicit ThreadPoolReadBatch(int io_depth)
      : io_depth_(std::max(1, io_depth)) {}

  void Add(ReadRequest* req) override { requests_.push_back(req); }

  Status Wait() override {
    const size_t n = requests_.size();
    if (n == 0) return Status::OK();
    std::atomic<size_t> next{0};
    auto drain = [&] {
      size_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
        ReadRequest* r = requests_[i];
        r->status = FullyRead(r->file, r->offset, r->n, &r->result,
                              r->scratch);
      }
    };
    const int helpers =
        static_cast<int>(std::min<size_t>(static_cast<size_t>(io_depth_), n)) -
        1;
    Mutex mu;
    CondVar cv(&mu);
    int outstanding = helpers;
    for (int h = 0; h < helpers; h++) {
      IoPool()->Submit([&] {
        drain();
        MutexLock l(&mu);
        if (--outstanding == 0) cv.Signal();
      });
    }
    drain();
    if (helpers > 0) {
      MutexLock l(&mu);
      while (outstanding != 0) cv.Wait();
    }
    Status s;
    for (ReadRequest* r : requests_) {
      if (s.ok() && !r->status.ok()) s = r->status;
    }
    requests_.clear();
    return s;
  }

 private:
  const int io_depth_;
  std::vector<ReadRequest*> requests_;
};

class PosixEnv final : public Env {
 public:
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixRandomAccessFile(fname, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixSequentialFile(fname, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      result->emplace_back(entry->d_name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dirname) override {
    int fd = ::open(dirname.c_str(), O_RDONLY);
    if (fd < 0) {
      return PosixError(dirname, errno);
    }
    Status s;
    if (::fsync(fd) != 0) {
      s = PosixError(dirname, errno);
    }
    ::close(fd);
    return s;
  }

  uint64_t NowNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::unique_ptr<ReadBatch> NewReadBatch(int io_depth) override {
    // Prefer the io_uring backend when the build found liburing and the
    // kernel accepts ring setup; otherwise the portable pool backend.
    std::unique_ptr<ReadBatch> ring = TryNewUringReadBatch(io_depth);
    if (ring != nullptr) return ring;
    return Env::NewReadBatch(io_depth);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

void Env::Schedule(std::function<void()> work) {
  // One background thread shared process-wide (the LevelDB arrangement):
  // lazily constructed on first use, drained and joined at process exit.
  static ThreadPool pool(1);
  pool.Submit(std::move(work));
}

std::unique_ptr<ReadBatch> Env::NewReadBatch(int io_depth) {
  return std::make_unique<ThreadPoolReadBatch>(io_depth);
}

Status FullyRead(const RandomAccessFile* file, uint64_t offset, size_t n,
                 Slice* result, char* scratch) {
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file->Read(offset + got, n - got, &chunk, scratch + got);
    if (!s.ok()) {
      *result = Slice();
      return s;
    }
    if (chunk.empty()) break;  // EOF inside the range: report a short slice.
    if (chunk.data() != scratch + got) {
      std::memmove(scratch + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *result = Slice(scratch, got);
  return Status::OK();
}

namespace {

/// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT), retrying
/// EINTR. Regular files poll ready immediately, so file-backed callers
/// never stall here.
Status PollFd(int fd, short events, const char* what) {
  struct ::pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (::poll(&pfd, 1, -1) < 0) {
    if (errno != EINTR) return PosixError(what, errno);
  }
  return Status::OK();
}

}  // namespace

Status FullyWrite(int fd, const char* data, size_t n, FdWriteFn write_fn) {
  if (write_fn == nullptr) write_fn = ::write;
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = write_fn(fd, data + sent, n - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status s = PollFd(fd, POLLOUT, "FullyWrite poll");
        if (!s.ok()) return s;
        continue;
      }
      return PosixError("FullyWrite", errno);
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FullyReadFd(int fd, char* data, size_t n, size_t* got,
                   FdReadFn read_fn) {
  if (read_fn == nullptr) read_fn = ::read;
  *got = 0;
  while (*got < n) {
    ssize_t r = read_fn(fd, data + *got, n - *got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status s = PollFd(fd, POLLIN, "FullyReadFd poll");
        if (!s.ok()) return s;
        continue;
      }
      return PosixError("FullyReadFd", errno);
    }
    if (r == 0) break;  // EOF inside the range: report the short count.
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const size_t kBufferSize = 64 * 1024;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) break;
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) break;
  }
  return s;
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) env->RemoveFile(fname);
  return s;
}

}  // namespace lilsm
