// ThreadPool: a fixed-size worker pool with a FIFO work queue, backing
// Env::Schedule. The destructor completes all queued work before joining,
// so callers that wait for their own completion signals (the DB's
// background-work flag) never lose a scheduled closure.
#ifndef LILSM_UTIL_THREAD_POOL_H_
#define LILSM_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads = 1);
  /// Drains the queue (every submitted closure runs), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `work` for execution on some pool thread. Closures run in
  /// FIFO order but concurrently across threads; callers needing mutual
  /// exclusion provide their own (the DB claims disjoint work units
  /// under its mutex before each closure runs).
  void Submit(std::function<void()> work) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no closure is running.
  void WaitIdle() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }
  /// Queued-but-not-started closures (diagnostic; racy by nature).
  size_t QueueDepth() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_{&mu_};  // signals workers: work or stop
  CondVar idle_cv_{&mu_};  // signals WaitIdle: pool went idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  int active_ GUARDED_BY(mu_) = 0;   // closures mid-run
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // immutable after construction
};

}  // namespace lilsm

#endif  // LILSM_UTIL_THREAD_POOL_H_
