// ThreadPool: a fixed-size worker pool with a FIFO work queue, backing
// Env::Schedule. The destructor completes all queued work before joining,
// so callers that wait for their own completion signals (the DB's
// background-work flag) never lose a scheduled closure.
#ifndef LILSM_UTIL_THREAD_POOL_H_
#define LILSM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lilsm {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads = 1);
  /// Drains the queue (every submitted closure runs), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `work` for execution on some pool thread. Closures run in
  /// FIFO order but concurrently across threads; callers needing mutual
  /// exclusion provide their own (the DB claims disjoint work units
  /// under its mutex before each closure runs).
  void Submit(std::function<void()> work);

  /// Blocks until the queue is empty and no closure is running.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  /// Queued-but-not-started closures (diagnostic; racy by nature).
  size_t QueueDepth();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: work or stop
  std::condition_variable idle_cv_;  // signals WaitIdle: pool went idle
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  int active_ = 0;                           // closures mid-run; guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_THREAD_POOL_H_
