#include "util/histogram.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace lilsm {

namespace {

std::vector<double> MakeLimits() {
  std::vector<double> limits;
  double v = 1.0;
  while (v < 1e13) {
    limits.push_back(v);
    v *= 1.2;
  }
  limits.push_back(std::numeric_limits<double>::infinity());
  return limits;
}

const std::vector<double>& Limits() {
  static const std::vector<double> kLimits = MakeLimits();
  return kLimits;
}

}  // namespace

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  num_ = 0;
  min_ = std::numeric_limits<double>::max();
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(Limits().size(), 0.0);
}

void Histogram::Add(double value) {
  const std::vector<double>& limits = Limits();
  // Binary search for the first bucket whose limit is > value.
  size_t lo = 0, hi = limits.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (limits[mid] > value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo] += 1.0;
  num_++;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.num_ == 0) return;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t b = 0; b < buckets_.size(); b++) {
    buckets_[b] += other.buckets_[b];
  }
}

double Histogram::StdDev() const {
  if (num_ == 0) return 0;
  double n = static_cast<double>(num_);
  double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance > 0 ? std::sqrt(variance) : 0;
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;
  const std::vector<double>& limits = Limits();
  double threshold = num_ * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      double left_point = (b == 0) ? 0 : limits[b - 1];
      double right_point = limits[b];
      if (std::isinf(right_point)) right_point = max_;
      double left_sum = cumulative - buckets_[b];
      double pos =
          buckets_[b] == 0 ? 0 : (threshold - left_sum) / buckets_[b];
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(num_), Mean(),
                Percentile(50), Percentile(90), Percentile(99), Max());
  return buf;
}

}  // namespace lilsm
