// Annotated capability types for Clang Thread Safety Analysis: the
// std::mutex / std::condition_variable / std::shared_mutex wrappers the
// engine locks with. The standard types carry no capability attributes,
// so they are invisible to `-Wthread-safety`; these wrappers (the
// LevelDB port::Mutex shape) are what lets GUARDED_BY/REQUIRES
// annotations across the stack actually be checked at compile time.
//
//   Mutex mu;                     // CAPABILITY
//   int x GUARDED_BY(mu);         // member access checked
//   { MutexLock l(&mu); x++; }    // SCOPED_CAPABILITY guard
//   void F() REQUIRES(mu);        // caller must hold mu
//
// Lock-dropping sections (the DB's drop-mutex-during-heavy-work pattern)
// call mu.Unlock()/mu.Lock() explicitly inside a REQUIRES(mu) function;
// the analysis verifies the rebalance on every path.
#ifndef LILSM_UTIL_MUTEX_H_
#define LILSM_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace lilsm {

class CondVar;

/// Exclusive mutex. Wraps std::mutex; adds the `capability` attribute
/// plus AssertHeld() for lock-boundary invariants.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Compile-time assertion that the calling context holds this mutex —
  /// tells the analysis the capability is held on paths it cannot see
  /// (no runtime check; std::mutex records no owner).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex — the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to one Mutex for its whole lifetime (the
/// LevelDB port::CondVar shape). Wait() atomically releases and
/// reacquires that mutex; the analysis sees it as held throughout.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Deliberately unannotated (as in LevelDB's port): the caller holds the
  // bound mutex through some other capability expression (`mutex_`, a
  // MutexLock) that the analysis cannot prove aliases `mu_`. Wait()
  // atomically releases and reacquires, so treating the caller's lock as
  // held throughout is exactly right.
  void Wait() {
    // Adopt the already-held native mutex so std::condition_variable can
    // do its atomic unlock/wait/relock, then release the unique_lock
    // without unlocking — ownership stays with the caller's Lock().
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// Readers-writer mutex. Wraps std::shared_mutex; exclusive and shared
/// sides both carry capability attributes, including the try-lock
/// entry points the model-catalog read path branches on.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() = default;

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace lilsm

#endif  // LILSM_UTIL_MUTEX_H_
