// Env: the interface between the storage engine and the operating system.
// PosixEnv implements it with pread/append file I/O; SimEnv (sim_env.h)
// decorates any Env with a calibrated I/O latency model and counters so
// experiments are reproducible on page-cached filesystems.
#ifndef LILSM_UTIL_ENV_H_
#define LILSM_UTIL_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

/// A file abstraction for reading at arbitrary offsets (pread).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset`. Sets `*result` to the data
  /// read (which may point into `scratch`, whose lifetime the caller owns).
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// A file abstraction for sequential appends.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A file abstraction for sequential reads (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into scratch; `*result` views the bytes read.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide default environment (POSIX). Never deleted.
  static Env* Default();

  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Monotonic clock in nanoseconds, used by all instrumentation.
  virtual uint64_t NowNanos() = 0;
  uint64_t NowMicros() { return NowNanos() / 1000; }

  /// Runs `work` once on a background thread. The default implementation
  /// feeds a process-wide ThreadPool shared by every Env (mirroring
  /// LevelDB's single maintenance thread), which serializes maintenance
  /// across DB instances; decorators forward to their base. Closures must
  /// not assume any ordering beyond FIFO dispatch, and the engine only
  /// calls this in ConcurrencyMode::kBackground, so kInline runs stay
  /// deterministic and thread-free.
  virtual void Schedule(std::function<void()> work);
};

/// Reads the entire named file into *data.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Creates (or truncates) the named file with the given contents and syncs.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname);

}  // namespace lilsm

#endif  // LILSM_UTIL_ENV_H_
