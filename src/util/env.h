// Env: the interface between the storage engine and the operating system.
// PosixEnv implements it with pread/append file I/O; SimEnv (sim_env.h)
// decorates any Env with a calibrated I/O latency model and counters so
// experiments are reproducible on page-cached filesystems.
#ifndef LILSM_UTIL_ENV_H_
#define LILSM_UTIL_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

/// A file abstraction for reading at arbitrary offsets (pread).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset`. Sets `*result` to the data
  /// read (which may point into `scratch`, whose lifetime the caller owns).
  /// A result shorter than `n` means the file ended inside the range.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  /// Like Read, but a latency-modeling Env (SimEnv) reports the modeled
  /// device cost in `*latency_ns` instead of stalling inline, so a batch
  /// backend can overlap the waits of many requests (cost = max per wave,
  /// not sum). The default performs a plain Read and reports zero.
  virtual Status ReadDeferred(uint64_t offset, size_t n, Slice* result,
                              char* scratch, uint64_t* latency_ns) const {
    *latency_ns = 0;
    return Read(offset, n, result, scratch);
  }

  /// OS file descriptor for backends that submit raw syscalls (io_uring),
  /// or -1 when the file is not backed by one (wrappers, in-memory files).
  virtual int FileDescriptor() const { return -1; }
};

/// One read in a batch. The caller owns `scratch` (at least `n` bytes) and
/// keeps it alive until the owning ReadBatch::Wait returns; `result` and
/// `status` are filled by the batch. A short `result` means EOF inside the
/// range, mirroring RandomAccessFile::Read.
struct ReadRequest {
  const RandomAccessFile* file = nullptr;
  uint64_t offset = 0;
  size_t n = 0;
  char* scratch = nullptr;
  Slice result;
  Status status;
};

/// An io_uring-shaped submission queue: Add() enqueues requests, Wait()
/// executes them all (up to `io_depth` in flight at once) and returns the
/// first failure, if any — per-request outcomes land in each request's
/// `result`/`status`. Wait() clears the queue, so one batch object can be
/// reused across successive submission rounds (iterator readahead does
/// this). Batches are not thread-safe; each belongs to one caller.
class ReadBatch {
 public:
  virtual ~ReadBatch() = default;

  /// Enqueues `req` for the next Wait(). The pointed-to request (and its
  /// scratch buffer) must stay alive until Wait() returns.
  virtual void Add(ReadRequest* req) = 0;

  /// Executes every queued request and blocks until all complete. Returns
  /// OK if every request succeeded, else the first failing status (all
  /// requests still run to completion). A Wait() with nothing queued is a
  /// no-op returning OK.
  virtual Status Wait() = 0;
};

/// A file abstraction for sequential appends.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A file abstraction for sequential reads (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into scratch; `*result` views the bytes read.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide default environment (POSIX). Never deleted.
  static Env* Default();

  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Makes the directory's entries durable (fsync of the directory fd on
  /// POSIX). A file's own Sync() persists its data blocks but not the
  /// directory entry naming it; after creating or renaming a file whose
  /// presence must survive a crash, callers sync the parent directory too.
  /// The default is a no-op so in-memory and test Envs need not override.
  virtual Status SyncDir(const std::string& dirname) {
    (void)dirname;
    return Status::OK();
  }

  /// Monotonic clock in nanoseconds, used by all instrumentation.
  virtual uint64_t NowNanos() = 0;
  uint64_t NowMicros() { return NowNanos() / 1000; }

  /// Runs `work` once on a background thread. The default implementation
  /// feeds a process-wide ThreadPool shared by every Env (mirroring
  /// LevelDB's single maintenance thread), which serializes maintenance
  /// across DB instances; decorators forward to their base. Closures must
  /// not assume any ordering beyond FIFO dispatch, and the engine only
  /// calls this in ConcurrencyMode::kBackground, so kInline runs stay
  /// deterministic and thread-free.
  virtual void Schedule(std::function<void()> work);

  /// Creates a batch that keeps up to `io_depth` reads in flight at once
  /// (clamped to at least 1). The default backend fans submissions out
  /// over a process-wide I/O ThreadPool, with the waiting thread also
  /// pulling requests; PosixEnv upgrades to io_uring when the build found
  /// liburing (LILSM_WITH_URING); SimEnv returns a deterministic
  /// queue-depth model instead of real concurrency.
  virtual std::unique_ptr<ReadBatch> NewReadBatch(int io_depth);
};

/// Reads exactly `n` bytes at `offset` unless the file ends first: loops on
/// short reads, accumulating into `scratch`, and stops at EOF (an empty
/// chunk), so `*result` is only shorter than `n` at end of file. Batch
/// backends use this so wrapped files that return partial reads still
/// produce full spans.
Status FullyRead(const RandomAccessFile* file, uint64_t offset, size_t n,
                 Slice* result, char* scratch);

/// Raw-fd write/read hooks, injectable so tests can force the partial
/// writes, EINTR storms, and EAGAIN stalls real sockets produce. nullptr
/// selects ::write / ::read.
using FdWriteFn = ssize_t (*)(int fd, const void* buf, size_t n);
using FdReadFn = ssize_t (*)(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes to `fd` (the socket mirror of FullyRead):
/// loops on short writes, retries EINTR, and on EAGAIN/EWOULDBLOCK —
/// a full socket send buffer — poll()s for writability before retrying,
/// so callers on blocking or timeout sockets never lose a frame tail.
Status FullyWrite(int fd, const char* data, size_t n,
                  FdWriteFn write_fn = nullptr);

/// Reads exactly `n` bytes from `fd` unless it reaches EOF first: loops
/// on short reads, retries EINTR, and poll()s through EAGAIN. `*got` < n
/// means EOF inside the range (a peer hangup mid-frame).
Status FullyReadFd(int fd, char* data, size_t n, size_t* got,
                   FdReadFn read_fn = nullptr);

/// Reads the entire named file into *data.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Creates (or truncates) the named file with the given contents and syncs.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname);

}  // namespace lilsm

#endif  // LILSM_UTIL_ENV_H_
