#include "util/sim_env.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace lilsm {

namespace {

class SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(std::unique_ptr<RandomAccessFile> base, SimEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override;
  Status ReadDeferred(uint64_t offset, size_t n, Slice* result, char* scratch,
                      uint64_t* latency_ns) const override;
  int FileDescriptor() const override { return base_->FileDescriptor(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  SimEnv* const env_;
};

class SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(std::unique_ptr<WritableFile> base, SimEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override;
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status s = base_->Sync();
    if (s.ok()) env_->SpinFor(env_->options().sync_latency_ns);
    return s;
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  SimEnv* const env_;
};

}  // namespace

SimEnv::SimEnv(Env* base, SimEnvOptions options)
    : base_(base), options_(options) {}

SimEnvOptions SimEnv::OptionsFromEnvironment() {
  SimEnvOptions opts;
  if (const char* v = std::getenv("LILSM_READ_LAT_NS")) {
    opts.read_base_latency_ns = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("LILSM_READ_PER_BYTE_NS")) {
    opts.read_per_byte_ns = std::strtod(v, nullptr);
  }
  if (const char* v = std::getenv("LILSM_SYNC_LAT_NS")) {
    opts.sync_latency_ns = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("LILSM_SIM_SLEEP")) {
    opts.sleep_instead_of_spin = v[0] != '\0' && v[0] != '0';
  }
  if (const char* v = std::getenv("LILSM_IO_DEPTH")) {
    opts.io_depth = static_cast<int>(std::strtol(v, nullptr, 10));
    if (opts.io_depth < 0) opts.io_depth = 0;
  }
  return opts;
}

void SimEnv::SpinFor(uint64_t ns) {
  if (ns == 0) return;
  stats_.simulated_wait_ns.fetch_add(ns, std::memory_order_relaxed);
  if (options_.sleep_instead_of_spin) {
    // Block instead of burn: concurrent requests overlap their waits the
    // way a real device serves a queue (granularity: OS timer slack).
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  const uint64_t start = base_->NowNanos();
  while (base_->NowNanos() - start < ns) {
    // Busy-wait: keeps injected latency inside wall-clock measurements
    // without the scheduling noise of nanosleep at microsecond scales.
  }
}

Status SimEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (!s.ok()) return s;
  result->reset(new SimRandomAccessFile(std::move(base_file), this));
  return Status::OK();
}

Status SimEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  result->reset(new SimWritableFile(std::move(base_file), this));
  return Status::OK();
}

Status SimEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

namespace {

/// Shared body of Read/ReadDeferred: performs the base read, accounts the
/// counters, and either serves the modeled wait inline (`deferred_wait ==
/// nullptr`) or reports it to the caller so a batch can overlap waits.
Status SimReadImpl(const RandomAccessFile* base, SimEnv* env, uint64_t offset,
                   size_t n, Slice* result, char* scratch,
                   uint64_t* deferred_wait) {
  Status s = base->Read(offset, n, result, scratch);
  if (!s.ok()) return s;
  IoStats* stats = env->io_stats();
  const SimEnvOptions& opts = env->options();
  stats->random_reads.fetch_add(1, std::memory_order_relaxed);
  stats->random_read_bytes.fetch_add(result->size(),
                                     std::memory_order_relaxed);
  // A read spanning k device blocks costs k block fetches; count blocks by
  // the covered [offset, offset+n) range.
  const uint64_t bs = opts.io_block_size;
  const uint64_t first_block = offset / bs;
  const uint64_t last_block = (offset + (n > 0 ? n - 1 : 0)) / bs;
  const uint64_t blocks = last_block - first_block + 1;
  stats->blocks_read.fetch_add(blocks, std::memory_order_relaxed);
  const uint64_t wait =
      opts.read_base_latency_ns +
      static_cast<uint64_t>(opts.read_per_byte_ns * static_cast<double>(n));
  if (deferred_wait != nullptr) {
    *deferred_wait = wait;
  } else {
    env->SpinFor(wait);
  }
  return s;
}

/// Deterministic queue-depth model: requests run serially (so IoStats are
/// identical to the sequential path), their modeled waits are folded into
/// waves of at most `wave` requests — a wave costs the max of its members,
/// as a device serving `wave` overlapped I/Os would — and the total is
/// served in one SpinFor after the last request.
class SimReadBatch final : public ReadBatch {
 public:
  SimReadBatch(SimEnv* env, int io_depth)
      : env_(env), io_depth_(io_depth < 1 ? 1 : io_depth) {}

  void Add(ReadRequest* req) override { requests_.push_back(req); }

  Status Wait() override {
    if (requests_.empty()) return Status::OK();
    int wave = io_depth_;
    const int device_cap = env_->options().io_depth;
    if (device_cap > 0 && device_cap < wave) wave = device_cap;
    Status s;
    uint64_t total = 0;
    uint64_t wave_max = 0;
    int in_wave = 0;
    for (ReadRequest* r : requests_) {
      uint64_t lat = 0;
      r->status =
          r->file->ReadDeferred(r->offset, r->n, &r->result, r->scratch, &lat);
      if (s.ok() && !r->status.ok()) s = r->status;
      if (lat > wave_max) wave_max = lat;
      if (++in_wave == wave) {
        total += wave_max;
        wave_max = 0;
        in_wave = 0;
      }
    }
    total += wave_max;  // The final partial wave.
    env_->SpinFor(total);
    requests_.clear();
    return s;
  }

 private:
  SimEnv* const env_;
  const int io_depth_;
  std::vector<ReadRequest*> requests_;
};

}  // namespace

std::unique_ptr<ReadBatch> SimEnv::NewReadBatch(int io_depth) {
  return std::make_unique<SimReadBatch>(this, io_depth);
}

Status SimRandomAccessFile::Read(uint64_t offset, size_t n, Slice* result,
                                 char* scratch) const {
  return SimReadImpl(base_.get(), env_, offset, n, result, scratch, nullptr);
}

Status SimRandomAccessFile::ReadDeferred(uint64_t offset, size_t n,
                                         Slice* result, char* scratch,
                                         uint64_t* latency_ns) const {
  *latency_ns = 0;
  return SimReadImpl(base_.get(), env_, offset, n, result, scratch,
                     latency_ns);
}

Status SimWritableFile::Append(const Slice& data) {
  IoStats* stats = env_->io_stats();
  stats->writes.fetch_add(1, std::memory_order_relaxed);
  stats->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
  const SimEnvOptions& opts = env_->options();
  if (opts.write_base_latency_ns > 0 || opts.write_per_byte_ns > 0) {
    env_->SpinFor(opts.write_base_latency_ns +
                  static_cast<uint64_t>(opts.write_per_byte_ns *
                                        static_cast<double>(data.size())));
  }
  return base_->Append(data);
}

}  // namespace lilsm
