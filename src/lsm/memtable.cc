#include "lsm/memtable.h"

#include <cstring>

#include "util/coding.h"

namespace lilsm {

namespace {

Key EntryKey(const char* entry) { return DecodeFixed64(entry); }
uint64_t EntryTag(const char* entry) { return DecodeFixed64(entry + 8); }

Slice EntryValue(const char* entry) {
  Slice input(entry + 16, 5);
  uint32_t vlen = 0;
  GetVarint32(&input, &vlen);
  return Slice(input.data(), vlen);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  const Key a_key = EntryKey(a);
  const Key b_key = EntryKey(b);
  if (a_key != b_key) return a_key < b_key ? -1 : 1;
  const uint64_t a_tag = EntryTag(a);
  const uint64_t b_tag = EntryTag(b);
  if (a_tag != b_tag) return a_tag > b_tag ? -1 : 1;  // newest first
  return 0;
}

MemTable::MemTable() : table_(KeyComparator(), &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, Key key,
                   const Slice& value) {
  const size_t encoded_len =
      16 + VarintLength(value.size()) + value.size();
  char* buf = arena_.Allocate(encoded_len);
  EncodeFixed64(buf, key);
  EncodeFixed64(buf + 8, PackTag(seq, type));
  char* p = EncodeVarint32(buf + 16, static_cast<uint32_t>(value.size()));
  std::memcpy(p, value.data(), value.size());
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(Key key, SequenceNumber snapshot, std::string* value,
                   ValueType* type) const {
  // Seek to the newest visible version: tags sort descending, so the entry
  // with tag <= PackTag(snapshot, 0xff) comes first at this key.
  char target[16];
  EncodeFixed64(target, key);
  EncodeFixed64(target + 8, PackTag(snapshot, static_cast<ValueType>(0xff)));
  Table::Iterator iter(&table_);
  iter.Seek(target);
  if (!iter.Valid()) return false;
  const char* entry = iter.key();
  if (EntryKey(entry) != key) return false;
  *type = TagType(EntryTag(entry));
  if (*type == kTypeValue) {
    Slice v = EntryValue(entry);
    value->assign(v.data(), v.size());
  } else {
    value->clear();
  }
  return true;
}

/// Adapts the skiplist iterator to the TableIterator interface so the
/// merging iterator can consume memtable and table sources uniformly.
class MemTableIterator final : public TableIterator {
 public:
  explicit MemTableIterator(const MemTable* mem) : iter_(&mem->table_) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(Key target) override {
    char buf[16];
    EncodeFixed64(buf, target);
    EncodeFixed64(buf + 8, PackTag(kMaxSequenceNumber,
                                   static_cast<ValueType>(0xff)));
    iter_.Seek(buf);
  }
  void Next() override { iter_.Next(); }

  Key key() const override { return EntryKey(iter_.key()); }
  uint64_t tag() const override { return EntryTag(iter_.key()); }
  Slice value() const override { return EntryValue(iter_.key()); }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
};

std::unique_ptr<TableIterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(this);
}

}  // namespace lilsm
