// LevelIndexStore: level-granularity learned models (the "LevelModel" of
// Dai et al. evaluated by the paper's Figure 8). One model per level is
// trained over the concatenated keys of the level's files; predictions are
// global positions translated into per-file entry bounds.
//
// Models are built lazily on first use and invalidated by the version
// stamp, so a read-only workload pays the build cost once (accounted under
// Timer::kLevelIndexBuild).
//
// Concurrency: one reader-writer lock per level. Predictions take the
// shared side, so concurrent lookups on a level proceed in parallel;
// builds take the exclusive side. Both hot-path entry points use
// try-locks — a reader arriving while the level's model is mid-rebuild
// (or a builder arriving while another builds) returns immediately and
// the caller falls back to the file-granularity path rather than
// stalling behind a full-level disk scan. Stamp checks are race-free by
// construction: EnsureBuilt pairs (model, stamp) under the exclusive
// lock, and PredictInFile verifies the caller's stamp against the
// model's before answering, so a reader pinned to one version never
// consults a model trained on another's file set.
#ifndef LILSM_LSM_LEVEL_INDEX_H_
#define LILSM_LSM_LEVEL_INDEX_H_

#include <memory>
#include <shared_mutex>
#include <vector>

#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lilsm {

class LevelIndexStore {
 public:
  LevelIndexStore(Env* env, Stats* stats) : env_(env), stats_(stats) {}

  /// Ensures the model for `level` matches `stamp` (a Version::stamp()),
  /// rebuilding from the level's files if not. No-op for empty levels, and
  /// (by try-lock) when the level is busy — being built by another thread
  /// or actively predicted from; callers retry on their next lookup.
  /// Rebuilds are monotone in the stamp: a reader holding an older pinned
  /// version never downgrades a model built for a newer one.
  Status EnsureBuilt(int level, const std::vector<FileMeta>& files,
                     TableCache* cache, IndexType type,
                     const IndexConfig& config, uint64_t stamp);

  /// Translates a global prediction for `key` into entry bounds local to
  /// `file_idx` (the file, found by metadata, that may contain the key).
  /// Returns false if no model built for exactly `stamp` is immediately
  /// available (none, a different stamp, or a rebuild in progress) — the
  /// caller falls back to the per-file index.
  bool PredictInFile(int level, Key key, size_t file_idx, uint64_t stamp,
                     size_t* local_lo, size_t* local_hi) const;

  void InvalidateAll();
  bool HasModel(int level) const;
  size_t SegmentCount(int level) const;

  /// Memory of all live level models.
  size_t MemoryUsage() const;

 private:
  struct LevelModel {
    std::unique_ptr<LearnedIndex> index;
    // cumulative[i] = total entries of files [0, i); size = files + 1.
    std::vector<uint64_t> cumulative;
    uint64_t stamp = 0;
    bool valid = false;
  };

  Env* const env_;
  Stats* const stats_;
  // Per-level: predictions share, builds are exclusive.
  mutable std::shared_mutex level_mu_[kNumLevels];
  LevelModel models_[kNumLevels];  // guarded by level_mu_[level]
};

}  // namespace lilsm

#endif  // LILSM_LSM_LEVEL_INDEX_H_
