// LevelIndexStore: level-granularity learned models (the "LevelModel" of
// Dai et al. evaluated by the paper's Figure 8). One model per level is
// trained over the concatenated keys of the level's files; predictions are
// global positions translated into per-file entry bounds.
//
// Models are built lazily on first use and invalidated by the VersionSet
// stamp, so a read-only workload pays the build cost once (accounted under
// Timer::kLevelIndexBuild).
#ifndef LILSM_LSM_LEVEL_INDEX_H_
#define LILSM_LSM_LEVEL_INDEX_H_

#include <memory>
#include <vector>

#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lilsm {

class LevelIndexStore {
 public:
  LevelIndexStore(Env* env, Stats* stats) : env_(env), stats_(stats) {}

  /// Ensures the model for `level` matches `stamp`, rebuilding from the
  /// level's files if not. No-op for empty levels.
  Status EnsureBuilt(int level, const std::vector<FileMeta>& files,
                     TableCache* cache, IndexType type,
                     const IndexConfig& config, uint64_t stamp);

  /// Translates a global prediction for `key` into entry bounds local to
  /// `file_idx` (the file, found by metadata, that may contain the key).
  /// Returns false if no model is available for the level.
  bool PredictInFile(int level, Key key, size_t file_idx, size_t* local_lo,
                     size_t* local_hi) const;

  void InvalidateAll();
  bool HasModel(int level) const { return models_[level].valid; }
  size_t SegmentCount(int level) const;

  /// Memory of all live level models.
  size_t MemoryUsage() const;

 private:
  struct LevelModel {
    std::unique_ptr<LearnedIndex> index;
    // cumulative[i] = total entries of files [0, i); size = files + 1.
    std::vector<uint64_t> cumulative;
    uint64_t stamp = 0;
    bool valid = false;
  };

  Env* const env_;
  Stats* const stats_;
  LevelModel models_[kNumLevels];
};

}  // namespace lilsm

#endif  // LILSM_LSM_LEVEL_INDEX_H_
