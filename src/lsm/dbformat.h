// Internal key format and database file naming.
//
// Every entry carries a tag = (sequence << 8) | ValueType, LevelDB's
// internal-key trailer. Ordering is (user key ascending, sequence
// descending) so the newest version of a key sorts first.
#ifndef LILSM_LSM_DBFORMAT_H_
#define LILSM_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "index/index.h"

namespace lilsm {

using SequenceNumber = uint64_t;

enum ValueType : uint8_t {
  kTypeDeletion = 0,
  kTypeValue = 1,
};

constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

inline uint64_t PackTag(SequenceNumber seq, ValueType type) {
  return (seq << 8) | static_cast<uint64_t>(type);
}
inline SequenceNumber TagSequence(uint64_t tag) { return tag >> 8; }
inline ValueType TagType(uint64_t tag) {
  return static_cast<ValueType>(tag & 0xff);
}

/// Snapshot visibility: an entry is visible at a snapshot when it was
/// sequenced at or before it. Snapshot handles and iterators pin a
/// sequence number and filter every source through this predicate.
inline bool TagVisibleAt(uint64_t tag, SequenceNumber snapshot) {
  return TagSequence(tag) <= snapshot;
}

/// Orders (key, tag) with newest-first within a user key.
inline bool InternalKeyLess(Key a_key, uint64_t a_tag, Key b_key,
                            uint64_t b_tag) {
  if (a_key != b_key) return a_key < b_key;
  return a_tag > b_tag;  // higher sequence first
}

constexpr int kNumLevels = 7;

// ---- file naming (LevelDB conventions) ----

std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

enum class FileKind {
  kTableFile,
  kWalFile,
  kManifestFile,
  kCurrentFile,
  kTempFile,
  kUnknown,
};

/// Parses a directory entry name; sets *number for numbered kinds.
FileKind ParseFileName(const std::string& name, uint64_t* number);

}  // namespace lilsm

#endif  // LILSM_LSM_DBFORMAT_H_
