// CompactionJob: merges the picked input files into new tables at the next
// level, training the configured learned index for every output table and
// recording the paper's Figure 9 breakdown (KV I/O vs. model training vs.
// model writing).
#ifndef LILSM_LSM_COMPACTION_H_
#define LILSM_LSM_COMPACTION_H_

#include <string>

#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lilsm {

struct CompactionContext {
  Env* env = nullptr;
  Stats* stats = nullptr;
  TableCache* table_cache = nullptr;
  VersionSet* versions = nullptr;
  std::string dbname;
  uint64_t sstable_target_size = 0;
};

class CompactionJob {
 public:
  explicit CompactionJob(const CompactionContext& ctx) : ctx_(ctx) {}

  /// Merges pick.inputs (level L) with pick.next_inputs (level L+1) into
  /// new tables at level L+1, dropping shadowed versions and, when no
  /// deeper level may contain the key, tombstones. Records the resulting
  /// file swaps into *edit (the caller applies it).
  Status Run(const VersionSet::CompactionPick& pick, const Version& base,
             VersionEdit* edit);

 private:
  Status FinishOutput(TableBuilder* builder, uint64_t file_number,
                      Key smallest, Key largest, int output_level,
                      VersionEdit* edit);

  CompactionContext ctx_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_COMPACTION_H_
