// CompactionJob: merges the picked input files into new tables at the next
// level, training the configured learned index for every output table and
// recording the paper's Figure 9 breakdown (KV I/O vs. model training vs.
// model writing).
#ifndef LILSM_LSM_COMPACTION_H_
#define LILSM_LSM_COMPACTION_H_

#include <atomic>
#include <string>

#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lilsm {

struct CompactionContext {
  Env* env = nullptr;
  Stats* stats = nullptr;
  TableCache* table_cache = nullptr;
  VersionSet* versions = nullptr;
  std::string dbname;
  uint64_t sstable_target_size = 0;
  /// When set, the job polls this flag at output-file boundaries and
  /// aborts once it flips — how a closing DB cuts a running background
  /// compaction short instead of riding it out. Outputs finished before
  /// the abort are recorded in the edit; the caller removes them when it
  /// discards the edit.
  const std::atomic<bool>* shutdown = nullptr;
};

class CompactionJob {
 public:
  explicit CompactionJob(const CompactionContext& ctx) : ctx_(ctx) {}

  /// Merges pick.inputs (level L) with pick.next_inputs (level L+1) into
  /// new tables at level L+1, dropping shadowed versions and, when no
  /// deeper level may contain the key, tombstones. Records the resulting
  /// file swaps into *edit (the caller applies it). `base` may be a pinned
  /// version: the job only reads it, so it can run with the DB mutex
  /// released. On a shutdown abort the in-progress output is removed, but
  /// finished outputs already recorded in *edit are the CALLER's to clean
  /// up (it owns the decision to install or discard the edit).
  Status Run(const VersionSet::CompactionPick& pick, const Version& base,
             VersionEdit* edit);

  /// True when ctx.shutdown asked the job to stop.
  bool ShutdownRequested() const {
    return ctx_.shutdown != nullptr &&
           ctx_.shutdown->load(std::memory_order_acquire);
  }

 private:
  Status FinishOutput(TableBuilder* builder, uint64_t file_number,
                      Key smallest, Key largest, int output_level,
                      VersionEdit* edit);

  CompactionContext ctx_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_COMPACTION_H_
