// CompactionJob: merges the picked input files into new tables at the next
// level, training the configured learned index for every output table and
// recording the paper's Figure 9 breakdown (KV I/O vs. model training vs.
// model writing).
//
// With ctx.max_subcompactions > 1 the job range-partitions one compaction
// at the next-level input file boundaries into up to that many shards and
// merges them in parallel on ctx.subcompaction_pool (see DESIGN.md "Write
// path & concurrency architecture"). Shard ownership is exact — every key
// belongs to exactly one shard's [lo, hi) range, every next-level input
// file to exactly one shard, and level-L inputs are clipped to the range —
// so the union of shard outputs holds exactly the entries a single-threaded
// merge would produce (file cut points may differ: each shard starts a
// fresh output file). All shard outputs land in ONE VersionEdit, installed
// atomically by the caller like any other compaction.
#ifndef LILSM_LSM_COMPACTION_H_
#define LILSM_LSM_COMPACTION_H_

#include <atomic>
#include <string>
#include <vector>

#include "lsm/table_cache.h"
#include "lsm/version.h"
#include "util/thread_pool.h"

namespace lilsm {

struct CompactionContext {
  Env* env = nullptr;
  Stats* stats = nullptr;
  TableCache* table_cache = nullptr;
  VersionSet* versions = nullptr;
  std::string dbname;
  uint64_t sstable_target_size = 0;
  /// When set, the job polls this flag at output-file boundaries and
  /// aborts once it flips — how a closing DB cuts a running background
  /// compaction short instead of riding it out. Outputs finished before
  /// the abort are recorded in the edit; the caller removes them when it
  /// discards the edit.
  const std::atomic<bool>* shutdown = nullptr;
  /// Range-partitioned subcompactions: with max_subcompactions > 1 the
  /// job splits at next-level file boundaries and runs the shards on
  /// `subcompaction_pool` (the parent thread merges one shard itself, so
  /// N shards occupy N-1 pool threads; a null pool degrades to running
  /// the shards sequentially — same outputs, no parallelism).
  ThreadPool* subcompaction_pool = nullptr;
  int max_subcompactions = 1;
  /// Blocks of readahead for each input iterator (0 = synchronous reads).
  /// Set from DBOptions::io_depth > 1: the merge consumes inputs strictly
  /// forward, so prefetching the next blocks through an async read batch
  /// overlaps input I/O with merging without changing any output byte.
  size_t input_readahead = 0;
};

class CompactionJob {
 public:
  explicit CompactionJob(const CompactionContext& ctx) : ctx_(ctx) {}

  /// Merges pick.inputs (level L) with pick.next_inputs (level L+1) into
  /// new tables at level L+1, dropping shadowed versions and, when no
  /// deeper level may contain the key, tombstones. Records the resulting
  /// file swaps into *edit (the caller applies it). `base` may be a pinned
  /// version: the job only reads it, so it can run with the DB mutex
  /// released. On a shutdown abort the in-progress output is removed, but
  /// finished outputs already recorded in *edit are the CALLER's to clean
  /// up (it owns the decision to install or discard the edit).
  Status Run(const VersionSet::CompactionPick& pick, const Version& base,
             VersionEdit* edit);

  /// True when ctx.shutdown asked the job to stop.
  bool ShutdownRequested() const {
    return ctx_.shutdown != nullptr &&
           ctx_.shutdown->load(std::memory_order_acquire);
  }

 private:
  /// One range shard of the compaction keyspace: [lo, hi) with either
  /// bound optionally open. Outputs and status are the shard's own; the
  /// parent aggregates them after the barrier.
  struct Shard {
    bool has_lo = false;
    bool has_hi = false;
    Key lo = 0;
    Key hi = 0;
    std::vector<FileMeta> outputs;
    Status status;
  };

  /// Partitions `pick` at next-input file smallest-key boundaries into at
  /// most ctx.max_subcompactions shards (one shard when the compaction is
  /// too small to split).
  std::vector<Shard> PlanShards(const VersionSet::CompactionPick& pick) const;

  /// Runs the merge loop for one shard: inputs clipped to [lo, hi),
  /// finished outputs appended to shard->outputs. Thread-safe against
  /// other shards (distinct builders, atomic file numbers, sharded Stats).
  void MergeShard(const VersionSet::CompactionPick& pick, const Version& base,
                  Shard* shard);

  Status FinishOutput(TableBuilder* builder, uint64_t file_number,
                      Key smallest, Key largest,
                      std::vector<FileMeta>* outputs);

  CompactionContext ctx_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_COMPACTION_H_
