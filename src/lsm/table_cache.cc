#include "lsm/table_cache.h"

namespace lilsm {

TableCache::TableCache(const TableOptions& options, std::string dbname,
                       size_t capacity)
    : block_cache_(options.block_cache),
      dbname_(std::move(dbname)),
      capacity_(capacity == 0 ? 1 : capacity),
      options_(options) {}

Status TableCache::GetReader(uint64_t file_number,
                             std::shared_ptr<TableReader>* reader) {
  TableOptions open_options;
  {
    MutexLock lock(&mu_);
    auto it = map_.find(file_number);
    if (it != map_.end()) {
      // Touch — skipped when already freshest, which keeps the hot-file
      // fast path read-mostly under concurrent lookups.
      if (it->second != lru_.begin()) {
        lru_.splice(lru_.begin(), lru_, it->second);
      }
      *reader = it->second->reader;
      return Status::OK();
    }
    // Snapshot the options under mu_ (SetIndexOptions mutates them) and
    // stamp the file number so the shared block cache keys this file's
    // blocks into their own namespace.
    open_options = options_;
    open_options.cache_file_number = file_number;
  }

  // Open outside the lock: misses do disk I/O and must not serialize the
  // concurrent readers that hit the cache.
  std::unique_ptr<TableReader> opened;
  Status s =
      OpenTable(open_options, TableFileName(dbname_, file_number), &opened);
  if (!s.ok()) return s;

  MutexLock lock(&mu_);
  auto it = map_.find(file_number);
  if (it != map_.end()) {
    // Another thread won the race to open this table; keep its reader.
    lru_.splice(lru_.begin(), lru_, it->second);
    *reader = it->second->reader;
    return Status::OK();
  }

  lru_.push_front(Entry{file_number, std::shared_ptr<TableReader>(
                                          opened.release())});
  map_[file_number] = lru_.begin();
  *reader = lru_.front().reader;

  while (map_.size() > capacity_) {
    map_.erase(lru_.back().file_number);
    lru_.pop_back();
  }
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  // A file is evicted because it was deleted (compaction GC): its cached
  // blocks can never be read again, so reclaim their budget now. This is
  // best-effort memory hygiene, not correctness: file numbers are never
  // reused, and a lookup already in flight on a previously handed-out
  // reader may re-insert a few of the dead file's blocks after this
  // purge — they simply age out of the LRU like any other cold entry.
  if (block_cache_ != nullptr) {
    block_cache_->EraseFile(file_number);
  }
  MutexLock lock(&mu_);
  auto it = map_.find(file_number);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void TableCache::EvictBatch(const std::vector<uint64_t>& file_numbers) {
  if (file_numbers.empty()) return;
  if (block_cache_ != nullptr) {
    block_cache_->EraseFiles(file_numbers);
  }
  MutexLock lock(&mu_);
  for (uint64_t file_number : file_numbers) {
    auto it = map_.find(file_number);
    if (it == map_.end()) continue;
    lru_.erase(it->second);
    map_.erase(it);
  }
}

void TableCache::Clear() {
  if (block_cache_ != nullptr) {
    block_cache_->Clear();
  }
  MutexLock lock(&mu_);
  lru_.clear();
  map_.clear();
}

size_t TableCache::TotalIndexMemory() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const Entry& entry : lru_) {
    total += entry.reader->IndexMemoryUsage();
  }
  return total;
}

size_t TableCache::TotalFilterMemory() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const Entry& entry : lru_) {
    total += entry.reader->FilterMemoryUsage();
  }
  return total;
}

}  // namespace lilsm
