#include "lsm/table_cache.h"

namespace lilsm {

TableCache::TableCache(const TableOptions& options, std::string dbname,
                       size_t capacity)
    : options_(options),
      dbname_(std::move(dbname)),
      capacity_(capacity == 0 ? 1 : capacity) {}

Status TableCache::GetReader(uint64_t file_number,
                             std::shared_ptr<TableReader>* reader) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(file_number);
    if (it != map_.end()) {
      // Touch — skipped when already freshest, which keeps the hot-file
      // fast path read-mostly under concurrent lookups.
      if (it->second != lru_.begin()) {
        lru_.splice(lru_.begin(), lru_, it->second);
      }
      *reader = it->second->reader;
      return Status::OK();
    }
  }

  // Open outside the lock: misses do disk I/O and must not serialize the
  // concurrent readers that hit the cache.
  std::unique_ptr<TableReader> opened;
  Status s = OpenTable(options_, TableFileName(dbname_, file_number), &opened);
  if (!s.ok()) return s;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(file_number);
  if (it != map_.end()) {
    // Another thread won the race to open this table; keep its reader.
    lru_.splice(lru_.begin(), lru_, it->second);
    *reader = it->second->reader;
    return Status::OK();
  }

  lru_.push_front(Entry{file_number, std::shared_ptr<TableReader>(
                                          opened.release())});
  map_[file_number] = lru_.begin();
  *reader = lru_.front().reader;

  while (map_.size() > capacity_) {
    map_.erase(lru_.back().file_number);
    lru_.pop_back();
  }
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(file_number);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void TableCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

size_t TableCache::TotalIndexMemory() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Entry& entry : lru_) {
    total += entry.reader->IndexMemoryUsage();
  }
  return total;
}

size_t TableCache::TotalFilterMemory() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Entry& entry : lru_) {
    total += entry.reader->FilterMemoryUsage();
  }
  return total;
}

}  // namespace lilsm
