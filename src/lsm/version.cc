#include "lsm/version.h"

#include <algorithm>
#include <cmath>

#include "lsm/model_catalog.h"
#include "util/coding.h"

namespace lilsm {

// ---------------------------------------------------------------------------
// VersionEdit
// ---------------------------------------------------------------------------

namespace {

// Manifest record field tags.
enum EditTag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kLastSequence = 3,
  kCompactPointer = 4,
  kDeletedFile = 5,
  kNewFile = 6,
};

}  // namespace

void VersionEdit::Clear() { *this = VersionEdit(); }

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  for (const auto& [level, key] : compact_pointers_) {
    PutVarint32(dst, kCompactPointer);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutFixed64(dst, key);
  }
  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, meta] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, meta.number);
    PutVarint64(dst, meta.file_size);
    PutVarint64(dst, meta.entries);
    PutFixed64(dst, meta.smallest);
    PutFixed64(dst, meta.largest);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  while (!input.empty()) {
    uint32_t tag = 0;
    if (!GetVarint32(&input, &tag)) {
      return Status::Corruption("version edit: bad tag");
    }
    uint32_t level = 0;
    switch (tag) {
      case kLogNumber:
        if (!GetVarint64(&input, &log_number_)) {
          return Status::Corruption("version edit: log number");
        }
        has_log_number_ = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&input, &next_file_number_)) {
          return Status::Corruption("version edit: next file number");
        }
        has_next_file_number_ = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&input, &last_sequence_)) {
          return Status::Corruption("version edit: last sequence");
        }
        has_last_sequence_ = true;
        break;
      case kCompactPointer: {
        Key key = 0;
        if (!GetVarint32(&input, &level) || level >= kNumLevels ||
            !GetFixed64(&input, &key)) {
          return Status::Corruption("version edit: compact pointer");
        }
        compact_pointers_.emplace_back(static_cast<int>(level), key);
        break;
      }
      case kDeletedFile: {
        uint64_t number = 0;
        if (!GetVarint32(&input, &level) || level >= kNumLevels ||
            !GetVarint64(&input, &number)) {
          return Status::Corruption("version edit: deleted file");
        }
        deleted_files_.emplace_back(static_cast<int>(level), number);
        break;
      }
      case kNewFile: {
        FileMeta meta;
        if (!GetVarint32(&input, &level) || level >= kNumLevels ||
            !GetVarint64(&input, &meta.number) ||
            !GetVarint64(&input, &meta.file_size) ||
            !GetVarint64(&input, &meta.entries) ||
            !GetFixed64(&input, &meta.smallest) ||
            !GetFixed64(&input, &meta.largest)) {
          return Status::Corruption("version edit: new file");
        }
        new_files_.emplace_back(static_cast<int>(level), meta);
        break;
      }
      default:
        return Status::Corruption("version edit: unknown tag");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Version
// ---------------------------------------------------------------------------

// Out of line: VersionModels is only forward-declared in the header.
Version::Version() : models_(std::make_shared<VersionModels>()) {}

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMeta& f : files_[level]) total += f.file_size;
  return total;
}

uint64_t Version::LevelEntries(int level) const {
  uint64_t total = 0;
  for (const FileMeta& f : files_[level]) total += f.entries;
  return total;
}

int Version::MaxPopulatedLevel() const {
  for (int level = kNumLevels - 1; level >= 0; level--) {
    if (!files_[level].empty()) return level;
  }
  return -1;
}

int Version::FindFile(int level, Key key) const {
  const std::vector<FileMeta>& files = files_[level];
  // First file with largest >= key.
  auto it = std::lower_bound(
      files.begin(), files.end(), key,
      [](const FileMeta& f, Key k) { return f.largest < k; });
  if (it == files.end() || it->smallest > key) return -1;
  return static_cast<int>(it - files.begin());
}

std::vector<FileMeta> Version::GetOverlapping(int level, Key smallest,
                                              Key largest) const {
  std::vector<FileMeta> result;
  for (const FileMeta& f : files_[level]) {
    if (f.largest >= smallest && f.smallest <= largest) {
      result.push_back(f);
    }
  }
  return result;
}

bool Version::KeyMayExistBelow(int level, Key key) const {
  for (int l = level + 1; l < kNumLevels; l++) {
    for (const FileMeta& f : files_[l]) {
      if (f.smallest <= key && key <= f.largest) return true;
    }
  }
  return false;
}

void Version::Unref() const {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (vset_ != nullptr) vset_->ForgetVersion(this);
    delete this;
  }
}

std::vector<FileMeta> FilesAfterEdit(const Version& base,
                                     const VersionEdit& edit, int level) {
  // Untouched levels keep their (already ordered) list verbatim — the
  // common case, since an edit touches at most two levels.
  const auto touches = [level](const auto& entries) {
    for (const auto& [l, payload] : entries) {
      (void)payload;
      if (l == level) return true;
    }
    return false;
  };
  if (!touches(edit.deleted_files_) && !touches(edit.new_files_)) {
    return base.files(level);
  }
  std::vector<FileMeta> files = base.files(level);
  for (const auto& [l, number] : edit.deleted_files_) {
    if (l != level) continue;
    files.erase(std::remove_if(files.begin(), files.end(),
                               [n = number](const FileMeta& f) {
                                 return f.number == n;
                               }),
                files.end());
  }
  for (const auto& [l, meta] : edit.new_files_) {
    if (l == level) files.push_back(meta);
  }
  // Level ordering invariants: L0 newest-first, deeper levels by range.
  if (level == 0) {
    std::sort(files.begin(), files.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.number > b.number;
              });
  } else {
    std::sort(files.begin(), files.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.smallest < b.smallest;
              });
  }
  return files;
}

// ---------------------------------------------------------------------------
// VersionSet
// ---------------------------------------------------------------------------

VersionSet::VersionSet(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {
  current_ = new Version();
  current_->vset_ = this;
  current_->Ref();
  MutexLock lock(&live_mutex_);
  live_.push_back(current_);
}

VersionSet::~VersionSet() {
  // Drop the set's own reference. Pinned versions outliving the set are a
  // caller bug (an iterator or snapshot held past DB destruction).
  current_->Unref();
}

void VersionSet::ForgetVersion(const Version* v) {
  MutexLock lock(&live_mutex_);
  live_.erase(std::remove(live_.begin(), live_.end(), v), live_.end());
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) const {
  MutexLock lock(&live_mutex_);
  for (const Version* v : live_) {
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v->files_[level]) {
        live->insert(meta.number);
      }
    }
  }
}

Status VersionSet::InstallManifest(uint64_t manifest_number) {
  // Point CURRENT at the manifest: write-temp + atomic rename + parent
  // directory fsyncs. The first SyncDir makes the manifest's own entry
  // durable before anything names it (a crash right after the swap must
  // not leave CURRENT pointing at a file that was never linked); the
  // second makes the rename itself durable (without it, a crash can
  // roll CURRENT back to the previous manifest — or, on a fresh DB, to
  // no CURRENT at all). A crash between any two steps leaves either the
  // old pointer or the new one, both naming a complete manifest.
  Status s = env_->SyncDir(dbname_);
  if (!s.ok()) return s;
  const std::string tmp = TempFileName(dbname_, manifest_number);
  std::string contents = ManifestFileName("", manifest_number).substr(1);
  contents.push_back('\n');
  s = WriteStringToFile(env_, contents, tmp);
  if (!s.ok()) return s;
  s = env_->RenameFile(tmp, CurrentFileName(dbname_));
  if (!s.ok()) return s;
  return env_->SyncDir(dbname_);
}

Status VersionSet::CreateNew() {
  manifest_number_ = 1;
  next_file_number_ = 2;
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(ManifestFileName(dbname_, manifest_number_),
                                   &file);
  if (!s.ok()) return s;
  manifest_ = std::make_unique<LogWriter>(std::move(file));
  s = WriteSnapshot(manifest_.get());
  if (!s.ok()) return s;
  s = manifest_->Sync();
  if (!s.ok()) return s;
  return InstallManifest(manifest_number_);
}

Status VersionSet::WriteSnapshot(LogWriter* writer) {
  VersionEdit edit;
  edit.SetLogNumber(log_number_);
  edit.SetNextFileNumber(next_file_number_);
  edit.SetLastSequence(last_sequence_);
  for (int level = 0; level < kNumLevels; level++) {
    if (has_compact_pointer_[level]) {
      edit.SetCompactPointer(level, compact_pointer_[level]);
    }
    for (const FileMeta& meta : current_->files_[level]) {
      edit.AddFile(level, meta);
    }
  }
  std::string record;
  edit.EncodeTo(&record);
  return writer->AddRecord(record);
}

Status VersionSet::Recover() {
  std::string current;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current);
  if (!s.ok()) return s;
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file malformed");
  }
  current.pop_back();

  uint64_t manifest_number = 0;
  if (ParseFileName(current, &manifest_number) != FileKind::kManifestFile) {
    return Status::Corruption("CURRENT does not name a manifest");
  }

  std::unique_ptr<SequentialFile> file;
  s = env_->NewSequentialFile(dbname_ + "/" + current, &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  std::string record;
  while (reader.ReadRecord(&record)) {
    VersionEdit edit;
    s = edit.DecodeFrom(record);
    if (!s.ok()) return s;
    Apply(edit);
  }
  // A torn tail is the residue of a crash mid-LogAndApply: that edit was
  // never acknowledged (LogAndApply syncs before returning), so every
  // complete record before it is the full committed history — a clean
  // end of log. Mid-log corruption, by contrast, would silently drop
  // committed edits if replay stopped there, so the open must fail.
  if (reader.result() == LogReadStatus::kCorruption) {
    return Status::Corruption("manifest replay hit a corrupt record");
  }

  // Continue appending to a fresh manifest (snapshot + future edits).
  manifest_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> manifest_file;
  s = env_->NewWritableFile(ManifestFileName(dbname_, manifest_number_),
                            &manifest_file);
  if (!s.ok()) return s;
  manifest_ = std::make_unique<LogWriter>(std::move(manifest_file));
  s = WriteSnapshot(manifest_.get());
  if (!s.ok()) return s;
  s = manifest_->Sync();
  if (!s.ok()) return s;
  return InstallManifest(manifest_number_);
}

void VersionSet::Apply(const VersionEdit& edit, const ModelDelta* models) {
  if (edit.has_log_number_) log_number_ = edit.log_number_;
  if (edit.has_next_file_number_) {
    MarkFileNumberUsed(edit.next_file_number_ - 1);
  }
  if (edit.has_last_sequence_ && edit.last_sequence_ > last_sequence_) {
    last_sequence_ = edit.last_sequence_;
  }
  for (const auto& [level, key] : edit.compact_pointers_) {
    compact_pointer_[level] = key;
    has_compact_pointer_[level] = true;
  }

  // Build the successor version copy-on-write: the outgoing current stays
  // untouched for whoever has it pinned. FilesAfterEdit is the same
  // transform the write path stitched its model delta against, so file
  // lists and models agree by construction.
  Version* v = new Version();
  v->vset_ = this;
  for (int level = 0; level < kNumLevels; level++) {
    v->files_[level] = FilesAfterEdit(*current_, edit, level);
  }
  for (const auto& [level, meta] : edit.new_files_) {
    (void)level;
    MarkFileNumberUsed(meta.number);
  }
  if (models != nullptr) {
    for (int level = 0; level < kNumLevels; level++) {
      // Untouched levels inherit via the try-lock accessor: this runs
      // with the DB mutex held, and a blocking read here would wait out
      // a reader's in-flight lazy train (a full-level disk scan). Losing
      // the inheritance race just leaves the slot empty for a later
      // lazy build.
      v->models_->Publish(level, models->touched[level]
                                     ? models->models[level]
                                     : current_->models_->Get(level));
    }
  }
  v->stamp_ = stamp_.fetch_add(1, std::memory_order_relaxed) + 1;

  v->Ref();
  {
    MutexLock lock(&live_mutex_);
    live_.push_back(v);
  }
  Version* old = current_;
  current_ = v;
  old->Unref();
}

Status VersionSet::LogAndApply(VersionEdit* edit, const ModelDelta* models) {
  edit->SetNextFileNumber(next_file_number_);
  edit->SetLastSequence(last_sequence_);
  std::string record;
  edit->EncodeTo(&record);
  Status s = manifest_->AddRecord(record);
  if (!s.ok()) return s;
  s = manifest_->Sync();
  if (!s.ok()) return s;
  Apply(*edit, models);
  manifest_edits_++;
  return Status::OK();
}

int VersionSet::PickCompactionLevel(int l0_trigger, uint64_t base_bytes,
                                    int size_ratio,
                                    const bool* level_allowed) const {
  // Score each level; level 0 by file count, others by byte size.
  const auto allowed = [level_allowed](int level) {
    return level_allowed == nullptr || level_allowed[level];
  };
  double best_score = 1.0;
  int best_level = -1;
  const double l0_score = static_cast<double>(current_->NumFiles(0)) /
                          static_cast<double>(std::max(1, l0_trigger));
  if (allowed(0) && l0_score >= best_score) {
    best_score = l0_score;
    best_level = 0;
  }
  double max_bytes = static_cast<double>(base_bytes);
  for (int level = 1; level < kNumLevels - 1; level++) {
    max_bytes *= size_ratio;
    const double score =
        static_cast<double>(current_->LevelBytes(level)) / max_bytes;
    if (allowed(level) && score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  return best_level;
}

bool VersionSet::NeedsCompaction(int l0_trigger, uint64_t base_bytes,
                                 int size_ratio,
                                 const bool* level_allowed) const {
  return PickCompactionLevel(l0_trigger, base_bytes, size_ratio,
                             level_allowed) >= 0;
}

bool VersionSet::PickCompaction(int l0_trigger, uint64_t base_bytes,
                                int size_ratio, CompactionPick* pick,
                                const bool* level_allowed) {
  const int best_level =
      PickCompactionLevel(l0_trigger, base_bytes, size_ratio, level_allowed);
  if (best_level < 0) return false;

  pick->level = best_level;
  pick->inputs.clear();
  pick->next_inputs.clear();

  if (best_level == 0) {
    // Full L0 compaction: all files (they overlap anyway under leveling).
    pick->inputs = current_->files_[0];
  } else {
    // Partial compaction: round-robin one file after the compact pointer.
    const auto& files = current_->files_[best_level];
    size_t chosen = 0;
    if (has_compact_pointer_[best_level]) {
      for (size_t i = 0; i < files.size(); i++) {
        if (files[i].smallest > compact_pointer_[best_level]) {
          chosen = i;
          break;
        }
      }
    }
    pick->inputs.push_back(files[chosen]);
  }
  if (pick->inputs.empty()) return false;

  Key smallest = pick->inputs[0].smallest;
  Key largest = pick->inputs[0].largest;
  for (const FileMeta& f : pick->inputs) {
    smallest = std::min(smallest, f.smallest);
    largest = std::max(largest, f.largest);
  }
  pick->next_inputs =
      current_->GetOverlapping(best_level + 1, smallest, largest);
  return true;
}

bool VersionSet::PickFullCompaction(int level, CompactionPick* pick) {
  if (level < 0 || level >= kNumLevels - 1 ||
      current_->files_[level].empty()) {
    return false;
  }
  pick->level = level;
  pick->inputs = current_->files_[level];
  pick->next_inputs = current_->files_[level + 1];
  return true;
}

}  // namespace lilsm
