// Version / VersionEdit / VersionSet: immutable per-level file metadata,
// manifest persistence, and compaction picking — the LevelDB architecture.
//
// Concurrency: a Version is immutable once installed. VersionSet mutators
// (LogAndApply, the picks, PinCurrent) require the caller's DB-wide mutex;
// Version::Ref/Unref are thread-safe, so readers, iterators, and snapshots
// can pin a version and drop it from any thread without a lock. The set
// tracks every live version so obsolete-file collection never deletes a
// table some pinned version can still reach.
#ifndef LILSM_LSM_VERSION_H_
#define LILSM_LSM_VERSION_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/wal.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {

class VersionSet;
class VersionModels;  // per-version level-model slots (model_catalog.h)
struct LevelModel;    // immutable trained level model (model_catalog.h)

struct FileMeta {
  uint64_t number = 0;
  uint64_t file_size = 0;
  uint64_t entries = 0;
  Key smallest = 0;
  Key largest = 0;
};

class VersionEdit {
 public:
  void Clear();

  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFileNumber(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  void SetCompactPointer(int level, Key key) {
    compact_pointers_.emplace_back(level, key);
  }
  void AddFile(int level, const FileMeta& meta) {
    new_files_.emplace_back(level, meta);
  }
  void RemoveFile(int level, uint64_t number) {
    deleted_files_.emplace_back(level, number);
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  // Open fields: the edit is a short-lived carrier between the writer and
  // VersionSet::Apply.
  bool has_log_number_ = false;
  bool has_next_file_number_ = false;
  bool has_last_sequence_ = false;
  uint64_t log_number_ = 0;
  uint64_t next_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  std::vector<std::pair<int, Key>> compact_pointers_;
  std::vector<std::pair<int, uint64_t>> deleted_files_;
  std::vector<std::pair<int, FileMeta>> new_files_;
};

/// Per-level model refs accompanying a VersionEdit into LogAndApply — the
/// write path's trained artifacts, installed copy-on-write alongside the
/// file lists. Levels not marked touched inherit the predecessor
/// version's ref; touched levels take the delta's model (possibly null).
/// With no delta, the successor's slots start empty (the lazy policy).
struct ModelDelta {
  std::shared_ptr<const LevelModel> models[kNumLevels];
  bool touched[kNumLevels] = {};
};

/// A snapshot of the LSM-tree shape. Level 0 holds possibly overlapping
/// files ordered newest-first (descending file number); levels >= 1 hold
/// disjoint files sorted by smallest key. Immutable once installed into a
/// VersionSet; default-constructible standalone for tests.
class Version {
 public:
  Version();

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  uint64_t LevelBytes(int level) const;
  uint64_t LevelEntries(int level) const;
  const std::vector<FileMeta>& files(int level) const {
    return files_[level];
  }

  /// Highest level containing any file (-1 when empty).
  int MaxPopulatedLevel() const;

  /// For levels >= 1: index of the single file whose range may contain
  /// `key`, or -1. For level 0 use files() directly (newest first).
  int FindFile(int level, Key key) const;

  /// Files in `level` overlapping [smallest, largest].
  std::vector<FileMeta> GetOverlapping(int level, Key smallest,
                                       Key largest) const;

  /// True if any file in a level deeper than `level` may contain `key`
  /// (governs tombstone dropping during compaction).
  bool KeyMayExistBelow(int level, Key key) const;

  /// The VersionSet stamp at which this version was installed (0 for
  /// standalone versions).
  uint64_t stamp() const { return stamp_; }

  /// This version's level-model slots (never null). A model published for
  /// a version always matches its file lists — filled either by the write
  /// path at install time (LevelModelPolicy::kCompactionMaintained) or on
  /// demand by readers (kLazyRebuild), so a reader pinned to a version
  /// has a consistent model with no stamp checks or fallback dance.
  VersionModels* models() const { return models_.get(); }

  /// Thread-safe reference counting for set-managed versions. The last
  /// Unref unregisters the version from its owning set and deletes it.
  /// Standalone (stack) versions must never be Unref'd.
  void Ref() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() const;

  std::vector<FileMeta> files_[kNumLevels];

 private:
  friend class VersionSet;

  VersionSet* vset_ = nullptr;  // owning set; null for standalone versions
  uint64_t stamp_ = 0;
  std::shared_ptr<VersionModels> models_;
  mutable std::atomic<int32_t> refs_{0};
};

/// The file list `level` holds after applying `edit` to `base` — exactly
/// the list (same ordering invariants) VersionSet::Apply installs. The
/// write path stitches level models for the successor version from it
/// before the install, guaranteeing model/file-list agreement by
/// construction.
std::vector<FileMeta> FilesAfterEdit(const Version& base,
                                     const VersionEdit& edit, int level);

class VersionSet {
 public:
  VersionSet(Env* env, std::string dbname);
  ~VersionSet();

  /// Initializes a fresh database: writes MANIFEST + CURRENT.
  Status CreateNew();
  /// Recovers state from CURRENT + MANIFEST.
  Status Recover();

  /// Persists the edit to the manifest and installs a new current version
  /// built from current() + edit. Requires the DB mutex. With `models`,
  /// the successor's level-model slots are filled per the delta (touched
  /// levels take the delta's ref, untouched levels inherit current()'s);
  /// without, they start empty. Models are in-memory only — never logged.
  Status LogAndApply(VersionEdit* edit, const ModelDelta* models = nullptr);

  /// The current version. The reference is only stable while the DB mutex
  /// is held; use PinCurrent() to read beyond it.
  const Version& current() const { return *current_; }

  /// Refs and returns the current version (caller must Unref). Requires
  /// the DB mutex (it races with LogAndApply's install otherwise).
  const Version* PinCurrent() const {
    current_->Ref();
    return current_;
  }

  /// Inserts the file number of every file reachable from any live
  /// (current or pinned) version. Thread-safe.
  void AddLiveFiles(std::set<uint64_t>* live) const EXCLUDES(live_mutex_);

  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  void MarkFileNumberUsed(uint64_t number) {
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (cur <= number && !next_file_number_.compare_exchange_weak(
                                cur, number + 1, std::memory_order_relaxed)) {
    }
  }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }
  uint64_t log_number() const { return log_number_; }
  uint64_t manifest_number() const { return manifest_number_; }

  /// Monotone stamp bumped by every LogAndApply; consumers (level models)
  /// use it to detect stale caches. Matches current().stamp().
  uint64_t stamp() const { return stamp_.load(std::memory_order_relaxed); }

  struct CompactionPick {
    int level = -1;
    std::vector<FileMeta> inputs;       // from `level`
    std::vector<FileMeta> next_inputs;  // overlapping files in level + 1
  };

  /// Chooses the compaction the tree needs most, LevelDB-style: level 0 by
  /// file count against `l0_trigger`, deeper levels by size against
  /// base_bytes * size_ratio^level. Returns false when no level is over
  /// its capacity. With `level_allowed` (an array of kNumLevels flags),
  /// only levels whose flag is set are considered — the multi-job
  /// scheduler masks out levels whose [L, L+1] range a running compaction
  /// already occupies. Requires the DB mutex.
  bool PickCompaction(int l0_trigger, uint64_t base_bytes, int size_ratio,
                      CompactionPick* pick,
                      const bool* level_allowed = nullptr);

  /// True when PickCompaction would return a pick — the cheap check the
  /// background scheduler polls. `level_allowed` masks levels out, as in
  /// PickCompaction. Requires the DB mutex.
  bool NeedsCompaction(int l0_trigger, uint64_t base_bytes, int size_ratio,
                       const bool* level_allowed = nullptr) const;

  /// The full-merge pick used by manual/level-granularity compactions:
  /// all files of `level` plus everything overlapping below.
  bool PickFullCompaction(int level, CompactionPick* pick);

 private:
  friend class Version;

  Status WriteSnapshot(LogWriter* writer);
  void Apply(const VersionEdit& edit, const ModelDelta* models = nullptr);
  Status InstallManifest(uint64_t manifest_number);
  void ForgetVersion(const Version* v) EXCLUDES(live_mutex_);
  /// The level whose score (fill fraction) is highest, or -1 when no level
  /// is over capacity. `level_allowed` (nullable) masks levels out.
  int PickCompactionLevel(int l0_trigger, uint64_t base_bytes,
                          int size_ratio,
                          const bool* level_allowed = nullptr) const;

  Env* const env_;
  const std::string dbname_;
  Version* current_;  // heap-allocated; the set holds one reference
  // All versions with outstanding references, current_ included
  // (Unref may fire on any thread).
  mutable Mutex live_mutex_;
  std::vector<const Version*> live_ GUARDED_BY(live_mutex_);
  std::unique_ptr<LogWriter> manifest_;
  uint64_t manifest_number_ = 0;
  uint64_t manifest_edits_ = 0;
  std::atomic<uint64_t> next_file_number_{2};
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;
  std::atomic<uint64_t> stamp_{0};
  Key compact_pointer_[kNumLevels] = {};
  bool has_compact_pointer_[kNumLevels] = {};
};

}  // namespace lilsm

#endif  // LILSM_LSM_VERSION_H_
