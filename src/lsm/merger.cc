#include "lsm/merger.h"


#include "lsm/dbformat.h"
#include "util/check.h"

namespace lilsm {

namespace {

/// Straightforward N-way merge; N is the number of L0 files + levels and is
/// small, so a linear minimum scan beats heap bookkeeping in practice.
class MergingIterator final : public TableIterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<TableIterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(Key target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    LILSM_ASSERT(Valid());
    current_->Next();
    FindSmallest();
  }

  Key key() const override {
    LILSM_ASSERT(Valid());
    return current_->key();
  }
  uint64_t tag() const override {
    LILSM_ASSERT(Valid());
    return current_->tag();
  }
  Slice value() const override {
    LILSM_ASSERT(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    TableIterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          InternalKeyLess(child->key(), child->tag(), smallest->key(),
                          smallest->tag())) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  std::vector<std::unique_ptr<TableIterator>> children_;
  TableIterator* current_ = nullptr;
};

}  // namespace

std::unique_ptr<TableIterator> NewMergingIterator(
    std::vector<std::unique_ptr<TableIterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace lilsm
