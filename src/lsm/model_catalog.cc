#include "lsm/model_catalog.h"

#include <algorithm>
#include <unordered_set>

#include "lsm/dbformat.h"
#include "table/segment_sidecar.h"
#include "util/mutex.h"

namespace lilsm {

// ---------------------------------------------------------------------------
// VersionModels
// ---------------------------------------------------------------------------

LevelModelRef VersionModels::Get(int level) const {
  const Slot& slot = slots_[level];
  if (!slot.mu.TryLockShared()) return nullptr;
  LevelModelRef ref = slot.model;
  slot.mu.UnlockShared();
  return ref;
}

LevelModelRef VersionModels::GetBlocking(int level) const {
  const Slot& slot = slots_[level];
  ReaderMutexLock lock(&slot.mu);
  return slot.model;
}

void VersionModels::Publish(int level, LevelModelRef model) {
  Slot& slot = slots_[level];
  WriterMutexLock lock(&slot.mu);
  slot.model = std::move(model);
}

void VersionModels::Clear() {
  for (Slot& slot : slots_) {
    WriterMutexLock lock(&slot.mu);
    slot.model.reset();
  }
}

size_t VersionModels::MemoryUsage() const {
  size_t total = 0;
  for (const Slot& slot : slots_) {
    ReaderMutexLock lock(&slot.mu);
    if (slot.model != nullptr) total += slot.model->MemoryUsage();
  }
  return total;
}

// ---------------------------------------------------------------------------
// ModelCatalog
// ---------------------------------------------------------------------------

bool ModelCatalog::LoadFromSidecar(const FileMeta& meta, FileSegments* out) {
  SegmentSidecar sidecar;
  Status s =
      ReadSegmentSidecar(env_, TableFileName(dbname_, meta.number), &sidecar);
  if (s.ok() && sidecar.entries != meta.entries) {
    // A stale or mixed-up sidecar; the manifest's entry count is truth.
    s = Status::Corruption("segment sidecar: entry count mismatch");
  }
  if (!s.ok()) {
    // Missing (pre-sidecar table, non-exporting index type) or corrupt:
    // either way the reader-export path still works.
    if (stats_ != nullptr) stats_->Add(Counter::kModelSidecarFallbacks);
    return false;
  }
  out->entries = sidecar.entries;
  out->epsilon = sidecar.epsilon;
  out->segments = std::make_shared<const std::vector<LinearSegment>>(
      std::move(sidecar.segments));
  if (stats_ != nullptr) stats_->Add(Counter::kModelsLoadedFromDisk);
  return true;
}

Status ModelCatalog::ExportFileSegments(const FileMeta& meta,
                                        TableCache* cache, bool* supported,
                                        FileSegments* out) {
  *supported = true;
  {
    MutexLock lock(&cache_mu_);
    auto it = file_segments_.find(meta.number);
    if (it != file_segments_.end()) {
      *out = it->second;
      return Status::OK();
    }
  }
  if (sidecar_first_ && LoadFromSidecar(meta, out)) {
    MutexLock lock(&cache_mu_);
    file_segments_.emplace(meta.number, *out);
    return Status::OK();
  }
  std::shared_ptr<TableReader> reader;
  Status s = cache->GetReader(meta.number, &reader);
  if (!s.ok()) return s;
  if (reader->NumEntries() != meta.entries) {
    return Status::Corruption("model stitch: reader/meta entry mismatch");
  }
  auto segments = std::make_shared<std::vector<LinearSegment>>();
  uint32_t epsilon = 0;
  if (!reader->ExportIndexSegments(segments.get(), &epsilon)) {
    *supported = false;
    return Status::OK();
  }
  out->entries = meta.entries;
  out->epsilon = epsilon;
  out->segments = std::move(segments);
  {
    MutexLock lock(&cache_mu_);
    file_segments_.emplace(meta.number, *out);
  }
  return Status::OK();
}

Status ModelCatalog::BuildForInstall(const std::vector<FileMeta>& files,
                                     TableCache* cache, IndexType type,
                                     const IndexConfig& config,
                                     const LevelModel* prev,
                                     LevelModelRef* out,
                                     StitchFallback fallback) {
  // Stitch attempt: per-file segments, remapped into global positions by
  // adding the file's cumulative base to each intercept (slopes and first
  // keys are position-free). The per-file epsilon guarantee carries over
  // verbatim under the shift.
  const uint64_t stitch_start = env_->NowNanos();
  auto model = std::make_shared<LevelModel>();
  model->cumulative.assign(1, 0);
  std::vector<LinearSegment> segments;
  bool stitchable = true;
  uint64_t total_entries = 0;
  uint32_t max_epsilon = 0;
  for (const FileMeta& meta : files) {
    FileSegments fs;
    Status s = ExportFileSegments(meta, cache, &stitchable, &fs);
    if (!s.ok()) return s;
    if (!stitchable) break;
    const double base = static_cast<double>(total_entries);
    for (const LinearSegment& seg : *fs.segments) {
      segments.push_back(seg);
      segments.back().intercept += base;
    }
    total_entries += fs.entries;
    max_epsilon = std::max(max_epsilon, fs.epsilon);
    model->cumulative.push_back(total_entries);
  }

  if (stitchable && total_entries > 0) {
    const double density =
        static_cast<double>(segments.size()) / total_entries;
    double baseline = density;
    if (prev != nullptr && prev->baseline_density > 0) {
      baseline = std::min(baseline, prev->baseline_density);
    }
    if (stitch_blowup_ <= 0 || density <= stitch_blowup_ * baseline) {
      // Predict with the widest bound the adopted segments were actually
      // trained under: a (drifted) narrower runtime epsilon would
      // otherwise under-cover and turn present keys into NotFound.
      IndexConfig stitch_config = config;
      stitch_config.epsilon = std::max(max_epsilon, 1u);
      model->index = CreateIndex(type);
      Status s = model->index->BuildFromSegments(std::move(segments),
                                                total_entries, stitch_config);
      if (s.ok()) {
        model->stitched = true;
        model->baseline_density = baseline;
        if (stats_ != nullptr) {
          stats_->AddTime(Timer::kModelStitch,
                          env_->NowNanos() - stitch_start);
          stats_->Add(Counter::kModelsStitched);
        }
        *out = std::move(model);
        return Status::OK();
      }
      if (!s.IsNotSupported()) return s;
    }
    // Fell through: segment blow-up past the ratio, or the type cannot
    // adopt foreign segments — a full level scan is needed.
  }
  if (fallback == StitchFallback::kDefer) {
    out->reset();
    return Status::OK();
  }
  return TrainFull(files, cache, type, config, Timer::kModelRetrain, out);
}

Status ModelCatalog::TrainFull(const std::vector<FileMeta>& files,
                               TableCache* cache, IndexType type,
                               const IndexConfig& config, Timer timer,
                               LevelModelRef* out) {
  ScopedTimer scoped(stats_, timer, env_);
  auto model = std::make_shared<LevelModel>();
  model->cumulative.assign(1, 0);

  std::vector<Key> all_keys;
  for (const FileMeta& meta : files) {
    std::shared_ptr<TableReader> reader;
    Status s = cache->GetReader(meta.number, &reader);
    if (!s.ok()) return s;
    std::vector<Key> keys;
    s = reader->ReadAllKeys(&keys);
    if (!s.ok()) return s;
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
    model->cumulative.push_back(all_keys.size());
  }

  model->index = CreateIndex(type);
  Status s = model->index->Build(all_keys.data(), all_keys.size(), config);
  if (!s.ok()) return s;
  if (!all_keys.empty()) {
    model->baseline_density =
        static_cast<double>(model->index->SegmentCount()) / all_keys.size();
  }
  if (stats_ != nullptr) {
    stats_->Add(Counter::kModelsTrained);
    if (timer == Timer::kModelRetrain) stats_->Add(Counter::kModelRetrains);
    stats_->Add(Counter::kModelBuildBytesRead,
                all_keys.size() * cache->options().entry_size());
  }
  *out = std::move(model);
  return Status::OK();
}

LevelModelRef ModelCatalog::GetOrBuild(const Version& v, int level,
                                       TableCache* cache, IndexType type,
                                       const IndexConfig& config) {
  VersionModels::Slot& slot = v.models()->slots_[level];
  // Fast path, shared try-lock: the common case is "model published", and
  // this is a read-path entry point — on any contention the caller falls
  // back to the per-file index instead of stalling behind a full-level
  // scan+train, and a later lookup retries.
  if (!slot.mu.TryLockShared()) return nullptr;
  LevelModelRef published = slot.model;
  slot.mu.UnlockShared();
  if (published != nullptr) return published;

  if (!slot.mu.TryLock()) return nullptr;
  if (slot.model != nullptr) {  // raced: another builder published first
    published = slot.model;
    slot.mu.Unlock();
    return published;
  }
  const std::vector<FileMeta>& files = v.files(level);
  if (files.empty()) {
    slot.mu.Unlock();
    return nullptr;
  }
  LevelModelRef model;
  Status s =
      TrainFull(files, cache, type, config, Timer::kLevelIndexBuild, &model);
  if (!s.ok()) {
    slot.mu.Unlock();
    return nullptr;  // the per-file fallback surfaces I/O errors
  }
  slot.model = model;
  slot.mu.Unlock();
  return model;
}

bool ModelCatalog::PredictInFile(const LevelModel& model, Key key,
                                 size_t file_idx, size_t* local_lo,
                                 size_t* local_hi) {
  if (model.index == nullptr || file_idx + 1 >= model.cumulative.size()) {
    return false;
  }
  const PredictResult r = model.index->Predict(key);
  const uint64_t base = model.cumulative[file_idx];
  const uint64_t limit = model.cumulative[file_idx + 1];  // exclusive
  if (limit == base) return false;

  // Intersect the global window with the file's range; a present key's
  // true global position lies in both.
  const uint64_t glo = std::max<uint64_t>(r.lo, base);
  const uint64_t ghi = std::min<uint64_t>(r.hi, limit - 1);
  if (glo > ghi) {
    // Model window misses the file (possible for absent keys): search the
    // nearest in-file block.
    *local_lo = r.hi < base ? 0 : (limit - 1 - base);
    *local_hi = *local_lo;
    return true;
  }
  *local_lo = static_cast<size_t>(glo - base);
  *local_hi = static_cast<size_t>(ghi - base);
  return true;
}

void ModelCatalog::WarmFileSegments(const FileMeta& meta, TableCache* cache) {
  bool supported = true;
  FileSegments fs;
  ExportFileSegments(meta, cache, &supported, &fs);
}

bool ModelCatalog::CanStitch(IndexType type) {
  // The types whose BuildFromSegments adopts foreign LinearSegments
  // (guarded by CanStitchMatchesSegmentBasedTypes in the tests).
  switch (type) {
    case IndexType::kPLR:
    case IndexType::kFITingTree:
    case IndexType::kPGM:
      return true;
    default:
      return false;
  }
}

void ModelCatalog::Prune(const Version& v) {
  std::unordered_set<uint64_t> live;
  for (int level = 1; level < kNumLevels; level++) {
    for (const FileMeta& meta : v.files(level)) live.insert(meta.number);
  }
  MutexLock lock(&cache_mu_);
  for (auto it = file_segments_.begin(); it != file_segments_.end();) {
    it = live.count(it->first) > 0 ? std::next(it)
                                   : file_segments_.erase(it);
  }
}

void ModelCatalog::Reset() {
  MutexLock lock(&cache_mu_);
  file_segments_.clear();
}

size_t ModelCatalog::SegmentCacheEntries() const {
  MutexLock lock(&cache_mu_);
  return file_segments_.size();
}

}  // namespace lilsm
