// DBIter: turns the internal-key merging iterator into the user-visible
// iterator — newest version wins, tombstones and shadowed versions are
// skipped, and entries newer than the iterator's snapshot are invisible.
#ifndef LILSM_LSM_DB_ITER_H_
#define LILSM_LSM_DB_ITER_H_

#include <functional>
#include <memory>

#include "lsm/dbformat.h"
#include "table/table.h"

namespace lilsm {

/// User-facing iterator over (key, value); see DB::NewIterator.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void Seek(Key target) = 0;
  virtual void Next() = 0;

  virtual Key key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

/// Wraps an internal merging iterator; `sequence` bounds visibility.
/// `cleanup` (optional) runs when the iterator is destroyed — the DB uses
/// it to unpin the memtables, version, and table readers the iterator
/// reads, which is what keeps an iterator valid under concurrent writes,
/// flushes, and compactions.
std::unique_ptr<Iterator> NewDBIterator(
    std::unique_ptr<TableIterator> internal, SequenceNumber sequence,
    std::function<void()> cleanup = nullptr);

}  // namespace lilsm

#endif  // LILSM_LSM_DB_ITER_H_
