// Write-ahead log (also used for the MANIFEST): a sequence of records, each
//   masked crc32c (4B) | payload length (4B) | payload.
// Replay stops cleanly at a torn or corrupt tail record, which is the crash
// durability contract the recovery tests exercise.
//
// Concurrency contract: LogWriter/LogReader are single-threaded objects;
// the engine guarantees one appender at a time. On the serial write path
// that appender holds the DB-wide mutex across AddRecord + memtable
// insert. Under group commit (DBOptions::group_commit) the appender is
// the writer-queue LEADER, which appends with the mutex RELEASED — being
// at the front of the queue is the exclusive-writer token, so there is
// still exactly one thread touching the LogWriter, and log order still
// matches sequence order (the leader assigns the group's sequences before
// appending). The MANIFEST writer is only touched by LogAndApply, always
// under the mutex. Rolling the WAL at a memtable switch replaces the
// LogWriter wholesale (serial path: under the mutex; group-commit path:
// while holding the queue front as a barrier); the retired log is only
// read again during single-threaded recovery.
#ifndef LILSM_LSM_WAL_H_
#define LILSM_LSM_WAL_H_

#include <memory>
#include <string>

#include "util/env.h"

namespace lilsm {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  Status AddRecord(const Slice& record);
  Status Flush() { return file_->Flush(); }
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the next record into *record. Returns false at EOF or at the
  /// first corrupt/torn record (in which case corruption() reports it).
  bool ReadRecord(std::string* record);

  bool hit_corruption() const { return hit_corruption_; }

 private:
  std::unique_ptr<SequentialFile> file_;
  bool hit_corruption_ = false;
};

}  // namespace lilsm

#endif  // LILSM_LSM_WAL_H_
