// Write-ahead log (also used for the MANIFEST): a sequence of records, each
//   masked crc32c (4B) | payload length (4B) | payload.
// Replay distinguishes two kinds of damage. A record that runs into
// end-of-file (short header, short payload, or a checksum mismatch on the
// final record) is a torn tail: the expected residue of a crash
// mid-append, and a clean end of log. A damaged record with valid bytes
// beyond it is mid-log corruption: committed data after it would be lost,
// so recovery must fail rather than silently truncate history.
//
// Concurrency contract: LogWriter/LogReader are single-threaded objects;
// the engine guarantees one appender at a time. On the serial write path
// that appender holds the DB-wide mutex across AddRecord + memtable
// insert. Under group commit (DBOptions::group_commit) the appender is
// the writer-queue LEADER, which appends with the mutex RELEASED — being
// at the front of the queue is the exclusive-writer token, so there is
// still exactly one thread touching the LogWriter, and log order still
// matches sequence order (the leader assigns the group's sequences before
// appending). The MANIFEST writer is only touched by LogAndApply, always
// under the mutex. Rolling the WAL at a memtable switch replaces the
// LogWriter wholesale (serial path: under the mutex; group-commit path:
// while holding the queue front as a barrier); the retired log is only
// read again during single-threaded recovery.
#ifndef LILSM_LSM_WAL_H_
#define LILSM_LSM_WAL_H_

#include <memory>
#include <string>

#include "util/env.h"

namespace lilsm {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  Status AddRecord(const Slice& record);
  Status Flush() { return file_->Flush(); }
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

/// Outcome of one LogReader::Read call. Everything except kOk is
/// terminal: the reader stays at that status for all further calls.
enum class LogReadStatus {
  kOk = 0,     // *record holds the next record
  kEof,        // clean end of log
  kTornTail,   // record runs into EOF — a crash artifact, recoverable
  kCorruption, // damaged record with valid bytes beyond — fail open
};

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the next record into *record and returns kOk, or reports how
  /// the log ended. Classification: a record cut off by end-of-file is
  /// kTornTail (the torn final append of a crashed process — replay
  /// stops there, everything before it is intact); a record whose
  /// checksum fails, or whose header is garbage, while valid bytes still
  /// follow is kCorruption (stopping would silently drop committed
  /// records, so the caller must refuse the log).
  LogReadStatus Read(std::string* record);

  /// Legacy surface: true when Read yields a record; on false, result()
  /// carries the typed terminal status.
  bool ReadRecord(std::string* record) {
    return Read(record) == LogReadStatus::kOk;
  }

  /// Terminal status after ReadRecord/Read returns false/non-kOk.
  LogReadStatus result() const { return last_; }

  /// Legacy predicate: the log ended at a damaged record (either kind).
  bool hit_corruption() const {
    return last_ == LogReadStatus::kTornTail ||
           last_ == LogReadStatus::kCorruption;
  }

 private:
  LogReadStatus ReadInternal(std::string* record);
  Status ReadFully(size_t n, Slice* result, char* scratch);
  bool AtEof();
  bool EofWithin(uint64_t length);

  std::unique_ptr<SequentialFile> file_;
  LogReadStatus last_ = LogReadStatus::kOk;
};

}  // namespace lilsm

#endif  // LILSM_LSM_WAL_H_
