#include "lsm/db.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <set>
#include <thread>

#include "lsm/compaction.h"
#include "lsm/db_iter.h"
#include "lsm/memtable.h"
#include "lsm/model_catalog.h"
#include "lsm/merger.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace lilsm {

namespace {

/// Returned when an iterator cannot be constructed (a table failed to
/// open): permanently invalid, carrying the failure for status().
class ErrorIterator final : public Iterator {
 public:
  explicit ErrorIterator(Status s) : status_(std::move(s)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(Key /*target*/) override {}
  void Next() override {}
  Key key() const override { return 0; }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  const Status status_;
};

// DBImpl locking discipline (the LevelDB arrangement, see DESIGN.md):
//
//  * mutex_ guards all mutable engine state: the memtable pointers, the
//    WAL writer, the VersionSet, and the background-work flags. Writers
//    hold it across WAL append + memtable insert, so log order matches
//    sequence order.
//  * Readers take mutex_ only long enough to pin (ref) the memtables and
//    current version, then search without it — pinned state is immutable.
//  * Up to max_background_jobs background closures run at once (bg_jobs_
//    counts them; 1 reproduces the single-worker engine). Each drops
//    mutex_ for the heavy lifting (table builds, merges) and retakes it
//    to install results, waking waiters through bg_cv_. Concurrent jobs
//    claim disjoint work under the mutex: at most one flush
//    (bg_flush_active_) plus compactions at disjoint level pairs
//    (level_busy_ marks [L, L+1] occupied).
//  * Under DBOptions::group_commit, being at the FRONT of writers_ is the
//    exclusive-writer token: the queue leader appends to the WAL and
//    inserts into mem_ with mutex_ released. Non-Write paths that switch
//    the memtable or roll the WAL first park a batchless barrier Writer
//    at the queue front. See DESIGN.md "Write path & concurrency".
//
// ConcurrencyMode::kInline never schedules anything: maintenance runs on
// the calling thread under mutex_, byte-for-byte the old inline engine.
class DBImpl final : public DB {
 public:
  DBImpl(const DBOptions& options, std::string dbname)
      : options_(options),
        dbname_(std::move(dbname)),
        env_(options.env != nullptr ? options.env : Env::Default()) {
    // Order the triggers: slowdown and stop must sit at or above the
    // compaction trigger, else a stalled writer could wait for a
    // compaction that scoring never requests (deadlock).
    options_.l0_slowdown_trigger =
        std::max(options_.l0_slowdown_trigger, options_.l0_compaction_trigger);
    options_.l0_stop_trigger =
        std::max(options_.l0_stop_trigger, options_.l0_slowdown_trigger);
    options_.max_background_jobs = std::max(1, options_.max_background_jobs);
    options_.max_subcompactions = std::max(1, options_.max_subcompactions);
    if ((background_mode() && options_.max_background_jobs > 1) ||
        options_.max_subcompactions > 1) {
      // Deadlock-free sizing: max_background_jobs parents can occupy pool
      // threads while each waits on max_subcompactions - 1 shard slots,
      // and one more parent (a foreground CompactAll merge, which runs on
      // the caller's thread) may want shard slots too —
      // (jobs + 1) * subs - 1 covers exactly that worst case.
      bg_pool_ = std::make_unique<ThreadPool>(
          (options_.max_background_jobs + 1) * options_.max_subcompactions -
          1);
    }
    versions_ = std::make_unique<VersionSet>(env_, dbname_);
    if (options_.block_cache_bytes > 0) {
      block_cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes);
    }
    table_cache_ = std::make_unique<TableCache>(MakeTableOptions(), dbname_,
                                                options_.max_open_tables);
    model_catalog_ = std::make_unique<ModelCatalog>(
        env_, &stats_, options_.model_stitch_blowup, dbname_,
        options_.model_persistence == ModelPersistence::kSidecar);
    mem_ = new MemTable();
    mem_->Ref();
  }

  ~DBImpl() override {
    {
      MutexLock lock(&mutex_);
      shutting_down_.store(true, std::memory_order_release);
      while (bg_jobs_ > 0) {
        bg_cv_.Wait();
      }
      LILSM_ASSERT(writers_.empty() && "writer leaked past DB destruction");
      LILSM_ASSERT(snapshot_count_ == 0 &&
                   "snapshot leaked past DB destruction");
    }
    if (wal_ != nullptr) {
      wal_->Sync();
      wal_->Close();
    }
    if (imm_ != nullptr) imm_->Unref();
    mem_->Unref();
  }

  Status Init() {
    MutexLock lock(&mutex_);
    Status s = env_->CreateDir(dbname_);
    if (!s.ok()) return s;
    const bool exists = env_->FileExists(CurrentFileName(dbname_));
    if (exists && options_.error_if_exists) {
      return Status::InvalidArgument(dbname_, "already exists");
    }
    if (!exists && !options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }

    if (!exists) {
      s = versions_->CreateNew();
      if (!s.ok()) return s;
      return RollWal();
    }

    ScopedTimer recover_timer(&stats_, Timer::kRecover, env_);
    s = versions_->Recover();
    if (!s.ok()) return s;
    s = ReplayWals();
    if (!s.ok()) return s;
    s = RollWal();
    if (!s.ok()) return s;
    if (!mem_->empty()) {
      // Persist recovered updates so the old WAL can be retired. Recovery
      // is single-threaded in both modes: flush inline.
      s = WriteLevel0TableLocked();
      if (!s.ok()) return s;
    } else {
      VersionEdit edit;
      edit.SetLogNumber(wal_number_);
      s = versions_->LogAndApply(&edit);
      if (!s.ok()) return s;
    }
    if (maintained_models()) {
      // Recovery installed versions with empty model slots; seed the
      // recovered tree's models once, from per-file indexes (no key
      // re-reads), so the first reads need no build.
      PrefillLevelModelsLocked();
    }
    return RemoveObsoleteFiles();
  }

  Status Put(const WriteOptions& wopts, Key key, const Slice& value) override {
    WriteBatch batch;
    batch.Put(key, value);
    return Write(wopts, &batch);
  }

  Status Delete(const WriteOptions& wopts, Key key) override {
    WriteBatch batch;
    batch.Delete(key);
    return Write(wopts, &batch);
  }

  Status Write(const WriteOptions& wopts, WriteBatch* batch) override {
    if (batch->Count() == 0) return Status::OK();
    MutexLock lock(&mutex_);
    if (options_.group_commit) return WriteGrouped(wopts, batch);
    if (background_mode()) {
      Status rs = MakeRoomForWrite();
      if (!rs.ok()) return rs;
    }

    const SequenceNumber seq = versions_->last_sequence() + 1;
    WriteBatch::SetSequence(batch, seq);

    Status s;
    if (!wopts.disable_wal) {
      // Per-call override first, DB-wide default second: a load phase can
      // run unsynced (or fully WAL-less) against a durable-by-default DB,
      // and a critical write can force a sync against a lazy one.
      s = wal_->AddRecord(batch->Contents());
      if (!s.ok()) return s;
      if (wopts.sync.value_or(options_.sync_wal)) {
        s = wal_->Sync();
      } else {
        s = wal_->Flush();
      }
      if (!s.ok()) return s;
    }

    s = batch->InsertInto(mem_, seq);
    if (!s.ok()) return s;
    versions_->SetLastSequence(seq + batch->Count() - 1);
    stats_.Add(Counter::kWrites, batch->Count());

    if (!background_mode() &&
        mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
      s = WriteLevel0TableLocked();
      if (!s.ok()) return s;
      s = CompactUntilStableLocked();
    }
    return s;
  }

  Status Get(const ReadOptions& ropts, Key key, std::string* value) override {
    Stats* sink = EffectiveStats(ropts);
    sink->Add(Counter::kPointLookups);
    ReadView view = PinView(ropts.snapshot);
    Status s = GetFromView(view, key, value, sink, ropts.fill_cache);
    if (ropts.verify_found && (s.ok() || s.IsNotFound())) {
      RefView(view);
      auto ref = NewIteratorOverView(view, /*fill_cache=*/false);
      Status vs = VerifyWithIterator(ref.get(), key, s, *value);
      if (!vs.ok()) s = vs;
    }
    UnpinView(view);
    return s;
  }

  Status MultiGet(const ReadOptions& ropts, std::span<const Key> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override {
    Stats* sink = EffectiveStats(ropts);
    ScopedTimer batch_timer(sink, Timer::kMultiGet, env_);
    sink->Add(Counter::kMultiGetBatches);
    sink->Add(Counter::kMultiGetKeys, keys.size());
    values->assign(keys.size(), std::string());
    statuses->assign(keys.size(), Status::NotFound("not found"));
    if (keys.empty()) return Status::OK();

    ReadView view = PinView(ropts.snapshot);
    Status s = MultiGetFromView(view, keys, values, statuses, sink,
                                ropts.fill_cache);
    if (s.ok() && ropts.verify_found) {
      RefView(view);
      auto ref = NewIteratorOverView(view, /*fill_cache=*/false);
      for (size_t i = 0; i < keys.size(); i++) {
        Status vs = VerifyWithIterator(ref.get(), keys[i], (*statuses)[i],
                                       (*values)[i]);
        if (!vs.ok()) {
          (*statuses)[i] = vs;
          if (s.ok()) s = vs;
        }
      }
    }
    UnpinView(view);
    return s;
  }

  std::unique_ptr<Iterator> NewIterator(const ReadOptions& ropts) override {
    return NewIteratorOverView(PinView(ropts.snapshot), ropts.fill_cache,
                               ropts.readahead_blocks);
  }

  const Snapshot* GetSnapshot() override {
    MutexLock lock(&mutex_);
    auto* snap = new SnapshotImpl();
    snap->seq_ = versions_->last_sequence();
    snap->mem_ = mem_;
    snap->mem_->Ref();
    snap->imm_ = imm_;
    if (snap->imm_ != nullptr) snap->imm_->Ref();
    snap->version_ = versions_->PinCurrent();
    snapshot_count_++;
    return snap;
  }

  void ReleaseSnapshot(const Snapshot* snapshot) override {
    if (snapshot == nullptr) return;
    const auto* snap = static_cast<const SnapshotImpl*>(snapshot);
    {
      MutexLock lock(&mutex_);
      snapshot_count_--;
    }
    snap->mem_->Unref();
    if (snap->imm_ != nullptr) snap->imm_->Unref();
    snap->version_->Unref();
    delete snap;
  }

  Status RangeLookup(const ReadOptions& ropts, Key start, size_t count,
                     std::vector<std::pair<Key, std::string>>* out) override {
    EffectiveStats(ropts)->Add(Counter::kRangeLookups);
    out->clear();
    out->reserve(count);
    auto iter = NewIterator(ropts);
    for (iter->Seek(start); iter->Valid() && out->size() < count;
         iter->Next()) {
      out->emplace_back(iter->key(), iter->value().ToString());
    }
    return iter->status();
  }

  Status FlushMemTable() override {
    MutexLock lock(&mutex_);
    // The memtable switch below must not race an off-mutex group leader:
    // park a barrier at the writer-queue front for its duration. The
    // settle phase after touches only the version tree, so writers resume
    // as soon as the switch lands.
    Writer barrier(&mutex_);
    AcquireWriteQueue(&barrier);
    Status s = background_mode() ? SwitchMemTable()
                                 : WriteLevel0TableLocked();
    ReleaseWriteQueue(&barrier);
    if (!s.ok()) return s;
    return CompactUntilStableLocked();
  }

  Status CompactUntilStable() override {
    MutexLock lock(&mutex_);
    return CompactUntilStableLocked();
  }

  Status CompactAll() override {
    MutexLock lock(&mutex_);
    Status s;
    {
      Writer barrier(&mutex_);
      AcquireWriteQueue(&barrier);
      s = background_mode() ? SwitchMemTable()
                            : WriteLevel0TableLocked();
      ReleaseWriteQueue(&barrier);
    }
    if (!s.ok()) return s;
    if (background_mode()) {
      // Drain all queued maintenance first so the full merge below starts
      // from a settled tree (callers are quiescent, per the API contract).
      s = WaitForBackgroundIdle();
      if (!s.ok()) return s;
    }
    for (int level = 0; level < kNumLevels - 1; level++) {
      VersionSet::CompactionPick pick;
      if (!versions_->PickFullCompaction(level, &pick)) continue;
      // Stop pushing once this is the deepest populated level.
      bool deeper = false;
      for (int l = level + 1; l < kNumLevels; l++) {
        if (versions_->current().NumFiles(l) > 0) deeper = true;
      }
      if (!deeper && level > 0) break;
      s = RunCompaction(pick);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status ReconfigureIndexes(IndexType type, const IndexConfig& config) override {
    MutexLock lock(&mutex_);
    if (background_mode()) {
      Status ws = WaitForBackgroundIdle();
      if (!ws.ok()) return ws;
    }
    options_.index_type = type;
    options_.index_config = config;
    table_cache_->SetIndexOptions(type, config);
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        std::shared_ptr<TableReader> reader;
        Status s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) return s;
        s = reader->RetrainIndex(type, config);
        if (!s.ok()) return s;
      }
    }
    // The per-file indexes changed type under the live readers: drop the
    // stale stitched-segment cache and the current version's level models
    // (older pinned versions keep theirs — still correct windows, just
    // the old configuration; the API is quiescent-only anyway).
    model_catalog_->Reset();
    versions_->current().models()->Clear();
    if (maintained_models()) PrefillLevelModelsLocked();
    return Status::OK();
  }

  void SetIndexGranularity(IndexGranularity granularity) override {
    MutexLock lock(&mutex_);
    const bool was_maintained = maintained_models();
    options_.index_granularity = granularity;
    if (!was_maintained && maintained_models()) {
      // Switched into maintained level models mid-run: installs so far
      // carried no deltas, so seed the current version's slots now. On
      // failure readers simply fall back to the per-file index.
      PrefillLevelModelsLocked();
    }
  }

  size_t TotalIndexMemory() const override {
    const Version* v = PinCurrentVersion();
    size_t total = 0;
    if (options_.index_granularity == IndexGranularity::kLevel) {
      EnsureLevelModels(*v);
      // L0 stays file-grained (its files overlap).
      total = v->models()->MemoryUsage();
      for (const FileMeta& meta : v->files(0)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->IndexMemoryUsage();
        }
      }
    } else {
      for (int level = 0; level < kNumLevels; level++) {
        for (const FileMeta& meta : v->files(level)) {
          std::shared_ptr<TableReader> reader;
          if (table_cache_->GetReader(meta.number, &reader).ok()) {
            total += reader->IndexMemoryUsage();
          }
        }
      }
    }
    v->Unref();
    return total;
  }

  size_t TotalFilterMemory() const override {
    const Version* v = PinCurrentVersion();
    size_t total = 0;
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v->files(level)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->FilterMemoryUsage();
        }
      }
    }
    v->Unref();
    return total;
  }

  size_t LevelIndexMemory(int level) const override {
    if (level < 0 || level >= kNumLevels) return 0;
    const Version* v = PinCurrentVersion();
    size_t total = 0;
    if (options_.index_granularity == IndexGranularity::kLevel && level > 0) {
      EnsureLevelModels(*v);
      const LevelModelRef model = v->models()->GetBlocking(level);
      total = model != nullptr ? model->MemoryUsage() : 0;
    } else {
      for (const FileMeta& meta : v->files(level)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->IndexMemoryUsage();
        }
      }
    }
    v->Unref();
    return total;
  }

  int NumFilesAtLevel(int level) const override {
    MutexLock lock(&mutex_);
    return versions_->current().NumFiles(level);
  }
  uint64_t BytesAtLevel(int level) const override {
    MutexLock lock(&mutex_);
    return versions_->current().LevelBytes(level);
  }
  uint64_t EntriesAtLevel(int level) const override {
    MutexLock lock(&mutex_);
    return versions_->current().LevelEntries(level);
  }
  SequenceNumber LastSequence() const override {
    MutexLock lock(&mutex_);
    return versions_->last_sequence();
  }

  size_t BlockCacheMemory() const override {
    return block_cache_ != nullptr ? block_cache_->MemoryUsage() : 0;
  }

  void ClearBlockCache() override {
    if (block_cache_ != nullptr) block_cache_->Clear();
  }

  Stats* stats() const override { return &stats_; }

 private:
  /// The concrete snapshot: a sequence bound plus pinned sources. The
  /// pinned version keeps its table files on disk (AddLiveFiles) and the
  /// pinned memtables keep every entry version, so reads through the
  /// handle stay repeatable however far the live tree moves on.
  class SnapshotImpl final : public Snapshot {
   public:
    ~SnapshotImpl() override = default;
    SequenceNumber sequence() const override { return seq_; }

    SequenceNumber seq_ = 0;
    MemTable* mem_ = nullptr;
    MemTable* imm_ = nullptr;
    const Version* version_ = nullptr;
  };

  /// A pinned, immutable view of the DB for one read: sources + sequence
  /// bound. Produced by PinView, released by UnpinView.
  struct ReadView {
    MemTable* mem = nullptr;
    MemTable* imm = nullptr;
    const Version* version = nullptr;
    SequenceNumber seq = 0;
  };

  bool background_mode() const {
    return options_.concurrency == ConcurrencyMode::kBackground;
  }

  /// True when the write path should produce model deltas: maintained
  /// policy AND a configuration whose read path can consult level models
  /// (kLevel granularity over segmented tables). Other combinations would
  /// build artifacts nobody reads — worse, non-positional formats cannot
  /// stitch, degrading every install to a full-level scan.
  bool maintained_models() const {
    return options_.level_model_policy ==
               LevelModelPolicy::kCompactionMaintained &&
           options_.index_granularity == IndexGranularity::kLevel &&
           options_.table_format == TableFormat::kSegmented;
  }

  ReadView PinView(const Snapshot* snapshot) {
    ReadView view;
    if (snapshot != nullptr) {
      // The handle must stay unreleased for this call (db.h contract);
      // the view still takes refs OF ITS OWN because UnpinView releases
      // them and an iterator's view may legitimately outlive the handle
      // (NewIterator(snap), then ReleaseSnapshot, then keep iterating).
      const auto* snap = static_cast<const SnapshotImpl*>(snapshot);
      view.mem = snap->mem_;
      view.imm = snap->imm_;
      view.version = snap->version_;
      view.seq = snap->seq_;
      view.mem->Ref();
      if (view.imm != nullptr) view.imm->Ref();
      view.version->Ref();
      return view;
    }
    MutexLock lock(&mutex_);
    view.mem = mem_;
    view.imm = imm_;
    view.version = versions_->PinCurrent();
    view.seq = versions_->last_sequence();
    view.mem->Ref();
    if (view.imm != nullptr) view.imm->Ref();
    return view;
  }

  void UnpinView(const ReadView& view) {
    view.mem->Unref();
    if (view.imm != nullptr) view.imm->Unref();
    view.version->Unref();
  }

  /// Takes an extra reference on every source of `view` (for handing a
  /// view to a second owner, e.g. a verification iterator).
  static void RefView(const ReadView& view) {
    view.mem->Ref();
    if (view.imm != nullptr) view.imm->Ref();
    view.version->Ref();
  }

  /// ReadOptions::stats when set, the DB-wide sink otherwise.
  Stats* EffectiveStats(const ReadOptions& ropts) const {
    return ropts.stats != nullptr ? ropts.stats : &stats_;
  }

  const Version* PinCurrentVersion() const {
    MutexLock lock(&mutex_);
    return versions_->PinCurrent();
  }

  /// Builds a user iterator over `view`, taking ownership of the view's
  /// references: the iterator's cleanup unpins them (on failure they are
  /// unpinned before the error iterator is returned). `fill_cache` gates
  /// whether the table iterators' block fetches populate the block cache;
  /// `readahead_blocks` > 0 makes each table iterator prefetch upcoming
  /// I/O blocks through an async read batch (results are identical, only
  /// the fetch timing differs).
  std::unique_ptr<Iterator> NewIteratorOverView(ReadView view, bool fill_cache,
                                                size_t readahead_blocks = 0) {
    std::vector<std::unique_ptr<TableIterator>> children;
    // shared_ptr: the cleanup closure and this scope both reference it.
    auto readers =
        std::make_shared<std::vector<std::shared_ptr<TableReader>>>();
    children.push_back(view.mem->NewIterator());
    if (view.imm != nullptr) {
      children.push_back(view.imm->NewIterator());
    }
    Status s;
    for (int level = 0; level < kNumLevels && s.ok(); level++) {
      for (const FileMeta& meta : view.version->files(level)) {
        std::shared_ptr<TableReader> reader;
        s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) break;
        readers->push_back(reader);
        children.push_back(reader->NewIterator(fill_cache, readahead_blocks));
      }
    }
    if (!s.ok()) {
      // Surface the failure through an invalid iterator carrying status
      // (RangeLookup and callers check status(), not just Valid()).
      children.clear();
      UnpinView(view);
      return std::make_unique<ErrorIterator>(std::move(s));
    }
    auto cleanup = [this, view, readers]() {
      readers->clear();
      UnpinView(view);
    };
    return NewDBIterator(NewMergingIterator(std::move(children)), view.seq,
                         std::move(cleanup));
  }

  /// ReadOptions::verify_found support: replays one key's lookup through
  /// `ref` (a merging-iterator view of the same pinned state — the
  /// learned-index-free reference path) and compares it with the result
  /// the point-lookup path produced. Environmental errors in the original
  /// result are not verifiable and pass through.
  Status VerifyWithIterator(Iterator* ref, Key key, const Status& got,
                            const std::string& value) {
    if (!got.ok() && !got.IsNotFound()) return Status::OK();
    ref->Seek(key);
    if (!ref->status().ok()) return ref->status();
    const bool ref_found = ref->Valid() && ref->key() == key;
    if (got.ok() != ref_found) {
      return Status::Corruption("verify_found",
                                got.ok() ? "lookup hit a key the reference "
                                           "scan cannot see"
                                         : "lookup missed a key the "
                                           "reference scan sees");
    }
    if (ref_found && ref->value() != Slice(value)) {
      return Status::Corruption("verify_found", "value mismatch");
    }
    return Status::OK();
  }

  /// The MultiGet core: serves a batch against one pinned view. Sorts the
  /// batch, drains memtable hits, then for every level groups the
  /// remaining keys into per-table runs so each table's reader fetch,
  /// bloom filter, and learned index are consulted per run (the segmented
  /// reader additionally reuses its fetched block across a run). Under
  /// kLevel granularity the level model is resolved once per level and
  /// its per-key predictions are handed to the reader as bounds.
  Status MultiGetFromView(const ReadView& view, std::span<const Key> keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses, Stats* sink,
                          bool fill_cache) {
    const size_t n = keys.size();
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; i++) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&keys](uint32_t a, uint32_t b) {
                       return keys[a] < keys[b];
                     });

    std::vector<uint8_t> done(n, 0);
    size_t remaining = n;
    // An environmental failure aborts the batch: keys never served must
    // not read as NotFound (db.h contract) — they carry the error.
    auto abort_with = [&](const Status& s) {
      for (uint32_t i = 0; i < n; i++) {
        if (!done[i]) (*statuses)[i] = s;
      }
      return s;
    };
    auto resolve = [&](uint32_t idx, bool deleted) {
      (*statuses)[idx] =
          deleted ? Status::NotFound("deleted") : Status::OK();
      if (deleted) (*values)[idx].clear();
      done[idx] = 1;
      remaining--;
    };

    {
      ScopedTimer timer(sink, Timer::kMemtableGet, env_);
      for (uint32_t idx : order) {
        const Key key = keys[idx];
        ValueType type;
        std::string* out = &(*values)[idx];
        if (view.mem->Get(key, view.seq, out, &type) ||
            (view.imm != nullptr &&
             view.imm->Get(key, view.seq, out, &type))) {
          resolve(idx, type != kTypeValue);
        }
      }
    }

    const Version& v = *view.version;
    // Scratch shared by every run of the batch, reused without shrinking.
    std::vector<uint32_t> run_idx;
    std::vector<Key> run_keys;
    std::vector<std::string> run_values;
    std::vector<uint64_t> run_tags;
    std::unique_ptr<bool[]> run_found(new bool[n]);
    std::vector<size_t> run_lo, run_hi;

    /// Serves `run_keys` (ascending) against one table and resolves hits.
    /// `bounds` toggles the level-model prediction arrays.
    auto serve_run = [&](const FileMeta& meta, bool bounds) -> Status {
      sink->Add(Counter::kTablesConsulted);
      std::shared_ptr<TableReader> reader;
      Status s = table_cache_->GetReader(meta.number, &reader);
      if (!s.ok()) return s;
      run_values.assign(run_keys.size(), std::string());
      run_tags.assign(run_keys.size(), 0);
      std::fill(run_found.get(), run_found.get() + run_keys.size(), false);
      s = reader->MultiGet(std::span<const Key>(run_keys),
                           bounds ? run_lo.data() : nullptr,
                           bounds ? run_hi.data() : nullptr,
                           run_values.data(), run_tags.data(),
                           run_found.get(), sink, fill_cache);
      if (!s.ok()) return s;
      for (size_t r = 0; r < run_keys.size(); r++) {
        if (!run_found[r]) continue;
        const uint32_t idx = run_idx[r];
        (*values)[idx] = std::move(run_values[r]);
        resolve(idx, TagType(run_tags[r]) != kTypeValue);
      }
      return Status::OK();
    };

    // Level 0: files may overlap, so serve newest-first; each file gets
    // the (still ascending) subset of unresolved keys in its range.
    if (remaining > 0 && !v.files(0).empty()) {
      const uint64_t level_start = env_->NowNanos();
      bool consulted = false;
      for (const FileMeta& meta : v.files(0)) {
        if (remaining == 0) break;
        run_idx.clear();
        run_keys.clear();
        for (uint32_t idx : order) {
          if (done[idx]) continue;
          const Key key = keys[idx];
          if (key > meta.largest) break;  // ascending: the rest is past it
          if (key < meta.smallest) continue;
          run_idx.push_back(idx);
          run_keys.push_back(key);
        }
        if (run_idx.empty()) continue;
        consulted = true;
        Status s = serve_run(meta, /*bounds=*/false);
        if (!s.ok()) return abort_with(s);
      }
      if (consulted) sink->AddLevelRead(0, env_->NowNanos() - level_start);
    }

    for (int level = 1; level < kNumLevels && remaining > 0; level++) {
      const std::vector<FileMeta>& files = v.files(level);
      if (files.empty()) continue;
      const uint64_t level_start = env_->NowNanos();
      bool consulted = false;

      // Resolve the level model once for the whole batch (single-key Get
      // pays the catalog round-trip per lookup).
      LevelModelRef model;
      if (options_.index_granularity == IndexGranularity::kLevel &&
          options_.table_format == TableFormat::kSegmented) {
        model = model_catalog_->GetOrBuild(v, level, table_cache_.get(),
                                           options_.index_type,
                                           options_.index_config);
      }

      // Walk files and sorted keys in lockstep (the batched equivalent of
      // per-key FindFile), recording which file serves each unresolved
      // key. The I/O happens after, outside the kTableLookup timer.
      std::vector<std::pair<uint32_t, size_t>> targets;  // (key idx, file)
      {
        ScopedTimer timer(sink, Timer::kTableLookup, env_);
        size_t fi = 0;
        for (uint32_t idx : order) {
          if (done[idx]) continue;
          const Key key = keys[idx];
          while (fi < files.size() && files[fi].largest < key) fi++;
          if (fi == files.size()) break;
          if (key < files[fi].smallest) continue;
          targets.emplace_back(idx, fi);
        }
      }

      if (options_.io_depth > 1 && !targets.empty()) {
        // Async path (DBOptions::io_depth > 1): plan every run of the
        // level first, let each reader decompose its run into cache-aware
        // spans registered with ONE read batch, fetch all cold spans of
        // the level concurrently, then finish each run against the fetched
        // bytes. Results are bit-identical to the serial run loop below.
        struct RunPlan {
          size_t file_idx = 0;
          std::vector<uint32_t> idx;
          std::vector<Key> run_keys;
          std::vector<size_t> lo, hi;
          bool bounds = false;
          std::shared_ptr<TableReader> reader;
          std::unique_ptr<PendingMultiGet> pending;
          std::vector<std::string> vals;
          std::vector<uint64_t> tags;
          std::unique_ptr<bool[]> found;
        };
        std::vector<RunPlan> plans;
        for (size_t t = 0; t < targets.size();) {
          const size_t run_file = targets[t].second;
          RunPlan plan;
          plan.file_idx = run_file;
          for (; t < targets.size() && targets[t].second == run_file; t++) {
            plan.idx.push_back(targets[t].first);
            plan.run_keys.push_back(keys[targets[t].first]);
          }
          plan.bounds = model != nullptr;
          if (plan.bounds) {
            plan.lo.resize(plan.run_keys.size());
            plan.hi.resize(plan.run_keys.size());
            for (size_t r = 0; r < plan.run_keys.size() && plan.bounds;
                 r++) {
              plan.bounds = ModelCatalog::PredictInFile(
                  *model, plan.run_keys[r], run_file, &plan.lo[r],
                  &plan.hi[r]);
            }
          }
          plans.push_back(std::move(plan));
        }
        consulted = true;
        auto batch = env_->NewReadBatch(options_.io_depth);
        for (auto& plan : plans) {
          sink->Add(Counter::kTablesConsulted);
          Status s = table_cache_->GetReader(files[plan.file_idx].number,
                                             &plan.reader);
          if (!s.ok()) return abort_with(s);
          plan.vals.assign(plan.run_keys.size(), std::string());
          plan.tags.assign(plan.run_keys.size(), 0);
          plan.found.reset(new bool[plan.run_keys.size()]());
          Status ps = plan.reader->PrepareMultiGet(
              std::span<const Key>(plan.run_keys),
              plan.bounds ? plan.lo.data() : nullptr,
              plan.bounds ? plan.hi.data() : nullptr, batch.get(),
              &plan.pending, sink, fill_cache);
          // NotSupported (a reader without an async path) falls back to
          // its synchronous MultiGet after the batch completes.
          if (!ps.ok() && !ps.IsNotSupported()) return abort_with(ps);
        }
        Status ws;
        {
          ScopedTimer reap_timer(sink, Timer::kAsyncReap, env_);
          ws = batch->Wait();
        }
        sink->Add(Counter::kAsyncBatches);
        if (!ws.ok()) return abort_with(ws);
        for (auto& plan : plans) {
          Status s;
          if (plan.pending != nullptr) {
            s = plan.reader->FinishMultiGet(plan.pending.get(),
                                            plan.vals.data(),
                                            plan.tags.data(),
                                            plan.found.get(), sink);
          } else {
            s = plan.reader->MultiGet(std::span<const Key>(plan.run_keys),
                                      plan.bounds ? plan.lo.data() : nullptr,
                                      plan.bounds ? plan.hi.data() : nullptr,
                                      plan.vals.data(), plan.tags.data(),
                                      plan.found.get(), sink, fill_cache);
          }
          if (!s.ok()) return abort_with(s);
          for (size_t r = 0; r < plan.run_keys.size(); r++) {
            if (!plan.found[r]) continue;
            const uint32_t idx = plan.idx[r];
            (*values)[idx] = std::move(plan.vals[r]);
            resolve(idx, TagType(plan.tags[r]) != kTypeValue);
          }
        }
        sink->AddLevelRead(level, env_->NowNanos() - level_start);
        continue;
      }

      for (size_t t = 0; t < targets.size();) {
        const size_t run_file = targets[t].second;
        run_idx.clear();
        run_keys.clear();
        for (; t < targets.size() && targets[t].second == run_file; t++) {
          run_idx.push_back(targets[t].first);
          run_keys.push_back(keys[targets[t].first]);
        }
        consulted = true;
        bool bounds = model != nullptr;
        if (bounds) {
          run_lo.resize(run_keys.size());
          run_hi.resize(run_keys.size());
          for (size_t r = 0; r < run_keys.size() && bounds; r++) {
            bounds = ModelCatalog::PredictInFile(*model, run_keys[r],
                                                 run_file, &run_lo[r],
                                                 &run_hi[r]);
          }
        }
        Status s = serve_run(files[run_file], bounds);
        if (!s.ok()) return abort_with(s);
      }
      if (consulted) {
        sink->AddLevelRead(level, env_->NowNanos() - level_start);
      }
    }
    return Status::OK();
  }

  Status GetFromView(const ReadView& view, Key key, std::string* value,
                     Stats* sink, bool fill_cache) {
    {
      ScopedTimer timer(sink, Timer::kMemtableGet, env_);
      ValueType type;
      if (view.mem->Get(key, view.seq, value, &type)) {
        return type == kTypeValue ? Status::OK()
                                  : Status::NotFound("deleted");
      }
      if (view.imm != nullptr &&
          view.imm->Get(key, view.seq, value, &type)) {
        return type == kTypeValue ? Status::OK()
                                  : Status::NotFound("deleted");
      }
    }

    const Version& v = *view.version;

    // Level 0: files may overlap; scan newest-first.
    {
      const uint64_t level_start = env_->NowNanos();
      bool consulted = false;
      for (const FileMeta& meta : v.files(0)) {
        if (key < meta.smallest || key > meta.largest) continue;
        consulted = true;
        sink->Add(Counter::kTablesConsulted);
        bool found = false;
        uint64_t tag = 0;
        Status s = TableGet(meta, /*level=*/0, key, value, &tag, &found, sink,
                            fill_cache);
        if (!s.ok()) return s;
        if (found) {
          sink->AddLevelRead(0, env_->NowNanos() - level_start);
          return TagType(tag) == kTypeValue ? Status::OK()
                                            : Status::NotFound("deleted");
        }
      }
      if (consulted) {
        sink->AddLevelRead(0, env_->NowNanos() - level_start);
      }
    }

    for (int level = 1; level < kNumLevels; level++) {
      if (v.NumFiles(level) == 0) continue;
      const uint64_t level_start = env_->NowNanos();
      int file_idx;
      {
        ScopedTimer timer(sink, Timer::kTableLookup, env_);
        file_idx = v.FindFile(level, key);
      }
      if (file_idx < 0) continue;
      sink->Add(Counter::kTablesConsulted);
      bool found = false;
      uint64_t tag = 0;
      Status s = TableGetAtLevel(v, level, static_cast<size_t>(file_idx), key,
                                 value, &tag, &found, sink, fill_cache);
      if (!s.ok()) return s;
      sink->AddLevelRead(level, env_->NowNanos() - level_start);
      if (found) {
        return TagType(tag) == kTypeValue ? Status::OK()
                                          : Status::NotFound("deleted");
      }
    }
    return Status::NotFound("not found");
  }

  TableOptions MakeTableOptions() const {
    TableOptions topts;
    topts.env = env_;
    topts.stats = const_cast<Stats*>(&stats_);
    topts.format = options_.table_format;
    topts.key_size = options_.key_size;
    topts.value_size = options_.value_size;
    topts.bloom_bits_per_key = options_.bloom_bits_per_key;
    topts.index_type = options_.index_type;
    topts.index_config = options_.index_config;
    topts.index_config.stored_key_bytes = options_.key_size;
    topts.block_cache = block_cache_;
    return topts;
  }

  // ---- write path (REQUIRES mutex_) ----

  /// One queued Write call (or a batchless barrier). Lives on its owning
  /// thread's stack; linked into writers_ under mutex_ and woken through
  /// its own condition variable so a group wake-up costs one notify per
  /// member instead of a thundering herd on bg_cv_.
  struct Writer {
    explicit Writer(Mutex* mu) : cv(mu) {}

    WriteBatch* batch = nullptr;  // null marks a barrier (no payload)
    bool sync = false;
    bool disable_wal = false;
    bool done = false;
    Status status;
    CondVar cv;  // waits under the DB mutex the Writer queues behind
  };

  /// Group commit (DBOptions::group_commit): LevelDB's writer queue.
  /// Every writer parks in writers_; the front writer leads, coalescing
  /// the queue prefix into one batch, committing it with mutex_ RELEASED
  /// (queue front = exclusive-writer token; the memtable is single-writer
  /// multi-reader safe), then distributing the shared status. One WAL
  /// append and at most one fsync serve the whole group.
  Status WriteGrouped(const WriteOptions& wopts, WriteBatch* my_batch)
      REQUIRES(mutex_) {
    Writer w(&mutex_);
    w.batch = my_batch;
    w.sync = wopts.sync.value_or(options_.sync_wal);
    w.disable_wal = wopts.disable_wal;
    writers_.push_back(&w);
    while (!w.done && &w != writers_.front()) {
      w.cv.Wait();
    }
    if (w.done) return w.status;  // a leader served this write

    // This writer leads. Apply backpressure first: MakeRoomForWrite may
    // drop the mutex, but the queue front keeps new writers parked.
    Status s;
    if (background_mode()) {
      s = MakeRoomForWrite();
    }

    Writer* last_writer = &w;
    if (s.ok()) {
      bool group_sync = false;
      size_t group_writers = 0;
      WriteBatch* updates =
          BuildBatchGroup(&last_writer, &group_sync, &group_writers);
      const SequenceNumber seq = versions_->last_sequence() + 1;
      WriteBatch::SetSequence(updates, seq);
      const uint32_t count = updates->Count();

      // Snapshot the guarded pointers the off-mutex section touches: the
      // queue-front token (not the mutex) is what makes the WAL and the
      // memtable single-writer here, and locals make that explicit to
      // the thread-safety analysis.
      LogWriter* const wal = wal_.get();
      MemTable* const mem = mem_;
      mutex_.Unlock();
      if (!w.disable_wal) {
        s = wal->AddRecord(updates->Contents());
        if (s.ok()) {
          // The group's sync bit is the OR of its members: a sync=true
          // follower joining a sync=false leader still gets its fsync
          // before any member's status is returned.
          s = group_sync ? wal->Sync() : wal->Flush();
        }
      }
      if (s.ok()) s = updates->InsertInto(mem, seq);
      mutex_.Lock();

      if (s.ok()) {
        versions_->SetLastSequence(seq + count - 1);
        stats_.Add(Counter::kWrites, count);
        stats_.Add(Counter::kGroupCommits);
        stats_.Add(Counter::kGroupCommitBatchSize, group_writers);
      }
      if (updates == &tmp_batch_) tmp_batch_.Clear();
    }

    if (s.ok() && !background_mode() &&
        mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
      // Inline maintenance runs while this writer still holds the queue
      // front, so the memtable swap below cannot race a later leader.
      s = WriteLevel0TableLocked();
      if (s.ok()) s = CompactUntilStableLocked();
    }

    // Pop the served prefix, handing every member the group's status,
    // then wake the next queue front (a new leader or a barrier).
    while (true) {
      Writer* ready = writers_.front();
      writers_.pop_front();
      if (ready != &w) {
        ready->status = s;
        ready->done = true;
        ready->cv.Signal();
      }
      if (ready == last_writer) break;
    }
    if (!writers_.empty()) writers_.front()->cv.Signal();
    return s;
  }

  /// REQUIRES mutex_ and writers_.front() owned by the caller. Coalesces
  /// the longest serveable queue prefix into one batch: stops at a
  /// barrier, at a writer whose disable_wal differs from the leader's
  /// (its record must (not) reach the WAL), and at LevelDB's size caps
  /// (1 MiB, or leader size + 128 KiB for small leaders, keeping a tiny
  /// write's latency from inheriting a bulk group). Returns the leader's
  /// own batch for a group of one, tmp_batch_ otherwise.
  WriteBatch* BuildBatchGroup(Writer** last_writer, bool* group_sync,
                              size_t* group_writers) REQUIRES(mutex_) {
    Writer* leader = writers_.front();
    *group_sync = leader->sync;
    *group_writers = 1;
    size_t size = leader->batch->ApproximateSize();
    size_t max_size = 1 << 20;
    if (size <= (128 << 10)) max_size = size + (128 << 10);

    WriteBatch* result = leader->batch;
    *last_writer = leader;
    auto it = writers_.begin();
    for (++it; it != writers_.end(); ++it) {
      Writer* follower = *it;
      if (follower->batch == nullptr) break;  // barrier: flush/compact
      if (follower->disable_wal != leader->disable_wal) break;
      const size_t follower_size = follower->batch->ApproximateSize();
      if (size + follower_size > max_size) break;
      *group_sync = *group_sync || follower->sync;
      if (result == leader->batch) {
        tmp_batch_.Clear();
        WriteBatch::Append(&tmp_batch_, *leader->batch);
        result = &tmp_batch_;
      }
      WriteBatch::Append(result, *follower->batch);
      size += follower_size;
      *last_writer = follower;
      (*group_writers)++;
    }
    return result;
  }

  /// Parks `w` as a barrier at the writer-queue front: once acquired, no
  /// group leader is off-mutex and none can start, so the caller may
  /// switch the memtable or roll the WAL. No-op when group commit is off
  /// (holding mutex_ alone is the exclusive-writer token then).
  void AcquireWriteQueue(Writer* w) REQUIRES(mutex_) {
    if (!options_.group_commit) return;
    w->batch = nullptr;
    writers_.push_back(w);
    while (w != writers_.front()) {
      w->cv.Wait();
    }
  }

  /// Releases a barrier taken by AcquireWriteQueue and wakes the next
  /// queued writer. REQUIRES mutex_.
  void ReleaseWriteQueue(Writer* w) REQUIRES(mutex_) {
    if (!options_.group_commit) return;
    LILSM_ASSERT(!writers_.empty() && writers_.front() == w);
    (void)w;
    writers_.pop_front();
    if (!writers_.empty()) writers_.front()->cv.Signal();
  }

  /// Blocks or delays the writer per the LevelDB triggers until the active
  /// memtable has room, switching it out to imm_ when full.
  Status MakeRoomForWrite() REQUIRES(mutex_) {
    bool allow_delay = true;
    while (true) {
      if (!bg_error_.ok()) return bg_error_;
      if (allow_delay &&
          versions_->current().NumFiles(0) >= options_.l0_slowdown_trigger) {
        // Soft limit: cede ~1ms to the background thread once per write,
        // smearing the stall over many writes instead of one big pause.
        mutex_.Unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        stats_.Add(Counter::kWriteSlowdowns);
        allow_delay = false;
        mutex_.Lock();
      } else if (mem_->ApproximateMemoryUsage() <
                 options_.write_buffer_size) {
        return Status::OK();
      } else if (imm_ != nullptr) {
        // Previous flush still in flight: hard stall.
        stats_.Add(Counter::kWriteStalls);
        MaybeScheduleBackgroundWork();  // defensive: never wait unserved
        bg_cv_.Wait();
      } else if (versions_->current().NumFiles(0) >=
                 options_.l0_stop_trigger) {
        stats_.Add(Counter::kWriteStalls);
        MaybeScheduleBackgroundWork();
        bg_cv_.Wait();
      } else {
        Status s = SwitchMemTable();
        if (!s.ok()) return s;
      }
    }
  }

  /// Rolls the WAL and retires the active memtable to imm_, scheduling a
  /// background flush. Waits first if a previous imm_ is still flushing.
  /// No-op on an empty memtable.
  Status SwitchMemTable() REQUIRES(mutex_) {
    while (imm_ != nullptr && bg_error_.ok()) {
      bg_cv_.Wait();
    }
    if (!bg_error_.ok()) return bg_error_;
    if (mem_->empty()) return Status::OK();
    Status s = RollWal();
    if (!s.ok()) return s;
    imm_ = mem_;
    mem_ = new MemTable();
    mem_->Ref();
    MaybeScheduleBackgroundWork();
    return Status::OK();
  }

  // ---- background scheduling (REQUIRES mutex_) ----

  /// Schedules one background closure when a job slot is free and some
  /// work unit is unclaimed. Work is CLAIMED at run time, not here: the
  /// closure re-examines the tree under mutex_ and may find nothing left
  /// (another job took it) — it then just retires. A running job calls
  /// this again right after claiming, so siblings spin up while work
  /// remains, one speculative closure at a time.
  void MaybeScheduleBackgroundWork() REQUIRES(mutex_) {
    if (!background_mode() || !bg_error_.ok() ||
        shutting_down_.load(std::memory_order_acquire)) {
      return;
    }
    if (bg_jobs_ >= options_.max_background_jobs) return;
    if (!HasClaimableWork()) return;
    bg_jobs_++;
    ScheduleJob([this] { BackgroundCall(); });
  }

  /// Runs `job` on the DB pool when one exists (max_background_jobs > 1),
  /// else on Env::Schedule's worker — the single-job path keeps using the
  /// Env so decorated/test Envs observe scheduling as before.
  void ScheduleJob(std::function<void()> job) {
    if (bg_pool_ != nullptr && options_.max_background_jobs > 1) {
      bg_pool_->Submit(std::move(job));
    } else {
      env_->Schedule(std::move(job));
    }
  }

  /// True when a flush or compaction could be claimed right now, given
  /// the claims running jobs already hold.
  bool HasClaimableWork() const REQUIRES(mutex_) {
    if (imm_ != nullptr && !bg_flush_active_) return true;
    bool allowed[kNumLevels];
    ComputeAllowedLevels(allowed);
    return versions_->NeedsCompaction(options_.l0_compaction_trigger,
                                      options_.write_buffer_size,
                                      options_.size_ratio, allowed);
  }

  /// Level L may start a compaction only when no running job occupies L
  /// or L+1 (a job at L writes into L+1; two jobs sharing a level would
  /// race over the same input files).
  void ComputeAllowedLevels(bool allowed[kNumLevels]) const
      REQUIRES(mutex_) {
    for (int level = 0; level < kNumLevels; level++) {
      allowed[level] =
          !level_busy_[level] &&
          (level + 1 >= kNumLevels || !level_busy_[level + 1]);
    }
  }

  bool NeedsCompactionLocked() const REQUIRES(mutex_) {
    return versions_->NeedsCompaction(options_.l0_compaction_trigger,
                                      options_.write_buffer_size,
                                      options_.size_ratio);
  }

  void BackgroundCall() {
    MutexLock lock(&mutex_);
    Status s;
    if (!shutting_down_.load(std::memory_order_acquire) && bg_error_.ok()) {
      ScopedTimer timer(&stats_, Timer::kBackgroundWork, env_);
      if (imm_ != nullptr && !bg_flush_active_) {
        bg_flush_active_ = true;
        MaybeScheduleBackgroundWork();  // siblings for remaining work
        s = CompactImmMemTable();
        bg_flush_active_ = false;
      } else {
        bool allowed[kNumLevels];
        ComputeAllowedLevels(allowed);
        VersionSet::CompactionPick pick;
        if (versions_->PickCompaction(options_.l0_compaction_trigger,
                                      options_.write_buffer_size,
                                      options_.size_ratio, &pick, allowed)) {
          level_busy_[pick.level] = true;
          level_busy_[pick.level + 1] = true;
          MaybeScheduleBackgroundWork();
          s = RunCompaction(pick);
          level_busy_[pick.level] = false;
          level_busy_[pick.level + 1] = false;
        }
        // else: another job claimed the work this closure was scheduled
        // for — retire idle.
      }
    }
    if (!s.ok() && !shutting_down_.load(std::memory_order_acquire)) {
      // A shutdown abort is expected and must not poison the DB; any
      // other failure parks the engine (writes surface it).
      bg_error_ = s;
    }
    bg_jobs_--;
    MaybeScheduleBackgroundWork();
    bg_cv_.SignalAll();
  }

  /// Flushes imm_ into an L0 table off-lock, then installs it.
  Status CompactImmMemTable() REQUIRES(mutex_) {
    LILSM_ASSERT(imm_ != nullptr);
    MemTable* imm = imm_;
    // Writes since the switch land in wal_number_; earlier logs die with
    // this flush. Stable while imm_ is set: no switch can intervene.
    const uint64_t log_number = wal_number_;
    const uint64_t fence = RegisterGcFence();
    mutex_.Unlock();
    FileMeta meta;
    Status s = BuildLevel0Table(*imm, &meta);
    mutex_.Lock();
    ReleaseGcFence(fence);
    if (!s.ok()) return s;

    VersionEdit edit;
    if (meta.entries > 0) edit.AddFile(0, meta);
    edit.SetLogNumber(log_number);
    s = InstallEdit(&edit);
    if (!s.ok()) return s;
    imm_->Unref();
    imm_ = nullptr;
    bg_cv_.SignalAll();
    return RemoveObsoleteFiles();
  }

  /// Waits until no flush or compaction is queued or running.
  Status WaitForBackgroundIdle() REQUIRES(mutex_) {
    while ((imm_ != nullptr || bg_jobs_ > 0) && bg_error_.ok()) {
      bg_cv_.Wait();
    }
    return bg_error_;
  }

  Status CompactUntilStableLocked() REQUIRES(mutex_) {
    if (!background_mode()) {
      while (true) {
        VersionSet::CompactionPick pick;
        if (!versions_->PickCompaction(options_.l0_compaction_trigger,
                                       options_.write_buffer_size,
                                       options_.size_ratio, &pick)) {
          return Status::OK();
        }
        Status s = RunCompaction(pick);
        if (!s.ok()) return s;
      }
    }
    // Background mode: keep the workers busy until the tree settles.
    while (true) {
      if (!bg_error_.ok()) return bg_error_;
      if (imm_ != nullptr || bg_jobs_ > 0) {
        bg_cv_.Wait();
        continue;
      }
      if (!NeedsCompactionLocked()) return Status::OK();
      MaybeScheduleBackgroundWork();
      if (bg_jobs_ == 0) return bg_error_;  // refused: shutting down
      bg_cv_.Wait();
    }
  }

  // ---- maintenance helpers ----

  /// REQUIRES mutex_. Installs `edit`, under kCompactionMaintained
  /// first producing the model delta for every level >= 1 whose file list
  /// the edit changes — stitched against the current version's models, so
  /// the successor version is born with consistent models and readers
  /// never pay a build.
  Status InstallEdit(VersionEdit* edit) REQUIRES(mutex_) {
    if (!edit->new_files_.empty()) {
      // The new tables' directory entries must be durable before the
      // manifest references them: a crash after the (synced) manifest
      // write but before a directory sync would otherwise recover a
      // version pointing at unlinked files.
      Status s = env_->SyncDir(dbname_);
      if (!s.ok()) return s;
    }
    if (!maintained_models()) return versions_->LogAndApply(edit);
    ModelDelta delta;
    PrepareModelDelta(*edit, &delta);
    Status s = versions_->LogAndApply(edit, &delta);
    if (!s.ok()) return s;
    model_catalog_->Prune(versions_->current());
    return s;
  }

  /// REQUIRES mutex_. Stitch/retrain models for the edit-touched levels.
  /// Models are read accelerators: a level whose build fails (or whose
  /// index type cannot stitch — write-path retrains under the mutex
  /// would be strictly worse than lazy) is installed with an empty slot,
  /// which the read path fills lazily or serves per-file. The install
  /// itself must never fail on model work.
  void PrepareModelDelta(const VersionEdit& edit, ModelDelta* delta)
      REQUIRES(mutex_) {
    for (const auto& [level, meta] : edit.new_files_) {
      (void)meta;
      delta->touched[level] = true;
    }
    for (const auto& [level, number] : edit.deleted_files_) {
      (void)number;
      delta->touched[level] = true;
    }
    if (!ModelCatalog::CanStitch(options_.index_type)) return;
    const Version& base = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (!delta->touched[level]) continue;
      const std::vector<FileMeta> files = FilesAfterEdit(base, edit, level);
      if (files.empty()) continue;  // level emptied: slot stays null
      // Try-lock: this runs under the DB mutex and must not wait out a
      // reader's in-flight lazy build; a missed prev only resets the
      // blow-up baseline.
      const LevelModelRef prev = base.models()->Get(level);
      // kDefer: a failed stitch (blow-up, stale-blob export) must not
      // scan the level here under mutex_; the slot stays empty and the
      // read path's lazy build performs the retrain off-mutex.
      model_catalog_->BuildForInstall(
          files, table_cache_.get(), options_.index_type,
          options_.index_config, prev.get(), &delta->models[level],
          ModelCatalog::StitchFallback::kDefer);
    }
  }

  /// REQUIRES mutex_ and a quiescent engine (Open, reconfiguration).
  /// Fills the current version's model slots for every populated level.
  /// Best-effort, like PrepareModelDelta: a level that fails to build is
  /// left empty for the read path.
  void PrefillLevelModelsLocked() REQUIRES(mutex_) {
    if (!ModelCatalog::CanStitch(options_.index_type)) return;
    ScopedTimer load_timer(&stats_, Timer::kModelLoad, env_);
    const Version& v = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (v.files(level).empty()) continue;
      LevelModelRef model;
      Status s =
          options_.model_persistence == ModelPersistence::kRetrainOnOpen
              ? model_catalog_->TrainFull(v.files(level), table_cache_.get(),
                                          options_.index_type,
                                          options_.index_config,
                                          Timer::kModelRetrain, &model)
              : model_catalog_->BuildForInstall(
                    v.files(level), table_cache_.get(), options_.index_type,
                    options_.index_config, nullptr, &model);
      if (s.ok()) v.models()->Publish(level, std::move(model));
    }
  }

  Status RollWal() REQUIRES(mutex_) {
    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> file;
    Status s = env_->NewWritableFile(WalFileName(dbname_, number), &file);
    if (!s.ok()) return s;
    if (wal_ != nullptr) {
      wal_->Sync();
      wal_->Close();
    }
    wal_ = std::make_unique<LogWriter>(std::move(file));
    wal_number_ = number;
    // The new log's directory entry must be as durable as the records
    // synced into it, or a crash loses acked writes with the file.
    return env_->SyncDir(dbname_);
  }

  Status ReplayWals() REQUIRES(mutex_) {
    std::vector<std::string> children;
    Status s = env_->GetChildren(dbname_, &children);
    if (!s.ok()) return s;
    std::vector<uint64_t> wals;
    for (const std::string& name : children) {
      uint64_t number = 0;
      if (ParseFileName(name, &number) == FileKind::kWalFile &&
          number >= versions_->log_number()) {
        wals.push_back(number);
      }
    }
    std::sort(wals.begin(), wals.end());
    for (uint64_t number : wals) {
      std::unique_ptr<SequentialFile> file;
      s = env_->NewSequentialFile(WalFileName(dbname_, number), &file);
      if (!s.ok()) return s;
      LogReader reader(std::move(file));
      std::string record;
      while (reader.ReadRecord(&record)) {
        WriteBatch batch;
        s = WriteBatch::SetContents(&batch, record);
        if (!s.ok()) return s;
        const SequenceNumber seq = WriteBatch::Sequence(batch);
        s = batch.InsertInto(mem_, seq);
        if (!s.ok()) return s;
        const SequenceNumber last = seq + batch.Count() - 1;
        if (last > versions_->last_sequence()) {
          versions_->SetLastSequence(last);
        }
        stats_.Add(Counter::kWalRecordsReplayed);
      }
      if (reader.result() == LogReadStatus::kCorruption) {
        // Damage with intact records after it is real corruption, not a
        // crash artifact — silently dropping the tail would lose acked
        // (possibly synced) writes.
        return Status::Corruption(WalFileName(dbname_, number),
                                  "corrupt record mid-log");
      }
      versions_->MarkFileNumberUsed(number);
      // A torn tail (kTornTail) is the expected shape of a crash mid-
      // append; replay treats it as a clean end of this log.
    }
    return Status::OK();
  }

  /// Builds a level-0 table from `mem` (newest version per key wins;
  /// tombstones are preserved). Needs no lock: the memtable is frozen (or
  /// the caller is the only writer) and file-number allocation is atomic.
  Status BuildLevel0Table(const MemTable& mem, FileMeta* meta) {
    ScopedTimer total_timer(&stats_, Timer::kCompactTotal, env_);
    stats_.Add(Counter::kFlushes);

    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<TableBuilder> builder;
    Status s = NewTableBuilder(table_cache_->options(),
                               TableFileName(dbname_, number), &builder);
    if (!s.ok()) return s;

    meta->number = number;
    bool first = true;
    bool has_key = false;
    Key last_key = 0;
    auto iter = mem.NewIterator();
    {
      const uint64_t kv_start = env_->NowNanos();
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        const Key key = iter->key();
        if (has_key && key == last_key) continue;  // older version
        has_key = true;
        last_key = key;
        s = builder->Add(key, iter->tag(), iter->value());
        if (!s.ok()) {
          builder->Abandon();
          return s;
        }
        if (first) {
          meta->smallest = key;
          first = false;
        }
        meta->largest = key;
      }
      stats_.AddTime(Timer::kCompactKvIo, env_->NowNanos() - kv_start);
    }

    meta->entries = builder->NumEntries();
    s = builder->Finish();
    if (!s.ok()) return s;
    meta->file_size = builder->FileSize();
    return Status::OK();
  }

  /// Inline flush: the original synchronous path. REQUIRES mutex_.
  Status WriteLevel0TableLocked() REQUIRES(mutex_) {
    if (mem_->empty()) return Status::OK();
    FileMeta meta;
    Status s = BuildLevel0Table(*mem_, &meta);
    if (!s.ok()) return s;

    // Retire the current WAL: its contents are now durable in the table.
    s = RollWal();
    if (!s.ok()) return s;

    VersionEdit edit;
    edit.AddFile(0, meta);
    edit.SetLogNumber(wal_number_);
    s = InstallEdit(&edit);
    if (!s.ok()) return s;

    mem_->Unref();
    mem_ = new MemTable();
    mem_->Ref();
    return RemoveObsoleteFiles();
  }

  /// Runs one compaction job. REQUIRES mutex_; drops it during the merge
  /// (the job only reads the pinned base version and immutable inputs).
  Status RunCompaction(const VersionSet::CompactionPick& pick)
      REQUIRES(mutex_) {
    CompactionContext ctx;
    ctx.env = env_;
    ctx.stats = &stats_;
    ctx.table_cache = table_cache_.get();
    ctx.versions = versions_.get();
    ctx.dbname = dbname_;
    ctx.sstable_target_size = options_.sstable_target_size;
    ctx.shutdown = &shutting_down_;
    ctx.subcompaction_pool = bg_pool_.get();
    ctx.max_subcompactions = options_.max_subcompactions;
    if (options_.io_depth > 1) {
      ctx.input_readahead = static_cast<size_t>(options_.io_depth);
    }

    const Version* base = versions_->PinCurrent();
    CompactionJob job(ctx);
    VersionEdit edit;
    const uint64_t fence = RegisterGcFence();
    mutex_.Unlock();
    Status s = job.Run(pick, *base, &edit);
    if (s.ok() && maintained_models() &&
        ModelCatalog::CanStitch(options_.index_type)) {
      // Still off-lock: open the fresh outputs' readers and cache their
      // segments now, so InstallEdit's mutex-held stitch below touches
      // only in-memory state (the outputs are not in the table cache
      // yet — FinishOutput only wrote them).
      for (const auto& [level, meta] : edit.new_files_) {
        if (level >= 1) {
          model_catalog_->WarmFileSegments(meta, table_cache_.get());
        }
      }
    }
    mutex_.Lock();
    ReleaseGcFence(fence);
    base->Unref();
    if (!s.ok()) {
      // The edit was never logged, so its finished outputs are provably
      // orphans: remove them now.
      for (const auto& [level, meta] : edit.new_files_) {
        (void)level;
        table_cache_->Evict(meta.number);
        env_->RemoveFile(TableFileName(dbname_, meta.number));
      }
      return s;
    }
    // InstallEdit stitches the touched levels' models from the outputs'
    // in-memory per-file indexes before the install (under mutex_, but
    // zero disk I/O on the stitch path).
    s = InstallEdit(&edit);
    if (!s.ok()) {
      // Deliberately do NOT remove the outputs here: a manifest append
      // that failed after writing bytes may still be durable, and a
      // recovery that replays the edit needs the files. The next
      // successful open reconciles either way (live in the recovered
      // version, or swept by its RemoveObsoleteFiles).
      return s;
    }
    {
      std::vector<uint64_t> deleted;
      deleted.reserve(edit.deleted_files_.size());
      for (const auto& [level, number] : edit.deleted_files_) {
        (void)level;
        deleted.push_back(number);
      }
      table_cache_->EvictBatch(deleted);
    }
    return RemoveObsoleteFiles();
  }

  /// REQUIRES mutex_. A job about to write table files off-mutex (flush
  /// build, compaction merge) registers a fence first: file numbers are
  /// allocated monotonically, so every output the job will create is
  /// numbered at or above it, and RemoveObsoleteFiles skips those — a
  /// concurrent job's GC pass must not sweep half-written outputs that no
  /// version references yet. The number burned for the fence is never
  /// used for a file.
  uint64_t RegisterGcFence() REQUIRES(mutex_) {
    const uint64_t fence = versions_->NewFileNumber();
    gc_fences_.insert(fence);
    return fence;
  }

  /// REQUIRES mutex_. Drops a fence once the job's outputs are either
  /// installed (reachable from a version) or deleted by its owner.
  void ReleaseGcFence(uint64_t fence) REQUIRES(mutex_) {
    auto it = gc_fences_.find(fence);
    LILSM_ASSERT(it != gc_fences_.end());
    gc_fences_.erase(it);
  }

  /// REQUIRES mutex_. Deletes files no live (current or pinned) version,
  /// WAL, manifest, or in-flight job (gc_fences_) can still reach — a
  /// pinned version's tables survive until its last reference (snapshot,
  /// iterator) goes away.
  Status RemoveObsoleteFiles() REQUIRES(mutex_) {
    std::set<uint64_t> live;
    versions_->AddLiveFiles(&live);
    const uint64_t fence =
        gc_fences_.empty() ? UINT64_MAX : *gc_fences_.begin();
    std::vector<std::string> children;
    Status s = env_->GetChildren(dbname_, &children);
    if (!s.ok()) return s;
    // Evict dead tables as one batch: the block-cache purge scans the
    // whole cache once per call, not once per retired file.
    std::vector<uint64_t> dead_tables;
    std::vector<std::string> dead_names;
    for (const std::string& name : children) {
      uint64_t number = 0;
      bool keep = true;
      switch (ParseFileName(name, &number)) {
        case FileKind::kTableFile:
          keep = live.count(number) > 0 || number >= fence;
          if (!keep) dead_tables.push_back(number);
          break;
        case FileKind::kWalFile:
          keep = number >= versions_->log_number() || number == wal_number_;
          break;
        case FileKind::kManifestFile:
          keep = number >= versions_->manifest_number();
          break;
        case FileKind::kTempFile:
          keep = false;
          break;
        default:
          keep = true;
          break;
      }
      if (!keep) dead_names.push_back(name);
    }
    table_cache_->EvictBatch(dead_tables);
    for (const std::string& name : dead_names) {
      env_->RemoveFile(dbname_ + "/" + name);
    }
    return Status::OK();
  }

  /// Memory-accounting support: make sure the pinned version's models
  /// exist before summing them (a no-op per level once published — the
  /// maintained policy installs them on the write path).
  void EnsureLevelModels(const Version& v) const {
    for (int level = 1; level < kNumLevels; level++) {
      if (v.NumFiles(level) == 0) continue;
      model_catalog_->GetOrBuild(v, level, table_cache_.get(),
                                 options_.index_type, options_.index_config);
    }
  }

  /// Per-file lookup honoring the configured granularity. `v` is the
  /// reader's pinned version and models are attached to it, so the model
  /// consulted always matches the file list being searched — a reader
  /// racing a background version install needs no stamp check. Under
  /// kCompactionMaintained the slot was filled at install time and
  /// GetOrBuild returns it from its fast path; a missing model (lazy
  /// policy, or a degraded/skipped write-path build) is trained here —
  /// first reader wins, the rest fall back to the per-file index for
  /// that lookup.
  Status TableGetAtLevel(const Version& v, int level, size_t file_idx,
                         Key key, std::string* value, uint64_t* tag,
                         bool* found, Stats* sink, bool fill_cache) {
    const FileMeta& meta = v.files(level)[file_idx];
    if (options_.index_granularity == IndexGranularity::kLevel && level > 0 &&
        options_.table_format == TableFormat::kSegmented) {
      const LevelModelRef model = model_catalog_->GetOrBuild(
          v, level, table_cache_.get(), options_.index_type,
          options_.index_config);
      size_t lo = 0, hi = 0;
      if (model != nullptr &&
          ModelCatalog::PredictInFile(*model, key, file_idx, &lo, &hi)) {
        std::shared_ptr<TableReader> reader;
        Status s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) return s;
        return reader->GetWithBounds(key, lo, hi, value, tag, found, sink,
                                     fill_cache);
      }
    }
    return TableGet(meta, level, key, value, tag, found, sink, fill_cache);
  }

  Status TableGet(const FileMeta& meta, int /*level*/, Key key,
                  std::string* value, uint64_t* tag, bool* found,
                  Stats* sink, bool fill_cache) {
    std::shared_ptr<TableReader> reader;
    Status s = table_cache_->GetReader(meta.number, &reader);
    if (!s.ok()) return s;
    return reader->Get(key, value, tag, found, sink, fill_cache);
  }

  // Mutated only by the quiescent-only reconfiguration surface
  // (ReconfigureIndexes / SetIndexGranularity, under mutex_); read freely
  // by paths that run with no concurrent reconfiguration per the API
  // contract, so it carries no GUARDED_BY.
  DBOptions options_;
  const std::string dbname_;
  Env* const env_;
  // Mutable: stats() and the const introspection surface record through
  // it; the object is internally synchronized.
  mutable Stats stats_;

  mutable Mutex mutex_;  // const observers lock it too
  CondVar bg_cv_{&mutex_};
  MemTable* mem_ GUARDED_BY(mutex_) = nullptr;  // active buffer
  MemTable* imm_ GUARDED_BY(mutex_) = nullptr;  // frozen, being flushed
  std::unique_ptr<LogWriter> wal_ GUARDED_BY(mutex_);
  uint64_t wal_number_ GUARDED_BY(mutex_) = 0;
  // Installs require mutex_ (VersionSet's documented contract); the
  // atomic counters and the live-version registry are internally safe.
  std::unique_ptr<VersionSet> versions_;
  // Shared by every reader the table cache opens; created once at Open
  // (block_cache_bytes > 0) and immutable afterwards.
  std::shared_ptr<BlockCache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<ModelCatalog> model_catalog_;
  // Worker pool for parallel background jobs and subcompaction shards;
  // null in the default single-job, single-shard configuration (which
  // schedules through the Env, as always). Destroyed after the destructor
  // drains bg_jobs_, so it is idle by then.
  std::unique_ptr<ThreadPool> bg_pool_;
  // Group-commit writer queue (guarded by mutex_): front = leader or
  // barrier holder, i.e. the one thread allowed to touch wal_ and mem_
  // with the mutex released. Empty whenever group_commit is off.
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  /// Leader's coalescing scratch; queue-front owned.
  WriteBatch tmp_batch_ GUARDED_BY(mutex_);
  /// Background closures scheduled or running.
  int bg_jobs_ GUARDED_BY(mutex_) = 0;
  /// A job owns the imm_ flush.
  bool bg_flush_active_ GUARDED_BY(mutex_) = false;
  /// A compaction occupies this level pair's upper half.
  bool level_busy_[kNumLevels] GUARDED_BY(mutex_) = {};
  // File numbers >= min(gc_fences_) may be in-flight job outputs not yet
  // in any version; RemoveObsoleteFiles must not sweep them.
  std::multiset<uint64_t> gc_fences_ GUARDED_BY(mutex_);
  std::atomic<bool> shutting_down_{false};
  /// First background failure; writes surface it.
  Status bg_error_ GUARDED_BY(mutex_);
  /// Outstanding snapshot handles.
  int snapshot_count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

Status DBOptions::Validate() const {
  if (table_format == TableFormat::kSegmented && value_size == 0) {
    return Status::InvalidArgument(
        "DBOptions::value_size",
        "the segmented format's fixed entry geometry needs value_size > 0");
  }
  if (size_ratio <= 0) {
    return Status::InvalidArgument("DBOptions::size_ratio",
                                   "must be positive");
  }
  if (l0_compaction_trigger <= 0) {
    return Status::InvalidArgument("DBOptions::l0_compaction_trigger",
                                   "must be positive");
  }
  if (l0_slowdown_trigger <= 0) {
    return Status::InvalidArgument("DBOptions::l0_slowdown_trigger",
                                   "must be positive");
  }
  if (l0_stop_trigger <= 0) {
    return Status::InvalidArgument("DBOptions::l0_stop_trigger",
                                   "must be positive");
  }
  if (max_open_tables == 0) {
    return Status::InvalidArgument(
        "DBOptions::max_open_tables",
        "must be positive: a zero-capacity table cache would re-open and "
        "re-parse a table on every lookup");
  }
  if (key_size < 8) {
    return Status::InvalidArgument(
        "DBOptions::key_size",
        "must be at least 8 bytes to round-trip the uint64_t Key");
  }
  if (key_size > 64) {
    return Status::InvalidArgument(
        "DBOptions::key_size",
        "must be at most 64 bytes (the table formats' key buffers)");
  }
  if (max_background_jobs <= 0) {
    return Status::InvalidArgument("DBOptions::max_background_jobs",
                                   "must be positive");
  }
  if (max_subcompactions <= 0) {
    return Status::InvalidArgument("DBOptions::max_subcompactions",
                                   "must be positive");
  }
  if (io_depth <= 0) {
    return Status::InvalidArgument("DBOptions::io_depth",
                                   "must be positive (1 = synchronous)");
  }
  return Status::OK();
}

Status DB::Open(const DBOptions& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto impl = std::make_unique<DBImpl>(options, name);
  s = impl->Init();
  if (!s.ok()) return s;
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DB::Destroy(const DBOptions& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (s.IsNotFound() || s.IsIOError()) return Status::OK();  // nothing there
  for (const std::string& child : children) {
    if (child == "." || child == "..") continue;
    env->RemoveFile(name + "/" + child);
  }
  env->RemoveDir(name);
  return Status::OK();
}

}  // namespace lilsm
