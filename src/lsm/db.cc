#include "lsm/db.h"

#include <algorithm>
#include <set>

#include "lsm/compaction.h"
#include "lsm/db_iter.h"
#include "lsm/level_index.h"
#include "lsm/memtable.h"
#include "lsm/merger.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"
#include "lsm/wal.h"

namespace lilsm {

namespace {

class DBImpl final : public DB {
 public:
  DBImpl(const DBOptions& options, std::string dbname)
      : options_(options),
        dbname_(std::move(dbname)),
        env_(options.env != nullptr ? options.env : Env::Default()) {
    versions_ = std::make_unique<VersionSet>(env_, dbname_);
    table_cache_ = std::make_unique<TableCache>(MakeTableOptions(), dbname_,
                                                options_.max_open_tables);
    level_indexes_ = std::make_unique<LevelIndexStore>(env_, &stats_);
    mem_ = std::make_unique<MemTable>();
  }

  ~DBImpl() override {
    if (wal_ != nullptr) {
      wal_->Sync();
      wal_->Close();
    }
  }

  Status Init() {
    Status s = env_->CreateDir(dbname_);
    if (!s.ok()) return s;
    const bool exists = env_->FileExists(CurrentFileName(dbname_));
    if (exists && options_.error_if_exists) {
      return Status::InvalidArgument(dbname_, "already exists");
    }
    if (!exists && !options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }

    if (!exists) {
      s = versions_->CreateNew();
      if (!s.ok()) return s;
      return RollWal();
    }

    s = versions_->Recover();
    if (!s.ok()) return s;
    s = ReplayWals();
    if (!s.ok()) return s;
    s = RollWal();
    if (!s.ok()) return s;
    if (!mem_->empty()) {
      // Persist recovered updates so the old WAL can be retired.
      s = WriteLevel0Table();
      if (!s.ok()) return s;
    } else {
      VersionEdit edit;
      edit.SetLogNumber(wal_number_);
      s = versions_->LogAndApply(&edit);
      if (!s.ok()) return s;
    }
    return RemoveObsoleteFiles();
  }

  Status Put(Key key, const Slice& value) override {
    WriteBatch batch;
    batch.Put(key, value);
    return Write(&batch);
  }

  Status Delete(Key key) override {
    WriteBatch batch;
    batch.Delete(key);
    return Write(&batch);
  }

  Status Write(WriteBatch* batch) override {
    if (batch->Count() == 0) return Status::OK();
    const SequenceNumber seq = versions_->last_sequence() + 1;
    WriteBatch::SetSequence(batch, seq);

    Status s = wal_->AddRecord(batch->Contents());
    if (!s.ok()) return s;
    if (options_.sync_wal) {
      s = wal_->Sync();
    } else {
      s = wal_->Flush();
    }
    if (!s.ok()) return s;

    s = batch->InsertInto(mem_.get(), seq);
    if (!s.ok()) return s;
    versions_->SetLastSequence(seq + batch->Count() - 1);
    stats_.Add(Counter::kWrites, batch->Count());

    if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
      s = WriteLevel0Table();
      if (!s.ok()) return s;
      s = CompactUntilStable();
    }
    return s;
  }

  Status Get(Key key, std::string* value) override {
    stats_.Add(Counter::kPointLookups);

    {
      ScopedTimer timer(&stats_, Timer::kMemtableGet, env_);
      ValueType type;
      if (mem_->Get(key, versions_->last_sequence(), value, &type)) {
        return type == kTypeValue ? Status::OK()
                                  : Status::NotFound("deleted");
      }
    }

    const Version& v = versions_->current();

    // Level 0: files may overlap; scan newest-first.
    {
      const uint64_t level_start = env_->NowNanos();
      bool consulted = false;
      for (const FileMeta& meta : v.files(0)) {
        if (key < meta.smallest || key > meta.largest) continue;
        consulted = true;
        stats_.Add(Counter::kTablesConsulted);
        bool found = false;
        uint64_t tag = 0;
        Status s = TableGet(meta, /*level=*/0, key, value, &tag, &found);
        if (!s.ok()) return s;
        if (found) {
          stats_.AddLevelRead(0, env_->NowNanos() - level_start);
          return TagType(tag) == kTypeValue ? Status::OK()
                                            : Status::NotFound("deleted");
        }
      }
      if (consulted) {
        stats_.AddLevelRead(0, env_->NowNanos() - level_start);
      }
    }

    for (int level = 1; level < kNumLevels; level++) {
      if (v.NumFiles(level) == 0) continue;
      const uint64_t level_start = env_->NowNanos();
      int file_idx;
      {
        ScopedTimer timer(&stats_, Timer::kTableLookup, env_);
        file_idx = v.FindFile(level, key);
      }
      if (file_idx < 0) continue;
      stats_.Add(Counter::kTablesConsulted);
      bool found = false;
      uint64_t tag = 0;
      Status s = TableGetAtLevel(v, level, static_cast<size_t>(file_idx), key,
                                 value, &tag, &found);
      if (!s.ok()) return s;
      stats_.AddLevelRead(level, env_->NowNanos() - level_start);
      if (found) {
        return TagType(tag) == kTypeValue ? Status::OK()
                                          : Status::NotFound("deleted");
      }
    }
    return Status::NotFound("not found");
  }

  std::unique_ptr<Iterator> NewIterator() override {
    std::vector<std::unique_ptr<TableIterator>> children;
    children.push_back(mem_->NewIterator());
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        std::shared_ptr<TableReader> reader;
        Status s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) {
          // Surface the failure through an empty iterator carrying status.
          return NewDBIterator(NewMergingIterator({}), 0);
        }
        children.push_back(reader->NewIterator());
      }
    }
    return NewDBIterator(NewMergingIterator(std::move(children)),
                         versions_->last_sequence());
  }

  Status RangeLookup(Key start, size_t count,
                     std::vector<std::pair<Key, std::string>>* out) override {
    stats_.Add(Counter::kRangeLookups);
    out->clear();
    out->reserve(count);
    auto iter = NewIterator();
    for (iter->Seek(start); iter->Valid() && out->size() < count;
         iter->Next()) {
      out->emplace_back(iter->key(), iter->value().ToString());
    }
    return iter->status();
  }

  Status FlushMemTable() override {
    Status s = WriteLevel0Table();
    if (!s.ok()) return s;
    return CompactUntilStable();
  }

  Status CompactUntilStable() override {
    while (true) {
      VersionSet::CompactionPick pick;
      if (!versions_->PickCompaction(options_.l0_compaction_trigger,
                                     options_.write_buffer_size,
                                     options_.size_ratio, &pick)) {
        return Status::OK();
      }
      Status s = RunCompaction(pick);
      if (!s.ok()) return s;
    }
  }

  Status CompactAll() override {
    Status s = WriteLevel0Table();
    if (!s.ok()) return s;
    for (int level = 0; level < kNumLevels - 1; level++) {
      VersionSet::CompactionPick pick;
      if (!versions_->PickFullCompaction(level, &pick)) continue;
      // Stop pushing once this is the deepest populated level.
      bool deeper = false;
      for (int l = level + 1; l < kNumLevels; l++) {
        if (versions_->current().NumFiles(l) > 0) deeper = true;
      }
      if (!deeper && level > 0) break;
      s = RunCompaction(pick);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status ReconfigureIndexes(IndexType type, const IndexConfig& config) override {
    options_.index_type = type;
    options_.index_config = config;
    table_cache_->SetIndexOptions(type, config);
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        std::shared_ptr<TableReader> reader;
        Status s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) return s;
        s = reader->RetrainIndex(type, config);
        if (!s.ok()) return s;
      }
    }
    level_indexes_->InvalidateAll();
    return Status::OK();
  }

  void SetIndexGranularity(IndexGranularity granularity) override {
    options_.index_granularity = granularity;
  }

  size_t TotalIndexMemory() override {
    if (options_.index_granularity == IndexGranularity::kLevel) {
      EnsureLevelModels();
      // L0 stays file-grained (its files overlap).
      size_t total = level_indexes_->MemoryUsage();
      for (const FileMeta& meta : versions_->current().files(0)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->IndexMemoryUsage();
        }
      }
      return total;
    }
    size_t total = 0;
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->IndexMemoryUsage();
        }
      }
    }
    return total;
  }

  size_t TotalFilterMemory() override {
    size_t total = 0;
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        std::shared_ptr<TableReader> reader;
        if (table_cache_->GetReader(meta.number, &reader).ok()) {
          total += reader->FilterMemoryUsage();
        }
      }
    }
    return total;
  }

  size_t LevelIndexMemory(int level) override {
    if (level < 0 || level >= kNumLevels) return 0;
    if (options_.index_granularity == IndexGranularity::kLevel && level > 0) {
      EnsureLevelModels();
      return level_indexes_->MemoryUsage();  // per-store; see store API
    }
    size_t total = 0;
    for (const FileMeta& meta : versions_->current().files(level)) {
      std::shared_ptr<TableReader> reader;
      if (table_cache_->GetReader(meta.number, &reader).ok()) {
        total += reader->IndexMemoryUsage();
      }
    }
    return total;
  }

  int NumFilesAtLevel(int level) override {
    return versions_->current().NumFiles(level);
  }
  uint64_t BytesAtLevel(int level) override {
    return versions_->current().LevelBytes(level);
  }
  uint64_t EntriesAtLevel(int level) override {
    return versions_->current().LevelEntries(level);
  }
  SequenceNumber LastSequence() override {
    return versions_->last_sequence();
  }

  Stats* stats() override { return &stats_; }

 private:
  TableOptions MakeTableOptions() const {
    TableOptions topts;
    topts.env = env_;
    topts.stats = const_cast<Stats*>(&stats_);
    topts.format = options_.table_format;
    topts.key_size = options_.key_size;
    topts.value_size = options_.value_size;
    topts.bloom_bits_per_key = options_.bloom_bits_per_key;
    topts.index_type = options_.index_type;
    topts.index_config = options_.index_config;
    topts.index_config.stored_key_bytes = options_.key_size;
    return topts;
  }

  Status RollWal() {
    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> file;
    Status s = env_->NewWritableFile(WalFileName(dbname_, number), &file);
    if (!s.ok()) return s;
    if (wal_ != nullptr) {
      wal_->Sync();
      wal_->Close();
    }
    wal_ = std::make_unique<LogWriter>(std::move(file));
    wal_number_ = number;
    return Status::OK();
  }

  Status ReplayWals() {
    std::vector<std::string> children;
    Status s = env_->GetChildren(dbname_, &children);
    if (!s.ok()) return s;
    std::vector<uint64_t> wals;
    for (const std::string& name : children) {
      uint64_t number = 0;
      if (ParseFileName(name, &number) == FileKind::kWalFile &&
          number >= versions_->log_number()) {
        wals.push_back(number);
      }
    }
    std::sort(wals.begin(), wals.end());
    for (uint64_t number : wals) {
      std::unique_ptr<SequentialFile> file;
      s = env_->NewSequentialFile(WalFileName(dbname_, number), &file);
      if (!s.ok()) return s;
      LogReader reader(std::move(file));
      std::string record;
      while (reader.ReadRecord(&record)) {
        WriteBatch batch;
        s = WriteBatch::SetContents(&batch, record);
        if (!s.ok()) return s;
        const SequenceNumber seq = WriteBatch::Sequence(batch);
        s = batch.InsertInto(mem_.get(), seq);
        if (!s.ok()) return s;
        const SequenceNumber last = seq + batch.Count() - 1;
        if (last > versions_->last_sequence()) {
          versions_->SetLastSequence(last);
        }
      }
      versions_->MarkFileNumberUsed(number);
      // A torn tail record is expected after a crash; replay stops there.
    }
    return Status::OK();
  }

  /// Flushes the memtable into a level-0 table (newest version per key
  /// wins; tombstones are preserved).
  Status WriteLevel0Table() {
    if (mem_->empty()) return Status::OK();
    ScopedTimer total_timer(&stats_, Timer::kCompactTotal, env_);
    stats_.Add(Counter::kFlushes);

    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<TableBuilder> builder;
    Status s = NewTableBuilder(table_cache_->options(),
                               TableFileName(dbname_, number), &builder);
    if (!s.ok()) return s;

    FileMeta meta;
    meta.number = number;
    bool first = true;
    bool has_key = false;
    Key last_key = 0;
    auto iter = mem_->NewIterator();
    {
      const uint64_t kv_start = env_->NowNanos();
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        const Key key = iter->key();
        if (has_key && key == last_key) continue;  // older version
        has_key = true;
        last_key = key;
        s = builder->Add(key, iter->tag(), iter->value());
        if (!s.ok()) {
          builder->Abandon();
          return s;
        }
        if (first) {
          meta.smallest = key;
          first = false;
        }
        meta.largest = key;
      }
      stats_.AddTime(Timer::kCompactKvIo, env_->NowNanos() - kv_start);
    }

    meta.entries = builder->NumEntries();
    s = builder->Finish();
    if (!s.ok()) return s;
    meta.file_size = builder->FileSize();

    // Retire the current WAL: its contents are now durable in the table.
    const uint64_t old_wal = wal_number_;
    s = RollWal();
    if (!s.ok()) return s;
    (void)old_wal;

    VersionEdit edit;
    edit.AddFile(0, meta);
    edit.SetLogNumber(wal_number_);
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) return s;

    mem_ = std::make_unique<MemTable>();
    return RemoveObsoleteFiles();
  }

  Status RunCompaction(const VersionSet::CompactionPick& pick) {
    CompactionContext ctx;
    ctx.env = env_;
    ctx.stats = &stats_;
    ctx.table_cache = table_cache_.get();
    ctx.versions = versions_.get();
    ctx.dbname = dbname_;
    ctx.sstable_target_size = options_.sstable_target_size;

    CompactionJob job(ctx);
    VersionEdit edit;
    Status s = job.Run(pick, versions_->current(), &edit);
    if (!s.ok()) return s;
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) return s;
    for (const auto& [level, number] : edit.deleted_files_) {
      (void)level;
      table_cache_->Evict(number);
    }
    return RemoveObsoleteFiles();
  }

  Status RemoveObsoleteFiles() {
    std::set<uint64_t> live;
    const Version& v = versions_->current();
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMeta& meta : v.files(level)) {
        live.insert(meta.number);
      }
    }
    std::vector<std::string> children;
    Status s = env_->GetChildren(dbname_, &children);
    if (!s.ok()) return s;
    for (const std::string& name : children) {
      uint64_t number = 0;
      bool keep = true;
      switch (ParseFileName(name, &number)) {
        case FileKind::kTableFile:
          keep = live.count(number) > 0;
          break;
        case FileKind::kWalFile:
          keep = number >= versions_->log_number() || number == wal_number_;
          break;
        case FileKind::kManifestFile:
          keep = number >= versions_->manifest_number();
          break;
        case FileKind::kTempFile:
          keep = false;
          break;
        default:
          keep = true;
          break;
      }
      if (!keep) {
        if (ParseFileName(name, &number) == FileKind::kTableFile) {
          table_cache_->Evict(number);
        }
        env_->RemoveFile(dbname_ + "/" + name);
      }
    }
    return Status::OK();
  }

  void EnsureLevelModels() {
    const Version& v = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (v.NumFiles(level) == 0) continue;
      level_indexes_->EnsureBuilt(level, v.files(level), table_cache_.get(),
                                  options_.index_type, options_.index_config,
                                  versions_->stamp());
    }
  }

  /// Per-file lookup honoring the configured granularity.
  Status TableGetAtLevel(const Version& v, int level, size_t file_idx,
                         Key key, std::string* value, uint64_t* tag,
                         bool* found) {
    const FileMeta& meta = v.files(level)[file_idx];
    if (options_.index_granularity == IndexGranularity::kLevel && level > 0 &&
        options_.table_format == TableFormat::kSegmented) {
      Status s = level_indexes_->EnsureBuilt(
          level, v.files(level), table_cache_.get(), options_.index_type,
          options_.index_config, versions_->stamp());
      if (!s.ok()) return s;
      size_t lo = 0, hi = 0;
      if (level_indexes_->PredictInFile(level, key, file_idx, &lo, &hi)) {
        std::shared_ptr<TableReader> reader;
        s = table_cache_->GetReader(meta.number, &reader);
        if (!s.ok()) return s;
        return reader->GetWithBounds(key, lo, hi, value, tag, found);
      }
    }
    return TableGet(meta, level, key, value, tag, found);
  }

  Status TableGet(const FileMeta& meta, int /*level*/, Key key,
                  std::string* value, uint64_t* tag, bool* found) {
    std::shared_ptr<TableReader> reader;
    Status s = table_cache_->GetReader(meta.number, &reader);
    if (!s.ok()) return s;
    return reader->Get(key, value, tag, found);
  }

  DBOptions options_;
  const std::string dbname_;
  Env* const env_;
  Stats stats_;
  std::unique_ptr<MemTable> mem_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<LevelIndexStore> level_indexes_;
};

}  // namespace

Status DB::Open(const DBOptions& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  auto impl = std::make_unique<DBImpl>(options, name);
  Status s = impl->Init();
  if (!s.ok()) return s;
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DB::Destroy(const DBOptions& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (s.IsNotFound() || s.IsIOError()) return Status::OK();  // nothing there
  for (const std::string& child : children) {
    if (child == "." || child == "..") continue;
    env->RemoveFile(name + "/" + child);
  }
  env->RemoveDir(name);
  return Status::OK();
}

}  // namespace lilsm
