// TableCache: LRU cache of open table readers keyed by file number.
#ifndef LILSM_LSM_TABLE_CACHE_H_
#define LILSM_LSM_TABLE_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "lsm/dbformat.h"
#include "table/table.h"

namespace lilsm {

class TableCache {
 public:
  TableCache(const TableOptions& options, std::string dbname, size_t capacity);

  /// Returns the (possibly cached) reader for the table file.
  Status GetReader(uint64_t file_number,
                   std::shared_ptr<TableReader>* reader);

  /// Drops a file's reader (after the file is deleted by a compaction).
  void Evict(uint64_t file_number);

  void Clear();
  size_t size() const { return map_.size(); }
  const TableOptions& options() const { return options_; }

  /// Updates the index configuration used for newly built tables; callers
  /// retrain existing readers separately (DB::ReconfigureIndexes).
  void SetIndexOptions(IndexType type, const IndexConfig& config) {
    options_.index_type = type;
    options_.index_config = config;
  }

  /// Total in-memory footprint of cached indexes (excluding filters).
  size_t TotalIndexMemory() const;
  /// Total in-memory footprint of cached bloom filters.
  size_t TotalFilterMemory() const;

 private:
  struct Entry {
    uint64_t file_number;
    std::shared_ptr<TableReader> reader;
  };

  TableOptions options_;
  const std::string dbname_;
  const size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_TABLE_CACHE_H_
