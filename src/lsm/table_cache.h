// TableCache: LRU cache of open table readers keyed by file number.
// Thread-safe: an internal mutex guards the LRU structures and the table
// options, and readers are handed out as shared_ptr so an evicted table
// stays open for whoever is mid-lookup on it. SetIndexOptions used to be
// exempt ("quiescent-only"), which let a concurrent GetReader read
// options_ mid-mutation; it now takes the mutex like everything else.
//
// When a shared BlockCache is configured (TableOptions::block_cache),
// Evict and Clear also purge the dropped files' cached blocks — the
// invalidation half of the block-cache contract.
#ifndef LILSM_LSM_TABLE_CACHE_H_
#define LILSM_LSM_TABLE_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lsm/dbformat.h"
#include "table/table.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {

class TableCache {
 public:
  TableCache(const TableOptions& options, std::string dbname, size_t capacity);

  /// Returns the (possibly cached) reader for the table file.
  Status GetReader(uint64_t file_number, std::shared_ptr<TableReader>* reader)
      EXCLUDES(mu_);

  /// Drops a file's reader (after the file is deleted by a compaction).
  void Evict(uint64_t file_number) EXCLUDES(mu_);

  /// Batched Evict: one block-cache scan for the whole set instead of
  /// one per file (obsolete-file GC retires compaction input sets).
  void EvictBatch(const std::vector<uint64_t>& file_numbers) EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return map_.size();
  }
  /// Snapshot of the current table options (by value: options_ mutates
  /// under mu_ and a reference would race SetIndexOptions).
  TableOptions options() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return options_;
  }

  /// Updates the index configuration used for newly built tables; callers
  /// retrain existing readers separately (DB::ReconfigureIndexes).
  void SetIndexOptions(IndexType type, const IndexConfig& config)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    options_.index_type = type;
    options_.index_config = config;
  }

  /// Total in-memory footprint of cached indexes (excluding filters).
  size_t TotalIndexMemory() const EXCLUDES(mu_);
  /// Total in-memory footprint of cached bloom filters.
  size_t TotalFilterMemory() const EXCLUDES(mu_);

 private:
  struct Entry {
    uint64_t file_number;
    std::shared_ptr<TableReader> reader;
  };

  // Hoisted out of options_ so the invalidation paths (Evict/Clear) can
  // purge blocks without taking mu_: immutable after construction, unlike
  // the index fields SetIndexOptions rewrites.
  const std::shared_ptr<BlockCache> block_cache_;
  const std::string dbname_;
  const size_t capacity_;
  mutable Mutex mu_;
  TableOptions options_ GUARDED_BY(mu_);  // SetIndexOptions mutates it
  /// front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_
      GUARDED_BY(mu_);
};

}  // namespace lilsm

#endif  // LILSM_LSM_TABLE_CACHE_H_
