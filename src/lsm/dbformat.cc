#include "lsm/dbformat.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace lilsm {

namespace {

std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06" PRIu64 ".%s", number, suffix);
  return dbname + buf;
}

}  // namespace

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "lst");
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06" PRIu64, number);
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "tmp");
}

FileKind ParseFileName(const std::string& name, uint64_t* number) {
  *number = 0;
  if (name == "CURRENT") return FileKind::kCurrentFile;
  if (name.rfind("MANIFEST-", 0) == 0) {
    char* end = nullptr;
    *number = std::strtoull(name.c_str() + 9, &end, 10);
    if (end != nullptr && *end == '\0') return FileKind::kManifestFile;
    return FileKind::kUnknown;
  }
  const size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return FileKind::kUnknown;
  for (size_t i = 0; i < dot; i++) {
    if (name[i] < '0' || name[i] > '9') return FileKind::kUnknown;
  }
  *number = std::strtoull(name.substr(0, dot).c_str(), nullptr, 10);
  const std::string suffix = name.substr(dot + 1);
  if (suffix == "lst") return FileKind::kTableFile;
  if (suffix == "log") return FileKind::kWalFile;
  if (suffix == "tmp") return FileKind::kTempFile;
  return FileKind::kUnknown;
}

}  // namespace lilsm
