// Arena-backed skiplist, the memtable's core structure (LevelDB design).
// Writes are externally serialized (the DB mutex admits one writer at a
// time), while readers may traverse concurrently with an in-flight insert:
// next pointers are released-stored only after the node is fully
// initialized, so an acquire-loading reader either misses the new node or
// sees it complete. Nothing is ever removed before the list is destroyed.
#ifndef LILSM_LSM_SKIPLIST_H_
#define LILSM_LSM_SKIPLIST_H_

#include <atomic>

#include "util/arena.h"
#include "util/check.h"
#include "util/random.h"

namespace lilsm {

template <typename K, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(K{}, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key; no duplicate (per the comparator) may already be present.
  /// Requires external synchronization against other inserts.
  void Insert(const K& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    LILSM_ASSERT(x == nullptr || !Equal(key, x->key));

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) {
        prev[i] = head_;
      }
      // A racing reader observing the new height before the new node is
      // linked just traverses from head_ with null next pointers — harmless.
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      // The node's own pointer needs no barrier: it is published (below,
      // with release) before any reader can reach it.
      x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const K& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const K& key() const {
      LILSM_ASSERT(Valid());
      return node_->key;
    }
    void Next() {
      LILSM_ASSERT(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const K& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const K& k) : key(k) {}
    K const key;

    Node* Next(int n) { return next_[n].load(std::memory_order_acquire); }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrier_Next(int n) {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrier_SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

    // Over-allocated via the arena: next_[height] pointers.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const K& key, int height) {
    char* const mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
      height++;
    }
    return height;
  }

  bool Equal(const K& a, const K& b) const { return compare_(a, b) == 0; }

  Node* FindGreaterOrEqual(const K& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) {
          return next;
        }
        level--;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_SKIPLIST_H_
