// Arena-backed skiplist, the memtable's core structure (LevelDB design,
// simplified for the single-writer engine: no atomics needed because reads
// and writes never race in this testbed).
#ifndef LILSM_LSM_SKIPLIST_H_
#define LILSM_LSM_SKIPLIST_H_

#include <cassert>

#include "util/arena.h"
#include "util/random.h"

namespace lilsm {

template <typename K, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(K{}, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key; no duplicate (per the comparator) may already be present.
  void Insert(const K& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    const int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; i++) {
        prev[i] = head_;
      }
      max_height_ = height;
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const K& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const K& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const K& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const K& k) : key(k) {}
    K key;

    Node* Next(int n) { return next_[n]; }
    void SetNext(int n, Node* x) { next_[n] = x; }

    // Over-allocated via the arena: next_[height] pointers.
    Node* next_[1];
  };

  Node* NewNode(const K& key, int height) {
    char* const mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(Node*) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
      height++;
    }
    return height;
  }

  bool Equal(const K& a, const K& b) const { return compare_(a, b) == 0; }

  Node* FindGreaterOrEqual(const K& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) {
          return next;
        }
        level--;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  int max_height_;
  Random rnd_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_SKIPLIST_H_
