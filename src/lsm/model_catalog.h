// ModelCatalog: versioned level-granularity learned models (the
// "LevelModel" of Dai et al. evaluated by the paper's Figure 8).
//
// A level model is an immutable, refcounted artifact attached to a
// Version: one learned index trained over the concatenated keys of the
// level's files plus the cumulative-entries vector that translates its
// global predictions into per-file entry bounds. Because a model is
// published for exactly one version (and shared by successors whose level
// is unchanged), a reader pinned to a version always consults a model
// consistent with its file lists — no stamps, no fallback dance.
//
// Two lifecycles feed the slots (DBOptions::level_model_policy):
//
//  * kLazyRebuild (default, the paper's behavior): slots start empty in
//    every installed version; the first reader that needs a level trains
//    it from a full-level key scan (Timer::kLevelIndexBuild), guarded by
//    per-level try-locks so a lookup never stalls behind the scan.
//  * kCompactionMaintained (Bourbon-style train-on-write): flush and
//    compaction *produce* model updates — each output table's per-file
//    trained segments (already in memory) are stitched into the level
//    model by offset remapping over the cumulative-entries vector,
//    touching only the changed files and re-reading zero keys
//    (Timer::kModelStitch). A full retrain (Timer::kModelRetrain) remains
//    as a quality fallback when the stitched segment density blows past a
//    configurable ratio of the level's best observed density, or when the
//    configured index type cannot stitch (RMI, splines, fence pointers).
#ifndef LILSM_LSM_MODEL_CATALOG_H_
#define LILSM_LSM_MODEL_CATALOG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/pla.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {

/// One immutable trained level model. Never mutated after publication;
/// shared (shared_ptr) between versions whose level is unchanged.
struct LevelModel {
  std::unique_ptr<LearnedIndex> index;
  /// cumulative[i] = total entries of files [0, i); size = files + 1.
  std::vector<uint64_t> cumulative;
  bool stitched = false;
  /// Lowest segments-per-entry density observed at this level — set by
  /// full trains, inherited and tightened by stitches; the blow-up
  /// fallback's baseline.
  double baseline_density = 0.0;

  size_t SegmentCount() const {
    return index != nullptr ? index->SegmentCount() : 0;
  }
  size_t MemoryUsage() const {
    return (index != nullptr ? index->MemoryUsage() : 0) +
           cumulative.capacity() * sizeof(uint64_t);
  }
};

using LevelModelRef = std::shared_ptr<const LevelModel>;

/// The per-version model slots. Slot content only ever goes from empty to
/// published (for one version, a level's model never changes), so readers
/// take a per-level shared try-lock and fall back to the per-file index
/// when a lazy build holds the exclusive side.
class VersionModels {
 public:
  /// Try-lock accessor: the level's model, or null when absent or busy
  /// (a lazy build in progress). Used wherever waiting is not an option
  /// — the install path (which holds the DB mutex and must not wait out
  /// a reader's full-level scan) and any hot-path peek; callers treat
  /// null as "no model" and degrade.
  LevelModelRef Get(int level) const;
  /// Cold paths (installs, memory accounting): waits out a build.
  LevelModelRef GetBlocking(int level) const;
  /// Publishes `model` into the slot (install time or lazy-build commit).
  void Publish(int level, LevelModelRef model);
  /// Drops every slot (index reconfiguration on a quiescent DB).
  void Clear();
  /// Memory of all published models, counting shared refs in full.
  size_t MemoryUsage() const;

 private:
  friend class ModelCatalog;

  /// One per-level slot: the published model paired with the
  /// readers-writer lock that guards it, so the guard relation is a
  /// sibling reference the thread-safety analysis can check.
  struct Slot {
    mutable SharedMutex mu;
    LevelModelRef model GUARDED_BY(mu);
  };
  Slot slots_[kNumLevels];
};

class ModelCatalog {
 public:
  /// `stitch_blowup`: full-retrain fallback triggers when the stitched
  /// segments-per-entry density exceeds this multiple of the level's
  /// baseline density; <= 0 disables the fallback.
  ///
  /// With `sidecar_first` set (and a non-empty `dbname` to resolve table
  /// paths), a segment-cache miss first tries the file's persisted model
  /// sidecar — two preads, no reader construction, no key scan
  /// (Counter::kModelsLoadedFromDisk) — and only falls back to opening
  /// the reader and exporting its in-memory index on a missing or
  /// corrupt sidecar (Counter::kModelSidecarFallbacks).
  ModelCatalog(Env* env, Stats* stats, double stitch_blowup,
               std::string dbname = std::string(), bool sidecar_first = false)
      : env_(env),
        stats_(stats),
        stitch_blowup_(stitch_blowup),
        dbname_(std::move(dbname)),
        sidecar_first_(sidecar_first && !dbname_.empty()) {}

  /// What to do when a stitch is not possible (segment-density blow-up
  /// past the configured ratio, or a file whose in-memory index cannot
  /// export segments).
  enum class StitchFallback {
    /// Retrain from a full level scan right here — for quiescent callers
    /// (Open-time prefill, tests) where blocking on disk is fine.
    kRetrainNow,
    /// Succeed with a null model — for the install path, which holds the
    /// DB mutex and must not scan a level; the read path's lazy build
    /// performs the retrain off-mutex instead.
    kDefer,
  };

  /// Write path (kCompactionMaintained): the model for a level's
  /// post-edit file list (levels >= 1, disjoint, sorted by smallest).
  /// Stitches per-file segments — cached per file number, so only files
  /// new since the last install are touched — handling a failed stitch
  /// per `fallback`. `prev` (may be null) carries the baseline density
  /// across installs. `files` must be non-empty. The stitched model
  /// predicts with the widest epsilon the per-file indexes were actually
  /// trained under (not config.epsilon), so adopted segments never
  /// under-cover even when the runtime configuration has drifted from
  /// what is on disk.
  Status BuildForInstall(const std::vector<FileMeta>& files,
                         TableCache* cache, IndexType type,
                         const IndexConfig& config, const LevelModel* prev,
                         LevelModelRef* out,
                         StitchFallback fallback = StitchFallback::kRetrainNow);

  /// Read path (kLazyRebuild): version-pinned get-or-build. Returns null
  /// when the slot is busy (another thread building or predicting under
  /// the exclusive side) or the build fails — the caller falls back to
  /// the per-file index and retries on a later lookup.
  LevelModelRef GetOrBuild(const Version& v, int level, TableCache* cache,
                           IndexType type, const IndexConfig& config);

  /// Full-scan train: reads every key of `files` (the bytes are counted
  /// under Counter::kModelBuildBytesRead) and builds a fresh model.
  /// `timer` attributes the cost: kLevelIndexBuild for lazy read-path
  /// builds, kModelRetrain for the maintained fallback.
  Status TrainFull(const std::vector<FileMeta>& files, TableCache* cache,
                   IndexType type, const IndexConfig& config, Timer timer,
                   LevelModelRef* out);

  /// Translates a global prediction for `key` into entry bounds local to
  /// file `file_idx` of the model's level. Returns false when the model
  /// does not cover file_idx (defensive; impossible for a model installed
  /// with its version).
  static bool PredictInFile(const LevelModel& model, Key key,
                            size_t file_idx, size_t* local_lo,
                            size_t* local_hi);

  /// Pre-populates the per-file segment cache for `meta` (opening its
  /// reader if needed). Called off-lock for freshly written compaction
  /// outputs so the mutex-held stitch at install time touches only
  /// in-memory state. Best-effort: failures surface later as a deferred
  /// stitch.
  void WarmFileSegments(const FileMeta& meta, TableCache* cache);

  /// True when `type` can adopt foreign segments (BuildFromSegments).
  /// The write path skips model production entirely for non-stitchable
  /// types — every install would degrade to a full-level scan under the
  /// DB mutex — leaving models to the read path's lazy build instead.
  static bool CanStitch(IndexType type);

  /// Drops cached per-file segments for files absent from `v` (levels >=
  /// 1) — called after an install, when the dropped files are obsolete.
  void Prune(const Version& v);
  /// Drops the whole segment cache (index reconfiguration).
  void Reset();

  size_t SegmentCacheEntries() const;

 private:
  struct FileSegments {
    uint64_t entries = 0;
    uint32_t epsilon = 0;  // the bound the segments were trained under
    std::shared_ptr<const std::vector<LinearSegment>> segments;
  };

  /// Cache-or-export the file's segments; false when the reader's index
  /// type is not segment-based (caller falls back to TrainFull).
  Status ExportFileSegments(const FileMeta& meta, TableCache* cache,
                            bool* supported, FileSegments* out);

  /// The sidecar-first half of ExportFileSegments: true when the file's
  /// persisted sidecar yielded a usable FileSegments.
  bool LoadFromSidecar(const FileMeta& meta, FileSegments* out);

  Env* const env_;
  Stats* const stats_;
  const double stitch_blowup_;
  const std::string dbname_;
  const bool sidecar_first_;
  mutable Mutex cache_mu_;
  /// Per-file trained segments keyed by file number (numbers are never
  /// reused).
  std::unordered_map<uint64_t, FileSegments> file_segments_
      GUARDED_BY(cache_mu_);
};

}  // namespace lilsm

#endif  // LILSM_LSM_MODEL_CATALOG_H_
