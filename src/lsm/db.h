// DB: the LSM-tree key-value store of the testbed — a LevelDB-style engine
// (write buffer + WAL, leveled compaction with size ratio T, partial
// compactions, bloom filters) whose per-table index is pluggable: any of
// the paper's six learned indexes or the traditional fence pointers, at
// file or level granularity.
//
// Two execution models (DBOptions::concurrency; see DESIGN.md):
//
//  * kInline (default): single-threaded with inline (synchronous) flushes
//    and compactions, which makes every measurement the benches take
//    deterministic — the paper's setup.
//  * kBackground: writes hand full memtables to background workers that
//    flush and compact off the foreground path, with LevelDB-style
//    write slowdown/stall triggers; readers pin refcounted memtables and
//    versions, so Get and iterators run concurrently with mutation, and
//    Snapshot handles give repeatable point-in-time reads.
//
// The parallel write path is opt-in on top of either mode (all default
// off; see DESIGN.md "Write path & concurrency architecture"):
// group_commit batches concurrent writers through a leader,
// max_background_jobs > 1 runs flush ∥ compaction and disjoint-level
// compactions concurrently, and max_subcompactions > 1 range-partitions
// one large compaction across threads.
#ifndef LILSM_LSM_DB_H_
#define LILSM_LSM_DB_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lsm/db_iter.h"
#include "lsm/dbformat.h"
#include "lsm/write_batch.h"
#include "table/table.h"
#include "util/stats.h"

namespace lilsm {

/// The paper's index-granularity axis: one model per SSTable, or one model
/// per level (Dai et al.'s LevelModel).
enum class IndexGranularity : uint8_t {
  kFile = 0,
  kLevel = 1,
};

/// How level-granularity models are kept fresh (see DESIGN.md). Models
/// are immutable, refcounted artifacts attached to each Version, so a
/// reader pinned to a version always has a model consistent with its file
/// lists under either policy.
enum class LevelModelPolicy : uint8_t {
  /// Models start empty in every installed version and are rebuilt on
  /// first use from a full-level key scan — the paper's behavior (every
  /// figure bench) and the default.
  kLazyRebuild = 0,
  /// Flush and compaction produce model updates: per-file trained
  /// segments are stitched into the level model at version-install time
  /// (touching only changed files, zero key re-reads), with a full
  /// retrain fallback governed by model_stitch_blowup. Bourbon-style
  /// train-on-the-write-path for write-heavy serving. Engages only when
  /// the read path can consult level models (kLevel granularity over
  /// kSegmented tables); non-segment index types (RMI, RadixSpline,
  /// PLEX, fence pointers) cannot stitch, so for them the write path
  /// produces nothing and models fall back to lazy read-path builds —
  /// prefer a segment-based type (PGM, PLR, FITing-Tree) here.
  kCompactionMaintained = 1,
};

/// How DB::Open under kCompactionMaintained obtains the level models for
/// the recovered tree (see DESIGN.md "Durability & recovery").
enum class ModelPersistence : uint8_t {
  /// Default: stitch from each table's persisted model sidecar — two
  /// preads per file, zero key scans (Counter::kModelsLoadedFromDisk).
  /// Missing or corrupt sidecars fall back per file to the in-memory
  /// reader export (Counter::kModelSidecarFallbacks).
  kSidecar = 0,
  /// Ignore sidecars; stitch from each table reader's in-memory index
  /// (decodes index blobs but re-reads no keys). The pre-sidecar
  /// behavior, kept for measurement.
  kStitchInMemory = 1,
  /// Rebuild every level model from a full key scan at open time — the
  /// slowest, model-bit-exact baseline the persisted paths are compared
  /// against.
  kRetrainOnOpen = 2,
};

/// Where LSM maintenance (flush, compaction) runs.
enum class ConcurrencyMode : uint8_t {
  /// Maintenance runs inline on the writing thread; the engine is
  /// single-threaded and deterministic (every paper figure uses this).
  kInline = 0,
  /// Maintenance runs on Env::Schedule's background thread; writers only
  /// stall on the slowdown/stop triggers and readers never block.
  kBackground = 1,
};

/// A point-in-time read handle (DB::GetSnapshot). Internally it pins the
/// memtables and version that were live at creation, so reads through it
/// are repeatable even after flushes and compactions rewrite the tree.
/// Release with DB::ReleaseSnapshot; a held snapshot keeps the pinned
/// memtables and table files alive (and on disk) until released.
class Snapshot {
 public:
  /// The last sequence number visible through this snapshot.
  virtual SequenceNumber sequence() const = 0;

 protected:
  Snapshot() = default;
  virtual ~Snapshot() = default;
};

/// Per-call read options (LevelDB/RocksDB idiom). Every read entry point
/// (Get, MultiGet, NewIterator, RangeLookup) takes one; the zero-argument
/// convenience overloads forward a default-constructed instance.
struct ReadOptions {
  /// Read from this snapshot's pinned state instead of the latest state.
  /// Must stay unreleased for the duration of the call (and, for
  /// NewIterator, may be released once the iterator exists — the iterator
  /// holds its own pins).
  const Snapshot* snapshot = nullptr;

  /// Per-call instrumentation sink. When non-null, every timer and counter
  /// this call would have recorded against DB::stats() goes here instead —
  /// callers attribute lookup stages (bloom, predict, disk, search) to one
  /// request stream without tearing apart the DB-wide totals. Iterator
  /// internals (block fetches during NewIterator scans) still record to
  /// the DB-wide sink; see DESIGN.md.
  Stats* stats = nullptr;

  /// Debug mode: cross-check every Get/MultiGet outcome against a
  /// learned-index-free reference read (a merging-iterator seek over the
  /// same pinned view) and return Corruption on divergence. Expensive;
  /// meant for tests and bring-up of new index types.
  bool verify_found = false;

  /// Whether blocks fetched by this call may be inserted into the shared
  /// block cache (DBOptions::block_cache_bytes). Cache hits are always
  /// served. Set false for large scans so a one-pass iterator does not
  /// evict the point-lookup hot set (the RocksDB idiom); compaction
  /// input reads behave as if it were false.
  bool fill_cache = true;

  /// Model-guided readahead for iterators created by this call (and the
  /// scans under RangeLookup): each table iterator prefetches up to this
  /// many upcoming I/O blocks through an async read batch while the
  /// caller consumes the current one. 0 (default) keeps the scan path
  /// fully synchronous and byte-identical to earlier releases. Prefetch
  /// success/waste is visible as kReadaheadHits / kReadaheadWasted.
  size_t readahead_blocks = 0;
};

/// Per-call write options.
struct WriteOptions {
  /// Overrides DBOptions::sync_wal for this write: true forces an
  /// fdatasync of the WAL before the write is acknowledged, false skips
  /// it. Unset inherits the DB-wide default.
  std::optional<bool> sync;

  /// Skips the WAL entirely — the write is only as durable as the next
  /// memtable flush. The standard bulk-load switch: load with
  /// disable_wal=true, then FlushMemTable() once at the end.
  bool disable_wal = false;
};

struct DBOptions {
  Env* env = nullptr;  // defaults to Env::Default()

  /// Memtable capacity before a flush (paper Figure 9 uses 64 MiB).
  size_t write_buffer_size = 4 << 20;
  /// LSM size ratio T between adjacent level capacities (paper: 10).
  int size_ratio = 10;
  /// Target size of one SSTable — the index-granularity knob.
  uint64_t sstable_target_size = 2 << 20;
  /// Number of L0 files triggering an L0 -> L1 compaction.
  int l0_compaction_trigger = 4;

  /// Execution model for flushes and compactions (see DESIGN.md).
  ConcurrencyMode concurrency = ConcurrencyMode::kInline;
  /// kBackground only: at this many L0 files each write is delayed ~1 ms
  /// to let compaction gain ground (LevelDB's soft limit). Clamped at
  /// Open to >= l0_compaction_trigger (a stall must imply pending work).
  int l0_slowdown_trigger = 8;
  /// kBackground only: at this many L0 files writes block until the
  /// backlog drains (LevelDB's hard limit). Clamped at Open to >=
  /// l0_slowdown_trigger.
  int l0_stop_trigger = 12;

  /// Group commit (LevelDB's writer queue): concurrent Write calls link
  /// into a queue; the front writer becomes leader, coalesces the queued
  /// batches into one WAL record and one memtable apply, and amortizes a
  /// single fsync across the group. Off (default) keeps the serial write
  /// path byte-identical to earlier releases; kInline measurements are
  /// unaffected either way (one writer never forms a group > 1).
  bool group_commit = false;

  /// kBackground only: how many flushes/compactions may run at once. 1
  /// (default) reproduces the single-worker engine. Above 1 the DB owns a
  /// thread pool and runs a flush in parallel with compactions, and
  /// compactions at disjoint level pairs in parallel (a job at level L
  /// occupies L and L+1; see DESIGN.md "Write path & concurrency").
  int max_background_jobs = 1;

  /// Maximum range-partitioned shards per compaction. 1 (default) keeps
  /// every compaction a single merge loop. Above 1, a compaction whose
  /// next-level inputs span several files is split at those file
  /// boundaries into up to this many shards, merged in parallel, with all
  /// shard outputs installed as one VersionEdit (and stitched into the
  /// level model exactly as a single-threaded compaction would be).
  int max_subcompactions = 1;

  int bloom_bits_per_key = 10;

  /// Entry geometry (paper: 24-byte keys, 1000-byte values). The segmented
  /// format requires every value to have exactly value_size bytes.
  uint32_t key_size = 24;
  uint32_t value_size = 100;

  TableFormat table_format = TableFormat::kSegmented;
  IndexType index_type = IndexType::kPGM;
  IndexConfig index_config;
  IndexGranularity index_granularity = IndexGranularity::kFile;

  /// Level-model lifecycle for IndexGranularity::kLevel (see DESIGN.md).
  LevelModelPolicy level_model_policy = LevelModelPolicy::kLazyRebuild;
  /// kCompactionMaintained only: fall back to a full level retrain when
  /// the stitched model's segments-per-entry density exceeds this multiple
  /// of the level's best observed density. <= 0 disables the fallback.
  double model_stitch_blowup = 4.0;
  /// Where open-time level models come from under kCompactionMaintained.
  ModelPersistence model_persistence = ModelPersistence::kSidecar;

  /// fdatasync the WAL on every write (off for benchmarks, matching the
  /// paper's setup; recovery tests turn it on).
  bool sync_wal = false;

  bool create_if_missing = true;
  bool error_if_exists = false;

  /// Capacity (in open readers) of the table cache. Must be positive:
  /// zero would force every lookup through a full open/parse cycle.
  size_t max_open_tables = 4096;

  /// Charged capacity of the shared block cache consulted by both table
  /// formats before any Env read of table data. 0 (default) disables
  /// caching entirely, preserving the paper-reproduction path where each
  /// segment fetch is a device I/O with exactly the seed's SimEnv counts.
  size_t block_cache_bytes = 0;

  /// Target I/O queue depth for batched reads. 1 (default) keeps every
  /// read path synchronous and byte-identical to earlier releases
  /// (including SimEnv latency/counter accounting). Above 1, MultiGet
  /// fetches the io-blocks of all runs of a level concurrently through
  /// Env::NewReadBatch (io_uring when available, a thread-pool backend
  /// otherwise), and compaction input iterators read ahead up to this
  /// many blocks. Results are always bit-identical to the synchronous
  /// path; only timing and batching counters differ.
  int io_depth = 1;

  /// Sanity-checks the option values against the engine's invariants;
  /// DB::Open calls this first and refuses to open on failure. Rejects a
  /// zero value_size under the fixed-geometry segmented format,
  /// non-positive size_ratio and L0 triggers, a zero max_open_tables
  /// (every lookup would thrash a full table open/close), a key_size
  /// the 8-byte uint64_t Key cannot round-trip through (< 8, or past the
  /// 64-byte encode buffers), and non-positive max_background_jobs,
  /// max_subcompactions, or io_depth.
  Status Validate() const;
};

class DB {
 public:
  /// Opens (creating or recovering) the database at `name`.
  static Status Open(const DBOptions& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  /// Waits for queued background work to finish or abort; outstanding
  /// snapshots and iterators must be released first.
  virtual ~DB() = default;

  virtual Status Put(const WriteOptions& options, Key key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, Key key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* batch) = 0;

  // Convenience overloads with default write options.
  Status Put(Key key, const Slice& value) {
    return Put(WriteOptions(), key, value);
  }
  Status Delete(Key key) { return Delete(WriteOptions(), key); }
  Status Write(WriteBatch* batch) { return Write(WriteOptions(), batch); }

  /// Point lookup; NotFound if absent or deleted. Honors
  /// options.snapshot, options.stats, and options.verify_found.
  virtual Status Get(const ReadOptions& options, Key key,
                     std::string* value) = 0;

  /// Batched point lookup: serves `keys` as one operation against a
  /// single pinned view (memtables + version), so every key sees the same
  /// state. statuses->at(i) is OK (values->at(i) set), NotFound, or — on
  /// an environmental failure — whatever error aborted the batch (also
  /// returned). The batch is sorted internally; the remainder after the
  /// memtable pass is grouped into per-table runs per level (and served
  /// against the level model under IndexGranularity::kLevel), so each
  /// table's reader fetch, bloom filter, and learned index are consulted
  /// per run instead of per key. Results are bit-identical to per-key Get
  /// with the same options. kMultiGet / kMultiGetKeys / kMultiGetBatches
  /// instrument the batch; per-level AddLevelRead attribution is recorded
  /// once per consulted level per batch.
  virtual Status MultiGet(const ReadOptions& options,
                          std::span<const Key> keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) = 0;

  /// Iterator over live entries. It pins the memtables and version it
  /// reads, so it stays valid (at its creation-time view) under concurrent
  /// writes, flushes, and compactions; destroy it to unpin. With
  /// options.snapshot, iterates that snapshot's view instead.
  virtual std::unique_ptr<Iterator> NewIterator(
      const ReadOptions& options) = 0;

  /// Range lookup: up to `count` entries starting at the first key >=
  /// `start` (the paper's range workload). With options.snapshot, the
  /// range is read from the snapshot's pinned view.
  virtual Status RangeLookup(const ReadOptions& options, Key start,
                             size_t count,
                             std::vector<std::pair<Key, std::string>>* out) = 0;

  // Convenience overloads with default read options. The snapshot-pointer
  // forms mirror the pre-ReadOptions signatures (deprecated style; prefer
  // passing ReadOptions explicitly).
  Status Get(Key key, std::string* value) {
    return Get(ReadOptions(), key, value);
  }
  Status Get(Key key, std::string* value, const Snapshot* snapshot) {
    ReadOptions options;
    options.snapshot = snapshot;
    return Get(options, key, value);
  }
  Status MultiGet(std::span<const Key> keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses) {
    return MultiGet(ReadOptions(), keys, values, statuses);
  }
  std::unique_ptr<Iterator> NewIterator() { return NewIterator(ReadOptions()); }
  std::unique_ptr<Iterator> NewIterator(const Snapshot* snapshot) {
    ReadOptions options;
    options.snapshot = snapshot;
    return NewIterator(options);
  }
  Status RangeLookup(Key start, size_t count,
                     std::vector<std::pair<Key, std::string>>* out) {
    return RangeLookup(ReadOptions(), start, count, out);
  }

  /// Pins the current state for repeatable reads. Must be released via
  /// ReleaseSnapshot before the DB is destroyed.
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Flushes the memtable to level 0 (no-op when empty) and settles the
  /// tree. In kBackground this drains the background queue first.
  virtual Status FlushMemTable() = 0;
  /// Runs (or, in kBackground, schedules and awaits) compactions until
  /// every level is within capacity.
  virtual Status CompactUntilStable() = 0;
  /// Full merge of every populated level into the one below, top-down —
  /// the precondition the paper notes for level-granularity models.
  /// Requires a quiescent DB (no concurrent writers): in kBackground its
  /// foreground merges would otherwise race freshly scheduled background
  /// compactions over the same files.
  virtual Status CompactAll() = 0;

  // ---- experiment support ----
  // The reconfiguration and memory-accounting APIs below assume a
  // quiescent DB (no in-flight reads or writes), in both modes.

  /// Swaps the in-memory index of every live table (and level model) to a
  /// new type/config without rewriting data files. Subsequent flushes and
  /// compactions also train the new configuration.
  virtual Status ReconfigureIndexes(IndexType type,
                                    const IndexConfig& config) = 0;
  /// Changes the index granularity (file- or level-grained lookups).
  virtual void SetIndexGranularity(IndexGranularity granularity) = 0;

  /// Drops every entry of the shared block cache (no-op when
  /// block_cache_bytes is 0). Experiment support: the testbed clears it
  /// before each measured run so per-configuration measurements start
  /// cold instead of inheriting the previous configuration's warm set.
  virtual void ClearBlockCache() = 0;

  // The introspection surface below is const so read-only observers
  // (monitoring threads, report emitters) can hold a `const DB&`. The
  // methods may still take the DB mutex or build lazy level models
  // internally; they never change user-visible state.

  /// Index-only memory across live tables (level models when granularity
  /// is kLevel), excluding bloom filters — the paper's "Memory (B)" axis.
  virtual size_t TotalIndexMemory() const = 0;
  /// Bloom filter memory across live tables.
  virtual size_t TotalFilterMemory() const = 0;
  /// Charged bytes currently held by the shared block cache (0 when
  /// block_cache_bytes is 0). Hit/miss/eviction rates are in stats().
  virtual size_t BlockCacheMemory() const = 0;
  /// Index memory attributed to one level (Figure 10).
  virtual size_t LevelIndexMemory(int level) const = 0;

  virtual int NumFilesAtLevel(int level) const = 0;
  virtual uint64_t BytesAtLevel(int level) const = 0;
  virtual uint64_t EntriesAtLevel(int level) const = 0;
  virtual SequenceNumber LastSequence() const = 0;

  /// Measurement sink for all engine instrumentation. The Stats object is
  /// internally synchronized, so handing out a mutable pointer from a
  /// const DB is sound (observers read counters; benches Reset between
  /// runs).
  virtual Stats* stats() const = 0;

  /// Destroys the database contents at `name` (files + directory).
  static Status Destroy(const DBOptions& options, const std::string& name);
};

}  // namespace lilsm

#endif  // LILSM_LSM_DB_H_
