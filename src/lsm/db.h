// DB: the LSM-tree key-value store of the testbed — a LevelDB-style engine
// (write buffer + WAL, leveled compaction with size ratio T, partial
// compactions, bloom filters) whose per-table index is pluggable: any of
// the paper's six learned indexes or the traditional fence pointers, at
// file or level granularity.
//
// The engine is deliberately single-threaded with inline (synchronous)
// flushes and compactions, which makes every measurement the benches take
// deterministic; see DESIGN.md for how this maps to the paper's setup.
#ifndef LILSM_LSM_DB_H_
#define LILSM_LSM_DB_H_

#include <memory>
#include <string>

#include "lsm/db_iter.h"
#include "lsm/dbformat.h"
#include "lsm/write_batch.h"
#include "table/table.h"
#include "util/stats.h"

namespace lilsm {

/// The paper's index-granularity axis: one model per SSTable, or one model
/// per level (Dai et al.'s LevelModel).
enum class IndexGranularity : uint8_t {
  kFile = 0,
  kLevel = 1,
};

struct DBOptions {
  Env* env = nullptr;  // defaults to Env::Default()

  /// Memtable capacity before a flush (paper Figure 9 uses 64 MiB).
  size_t write_buffer_size = 4 << 20;
  /// LSM size ratio T between adjacent level capacities (paper: 10).
  int size_ratio = 10;
  /// Target size of one SSTable — the index-granularity knob.
  uint64_t sstable_target_size = 2 << 20;
  /// Number of L0 files triggering an L0 -> L1 compaction.
  int l0_compaction_trigger = 4;

  int bloom_bits_per_key = 10;

  /// Entry geometry (paper: 24-byte keys, 1000-byte values). The segmented
  /// format requires every value to have exactly value_size bytes.
  uint32_t key_size = 24;
  uint32_t value_size = 100;

  TableFormat table_format = TableFormat::kSegmented;
  IndexType index_type = IndexType::kPGM;
  IndexConfig index_config;
  IndexGranularity index_granularity = IndexGranularity::kFile;

  /// fdatasync the WAL on every write (off for benchmarks, matching the
  /// paper's setup; recovery tests turn it on).
  bool sync_wal = false;

  bool create_if_missing = true;
  bool error_if_exists = false;

  size_t max_open_tables = 4096;
};

class DB {
 public:
  /// Opens (creating or recovering) the database at `name`.
  static Status Open(const DBOptions& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  virtual ~DB() = default;

  virtual Status Put(Key key, const Slice& value) = 0;
  virtual Status Delete(Key key) = 0;
  virtual Status Write(WriteBatch* batch) = 0;

  /// Point lookup; NotFound if absent or deleted.
  virtual Status Get(Key key, std::string* value) = 0;

  /// Iterator over live entries; invalidated by subsequent writes.
  virtual std::unique_ptr<Iterator> NewIterator() = 0;

  /// Range lookup: up to `count` entries starting at the first key >=
  /// `start` (the paper's range workload).
  virtual Status RangeLookup(Key start, size_t count,
                             std::vector<std::pair<Key, std::string>>* out) = 0;

  /// Flushes the memtable to level 0 (no-op when empty).
  virtual Status FlushMemTable() = 0;
  /// Runs compactions until every level is within capacity.
  virtual Status CompactUntilStable() = 0;
  /// Full merge of every populated level into the one below, top-down —
  /// the precondition the paper notes for level-granularity models.
  virtual Status CompactAll() = 0;

  // ---- experiment support ----

  /// Swaps the in-memory index of every live table (and level model) to a
  /// new type/config without rewriting data files. Subsequent flushes and
  /// compactions also train the new configuration.
  virtual Status ReconfigureIndexes(IndexType type,
                                    const IndexConfig& config) = 0;
  /// Changes the index granularity (file- or level-grained lookups).
  virtual void SetIndexGranularity(IndexGranularity granularity) = 0;

  /// Index-only memory across live tables (level models when granularity
  /// is kLevel), excluding bloom filters — the paper's "Memory (B)" axis.
  virtual size_t TotalIndexMemory() = 0;
  /// Bloom filter memory across live tables.
  virtual size_t TotalFilterMemory() = 0;
  /// Index memory attributed to one level (Figure 10).
  virtual size_t LevelIndexMemory(int level) = 0;

  virtual int NumFilesAtLevel(int level) = 0;
  virtual uint64_t BytesAtLevel(int level) = 0;
  virtual uint64_t EntriesAtLevel(int level) = 0;
  virtual SequenceNumber LastSequence() = 0;

  /// Measurement sink for all engine instrumentation.
  virtual Stats* stats() = 0;

  /// Destroys the database contents at `name` (files + directory).
  static Status Destroy(const DBOptions& options, const std::string& name);
};

}  // namespace lilsm

#endif  // LILSM_LSM_DB_H_
