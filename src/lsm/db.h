// DB: the LSM-tree key-value store of the testbed — a LevelDB-style engine
// (write buffer + WAL, leveled compaction with size ratio T, partial
// compactions, bloom filters) whose per-table index is pluggable: any of
// the paper's six learned indexes or the traditional fence pointers, at
// file or level granularity.
//
// Two execution models (DBOptions::concurrency; see DESIGN.md):
//
//  * kInline (default): single-threaded with inline (synchronous) flushes
//    and compactions, which makes every measurement the benches take
//    deterministic — the paper's setup.
//  * kBackground: writes hand full memtables to a background worker that
//    flushes and compacts off the foreground path, with LevelDB-style
//    write slowdown/stall triggers; readers pin refcounted memtables and
//    versions, so Get and iterators run concurrently with mutation, and
//    Snapshot handles give repeatable point-in-time reads.
#ifndef LILSM_LSM_DB_H_
#define LILSM_LSM_DB_H_

#include <memory>
#include <string>

#include "lsm/db_iter.h"
#include "lsm/dbformat.h"
#include "lsm/write_batch.h"
#include "table/table.h"
#include "util/stats.h"

namespace lilsm {

/// The paper's index-granularity axis: one model per SSTable, or one model
/// per level (Dai et al.'s LevelModel).
enum class IndexGranularity : uint8_t {
  kFile = 0,
  kLevel = 1,
};

/// How level-granularity models are kept fresh (see DESIGN.md). Models
/// are immutable, refcounted artifacts attached to each Version, so a
/// reader pinned to a version always has a model consistent with its file
/// lists under either policy.
enum class LevelModelPolicy : uint8_t {
  /// Models start empty in every installed version and are rebuilt on
  /// first use from a full-level key scan — the paper's behavior (every
  /// figure bench) and the default.
  kLazyRebuild = 0,
  /// Flush and compaction produce model updates: per-file trained
  /// segments are stitched into the level model at version-install time
  /// (touching only changed files, zero key re-reads), with a full
  /// retrain fallback governed by model_stitch_blowup. Bourbon-style
  /// train-on-the-write-path for write-heavy serving. Engages only when
  /// the read path can consult level models (kLevel granularity over
  /// kSegmented tables); non-segment index types (RMI, RadixSpline,
  /// PLEX, fence pointers) cannot stitch, so for them the write path
  /// produces nothing and models fall back to lazy read-path builds —
  /// prefer a segment-based type (PGM, PLR, FITing-Tree) here.
  kCompactionMaintained = 1,
};

/// Where LSM maintenance (flush, compaction) runs.
enum class ConcurrencyMode : uint8_t {
  /// Maintenance runs inline on the writing thread; the engine is
  /// single-threaded and deterministic (every paper figure uses this).
  kInline = 0,
  /// Maintenance runs on Env::Schedule's background thread; writers only
  /// stall on the slowdown/stop triggers and readers never block.
  kBackground = 1,
};

/// A point-in-time read handle (DB::GetSnapshot). Internally it pins the
/// memtables and version that were live at creation, so reads through it
/// are repeatable even after flushes and compactions rewrite the tree.
/// Release with DB::ReleaseSnapshot; a held snapshot keeps the pinned
/// memtables and table files alive (and on disk) until released.
class Snapshot {
 public:
  /// The last sequence number visible through this snapshot.
  virtual SequenceNumber sequence() const = 0;

 protected:
  Snapshot() = default;
  virtual ~Snapshot() = default;
};

struct DBOptions {
  Env* env = nullptr;  // defaults to Env::Default()

  /// Memtable capacity before a flush (paper Figure 9 uses 64 MiB).
  size_t write_buffer_size = 4 << 20;
  /// LSM size ratio T between adjacent level capacities (paper: 10).
  int size_ratio = 10;
  /// Target size of one SSTable — the index-granularity knob.
  uint64_t sstable_target_size = 2 << 20;
  /// Number of L0 files triggering an L0 -> L1 compaction.
  int l0_compaction_trigger = 4;

  /// Execution model for flushes and compactions (see DESIGN.md).
  ConcurrencyMode concurrency = ConcurrencyMode::kInline;
  /// kBackground only: at this many L0 files each write is delayed ~1 ms
  /// to let compaction gain ground (LevelDB's soft limit). Clamped at
  /// Open to >= l0_compaction_trigger (a stall must imply pending work).
  int l0_slowdown_trigger = 8;
  /// kBackground only: at this many L0 files writes block until the
  /// backlog drains (LevelDB's hard limit). Clamped at Open to >=
  /// l0_slowdown_trigger.
  int l0_stop_trigger = 12;

  int bloom_bits_per_key = 10;

  /// Entry geometry (paper: 24-byte keys, 1000-byte values). The segmented
  /// format requires every value to have exactly value_size bytes.
  uint32_t key_size = 24;
  uint32_t value_size = 100;

  TableFormat table_format = TableFormat::kSegmented;
  IndexType index_type = IndexType::kPGM;
  IndexConfig index_config;
  IndexGranularity index_granularity = IndexGranularity::kFile;

  /// Level-model lifecycle for IndexGranularity::kLevel (see DESIGN.md).
  LevelModelPolicy level_model_policy = LevelModelPolicy::kLazyRebuild;
  /// kCompactionMaintained only: fall back to a full level retrain when
  /// the stitched model's segments-per-entry density exceeds this multiple
  /// of the level's best observed density. <= 0 disables the fallback.
  double model_stitch_blowup = 4.0;

  /// fdatasync the WAL on every write (off for benchmarks, matching the
  /// paper's setup; recovery tests turn it on).
  bool sync_wal = false;

  bool create_if_missing = true;
  bool error_if_exists = false;

  size_t max_open_tables = 4096;
};

class DB {
 public:
  /// Opens (creating or recovering) the database at `name`.
  static Status Open(const DBOptions& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  /// Waits for queued background work to finish or abort; outstanding
  /// snapshots and iterators must be released first.
  virtual ~DB() = default;

  virtual Status Put(Key key, const Slice& value) = 0;
  virtual Status Delete(Key key) = 0;
  virtual Status Write(WriteBatch* batch) = 0;

  /// Point lookup; NotFound if absent or deleted. With a null snapshot the
  /// read sees the latest state; with a snapshot it sees exactly the state
  /// the snapshot pinned. The snapshot must stay unreleased for the call.
  virtual Status Get(Key key, std::string* value,
                     const Snapshot* snapshot) = 0;
  Status Get(Key key, std::string* value) {
    return Get(key, value, nullptr);
  }

  /// Iterator over live entries. It pins the memtables and version it
  /// reads, so it stays valid (at its creation-time view) under concurrent
  /// writes, flushes, and compactions; destroy it to unpin. With a
  /// snapshot, iterates that snapshot's view instead.
  virtual std::unique_ptr<Iterator> NewIterator(const Snapshot* snapshot) = 0;
  std::unique_ptr<Iterator> NewIterator() { return NewIterator(nullptr); }

  /// Pins the current state for repeatable reads. Must be released via
  /// ReleaseSnapshot before the DB is destroyed.
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Range lookup: up to `count` entries starting at the first key >=
  /// `start` (the paper's range workload).
  virtual Status RangeLookup(Key start, size_t count,
                             std::vector<std::pair<Key, std::string>>* out) = 0;

  /// Flushes the memtable to level 0 (no-op when empty) and settles the
  /// tree. In kBackground this drains the background queue first.
  virtual Status FlushMemTable() = 0;
  /// Runs (or, in kBackground, schedules and awaits) compactions until
  /// every level is within capacity.
  virtual Status CompactUntilStable() = 0;
  /// Full merge of every populated level into the one below, top-down —
  /// the precondition the paper notes for level-granularity models.
  /// Requires a quiescent DB (no concurrent writers): in kBackground its
  /// foreground merges would otherwise race freshly scheduled background
  /// compactions over the same files.
  virtual Status CompactAll() = 0;

  // ---- experiment support ----
  // The reconfiguration and memory-accounting APIs below assume a
  // quiescent DB (no in-flight reads or writes), in both modes.

  /// Swaps the in-memory index of every live table (and level model) to a
  /// new type/config without rewriting data files. Subsequent flushes and
  /// compactions also train the new configuration.
  virtual Status ReconfigureIndexes(IndexType type,
                                    const IndexConfig& config) = 0;
  /// Changes the index granularity (file- or level-grained lookups).
  virtual void SetIndexGranularity(IndexGranularity granularity) = 0;

  /// Index-only memory across live tables (level models when granularity
  /// is kLevel), excluding bloom filters — the paper's "Memory (B)" axis.
  virtual size_t TotalIndexMemory() = 0;
  /// Bloom filter memory across live tables.
  virtual size_t TotalFilterMemory() = 0;
  /// Index memory attributed to one level (Figure 10).
  virtual size_t LevelIndexMemory(int level) = 0;

  virtual int NumFilesAtLevel(int level) = 0;
  virtual uint64_t BytesAtLevel(int level) = 0;
  virtual uint64_t EntriesAtLevel(int level) = 0;
  virtual SequenceNumber LastSequence() = 0;

  /// Measurement sink for all engine instrumentation.
  virtual Stats* stats() = 0;

  /// Destroys the database contents at `name` (files + directory).
  static Status Destroy(const DBOptions& options, const std::string& name);
};

}  // namespace lilsm

#endif  // LILSM_LSM_DB_H_
