// Merging iterator over multiple TableIterator sources in internal-key
// order (user key ascending, sequence descending).
#ifndef LILSM_LSM_MERGER_H_
#define LILSM_LSM_MERGER_H_

#include <memory>
#include <vector>

#include "table/table.h"

namespace lilsm {

std::unique_ptr<TableIterator> NewMergingIterator(
    std::vector<std::unique_ptr<TableIterator>> children);

}  // namespace lilsm

#endif  // LILSM_LSM_MERGER_H_
