#include "lsm/wal.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace lilsm {

Status LogWriter::AddRecord(const Slice& record) {
  char header[8];
  EncodeFixed32(header,
                crc32c::Mask(crc32c::Value(record.data(), record.size())));
  EncodeFixed32(header + 4, static_cast<uint32_t>(record.size()));
  Status s = file_->Append(Slice(header, 8));
  if (!s.ok()) return s;
  return file_->Append(record);
}

bool LogReader::ReadRecord(std::string* record) {
  char header[8];
  Slice contents;
  Status s = file_->Read(8, &contents, header);
  if (!s.ok() || contents.size() == 0) {
    return false;  // clean EOF
  }
  if (contents.size() < 8) {
    hit_corruption_ = true;  // torn header
    return false;
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(contents.data()));
  const uint32_t length = DecodeFixed32(contents.data() + 4);
  if (length > (1u << 30)) {
    hit_corruption_ = true;
    return false;
  }
  record->resize(length);
  Slice payload;
  s = file_->Read(length, &payload, record->data());
  if (!s.ok() || payload.size() < length) {
    hit_corruption_ = true;  // torn payload
    return false;
  }
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    hit_corruption_ = true;
    return false;
  }
  // `payload` may point into the env's buffer rather than `record`.
  if (payload.data() != record->data()) {
    record->assign(payload.data(), payload.size());
  }
  return true;
}

}  // namespace lilsm
