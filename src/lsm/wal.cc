#include "lsm/wal.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace lilsm {

namespace {

/// Records beyond this are never written; a larger length field is a
/// damaged header, not a real record.
constexpr uint32_t kMaxRecordLength = 1u << 30;

}  // namespace

Status LogWriter::AddRecord(const Slice& record) {
  char header[8];
  EncodeFixed32(header,
                crc32c::Mask(crc32c::Value(record.data(), record.size())));
  EncodeFixed32(header + 4, static_cast<uint32_t>(record.size()));
  Status s = file_->Append(Slice(header, 8));
  if (!s.ok()) return s;
  return file_->Append(record);
}

/// Accumulates up to `n` bytes into `scratch`, looping over short reads
/// so a result shorter than `n` reliably means end-of-file — the fact
/// the torn-tail classification rests on.
Status LogReader::ReadFully(size_t n, Slice* result, char* scratch) {
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file_->Read(n - got, &chunk, scratch + got);
    if (!s.ok()) return s;
    if (chunk.empty()) break;
    if (chunk.data() != scratch + got) {
      std::memmove(scratch + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *result = Slice(scratch, got);
  return Status::OK();
}

bool LogReader::AtEof() {
  char byte;
  Slice probe;
  Status s = file_->Read(1, &probe, &byte);
  return s.ok() && probe.empty();
}

/// Consumes the stream to decide whether fewer than `length` bytes
/// remain. Bounded scratch: the garbage length is never allocated.
bool LogReader::EofWithin(uint64_t length) {
  char buf[4096];
  uint64_t remaining = length;
  while (remaining > 0) {
    Slice chunk;
    Status s = file_->Read(
        static_cast<size_t>(std::min<uint64_t>(remaining, sizeof(buf))),
        &chunk, buf);
    if (!s.ok()) return false;
    if (chunk.empty()) return true;
    remaining -= chunk.size();
  }
  return false;
}

LogReadStatus LogReader::Read(std::string* record) {
  if (last_ != LogReadStatus::kOk) return last_;  // terminal states stick
  last_ = ReadInternal(record);
  return last_;
}

LogReadStatus LogReader::ReadInternal(std::string* record) {
  char header[8];
  Slice contents;
  Status s = ReadFully(8, &contents, header);
  if (!s.ok() || contents.size() == 0) {
    return LogReadStatus::kEof;  // clean end of log
  }
  if (contents.size() < 8) {
    return LogReadStatus::kTornTail;  // EOF inside the header
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(contents.data()));
  const uint32_t length = DecodeFixed32(contents.data() + 4);
  if (length > kMaxRecordLength) {
    // Garbage length field. If the file ends before the claimed payload,
    // this is the scribbled final record of a crash; if that many valid
    // bytes actually follow, the header itself was damaged in place.
    return EofWithin(length) ? LogReadStatus::kTornTail
                             : LogReadStatus::kCorruption;
  }
  record->resize(length);
  Slice payload;
  s = ReadFully(length, &payload, record->data());
  if (!s.ok() || payload.size() < length) {
    return LogReadStatus::kTornTail;  // EOF inside the payload
  }
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    // Full payload, bad checksum. On the final record this is the torn
    // tail of a crash (zero-filled or partially persisted sectors); with
    // valid bytes beyond it, the middle of the log is damaged.
    return AtEof() ? LogReadStatus::kTornTail : LogReadStatus::kCorruption;
  }
  return LogReadStatus::kOk;
}

}  // namespace lilsm
