#include "lsm/db_iter.h"

#include "util/check.h"

namespace lilsm {

namespace {

class DBIter final : public Iterator {
 public:
  DBIter(std::unique_ptr<TableIterator> internal, SequenceNumber sequence,
         std::function<void()> cleanup)
      : internal_(std::move(internal)),
        sequence_(sequence),
        cleanup_(std::move(cleanup)) {}

  ~DBIter() override {
    internal_.reset();  // child iterators go before their sources unpin
    if (cleanup_) cleanup_();
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    has_skip_key_ = false;
    FindNextUserEntry();
  }

  void Seek(Key target) override {
    internal_->Seek(target);
    has_skip_key_ = false;
    FindNextUserEntry();
  }

  void Next() override {
    LILSM_ASSERT(valid_);
    skip_key_ = internal_->key();
    has_skip_key_ = true;
    internal_->Next();
    FindNextUserEntry();
  }

  Key key() const override {
    LILSM_ASSERT(valid_);
    return internal_->key();
  }

  Slice value() const override {
    LILSM_ASSERT(valid_);
    return internal_->value();
  }

  Status status() const override { return internal_->status(); }

 private:
  /// Advances internal_ to the next visible, live, newest-version entry.
  void FindNextUserEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      const Key user_key = internal_->key();
      const uint64_t tag = internal_->tag();
      if (!TagVisibleAt(tag, sequence_)) {
        // Not visible at this snapshot.
        internal_->Next();
        continue;
      }
      if (has_skip_key_ && user_key == skip_key_) {
        // Older version of an already-emitted (or deleted) key.
        internal_->Next();
        continue;
      }
      if (TagType(tag) == kTypeDeletion) {
        skip_key_ = user_key;
        has_skip_key_ = true;
        internal_->Next();
        continue;
      }
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<TableIterator> internal_;
  const SequenceNumber sequence_;
  const std::function<void()> cleanup_;
  Key skip_key_ = 0;
  bool has_skip_key_ = false;
  bool valid_ = false;
};

}  // namespace

std::unique_ptr<Iterator> NewDBIterator(
    std::unique_ptr<TableIterator> internal, SequenceNumber sequence,
    std::function<void()> cleanup) {
  return std::make_unique<DBIter>(std::move(internal), sequence,
                                  std::move(cleanup));
}

}  // namespace lilsm
