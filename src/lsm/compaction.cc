#include "lsm/compaction.h"

#include <algorithm>

#include "lsm/merger.h"

namespace lilsm {

Status CompactionJob::FinishOutput(TableBuilder* builder,
                                   uint64_t file_number, Key smallest,
                                   Key largest, int output_level,
                                   VersionEdit* edit) {
  const uint64_t entries = builder->NumEntries();
  Status s = builder->Finish();
  if (!s.ok()) return s;
  FileMeta meta;
  meta.number = file_number;
  meta.entries = entries;
  meta.file_size = builder->FileSize();
  meta.smallest = smallest;
  meta.largest = largest;
  edit->AddFile(output_level, meta);
  return Status::OK();
}

Status CompactionJob::Run(const VersionSet::CompactionPick& pick,
                          const Version& base, VersionEdit* edit) {
  Stats* stats = ctx_.stats;
  Env* env = ctx_.env;
  ScopedTimer total_timer(stats, Timer::kCompactTotal, env);
  if (stats != nullptr) stats->Add(Counter::kCompactions);

  const int output_level = pick.level + 1;

  // One iterator per input file; the merging iterator handles ordering and
  // newest-first tie-breaks.
  std::vector<std::unique_ptr<TableIterator>> children;
  for (const std::vector<FileMeta>* inputs :
       {&pick.inputs, &pick.next_inputs}) {
    for (const FileMeta& meta : *inputs) {
      std::shared_ptr<TableReader> reader;
      Status s = ctx_.table_cache->GetReader(meta.number, &reader);
      if (!s.ok()) return s;
      // Compaction streams every input once; filling the block cache here
      // would evict the point-lookup hot set for blocks about to die.
      children.push_back(reader->NewIterator(/*fill_cache=*/false));
    }
  }
  std::unique_ptr<TableIterator> iter =
      NewMergingIterator(std::move(children));

  std::unique_ptr<TableBuilder> builder;
  uint64_t output_number = 0;
  Key output_smallest = 0, output_largest = 0;
  bool has_current_key = false;
  Key current_key = 0;
  Status s;

  {
    // The merge loop: reading inputs and writing merged entries is the
    // paper's "KV IO" share of compaction time. FinishOutput (which trains
    // and serializes the model, timed separately) is excluded by pausing
    // the accumulation around it.
    uint64_t kv_io_ns = 0;
    uint64_t chunk_start = env != nullptr ? env->NowNanos() : 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      const Key key = iter->key();
      const uint64_t tag = iter->tag();

      if (has_current_key && key == current_key) {
        continue;  // shadowed older version
      }
      has_current_key = true;
      current_key = key;

      if (TagType(tag) == kTypeDeletion &&
          !base.KeyMayExistBelow(output_level, key)) {
        continue;  // tombstone with nothing left to shadow
      }

      if (builder == nullptr) {
        if (ShutdownRequested()) {
          // Stop at an output-file boundary: nothing in flight to abandon,
          // and the caller discards the edit.
          if (stats != nullptr) {
            stats->AddTime(Timer::kCompactKvIo,
                           kv_io_ns + env->NowNanos() - chunk_start);
          }
          return Status::IOError("compaction aborted: shutting down");
        }
        output_number = ctx_.versions->NewFileNumber();
        s = NewTableBuilder(ctx_.table_cache->options(),
                            TableFileName(ctx_.dbname, output_number),
                            &builder);
        if (!s.ok()) return s;
        output_smallest = key;
      }
      s = builder->Add(key, tag, iter->value());
      if (!s.ok()) return s;
      output_largest = key;
      if (stats != nullptr) stats->Add(Counter::kEntriesCompacted);

      if (builder->FileSize() >= ctx_.sstable_target_size) {
        kv_io_ns += env->NowNanos() - chunk_start;
        s = FinishOutput(builder.get(), output_number, output_smallest,
                         output_largest, output_level, edit);
        chunk_start = env->NowNanos();
        if (!s.ok()) return s;
        builder.reset();
      }
    }
    kv_io_ns += env->NowNanos() - chunk_start;
    if (stats != nullptr) stats->AddTime(Timer::kCompactKvIo, kv_io_ns);
    s = iter->status();
    if (!s.ok()) return s;
  }

  if (builder != nullptr) {
    s = FinishOutput(builder.get(), output_number, output_smallest,
                     output_largest, output_level, edit);
    if (!s.ok()) return s;
  }

  for (const FileMeta& meta : pick.inputs) {
    edit->RemoveFile(pick.level, meta.number);
  }
  for (const FileMeta& meta : pick.next_inputs) {
    edit->RemoveFile(output_level, meta.number);
  }
  // Round-robin pointer for the next partial compaction at this level.
  if (pick.level > 0 && !pick.inputs.empty()) {
    edit->SetCompactPointer(pick.level, pick.inputs.back().largest);
  }
  return Status::OK();
}

}  // namespace lilsm
