#include "lsm/compaction.h"

#include <algorithm>

#include "lsm/merger.h"
#include "util/mutex.h"

namespace lilsm {

Status CompactionJob::FinishOutput(TableBuilder* builder,
                                   uint64_t file_number, Key smallest,
                                   Key largest,
                                   std::vector<FileMeta>* outputs) {
  const uint64_t entries = builder->NumEntries();
  Status s = builder->Finish();
  if (!s.ok()) return s;
  FileMeta meta;
  meta.number = file_number;
  meta.entries = entries;
  meta.file_size = builder->FileSize();
  meta.smallest = smallest;
  meta.largest = largest;
  outputs->push_back(meta);
  return Status::OK();
}

std::vector<CompactionJob::Shard> CompactionJob::PlanShards(
    const VersionSet::CompactionPick& pick) const {
  std::vector<Shard> shards;
  // Boundaries are the smallest keys of interior next-level input files:
  // at level L+1 files are disjoint and sorted, so cutting there assigns
  // every next-level file to exactly one shard (file j belongs to the
  // shard whose range contains its smallest key, and its whole key range
  // precedes the next boundary). Fewer than two next-level files — or a
  // serial configuration — yields the single unbounded shard.
  const size_t n = pick.next_inputs.size();
  const int want = std::min<int>(ctx_.max_subcompactions,
                                 static_cast<int>(n));
  if (want <= 1) {
    shards.emplace_back();
    return shards;
  }
  std::vector<Key> bounds;
  for (int i = 1; i < want; i++) {
    // Evenly spaced interior boundaries; duplicates collapse below.
    const size_t idx = (n * static_cast<size_t>(i)) / want;
    bounds.push_back(pick.next_inputs[idx].smallest);
  }
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (size_t i = 0; i <= bounds.size(); i++) {
    Shard shard;
    if (i > 0) {
      shard.has_lo = true;
      shard.lo = bounds[i - 1];
    }
    if (i < bounds.size()) {
      shard.has_hi = true;
      shard.hi = bounds[i];
    }
    shards.push_back(shard);
  }
  return shards;
}

void CompactionJob::MergeShard(const VersionSet::CompactionPick& pick,
                               const Version& base, Shard* shard) {
  Stats* stats = ctx_.stats;
  Env* env = ctx_.env;
  const int output_level = pick.level + 1;
  const bool has_lo = shard->has_lo;
  const bool has_hi = shard->has_hi;

  // One iterator per input file overlapping this shard's range; the
  // merging iterator handles ordering and newest-first tie-breaks. Every
  // version of a key is merged by the one shard owning the key, so the
  // shadowing dedup below stays exact.
  std::vector<std::unique_ptr<TableIterator>> children;
  for (const std::vector<FileMeta>* inputs :
       {&pick.inputs, &pick.next_inputs}) {
    for (const FileMeta& meta : *inputs) {
      if (has_hi && meta.smallest >= shard->hi) continue;
      if (has_lo && meta.largest < shard->lo) continue;
      std::shared_ptr<TableReader> reader;
      Status s = ctx_.table_cache->GetReader(meta.number, &reader);
      if (!s.ok()) {
        shard->status = s;
        return;
      }
      // Compaction streams every input once; filling the block cache here
      // would evict the point-lookup hot set for blocks about to die.
      children.push_back(
          reader->NewIterator(/*fill_cache=*/false, ctx_.input_readahead));
    }
  }
  std::unique_ptr<TableIterator> iter =
      NewMergingIterator(std::move(children));

  std::unique_ptr<TableBuilder> builder;
  uint64_t output_number = 0;
  Key output_smallest = 0, output_largest = 0;
  bool has_current_key = false;
  Key current_key = 0;
  Status s;

  // The merge loop: reading inputs and writing merged entries is the
  // paper's "KV IO" share of compaction time. FinishOutput (which trains
  // and serializes the model, timed separately) is excluded by pausing
  // the accumulation around it.
  uint64_t kv_io_ns = 0;
  uint64_t chunk_start = env != nullptr ? env->NowNanos() : 0;
  auto flush_kv_io = [&] {
    if (stats != nullptr) {
      stats->AddTime(Timer::kCompactKvIo,
                     kv_io_ns + env->NowNanos() - chunk_start);
    }
  };
  if (has_lo) {
    iter->Seek(shard->lo);
  } else {
    iter->SeekToFirst();
  }
  for (; iter->Valid(); iter->Next()) {
    const Key key = iter->key();
    if (has_hi && key >= shard->hi) break;  // next shard's territory
    const uint64_t tag = iter->tag();

    if (has_current_key && key == current_key) {
      continue;  // shadowed older version
    }
    has_current_key = true;
    current_key = key;

    if (TagType(tag) == kTypeDeletion &&
        !base.KeyMayExistBelow(output_level, key)) {
      continue;  // tombstone with nothing left to shadow
    }

    if (builder == nullptr) {
      if (ShutdownRequested()) {
        // Stop at an output-file boundary: nothing in flight to abandon,
        // and the caller discards the edit.
        flush_kv_io();
        shard->status = Status::IOError("compaction aborted: shutting down");
        return;
      }
      output_number = ctx_.versions->NewFileNumber();
      s = NewTableBuilder(ctx_.table_cache->options(),
                          TableFileName(ctx_.dbname, output_number),
                          &builder);
      if (!s.ok()) {
        shard->status = s;
        return;
      }
      output_smallest = key;
    }
    s = builder->Add(key, tag, iter->value());
    if (!s.ok()) {
      shard->status = s;
      return;
    }
    output_largest = key;
    if (stats != nullptr) stats->Add(Counter::kEntriesCompacted);

    if (builder->FileSize() >= ctx_.sstable_target_size) {
      kv_io_ns += env->NowNanos() - chunk_start;
      s = FinishOutput(builder.get(), output_number, output_smallest,
                       output_largest, &shard->outputs);
      chunk_start = env->NowNanos();
      if (!s.ok()) {
        shard->status = s;
        return;
      }
      builder.reset();
    }
  }
  kv_io_ns += env->NowNanos() - chunk_start;
  if (stats != nullptr) stats->AddTime(Timer::kCompactKvIo, kv_io_ns);
  s = iter->status();
  if (s.ok() && builder != nullptr) {
    s = FinishOutput(builder.get(), output_number, output_smallest,
                     output_largest, &shard->outputs);
  }
  shard->status = s;
}

Status CompactionJob::Run(const VersionSet::CompactionPick& pick,
                          const Version& base, VersionEdit* edit) {
  Stats* stats = ctx_.stats;
  ScopedTimer total_timer(stats, Timer::kCompactTotal, ctx_.env);
  if (stats != nullptr) stats->Add(Counter::kCompactions);

  const int output_level = pick.level + 1;
  std::vector<Shard> shards = PlanShards(pick);

  if (shards.size() > 1 && ctx_.subcompaction_pool != nullptr) {
    if (stats != nullptr) {
      stats->Add(Counter::kSubcompactions, shards.size());
    }
    // Fan shards 1..N-1 out to the pool and merge shard 0 on this thread;
    // a local latch forms the barrier (the DB mutex is NOT held here).
    Mutex mu;
    CondVar done_cv(&mu);
    size_t pending = shards.size() - 1;
    for (size_t i = 1; i < shards.size(); i++) {
      ctx_.subcompaction_pool->Submit([this, &pick, &base, &mu, &done_cv,
                                       &pending, shard = &shards[i]] {
        MergeShard(pick, base, shard);
        MutexLock lock(&mu);
        if (--pending == 0) done_cv.SignalAll();
      });
    }
    MergeShard(pick, base, &shards[0]);
    MutexLock lock(&mu);
    while (pending != 0) done_cv.Wait();
  } else {
    if (shards.size() > 1 && stats != nullptr) {
      stats->Add(Counter::kSubcompactions, shards.size());
    }
    for (Shard& shard : shards) {
      MergeShard(pick, base, &shard);
      if (!shard.status.ok()) break;  // later shards never started
    }
  }

  // Aggregate: every finished output goes into the edit even on failure,
  // so the caller's discard path can see (and delete) the orphans.
  Status s;
  for (const Shard& shard : shards) {
    for (const FileMeta& meta : shard.outputs) {
      edit->AddFile(output_level, meta);
    }
    if (s.ok() && !shard.status.ok()) s = shard.status;
  }
  if (!s.ok()) return s;

  for (const FileMeta& meta : pick.inputs) {
    edit->RemoveFile(pick.level, meta.number);
  }
  for (const FileMeta& meta : pick.next_inputs) {
    edit->RemoveFile(output_level, meta.number);
  }
  // Round-robin pointer for the next partial compaction at this level.
  if (pick.level > 0 && !pick.inputs.empty()) {
    edit->SetCompactPointer(pick.level, pick.inputs.back().largest);
  }
  return Status::OK();
}

}  // namespace lilsm
