#include "lsm/level_index.h"

#include <algorithm>

namespace lilsm {

Status LevelIndexStore::EnsureBuilt(int level,
                                    const std::vector<FileMeta>& files,
                                    TableCache* cache, IndexType type,
                                    const IndexConfig& config,
                                    uint64_t stamp) {
  LevelModel& model = models_[level];
  if (model.valid && model.stamp == stamp) return Status::OK();
  model.valid = false;
  if (files.empty()) return Status::OK();

  ScopedTimer timer(stats_, Timer::kLevelIndexBuild, env_);

  std::vector<Key> all_keys;
  model.cumulative.assign(1, 0);
  for (const FileMeta& meta : files) {
    std::shared_ptr<TableReader> reader;
    Status s = cache->GetReader(meta.number, &reader);
    if (!s.ok()) return s;
    std::vector<Key> keys;
    s = reader->ReadAllKeys(&keys);
    if (!s.ok()) return s;
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
    model.cumulative.push_back(all_keys.size());
  }

  model.index = CreateIndex(type);
  Status s = model.index->Build(all_keys.data(), all_keys.size(), config);
  if (!s.ok()) return s;
  if (stats_ != nullptr) stats_->Add(Counter::kModelsTrained);
  model.stamp = stamp;
  model.valid = true;
  return Status::OK();
}

bool LevelIndexStore::PredictInFile(int level, Key key, size_t file_idx,
                                    size_t* local_lo, size_t* local_hi) const {
  const LevelModel& model = models_[level];
  if (!model.valid || file_idx + 1 >= model.cumulative.size()) return false;

  const PredictResult r = model.index->Predict(key);
  const uint64_t base = model.cumulative[file_idx];
  const uint64_t limit = model.cumulative[file_idx + 1];  // exclusive
  if (limit == base) return false;

  // Intersect the global window with the file's range; a present key's
  // true global position lies in both.
  const uint64_t glo = std::max<uint64_t>(r.lo, base);
  const uint64_t ghi = std::min<uint64_t>(r.hi, limit - 1);
  if (glo > ghi) {
    // Model window misses the file (possible for absent keys): search the
    // nearest in-file block.
    *local_lo = r.hi < base ? 0 : (limit - 1 - base);
    *local_hi = *local_lo;
    return true;
  }
  *local_lo = static_cast<size_t>(glo - base);
  *local_hi = static_cast<size_t>(ghi - base);
  return true;
}

void LevelIndexStore::InvalidateAll() {
  for (LevelModel& model : models_) {
    model.valid = false;
    model.index.reset();
    model.cumulative.clear();
  }
}

size_t LevelIndexStore::SegmentCount(int level) const {
  const LevelModel& model = models_[level];
  return model.valid ? model.index->SegmentCount() : 0;
}

size_t LevelIndexStore::MemoryUsage() const {
  size_t total = 0;
  for (const LevelModel& model : models_) {
    if (model.valid) {
      total += model.index->MemoryUsage();
      total += model.cumulative.capacity() * sizeof(uint64_t);
    }
  }
  return total;
}

}  // namespace lilsm
