#include "lsm/level_index.h"

#include <algorithm>

namespace lilsm {

Status LevelIndexStore::EnsureBuilt(int level,
                                    const std::vector<FileMeta>& files,
                                    TableCache* cache, IndexType type,
                                    const IndexConfig& config,
                                    uint64_t stamp) {
  // Fast path, shared lock: the common case is "model already current",
  // and it must not take the exclusive side or concurrent readers would
  // knock each other off the model. try-locks throughout: this is a
  // read-path entry point and must never stall a lookup behind a
  // full-level scan+train — on any contention the caller's PredictInFile
  // falls back to the per-file index and a later lookup retries.
  {
    std::shared_lock<std::shared_mutex> rlock(level_mu_[level],
                                              std::try_to_lock);
    if (!rlock.owns_lock()) return Status::OK();
    const LevelModel& model = models_[level];
    // Current — or newer: rebuilds are monotone, never replace a model a
    // newer version already built (the older reader's PredictInFile will
    // miss its stamp and fall back).
    if (model.valid && model.stamp >= stamp) return Status::OK();
  }

  std::unique_lock<std::shared_mutex> lock(level_mu_[level],
                                           std::try_to_lock);
  if (!lock.owns_lock()) return Status::OK();
  LevelModel& model = models_[level];
  if (model.valid && model.stamp >= stamp) return Status::OK();  // raced
  model.valid = false;
  if (files.empty()) return Status::OK();

  ScopedTimer timer(stats_, Timer::kLevelIndexBuild, env_);

  std::vector<Key> all_keys;
  model.cumulative.assign(1, 0);
  for (const FileMeta& meta : files) {
    std::shared_ptr<TableReader> reader;
    Status s = cache->GetReader(meta.number, &reader);
    if (!s.ok()) return s;
    std::vector<Key> keys;
    s = reader->ReadAllKeys(&keys);
    if (!s.ok()) return s;
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
    model.cumulative.push_back(all_keys.size());
  }

  model.index = CreateIndex(type);
  Status s = model.index->Build(all_keys.data(), all_keys.size(), config);
  if (!s.ok()) return s;
  if (stats_ != nullptr) stats_->Add(Counter::kModelsTrained);
  model.stamp = stamp;
  model.valid = true;
  return Status::OK();
}

bool LevelIndexStore::PredictInFile(int level, Key key, size_t file_idx,
                                    uint64_t stamp, size_t* local_lo,
                                    size_t* local_hi) const {
  // Shared try-lock: concurrent predictions on one level run in
  // parallel; a rebuild in progress makes this fail fast instead of
  // stalling the lookup (the caller falls back to the per-file index).
  std::shared_lock<std::shared_mutex> lock(level_mu_[level],
                                           std::try_to_lock);
  if (!lock.owns_lock()) return false;
  const LevelModel& model = models_[level];
  if (!model.valid || model.stamp != stamp ||
      file_idx + 1 >= model.cumulative.size()) {
    return false;
  }

  const PredictResult r = model.index->Predict(key);
  const uint64_t base = model.cumulative[file_idx];
  const uint64_t limit = model.cumulative[file_idx + 1];  // exclusive
  if (limit == base) return false;

  // Intersect the global window with the file's range; a present key's
  // true global position lies in both.
  const uint64_t glo = std::max<uint64_t>(r.lo, base);
  const uint64_t ghi = std::min<uint64_t>(r.hi, limit - 1);
  if (glo > ghi) {
    // Model window misses the file (possible for absent keys): search the
    // nearest in-file block.
    *local_lo = r.hi < base ? 0 : (limit - 1 - base);
    *local_hi = *local_lo;
    return true;
  }
  *local_lo = static_cast<size_t>(glo - base);
  *local_hi = static_cast<size_t>(ghi - base);
  return true;
}

// The accessors below are cold paths (experiment APIs, tests): they take
// blocking locks, per level, and so may briefly wait out a build.

void LevelIndexStore::InvalidateAll() {
  for (int level = 0; level < kNumLevels; level++) {
    std::unique_lock<std::shared_mutex> lock(level_mu_[level]);
    LevelModel& model = models_[level];
    model.valid = false;
    model.index.reset();
    model.cumulative.clear();
  }
}

bool LevelIndexStore::HasModel(int level) const {
  std::shared_lock<std::shared_mutex> lock(level_mu_[level]);
  return models_[level].valid;
}

size_t LevelIndexStore::SegmentCount(int level) const {
  std::shared_lock<std::shared_mutex> lock(level_mu_[level]);
  const LevelModel& model = models_[level];
  return model.valid ? model.index->SegmentCount() : 0;
}

size_t LevelIndexStore::MemoryUsage() const {
  size_t total = 0;
  for (int level = 0; level < kNumLevels; level++) {
    std::shared_lock<std::shared_mutex> lock(level_mu_[level]);
    const LevelModel& model = models_[level];
    if (model.valid) {
      total += model.index->MemoryUsage();
      total += model.cumulative.capacity() * sizeof(uint64_t);
    }
  }
  return total;
}

}  // namespace lilsm
