// WriteBatch: an atomically applied group of updates, serialized as the
// WAL record payload: sequence (8B) | count (4B) | records.
#ifndef LILSM_LSM_WRITE_BATCH_H_
#define LILSM_LSM_WRITE_BATCH_H_

#include <string>

#include "lsm/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();

  void Put(Key key, const Slice& value);
  void Delete(Key key);
  void Clear();

  uint32_t Count() const;
  size_t ApproximateSize() const { return rep_.size(); }

  /// Applies every record to `mem` with sequences starting at `sequence`.
  Status InsertInto(MemTable* mem, SequenceNumber sequence) const;

  /// Appends every record of `src` to `dst` (group-commit coalescing:
  /// the queue leader folds follower batches into one WAL record).
  /// `dst` keeps its sequence; counts add.
  static void Append(WriteBatch* dst, const WriteBatch& src);

  /// WAL payload accessors.
  Slice Contents() const { return Slice(rep_); }
  static Status SetContents(WriteBatch* batch, const Slice& contents);
  static SequenceNumber Sequence(const WriteBatch& batch);
  static void SetSequence(WriteBatch* batch, SequenceNumber seq);

 private:
  static constexpr size_t kHeader = 12;

  void SetCount(uint32_t count);

  std::string rep_;
};

}  // namespace lilsm

#endif  // LILSM_LSM_WRITE_BATCH_H_
