// MemTable: the in-memory write buffer. Entries live in an arena-backed
// skiplist ordered by (user key asc, sequence desc); multiple versions of a
// key coexist until the flush deduplicates them.
//
// Concurrency: Add is single-writer (the DB mutex serializes it); Get and
// iteration are safe concurrently with the writer (see skiplist.h). The
// optional Ref/Unref counting lets readers, snapshots, and the background
// flush pin a memtable past its replacement as the active buffer; stack- or
// unique_ptr-owned memtables (tests) simply never use it.
#ifndef LILSM_LSM_MEMTABLE_H_
#define LILSM_LSM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/skiplist.h"
#include "table/table.h"

namespace lilsm {

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Increments the reference count (thread-safe). A heap-allocated
  /// memtable managed by Ref/Unref starts at zero; the creator refs once.
  void Ref() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Drops a reference (thread-safe); deletes the memtable when the last
  /// reference goes away. Never mix with external ownership.
  void Unref() const {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  void Add(SequenceNumber seq, ValueType type, Key key, const Slice& value);

  /// Looks up the newest version of `key` at or below `snapshot`.
  /// Returns true if an entry (including a tombstone) was found; tombstones
  /// set *type to kTypeDeletion and leave *value empty.
  bool Get(Key key, SequenceNumber snapshot, std::string* value,
           ValueType* type) const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  bool empty() const { return NumEntries() == 0; }

  /// Iterator in internal-key order, compatible with the merging iterator.
  std::unique_ptr<TableIterator> NewIterator() const;

 private:
  // Entry layout in the arena: fixed64 key | fixed64 tag | varint32 vlen |
  // value bytes.
  struct KeyComparator {
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

  friend class MemTableIterator;

  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
  mutable std::atomic<int32_t> refs_{0};
};

}  // namespace lilsm

#endif  // LILSM_LSM_MEMTABLE_H_
