// MemTable: the in-memory write buffer. Entries live in an arena-backed
// skiplist ordered by (user key asc, sequence desc); multiple versions of a
// key coexist until the flush deduplicates them.
#ifndef LILSM_LSM_MEMTABLE_H_
#define LILSM_LSM_MEMTABLE_H_

#include <memory>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/skiplist.h"
#include "table/table.h"

namespace lilsm {

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, Key key, const Slice& value);

  /// Looks up the newest version of `key` at or below `snapshot`.
  /// Returns true if an entry (including a tombstone) was found; tombstones
  /// set *type to kTypeDeletion and leave *value empty.
  bool Get(Key key, SequenceNumber snapshot, std::string* value,
           ValueType* type) const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t NumEntries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Iterator in internal-key order, compatible with the merging iterator.
  std::unique_ptr<TableIterator> NewIterator() const;

 private:
  // Entry layout in the arena: fixed64 key | fixed64 tag | varint32 vlen |
  // value bytes.
  struct KeyComparator {
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

  friend class MemTableIterator;

  Arena arena_;
  Table table_;
  uint64_t num_entries_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_LSM_MEMTABLE_H_
