#include "lsm/write_batch.h"

#include "lsm/memtable.h"
#include "util/coding.h"

namespace lilsm {

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

uint32_t WriteBatch::Count() const {
  return DecodeFixed32(rep_.data() + 8);
}

void WriteBatch::SetCount(uint32_t count) {
  EncodeFixed32(rep_.data() + 8, count);
}

SequenceNumber WriteBatch::Sequence(const WriteBatch& batch) {
  return DecodeFixed64(batch.rep_.data());
}

void WriteBatch::SetSequence(WriteBatch* batch, SequenceNumber seq) {
  EncodeFixed64(batch->rep_.data(), seq);
}

void WriteBatch::Put(Key key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutFixed64(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(Key key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutFixed64(&rep_, key);
}

void WriteBatch::Append(WriteBatch* dst, const WriteBatch& src) {
  dst->SetCount(dst->Count() + src.Count());
  dst->rep_.append(src.rep_.data() + kHeader, src.rep_.size() - kHeader);
}

Status WriteBatch::InsertInto(MemTable* mem, SequenceNumber sequence) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("write batch: header too small");
  }
  input.remove_prefix(kHeader);
  const uint32_t count = Count();
  uint32_t found = 0;
  while (!input.empty()) {
    found++;
    const char type_byte = input[0];
    input.remove_prefix(1);
    uint64_t key = 0;
    if (!GetFixed64(&input, &key)) {
      return Status::Corruption("write batch: bad key");
    }
    switch (type_byte) {
      case kTypeValue: {
        Slice value;
        if (!GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("write batch: bad value");
        }
        mem->Add(sequence, kTypeValue, key, value);
        break;
      }
      case kTypeDeletion:
        mem->Add(sequence, kTypeDeletion, key, Slice());
        break;
      default:
        return Status::Corruption("write batch: unknown record type");
    }
    sequence++;
  }
  if (found != count) {
    return Status::Corruption("write batch: count mismatch");
  }
  return Status::OK();
}

Status WriteBatch::SetContents(WriteBatch* batch, const Slice& contents) {
  if (contents.size() < kHeader) {
    return Status::Corruption("write batch: contents too small");
  }
  batch->rep_.assign(contents.data(), contents.size());
  return Status::OK();
}

}  // namespace lilsm
