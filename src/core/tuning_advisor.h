// TuningAdvisor: an executable form of the paper's Section 6 tuning
// guidelines. Given a memory budget, a workload profile, and a dataset
// sample, it recommends (index type, position boundary, SSTable size) and
// explains each choice with the guideline it applies:
//
//   1. Prioritize position boundary over index-type micro-optimizations.
//   2. Increase index granularity (larger SSTables) to free memory.
//   3. Allocate memory with diminishing returns in mind: stop shrinking
//      the boundary once a segment fits in one I/O block.
#ifndef LILSM_CORE_TUNING_ADVISOR_H_
#define LILSM_CORE_TUNING_ADVISOR_H_

#include <string>
#include <vector>

#include "core/config.h"

namespace lilsm {

struct WorkloadProfile {
  double point_lookup_fraction = 0.8;
  double range_lookup_fraction = 0.1;
  double write_fraction = 0.1;
  /// Mean range length for range lookups.
  size_t mean_range_length = 32;
};

struct TuningRequest {
  /// Total index memory budget in bytes.
  size_t index_memory_budget = 1 << 20;
  /// Representative sample of the key distribution (sorted unique).
  std::vector<Key> sample_keys;
  /// Total dataset size the sample represents.
  size_t total_keys = 0;
  uint32_t key_size = 24;
  uint32_t value_size = 1000;
  uint32_t io_block_size = 4096;
  WorkloadProfile workload;
};

struct TuningRecommendation {
  IndexSetup setup;
  uint64_t sstable_target_size = 64 << 20;
  /// Estimated index memory at the recommendation, scaled to total_keys.
  size_t estimated_index_memory = 0;
  /// Boundary below which further memory buys no latency (guideline 3).
  uint32_t diminishing_returns_boundary = 0;
  /// Human-readable rationale, one line per applied guideline.
  std::vector<std::string> rationale;
};

class TuningAdvisor {
 public:
  /// Evaluates candidate configurations on the sample (building real
  /// indexes in memory) and applies the paper's guidelines.
  static Status Recommend(const TuningRequest& request,
                          TuningRecommendation* recommendation);

  /// Measured index memory for (type, boundary) on a key sample, scaled
  /// to `total_keys`. Exposed for the ablation bench.
  static size_t EstimateIndexMemory(IndexType type, uint32_t boundary,
                                    const std::vector<Key>& sample,
                                    size_t total_keys, uint32_t key_size);
};

}  // namespace lilsm

#endif  // LILSM_CORE_TUNING_ADVISOR_H_
