#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace lilsm {

void ReportTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void ReportTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); i++) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out = "== " + title_ + " ==\n";
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out.push_back('\n');
  };
  if (!header_.empty()) {
    append_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out.append(total, '-');
    out.push_back('\n');
  }
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string ReportTable::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      out += row[i];
      if (i + 1 < row.size()) out.push_back(',');
    }
    out.push_back('\n');
  };
  if (!header_.empty()) append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void ReportTable::Emit() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputc('\n', stdout);
  if (const char* prefix = std::getenv("LILSM_CSV")) {
    std::string slug;
    for (char c : title_) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug.push_back(static_cast<char>(std::tolower(c)));
      } else if (!slug.empty() && slug.back() != '_') {
        slug.push_back('_');
      }
    }
    std::ofstream file(std::string(prefix) + slug + ".csv");
    file << ToCsv();
  }
}

std::string FormatMicros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us);
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[32];
  if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  return std::to_string(count);
}

}  // namespace lilsm
