// Testbed: the unified benchmark platform of the paper (its Figure 4).
// Owns a DB + simulated-latency environment, loads a dataset, executes
// measured workloads, and supports cheap reconfiguration across the
// (index type x position boundary x granularity) space by retraining the
// in-memory indexes of live tables instead of rewriting data files.
#ifndef LILSM_CORE_TESTBED_H_
#define LILSM_CORE_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "util/histogram.h"
#include "util/sim_env.h"
#include "workload/ycsb.h"

namespace lilsm {

/// Everything a figure needs about one measured workload run.
struct RunMetrics {
  Histogram latency_ns;           // per-operation latency
  size_t index_memory = 0;        // bytes, the paper's Memory(B) axis
  size_t filter_memory = 0;       // bloom bytes (constant across configs)
  uint64_t io_blocks = 0;         // 4 KiB blocks fetched during the run
  uint64_t io_reads = 0;          // pread calls during the run
  Stats stats;                    // timer/counter snapshot for the run

  double MeanLatencyUs() const { return latency_ns.Mean() / 1000.0; }
  double P99LatencyUs() const { return latency_ns.Percentile(99) / 1000.0; }
};

class Testbed {
 public:
  struct Options {
    std::string dir;  // database directory (created/destroyed by the bed)
    ExperimentDefaults defaults;
    IndexSetup setup;
    bool use_sim_env = true;  // inject calibrated I/O latency
    SimEnvOptions sim;
    bool compact_after_load = true;  // settle the tree before measuring
  };

  /// Creates the testbed, generates the dataset and bulk-loads the DB
  /// (keys inserted in shuffled order, as a YCSB load phase would).
  static Status Create(const Options& options,
                       std::unique_ptr<Testbed>* testbed);

  ~Testbed();

  /// Re-points the live DB at a new (type, boundary, granularity) without
  /// reloading data: retrains every table's in-memory index.
  Status Reconfigure(const IndexSetup& setup);

  /// Point lookups on existing keys. `zipfian` selects the request skew.
  /// With multiget_batch > 1, the request stream is served through
  /// DB::MultiGet in batches of that size (batch latency is attributed
  /// evenly across its keys).
  Status RunPointLookups(size_t count, bool zipfian, RunMetrics* metrics,
                         size_t multiget_batch = 0);

  /// Range lookups of `range_len` entries from random start keys.
  Status RunRangeLookups(size_t count, size_t range_len, RunMetrics* metrics);

  /// One of the six YCSB mixes. With multiget_batch > 1, consecutive read
  /// ops are buffered and served through DB::MultiGet (writes, scans, and
  /// read-modify-writes flush the pending batch first, keeping the op
  /// order the generator produced).
  Status RunYcsb(YcsbWorkload workload, size_t count, RunMetrics* metrics,
                 size_t multiget_batch = 0);

  /// Write-only workload of `count` fresh inserts (Figure 9): returns the
  /// compaction/train/write-model breakdown via metrics->stats.
  Status RunWriteOnly(size_t count, RunMetrics* metrics);

  DB* db() { return db_.get(); }
  const std::vector<Key>& keys() const { return keys_; }
  const IndexSetup& setup() const { return setup_; }
  SimEnv* sim_env() { return sim_env_.get(); }

  /// A key guaranteed absent from the loaded set (for negative lookups).
  Key AbsentKey(uint64_t i) const;

 private:
  Testbed() = default;

  void BeginRun();
  void EndRun(RunMetrics* metrics);
  /// Maps a YCSB key index to a key: indexes below keys_.size() address
  /// the loaded set; higher indexes take fresh keys from the pool.
  Key MapYcsbKey(uint64_t key_index) const;

  Options options_;
  IndexSetup setup_;
  std::unique_ptr<SimEnv> sim_env_;
  std::unique_ptr<DB> db_;
  std::vector<Key> keys_;
  std::vector<Key> pool_;         // disjoint keys for inserts / negatives
  uint64_t next_insert_seq_ = 0;  // distinct keys for write-only ingest
  uint64_t io_reads_at_start_ = 0;
  uint64_t io_blocks_at_start_ = 0;
};

}  // namespace lilsm

#endif  // LILSM_CORE_TESTBED_H_
