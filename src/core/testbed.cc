#include "core/testbed.h"

#include <algorithm>
#include <span>

namespace lilsm {

Status Testbed::Create(const Options& options,
                       std::unique_ptr<Testbed>* testbed) {
  std::unique_ptr<Testbed> bed(new Testbed());
  bed->options_ = options;
  bed->setup_ = options.setup;

  Env* base_env = Env::Default();
  Env* env = base_env;
  if (options.use_sim_env) {
    bed->sim_env_ = std::make_unique<SimEnv>(base_env, options.sim);
    env = bed->sim_env_.get();
  }

  const ExperimentDefaults& d = options.defaults;

  DBOptions db_options;
  db_options.env = env;
  db_options.write_buffer_size = d.write_buffer_size;
  db_options.size_ratio = d.size_ratio;
  db_options.sstable_target_size = d.sstable_target_size;
  db_options.bloom_bits_per_key = d.bloom_bits_per_key;
  db_options.key_size = d.key_size;
  db_options.value_size = d.value_size;
  db_options.index_type = options.setup.type;
  db_options.index_config = options.setup.ToIndexConfig();
  db_options.index_granularity = options.setup.granularity;
  db_options.block_cache_bytes = d.block_cache_bytes;
  db_options.io_depth = d.io_depth;

  DB::Destroy(db_options, options.dir);
  std::unique_ptr<DB> db;
  Status s = DB::Open(db_options, options.dir, &db);
  if (!s.ok()) return s;
  bed->db_ = std::move(db);

  // Dataset: generate load keys plus a disjoint pool for YCSB inserts and
  // negative lookups. Pool keys are spread through the key space by taking
  // every k-th generated key.
  const size_t pool_size = std::max<size_t>(1024, d.num_ops);
  std::vector<Key> all = GenerateKeys(d.dataset, d.num_keys + pool_size,
                                      d.seed);
  bed->keys_.reserve(d.num_keys);
  std::vector<Key> pool;
  pool.reserve(pool_size);
  const size_t stride = all.size() / pool_size;
  for (size_t i = 0; i < all.size(); i++) {
    if (stride > 0 && i % stride == stride / 2 && pool.size() < pool_size) {
      pool.push_back(all[i]);
    } else {
      bed->keys_.push_back(all[i]);
    }
  }
  bed->keys_.resize(std::min(bed->keys_.size(), d.num_keys));
  bed->pool_ = std::move(pool);

  // Load phase: shuffled insertion order, as a YCSB load would produce.
  std::vector<Key> load_order = bed->keys_;
  Random rnd(d.seed ^ 0x10adull);
  for (size_t i = load_order.size(); i > 1; i--) {
    std::swap(load_order[i - 1], load_order[rnd.Uniform(i)]);
  }
  for (Key key : load_order) {
    s = bed->db_->Put(key, DeriveValue(key, d.value_size));
    if (!s.ok()) return s;
  }
  if (options.compact_after_load) {
    s = bed->db_->FlushMemTable();
    if (!s.ok()) return s;
  }
  bed->db_->stats()->Reset();
  *testbed = std::move(bed);
  return Status::OK();
}

Testbed::~Testbed() = default;

Key Testbed::AbsentKey(uint64_t i) const {
  return pool_[i % pool_.size()];
}

Status Testbed::Reconfigure(const IndexSetup& setup) {
  setup_ = setup;
  db_->SetIndexGranularity(setup.granularity);
  return db_->ReconfigureIndexes(setup.type, setup.ToIndexConfig());
}

void Testbed::BeginRun() {
  db_->stats()->Reset();
  // Every measured run starts with a cold block cache: without this, the
  // rows of a (type x boundary) sweep inherit the previous config's warm
  // set and stop being comparable to each other.
  db_->ClearBlockCache();
  if (sim_env_ != nullptr) {
    io_reads_at_start_ = sim_env_->io_stats()->random_reads.load();
    io_blocks_at_start_ = sim_env_->io_stats()->blocks_read.load();
  }
}

void Testbed::EndRun(RunMetrics* metrics) {
  metrics->index_memory = db_->TotalIndexMemory();
  metrics->filter_memory = db_->TotalFilterMemory();
  metrics->stats = *db_->stats();
  if (sim_env_ != nullptr) {
    metrics->io_reads =
        sim_env_->io_stats()->random_reads.load() - io_reads_at_start_;
    metrics->io_blocks =
        sim_env_->io_stats()->blocks_read.load() - io_blocks_at_start_;
  }
}

Status Testbed::RunPointLookups(size_t count, bool zipfian,
                                RunMetrics* metrics, size_t multiget_batch) {
  Env* env = db_->stats() != nullptr && sim_env_ != nullptr
                 ? static_cast<Env*>(sim_env_.get())
                 : Env::Default();
  const ExperimentDefaults& d = options_.defaults;

  // Pre-generate the request stream so generator cost stays out of the
  // latency measurements.
  std::vector<Key> requests;
  requests.reserve(count);
  if (zipfian) {
    ZipfGenerator zipf(keys_.size(), 0.99, d.seed ^ 0x21f);
    for (size_t i = 0; i < count; i++) {
      requests.push_back(keys_[zipf.NextScrambled()]);
    }
  } else {
    Random rnd(d.seed ^ 0x9e37);
    for (size_t i = 0; i < count; i++) {
      requests.push_back(keys_[rnd.Uniform(keys_.size())]);
    }
  }

  BeginRun();
  if (multiget_batch > 1) {
    std::vector<std::string> values;
    std::vector<Status> statuses;
    for (size_t start = 0; start < requests.size();
         start += multiget_batch) {
      const size_t n = std::min(multiget_batch, requests.size() - start);
      const std::span<const Key> batch(requests.data() + start, n);
      const uint64_t t0 = env->NowNanos();
      Status s = db_->MultiGet(ReadOptions(), batch, &values, &statuses);
      const double per_key =
          static_cast<double>(env->NowNanos() - t0) / static_cast<double>(n);
      for (size_t i = 0; i < n; i++) metrics->latency_ns.Add(per_key);
      if (!s.ok()) return s;
      for (const Status& st : statuses) {
        if (!st.ok()) {
          return Status::Corruption("multiget lost a loaded key");
        }
      }
    }
    EndRun(metrics);
    return Status::OK();
  }
  std::string value;
  for (Key key : requests) {
    const uint64_t t0 = env->NowNanos();
    Status s = db_->Get(key, &value);
    metrics->latency_ns.Add(static_cast<double>(env->NowNanos() - t0));
    if (!s.ok()) {
      return Status::Corruption("point lookup lost a loaded key");
    }
  }
  EndRun(metrics);
  return Status::OK();
}

Status Testbed::RunRangeLookups(size_t count, size_t range_len,
                                RunMetrics* metrics) {
  Env* env = sim_env_ != nullptr ? static_cast<Env*>(sim_env_.get())
                                 : Env::Default();
  Random rnd(options_.defaults.seed ^ 0x1235813);
  std::vector<Key> starts;
  starts.reserve(count);
  for (size_t i = 0; i < count; i++) {
    starts.push_back(keys_[rnd.Uniform(keys_.size())]);
  }

  BeginRun();
  ReadOptions ropts;
  ropts.readahead_blocks = options_.defaults.readahead_blocks;
  std::vector<std::pair<Key, std::string>> out;
  for (Key start : starts) {
    const uint64_t t0 = env->NowNanos();
    Status s = db_->RangeLookup(ropts, start, range_len, &out);
    metrics->latency_ns.Add(static_cast<double>(env->NowNanos() - t0));
    if (!s.ok()) return s;
  }
  EndRun(metrics);
  return Status::OK();
}

Key Testbed::MapYcsbKey(uint64_t key_index) const {
  if (key_index < keys_.size()) return keys_[key_index];
  const uint64_t overflow = key_index - keys_.size();
  return pool_[overflow % pool_.size()];
}

Status Testbed::RunYcsb(YcsbWorkload workload, size_t count,
                        RunMetrics* metrics, size_t multiget_batch) {
  Env* env = sim_env_ != nullptr ? static_cast<Env*>(sim_env_.get())
                                 : Env::Default();
  const ExperimentDefaults& d = options_.defaults;
  YcsbGenerator gen(workload, keys_.size(), d.seed ^ 0x5ca1ab1e);

  BeginRun();
  std::string value;
  std::vector<std::pair<Key, std::string>> scan_out;
  std::vector<Key> pending;           // buffered kRead keys
  std::vector<std::string> mg_values;
  std::vector<Status> mg_statuses;
  auto flush_reads = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    const uint64_t t0 = env->NowNanos();
    Status s = db_->MultiGet(ReadOptions(), pending, &mg_values,
                             &mg_statuses);
    const double per_key = static_cast<double>(env->NowNanos() - t0) /
                           static_cast<double>(pending.size());
    for (size_t i = 0; i < pending.size(); i++) {
      metrics->latency_ns.Add(per_key);
    }
    pending.clear();
    if (!s.ok()) return s;
    for (const Status& st : mg_statuses) {
      // NotFound is a fresh-insert race in D, like the single-Get path.
      if (!st.ok() && !st.IsNotFound()) return st;
    }
    return Status::OK();
  };
  Status s;
  for (size_t i = 0; i < count; i++) {
    const YcsbOp op = gen.Next();
    const Key key = MapYcsbKey(op.key_index);
    if (multiget_batch > 1 && op.type == YcsbOp::Type::kRead) {
      pending.push_back(key);
      if (pending.size() >= multiget_batch) {
        s = flush_reads();
        if (!s.ok()) return s;
      }
      continue;
    }
    if (multiget_batch > 1 && !pending.empty()) {
      // A non-read op: flush first so it observes every buffered read's
      // position in the stream (reads cannot be reordered past writes).
      s = flush_reads();
      if (!s.ok()) return s;
    }
    const uint64_t t0 = env->NowNanos();
    switch (op.type) {
      case YcsbOp::Type::kRead:
        s = db_->Get(key, &value);
        if (s.IsNotFound()) s = Status::OK();  // fresh-insert race in D
        break;
      case YcsbOp::Type::kUpdate:
        s = db_->Put(key, DeriveValue(key ^ i, d.value_size));
        break;
      case YcsbOp::Type::kInsert:
        s = db_->Put(key, DeriveValue(key, d.value_size));
        break;
      case YcsbOp::Type::kScan: {
        ReadOptions scan_opts;
        scan_opts.readahead_blocks = d.readahead_blocks;
        s = db_->RangeLookup(scan_opts, key, op.scan_length, &scan_out);
        break;
      }
      case YcsbOp::Type::kReadModifyWrite:
        s = db_->Get(key, &value);
        if (s.IsNotFound()) s = Status::OK();
        if (s.ok()) {
          s = db_->Put(key, DeriveValue(key + 1, d.value_size));
        }
        break;
    }
    metrics->latency_ns.Add(static_cast<double>(env->NowNanos() - t0));
    if (!s.ok()) return s;
  }
  s = flush_reads();
  if (!s.ok()) return s;
  EndRun(metrics);
  return Status::OK();
}

Status Testbed::RunWriteOnly(size_t count, RunMetrics* metrics) {
  Env* env = sim_env_ != nullptr ? static_cast<Env*>(sim_env_.get())
                                 : Env::Default();
  const ExperimentDefaults& d = options_.defaults;
  Random rnd(d.seed ^ 0x3717);

  BeginRun();
  Status s;
  for (size_t i = 0; i < count; i++) {
    // Mix fresh keys (from the pool) and updates, like a sustained ingest.
    const Key key = (i % 4 == 0 && !pool_.empty())
                        ? pool_[next_insert_seq_++ % pool_.size()]
                        : keys_[rnd.Uniform(keys_.size())];
    const uint64_t t0 = env->NowNanos();
    s = db_->Put(key, DeriveValue(key ^ i, d.value_size));
    metrics->latency_ns.Add(static_cast<double>(env->NowNanos() - t0));
    if (!s.ok()) return s;
  }
  s = db_->FlushMemTable();
  if (!s.ok()) return s;
  EndRun(metrics);
  return Status::OK();
}

}  // namespace lilsm
