// The paper's unified configuration space (Section 4.1): index type x
// position boundary x index granularity, plus the scaled experiment
// defaults shared by benches and examples.
#ifndef LILSM_CORE_CONFIG_H_
#define LILSM_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "lsm/db.h"
#include "workload/dataset.h"

namespace lilsm {

/// One point in the configuration space.
struct IndexSetup {
  IndexType type = IndexType::kPGM;
  uint32_t position_boundary = 64;
  IndexGranularity granularity = IndexGranularity::kFile;

  IndexConfig ToIndexConfig() const {
    return IndexConfig::FromPositionBoundary(position_boundary);
  }
  std::string ToString() const;
};

/// Scaled experiment defaults. The paper runs 6.4M x (24 B, 1000 B) with
/// 1M operations; the benches default to a 1/32-scale shape and honour the
/// environment overrides below so the full-size runs remain one command
/// away:
///   LILSM_N, LILSM_VALUE_SIZE, LILSM_OPS, LILSM_SST_MB, LILSM_SEED,
///   LILSM_DATASET, LILSM_READ_LAT_NS, LILSM_BLOCK_CACHE_MB,
///   LILSM_IO_DEPTH, LILSM_READAHEAD.
struct ExperimentDefaults {
  size_t num_keys = 200'000;
  uint32_t key_size = 24;
  uint32_t value_size = 120;
  size_t num_ops = 40'000;
  uint64_t sstable_target_size = 2 << 20;
  size_t write_buffer_size = 2 << 20;
  int size_ratio = 10;
  int bloom_bits_per_key = 10;
  uint64_t seed = 42;
  Dataset dataset = Dataset::kRandom;
  /// Shared block cache capacity (0 = off, the paper's configuration —
  /// every segment fetch is a device I/O). The benches expose it as
  /// --block-cache-mb.
  size_t block_cache_bytes = 0;
  /// DBOptions::io_depth (1 = fully synchronous reads, the paper's
  /// configuration). The benches expose it as --io-depth.
  int io_depth = 1;
  /// ReadOptions::readahead_blocks for scan-shaped workload phases (0 =
  /// no prefetch). The benches expose it as --readahead.
  size_t readahead_blocks = 0;

  /// Reads the LILSM_* environment overrides.
  static ExperimentDefaults FromEnvironment();
};

/// The boundary sweep used across the paper's figures.
inline constexpr uint32_t kPositionBoundaries[] = {256, 128, 64, 32, 16, 8};

/// Enumerates (type x boundary) at file granularity.
std::vector<IndexSetup> EnumerateTypeBoundarySpace();

}  // namespace lilsm

#endif  // LILSM_CORE_CONFIG_H_
