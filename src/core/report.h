// Table/CSV emitters for the benchmark binaries: aligned console tables
// that mirror the paper's figures plus machine-readable CSV via
// LILSM_CSV=<path prefix>.
#ifndef LILSM_CORE_REPORT_H_
#define LILSM_CORE_REPORT_H_

#include <string>
#include <vector>

namespace lilsm {

class ReportTable {
 public:
  /// `title` names the experiment (e.g. "Figure 6 (random): latency us").
  explicit ReportTable(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Renders an aligned console table.
  std::string ToString() const;
  /// Renders CSV (header + rows).
  std::string ToCsv() const;

  /// Prints to stdout and, when the LILSM_CSV environment variable is set,
  /// writes "<prefix><slug(title)>.csv".
  void Emit() const;

  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers shared by the benches.
std::string FormatMicros(double us);
std::string FormatBytes(double bytes);
std::string FormatCount(uint64_t count);

}  // namespace lilsm

#endif  // LILSM_CORE_REPORT_H_
