#include "core/config.h"

#include <cstdlib>

namespace lilsm {

std::string IndexSetup::ToString() const {
  std::string out = IndexTypeName(type);
  out += "/b";
  out += std::to_string(position_boundary);
  if (granularity == IndexGranularity::kLevel) {
    out += "/L";
  }
  return out;
}

ExperimentDefaults ExperimentDefaults::FromEnvironment() {
  ExperimentDefaults d;
  if (const char* v = std::getenv("LILSM_N")) {
    d.num_keys = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("LILSM_VALUE_SIZE")) {
    d.value_size = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = std::getenv("LILSM_OPS")) {
    d.num_ops = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("LILSM_SST_MB")) {
    d.sstable_target_size = std::strtoull(v, nullptr, 10) << 20;
  }
  if (const char* v = std::getenv("LILSM_SEED")) {
    d.seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("LILSM_DATASET")) {
    Dataset dataset;
    if (ParseDataset(v, &dataset)) d.dataset = dataset;
  }
  if (const char* v = std::getenv("LILSM_BLOCK_CACHE_MB")) {
    d.block_cache_bytes = std::strtoull(v, nullptr, 10) << 20;
  }
  if (const char* v = std::getenv("LILSM_IO_DEPTH")) {
    const long depth = std::strtol(v, nullptr, 10);
    if (depth > 0) d.io_depth = static_cast<int>(depth);
  }
  if (const char* v = std::getenv("LILSM_READAHEAD")) {
    d.readahead_blocks = std::strtoull(v, nullptr, 10);
  }
  return d;
}

std::vector<IndexSetup> EnumerateTypeBoundarySpace() {
  std::vector<IndexSetup> space;
  for (IndexType type : kAllIndexTypes) {
    for (uint32_t boundary : kPositionBoundaries) {
      IndexSetup setup;
      setup.type = type;
      setup.position_boundary = boundary;
      space.push_back(setup);
    }
  }
  return space;
}

}  // namespace lilsm
