#include "core/tuning_advisor.h"

#include <algorithm>
#include <cstdio>

namespace lilsm {

size_t TuningAdvisor::EstimateIndexMemory(IndexType type, uint32_t boundary,
                                          const std::vector<Key>& sample,
                                          size_t total_keys,
                                          uint32_t key_size) {
  if (sample.empty() || total_keys == 0) return 0;
  auto index = CreateIndex(type);
  IndexConfig config = IndexConfig::FromPositionBoundary(boundary);
  config.stored_key_bytes = key_size;
  Status s = index->Build(sample.data(), sample.size(), config);
  if (!s.ok()) return 0;
  const double scale =
      static_cast<double>(total_keys) / static_cast<double>(sample.size());
  return static_cast<size_t>(static_cast<double>(index->MemoryUsage()) *
                             scale);
}

Status TuningAdvisor::Recommend(const TuningRequest& request,
                                TuningRecommendation* rec) {
  if (request.sample_keys.size() < 2) {
    return Status::InvalidArgument("tuning: need a key sample");
  }
  const size_t total =
      request.total_keys == 0 ? request.sample_keys.size() : request.total_keys;
  char line[256];

  // Guideline 3 first: the boundary below which a fetched segment already
  // fits in one I/O block, so I/O cost cannot drop further.
  const uint32_t entry_size = request.key_size + 8 + request.value_size;
  const uint32_t entries_per_block =
      std::max<uint32_t>(1, request.io_block_size / entry_size);
  rec->diminishing_returns_boundary = entries_per_block;

  // Guideline 1: sweep boundaries from small to large for each type and
  // keep the smallest boundary whose estimated memory fits the budget.
  // Index type is the tie-breaker (memory-latency tradeoff), not the
  // primary knob.
  const IndexType kCandidates[] = {IndexType::kPGM, IndexType::kRMI,
                                   IndexType::kPLR, IndexType::kRadixSpline,
                                   IndexType::kPLEX, IndexType::kFITingTree,
                                   IndexType::kFencePointer};
  bool found = false;
  IndexSetup best;
  size_t best_memory = 0;
  for (uint32_t boundary :
       {entries_per_block, 2 * entries_per_block, 4 * entries_per_block,
        8 * entries_per_block, 16 * entries_per_block,
        32 * entries_per_block}) {
    for (IndexType type : kCandidates) {
      const size_t memory = EstimateIndexMemory(
          type, boundary, request.sample_keys, total, request.key_size);
      if (memory > 0 && memory <= request.index_memory_budget) {
        best.type = type;
        best.position_boundary = boundary;
        best_memory = memory;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) {
    // Budget is extremely tight: fall back to the cheapest config seen.
    best.type = IndexType::kPGM;
    best.position_boundary = 32 * entries_per_block;
    best_memory =
        EstimateIndexMemory(best.type, best.position_boundary,
                            request.sample_keys, total, request.key_size);
    rec->rationale.push_back(
        "budget below any candidate configuration; recommending the "
        "cheapest (PGM at a coarse boundary) — consider a larger budget");
  }
  rec->setup = best;
  rec->estimated_index_memory = best_memory;

  std::snprintf(line, sizeof(line),
                "guideline 1 (prioritize position boundary): smallest "
                "boundary fitting the %zu-byte budget is %u (%s, ~%zu bytes)",
                request.index_memory_budget, best.position_boundary,
                IndexTypeName(best.type), best_memory);
  rec->rationale.push_back(line);

  std::snprintf(line, sizeof(line),
                "guideline 3 (diminishing returns): one I/O block holds %u "
                "entries; boundaries below %u buy no I/O reduction",
                entries_per_block, entries_per_block);
  rec->rationale.push_back(line);

  // Guideline 2: granularity. Read-dominated workloads get large SSTables
  // (fewer, cheaper indexes); write-heavy ones keep moderate SSTables to
  // bound per-compaction work.
  if (request.workload.write_fraction < 0.2) {
    rec->sstable_target_size = 128 << 20;
    rec->rationale.push_back(
        "guideline 2 (increase granularity): read-dominated workload -> "
        "128 MiB SSTables cut index memory with ~unchanged latency");
    if (request.workload.write_fraction < 0.01) {
      rec->setup.granularity = IndexGranularity::kLevel;
      rec->rationale.push_back(
          "read-only workload: level-granularity models are safe (no "
          "compaction churn) and cheapest of all");
    }
  } else if (request.workload.write_fraction > 0.5) {
    rec->sstable_target_size = 16 << 20;
    rec->rationale.push_back(
        "guideline 2 (granularity vs writes): write-heavy workload -> "
        "16 MiB SSTables keep partial compactions small");
  } else {
    rec->sstable_target_size = 64 << 20;
    rec->rationale.push_back(
        "guideline 2: mixed workload -> 64 MiB SSTables balance index "
        "memory against compaction burst size");
  }

  // Range-heavy workloads: boundary matters less beyond the first block.
  if (request.workload.range_lookup_fraction > 0.5 &&
      request.workload.mean_range_length > entries_per_block) {
    rec->rationale.push_back(
        "range-heavy workload: scan cost dominates past the first block, "
        "so prefer spending memory on bloom filters/cache instead of "
        "smaller boundaries (Observation 6)");
  }
  return Status::OK();
}

}  // namespace lilsm
