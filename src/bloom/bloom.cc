#include "bloom/bloom.h"

#include <algorithm>

#include "bloom/hash.h"

namespace lilsm {

namespace {

uint32_t BloomHash(const Slice& key) { return Hash(key.data(), key.size(), 0xbc9f1d34); }

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key),
      // k = ln(2) * bits/key rounds to the FPR-optimal probe count.
      k_(std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30)) {}

void BloomFilterBuilder::AddKey(const Slice& key) {
  if (bits_per_key_ <= 0) return;
  hashes_.push_back(BloomHash(key));
}

void BloomFilterBuilder::Finish(std::string* dst) {
  if (bits_per_key_ <= 0 || hashes_.empty()) {
    hashes_.clear();
    return;
  }
  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  // Small filters have disproportionate FPR; floor at 64 bits.
  bits = std::max<size_t>(64, bits);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));  // remember probe count
  char* array = dst->data() + init_size;
  for (uint32_t h : hashes_) {
    // Double hashing: successive probes derived from one hash value.
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
  hashes_.clear();
}

bool BloomFilterReader::KeyMayMatch(const Slice& key) const {
  const size_t len = filter_.size();
  if (len < 2) return true;  // empty or malformed: never exclude

  const char* array = filter_.data();
  const size_t bits = (len - 1) * 8;
  const int k = array[len - 1];
  if (k > 30 || k < 1) return true;  // reserved/corrupt: be conservative

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace lilsm
