// Bloom filter with double hashing, following LevelDB's filter policy.
// The paper configures 10 bits per key on every table.
#ifndef LILSM_BLOOM_BLOOM_H_
#define LILSM_BLOOM_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace lilsm {

class BloomFilterBuilder {
 public:
  /// bits_per_key = 0 disables the filter (CreateFilter returns empty).
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);
  size_t NumKeys() const { return hashes_.size(); }

  /// Appends the filter bytes for all added keys to `dst` and resets.
  void Finish(std::string* dst);

 private:
  const int bits_per_key_;
  const int k_;  // number of probes
  std::vector<uint32_t> hashes_;
};

class BloomFilterReader {
 public:
  /// `filter` must outlive the reader (it points into table memory).
  explicit BloomFilterReader(Slice filter) : filter_(filter) {}

  /// False means the key is definitely absent; true means "maybe present"
  /// (with ~1% false positives at 10 bits/key). An empty filter always
  /// returns true.
  bool KeyMayMatch(const Slice& key) const;

 private:
  Slice filter_;
};

}  // namespace lilsm

#endif  // LILSM_BLOOM_BLOOM_H_
