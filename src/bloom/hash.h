// Hash functions for bloom filters and the table cache.
#ifndef LILSM_BLOOM_HASH_H_
#define LILSM_BLOOM_HASH_H_

#include <cstddef>
#include <cstdint>

namespace lilsm {

/// MurmurHash-style 32-bit hash of a byte range (LevelDB's Hash()).
uint32_t Hash(const char* data, size_t n, uint32_t seed);

/// 64-bit mix for integer keys (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace lilsm

#endif  // LILSM_BLOOM_HASH_H_
