// lilsm::Client: the thin handle side of the host/handle split — a
// blocking unix-domain-socket connection to a lilsm_server, speaking the
// batch-first wire protocol (server/wire_protocol.h). One round trip
// carries a whole MultiGet key batch or a whole WriteBatch, so the
// network layer amplifies the engine's batching instead of erasing it.
//
// A Client is NOT thread-safe: it is one socket with one outstanding
// request at a time (the server preserves per-connection order). Use one
// Client per thread; connections are cheap.
#ifndef LILSM_CLIENT_CLIENT_H_
#define LILSM_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/write_batch.h"
#include "server/wire_protocol.h"
#include "util/status.h"

namespace lilsm {

/// Per-call options for Client reads. snapshot_id 0 (default) reads the
/// latest state; a nonzero id must come from NewSnapshot on this same
/// client (snapshots are connection-scoped server state and die with the
/// connection).
struct ClientReadOptions {
  uint64_t snapshot_id = 0;
};

/// Per-call options for Client writes, mirroring WriteOptions.
struct ClientWriteOptions {
  std::optional<bool> sync;
  bool disable_wal = false;
};

class Client {
 public:
  /// Connects to the server listening at `socket_path`.
  static Status Connect(const std::string& socket_path,
                        std::unique_ptr<Client>* client);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Point lookup; NotFound if absent or deleted — the same contract as
  /// DB::Get, one frame each way.
  Status Get(const ClientReadOptions& options, Key key, std::string* value);
  Status Get(Key key, std::string* value) {
    return Get(ClientReadOptions(), key, value);
  }

  /// Batched point lookup: the whole batch travels as one frame and is
  /// served by one DB::MultiGet against a single pinned view, so results
  /// are bit-identical to the in-process call. statuses->at(i) mirrors
  /// the per-key DB outcome; the return is the batch-level status.
  Status MultiGet(const ClientReadOptions& options, std::span<const Key> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses);
  Status MultiGet(std::span<const Key> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) {
    return MultiGet(ClientReadOptions(), keys, values, statuses);
  }

  /// Applies the batch atomically on the server (one frame carries the
  /// whole batch; concurrent clients' batches merge in the server DB's
  /// group-commit queue). The batch is not cleared.
  Status Write(const ClientWriteOptions& options, const WriteBatch& batch);
  Status Write(const WriteBatch& batch) {
    return Write(ClientWriteOptions(), batch);
  }

  // Single-update conveniences (one-record batches).
  Status Put(const ClientWriteOptions& options, Key key, const Slice& value);
  Status Put(Key key, const Slice& value) {
    return Put(ClientWriteOptions(), key, value);
  }
  Status Delete(const ClientWriteOptions& options, Key key);
  Status Delete(Key key) { return Delete(ClientWriteOptions(), key); }

  /// Pins a point-in-time view on the server. *snapshot_id names it in
  /// later ClientReadOptions; *sequence (optional) reports its
  /// visibility horizon. The server releases it on ReleaseSnapshot or —
  /// if the client disconnects or dies — when the connection closes.
  Status NewSnapshot(uint64_t* snapshot_id,
                     SequenceNumber* sequence = nullptr);
  Status ReleaseSnapshot(uint64_t snapshot_id);

  /// Round-trip liveness probe.
  Status Ping();

  /// Closes the socket. Further calls return IOError; the destructor
  /// also closes.
  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends one request frame and reads the matching response frame,
  /// verifying CRC, echoed request id, and expected type (accepting
  /// kErrorResponse anywhere, surfaced as its carried status).
  Status RoundTrip(wire::MessageType request_type, const Slice& body,
                   wire::MessageType expected_response, std::string* response);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  std::string send_buf_;
};

}  // namespace lilsm

#endif  // LILSM_CLIENT_CLIENT_H_
