#include "client/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"

namespace lilsm {

namespace {

Status SocketError(const char* context, int err) {
  return Status::IOError(context, std::strerror(err));
}

// write(2) raises SIGPIPE if the server vanished; MSG_NOSIGNAL turns
// that into a plain EPIPE so the library never requires global signal
// configuration from its host process.
ssize_t SendNoSigpipe(int fd, const void* buf, size_t n) {
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

}  // namespace

Status Client::Connect(const std::string& socket_path,
                       std::unique_ptr<Client>* client) {
  client->reset();
  struct ::sockaddr_un addr;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long", socket_path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return SocketError("socket", errno);
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int err = errno;
    ::close(fd);
    return SocketError(("connect " + socket_path).c_str(), err);
  }
  client->reset(new Client(fd));
  return Status::OK();
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::RoundTrip(wire::MessageType request_type, const Slice& body,
                         wire::MessageType expected_response,
                         std::string* response) {
  if (fd_ < 0) return Status::IOError("client is closed");
  const uint32_t request_id = next_request_id_++;
  send_buf_.clear();
  wire::EncodeFrame(&send_buf_, request_type, request_id, body);
  Status s = FullyWrite(fd_, send_buf_.data(), send_buf_.size(),
                        &SendNoSigpipe);
  if (!s.ok()) {
    Close();
    return s;
  }

  char header[wire::kFrameHeaderBytes];
  size_t got = 0;
  s = FullyReadFd(fd_, header, sizeof(header), &got);
  if (s.ok() && got < sizeof(header)) {
    s = Status::IOError("server closed the connection");
  }
  if (!s.ok()) {
    Close();
    return s;
  }
  const uint32_t payload_len = DecodeFixed32(header);
  if (payload_len < 5 || payload_len > wire::kMaxPayloadBytes) {
    Close();
    return Status::Corruption("response frame length out of range");
  }
  std::string payload(payload_len, '\0');
  s = FullyReadFd(fd_, payload.data(), payload_len, &got);
  if (s.ok() && got < payload_len) {
    s = Status::IOError("server closed mid-frame");
  }
  if (!s.ok()) {
    Close();
    return s;
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header + 4));
  if (crc32c::Value(payload.data(), payload_len) != expected_crc) {
    Close();
    return Status::Corruption("response frame checksum mismatch");
  }
  const auto type = static_cast<wire::MessageType>(payload[0]);
  const uint32_t echoed_id = DecodeFixed32(payload.data() + 1);
  if (echoed_id != request_id) {
    Close();
    return Status::Corruption("response for a different request");
  }
  response->assign(payload.data() + 5, payload_len - 5);
  if (type == wire::MessageType::kErrorResponse) {
    // The server refused the request outright (malformed frame body,
    // unknown type). It will close the connection; mirror that.
    wire::StatusResponse err;
    Close();
    if (!err.DecodeFrom(Slice(*response))) {
      return Status::Corruption("malformed error response");
    }
    return err.status.ok() ? Status::IOError("server rejected the request")
                           : err.status;
  }
  if (type != expected_response) {
    Close();
    return Status::Corruption("unexpected response type");
  }
  return Status::OK();
}

Status Client::Get(const ClientReadOptions& options, Key key,
                   std::string* value) {
  wire::GetRequest req;
  req.snapshot_id = options.snapshot_id;
  req.key = key;
  std::string body;
  req.EncodeTo(&body);
  std::string response;
  Status s = RoundTrip(wire::MessageType::kGetRequest, body,
                       wire::MessageType::kGetResponse, &response);
  if (!s.ok()) return s;
  wire::GetResponse resp;
  if (!resp.DecodeFrom(Slice(response))) {
    Close();
    return Status::Corruption("malformed get response");
  }
  if (resp.status.ok()) *value = std::move(resp.value);
  return resp.status;
}

Status Client::MultiGet(const ClientReadOptions& options,
                        std::span<const Key> keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  wire::MultiGetRequest req;
  req.snapshot_id = options.snapshot_id;
  req.keys.assign(keys.begin(), keys.end());
  std::string body;
  req.EncodeTo(&body);
  std::string response;
  Status s = RoundTrip(wire::MessageType::kMultiGetRequest, body,
                       wire::MessageType::kMultiGetResponse, &response);
  if (!s.ok()) return s;
  wire::MultiGetResponse resp;
  if (!resp.DecodeFrom(Slice(response)) ||
      (resp.status.ok() && resp.statuses.size() != keys.size())) {
    Close();
    return Status::Corruption("malformed multiget response");
  }
  *values = std::move(resp.values);
  *statuses = std::move(resp.statuses);
  return resp.status;
}

Status Client::Write(const ClientWriteOptions& options,
                     const WriteBatch& batch) {
  wire::WriteRequest req;
  req.sync = options.sync;
  req.disable_wal = options.disable_wal;
  const Slice contents = batch.Contents();
  req.batch_rep.assign(contents.data(), contents.size());
  std::string body;
  req.EncodeTo(&body);
  std::string response;
  Status s = RoundTrip(wire::MessageType::kWriteRequest, body,
                       wire::MessageType::kWriteResponse, &response);
  if (!s.ok()) return s;
  wire::StatusResponse resp;
  if (!resp.DecodeFrom(Slice(response))) {
    Close();
    return Status::Corruption("malformed write response");
  }
  return resp.status;
}

Status Client::Put(const ClientWriteOptions& options, Key key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, batch);
}

Status Client::Delete(const ClientWriteOptions& options, Key key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, batch);
}

Status Client::NewSnapshot(uint64_t* snapshot_id, SequenceNumber* sequence) {
  std::string response;
  Status s = RoundTrip(wire::MessageType::kNewSnapshotRequest, Slice(),
                       wire::MessageType::kNewSnapshotResponse, &response);
  if (!s.ok()) return s;
  wire::NewSnapshotResponse resp;
  if (!resp.DecodeFrom(Slice(response))) {
    Close();
    return Status::Corruption("malformed snapshot response");
  }
  if (resp.status.ok()) {
    *snapshot_id = resp.snapshot_id;
    if (sequence != nullptr) *sequence = resp.sequence;
  }
  return resp.status;
}

Status Client::ReleaseSnapshot(uint64_t snapshot_id) {
  wire::ReleaseSnapshotRequest req;
  req.snapshot_id = snapshot_id;
  std::string body;
  req.EncodeTo(&body);
  std::string response;
  Status s = RoundTrip(wire::MessageType::kReleaseSnapshotRequest, body,
                       wire::MessageType::kReleaseSnapshotResponse, &response);
  if (!s.ok()) return s;
  wire::StatusResponse resp;
  if (!resp.DecodeFrom(Slice(response))) {
    Close();
    return Status::Corruption("malformed release response");
  }
  return resp.status;
}

Status Client::Ping() {
  std::string response;
  Status s = RoundTrip(wire::MessageType::kPingRequest, Slice(),
                       wire::MessageType::kPingResponse, &response);
  if (!s.ok()) return s;
  wire::StatusResponse resp;
  if (!resp.DecodeFrom(Slice(response))) {
    Close();
    return Status::Corruption("malformed ping response");
  }
  return resp.status;
}

}  // namespace lilsm
