// lilsm_server: hosts one DB and serves it to lilsm::Client handles over
// a unix-domain socket (see server/server.h for the service layer and
// DESIGN.md "Service layer" for the protocol).
//
// Shutdown is signal-driven and graceful: SIGINT/SIGTERM land in a
// self-pipe (the handler does nothing async-signal-unsafe), the main
// thread wakes, Server::Stop() drains every in-flight request and flushes
// its reply, client snapshots are released, and the DB closes cleanly —
// so a restart replays the WAL to exactly the acknowledged state.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "lsm/db.h"
#include "server/server.h"
#include "util/stats.h"

namespace {

// Self-pipe for the signal handlers: write end poked by the handler,
// read end blocks the main thread until a shutdown signal arrives.
int g_signal_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signo*/) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (a full pipe
  // means a shutdown is already pending).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --db=PATH [options]\n"
      "  --db=PATH              database directory (required; created if "
      "absent)\n"
      "  --socket=PATH          listening socket (default: <db>/lilsm.sock)\n"
      "  --workers=N            request worker threads (default 4)\n"
      "  --max-frame-mb=N       per-frame payload limit in MiB (default 16)\n"
      "  --backlog=N            listen(2) backlog (default 128)\n"
      "  --group-commit=0|1     coalesce concurrent writes (default 1)\n"
      "  --background=0|1       background flush/compaction (default 1)\n"
      "  --io-depth=N           async read batch depth (default 1)\n"
      "  --block-cache-mb=N     shared block cache size (default 0 = off)\n"
      "  --sync-wal=0|1         fdatasync the WAL per commit (default 0)\n"
      "  --stats=0|1            dump counters on exit (default 1)\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out->assign(arg + n + 1);
  return true;
}

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  char* end = nullptr;
  *out = std::strtol(v.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  lilsm::ServerOptions server_options;
  long workers = 4, max_frame_mb = 16, backlog = 128;
  long group_commit = 1, background = 1, io_depth = 1, block_cache_mb = 0;
  long sync_wal = 0, dump_stats = 1;

  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--db", &db_path) ||
        ParseFlag(arg, "--socket", &server_options.socket_path) ||
        ParseIntFlag(arg, "--workers", &workers) ||
        ParseIntFlag(arg, "--max-frame-mb", &max_frame_mb) ||
        ParseIntFlag(arg, "--backlog", &backlog) ||
        ParseIntFlag(arg, "--group-commit", &group_commit) ||
        ParseIntFlag(arg, "--background", &background) ||
        ParseIntFlag(arg, "--io-depth", &io_depth) ||
        ParseIntFlag(arg, "--block-cache-mb", &block_cache_mb) ||
        ParseIntFlag(arg, "--sync-wal", &sync_wal) ||
        ParseIntFlag(arg, "--stats", &dump_stats)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
    Usage(argv[0]);
    return 2;
  }
  if (db_path.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (server_options.socket_path.empty()) {
    server_options.socket_path = db_path + "/lilsm.sock";
  }
  server_options.num_workers = static_cast<int>(workers);
  server_options.max_frame_bytes =
      static_cast<uint32_t>(max_frame_mb) << 20;
  server_options.listen_backlog = static_cast<int>(backlog);

  lilsm::DBOptions db_options;
  db_options.group_commit = group_commit != 0;
  db_options.concurrency = background != 0
                               ? lilsm::ConcurrencyMode::kBackground
                               : lilsm::ConcurrencyMode::kInline;
  db_options.io_depth = static_cast<int>(io_depth);
  db_options.block_cache_bytes = static_cast<size_t>(block_cache_mb) << 20;
  db_options.sync_wal = sync_wal != 0;

  // Install the self-pipe before the server starts so a signal racing
  // startup still lands.
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A client vanishing mid-write must not kill the server; write errors
  // surface as EPIPE on the socket instead.
  ::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<lilsm::DB> db;
  lilsm::Status s = lilsm::DB::Open(db_options, db_path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", db_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }

  std::unique_ptr<lilsm::Server> server;
  s = lilsm::Server::Start(db.get(), server_options, &server);
  if (!s.ok()) {
    std::fprintf(stderr, "start server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "lilsm_server: db=%s socket=%s workers=%d\n",
               db_path.c_str(), server->socket_path().c_str(),
               server_options.num_workers);

  // Block until SIGINT/SIGTERM pokes the self-pipe.
  char byte;
  ssize_t r;
  do {
    r = ::read(g_signal_pipe[0], &byte, 1);
  } while (r < 0 && errno == EINTR);

  std::fprintf(stderr, "lilsm_server: shutting down\n");
  server->Stop();
  server.reset();
  if (dump_stats != 0) {
    std::fprintf(stderr, "%s\n", db->stats()->ToString().c_str());
  }
  db.reset();  // closes the DB: WAL is complete up to the last ack
  std::fprintf(stderr, "lilsm_server: clean shutdown\n");
  return 0;
}
