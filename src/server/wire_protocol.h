// The lilsm service wire protocol: a length-prefixed, CRC-framed,
// batch-first binary format spoken between lilsm::Client and
// lilsm_server over a unix-domain stream socket.
//
// Every message travels in one frame:
//
//   | payload_len : fixed32 | payload_crc : fixed32 | payload |
//
// payload_crc is the masked crc32c (LevelDB convention, crc32c.h) of the
// payload bytes, so a torn or corrupted frame is detected before any
// field is trusted. The payload itself is:
//
//   | type : 1 byte | request_id : fixed32 | body |
//
// request_id is chosen by the client and echoed verbatim in the
// response, which lets a pipelining client match replies; the bundled
// sync Client just checks it. Bodies are the per-type encodings below.
//
// The protocol is batch-first: one kMultiGetRequest frame carries an
// entire key batch and one kWriteRequest frame carries a whole
// serialized WriteBatch, so a 1024-key lookup or a coalesced update
// group costs one syscall in each direction. See DESIGN.md "Service
// layer".
#ifndef LILSM_SERVER_WIRE_PROTOCOL_H_
#define LILSM_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace lilsm {
namespace wire {

/// Frame header: payload_len (fixed32) + masked payload crc (fixed32).
constexpr size_t kFrameHeaderBytes = 8;

/// Hard ceiling on one frame's payload. Anything larger is treated as a
/// protocol violation (a garbled length field would otherwise make the
/// receiver wait forever for bytes that never come, or allocate
/// unboundedly). 64 MiB comfortably fits the largest supported batches.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class MessageType : uint8_t {
  kGetRequest = 1,
  kMultiGetRequest = 2,
  kWriteRequest = 3,
  kNewSnapshotRequest = 4,
  kReleaseSnapshotRequest = 5,
  kPingRequest = 6,

  kGetResponse = 65,
  kMultiGetResponse = 66,
  kWriteResponse = 67,
  kNewSnapshotResponse = 68,
  kReleaseSnapshotResponse = 69,
  kPingResponse = 70,
  /// Sent when a request could not be executed at all (malformed body,
  /// unknown type, poisoned connection); body is one wire Status.
  kErrorResponse = 127,
};

/// One parsed frame. `body` is the payload minus the type/request_id
/// prefix, copied out of the connection buffer so it outlives further
/// socket reads.
struct Frame {
  MessageType type = MessageType::kErrorResponse;
  uint32_t request_id = 0;
  std::string body;
};

/// Incremental decode outcomes. Only kFrame consumes a frame; kNeedMore
/// leaves the buffer untouched; the error outcomes poison the stream
/// (framing is lost), so the connection must be closed.
enum class DecodeResult {
  kFrame,     // *frame filled, frame bytes consumed from *buf
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kBadCrc,    // payload checksum mismatch
  kTooLarge,  // payload_len exceeds max_payload
  kBadFrame,  // payload too short to hold type + request_id
};

/// Appends one encoded frame carrying `body` to *out.
void EncodeFrame(std::string* out, MessageType type, uint32_t request_id,
                 const Slice& body);

/// Tries to decode the frame at the front of *buf (a connection's read
/// accumulation buffer). On kFrame the frame's bytes are erased from
/// *buf, so callers loop until kNeedMore. `max_payload` is clamped to
/// kMaxPayloadBytes.
DecodeResult DecodeFrame(std::string* buf, uint32_t max_payload, Frame* frame);

// ---- wire Status ----

/// code byte | varint32 message length | message bytes.
void EncodeStatus(std::string* out, const Status& status);
bool DecodeStatus(Slice* input, Status* status);

// ---- request bodies ----

/// snapshot_id 0 means "read the latest state"; otherwise it names a
/// server-side snapshot created by kNewSnapshotRequest on this
/// connection.
struct GetRequest {
  uint64_t snapshot_id = 0;
  Key key = 0;

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

struct MultiGetRequest {
  uint64_t snapshot_id = 0;
  std::vector<Key> keys;

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

struct WriteRequest {
  /// WriteOptions for the batch: sync unset inherits the server DB's
  /// sync_wal default, exactly like the in-process API.
  std::optional<bool> sync;
  bool disable_wal = false;
  /// WriteBatch::Contents() bytes (the WAL record payload format). The
  /// sequence field is ignored by the server — the DB assigns one.
  std::string batch_rep;

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

struct ReleaseSnapshotRequest {
  uint64_t snapshot_id = 0;

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

// kNewSnapshotRequest and kPingRequest have empty bodies.

// ---- response bodies ----

struct GetResponse {
  Status status;
  std::string value;  // filled iff status.ok()

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

struct MultiGetResponse {
  /// The batch-level status (mirrors DB::MultiGet's return): an
  /// environmental failure that aborted the whole batch. Per-key
  /// outcomes are only present when it is OK.
  Status status;
  std::vector<Status> statuses;
  std::vector<std::string> values;  // values[i] filled iff statuses[i].ok()

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

struct NewSnapshotResponse {
  Status status;
  uint64_t snapshot_id = 0;       // valid iff status.ok()
  SequenceNumber sequence = 0;    // the snapshot's visibility horizon

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

/// kWriteResponse, kReleaseSnapshotResponse, kPingResponse, and
/// kErrorResponse all carry exactly one wire Status.
struct StatusResponse {
  Status status;

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice input);
};

/// Structurally validates a WriteBatch::Contents() rep (header + record
/// walk + count agreement) without applying it, so the server rejects a
/// malformed client batch with InvalidArgument instead of letting a
/// Corruption surface mid-memtable-apply. Returns the record count.
bool ValidateBatchRep(const Slice& rep, uint32_t* count);

}  // namespace wire
}  // namespace lilsm

#endif  // LILSM_SERVER_WIRE_PROTOCOL_H_
