#include "server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "server/wire_protocol.h"
#include "util/coding.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace lilsm {

namespace {

Status SocketError(const char* context, int err) {
  return Status::IOError(context, std::strerror(err));
}

// Re-arms a registered connection fd with exactly the wanted interest set.
void UpdateEpollInterest(int epoll_fd, int fd, bool want_in, bool want_out) {
  struct ::epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  if (want_in) ev.events |= EPOLLIN;
  if (want_out) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

}  // namespace

/// One request frame waiting for a worker, stamped at parse time so
/// kServerQueue measures the parse-to-pickup queueing delay.
struct Server::QueuedFrame {
  wire::Frame frame;
  uint64_t enqueue_ns = 0;
};

/// One client connection. The event loop owns the fd and the input
/// buffer; everything under `mu` is the worker/loop handoff surface.
/// The snapshot registry is touched only by the connection's single
/// active worker job while the connection lives (jobs are serialized),
/// and by the event loop at destroy time — after `job_active` has
/// drained, which `mu` synchronizes.
struct Server::Conn {
  int fd = -1;
  std::string in;             // event-loop thread only
  bool input_closed = false;  // event-loop thread only
  bool epollout_armed = false;  // event-loop thread only

  Mutex mu;
  /// Encoded response frames awaiting write.
  std::string out GUARDED_BY(mu);
  /// Parsed frames awaiting a worker.
  std::deque<QueuedFrame> pending GUARDED_BY(mu);
  /// A worker is draining `pending`.
  bool job_active GUARDED_BY(mu) = false;
  /// Close once idle and flushed.
  bool want_close GUARDED_BY(mu) = false;

  std::unordered_map<uint64_t, const Snapshot*> snapshots;
  uint64_t next_snapshot_id = 1;
};

struct Server::ConnMap {
  std::unordered_map<int, std::shared_ptr<Conn>> map;
};

Status ServerOptions::Validate() const {
  if (socket_path.empty()) {
    return Status::InvalidArgument("ServerOptions::socket_path is empty");
  }
  struct ::sockaddr_un probe;
  if (socket_path.size() >= sizeof(probe.sun_path)) {
    return Status::InvalidArgument("ServerOptions::socket_path too long",
                                   socket_path);
  }
  if (num_workers <= 0) {
    return Status::InvalidArgument(
        "ServerOptions::num_workers must be positive");
  }
  if (max_frame_bytes < 64) {
    return Status::InvalidArgument(
        "ServerOptions::max_frame_bytes too small to hold any request");
  }
  if (listen_backlog <= 0) {
    return Status::InvalidArgument(
        "ServerOptions::listen_backlog must be positive");
  }
  return Status::OK();
}

Server::Server(DB* db, const ServerOptions& options)
    : db_(db), options_(options), conns_(new ConnMap) {}

Status Server::Start(DB* db, const ServerOptions& options,
                     std::unique_ptr<Server>* server) {
  server->reset();
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start requires an open DB");
  }
  Status s = options.Validate();
  if (!s.ok()) return s;
  std::unique_ptr<Server> srv(new Server(db, options));
  s = srv->Init();
  if (!s.ok()) return s;
  *server = std::move(srv);
  return Status::OK();
}

Status Server::Init() {
  env_ = Env::Default();
  // A stale socket file from a crashed predecessor would make bind fail.
  ::unlink(options_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return SocketError("socket", errno);
  struct ::sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<struct ::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return SocketError(("bind " + options_.socket_path).c_str(), errno);
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return SocketError("listen", errno);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return SocketError("epoll_create1", errno);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return SocketError("eventfd", errno);

  struct ::epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return SocketError("epoll_ctl listen", errno);
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return SocketError("epoll_ctl wake", errno);
  }

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  loop_thread_ = std::thread(&Server::EventLoop, this);
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

Server::~Server() {
  Stop();
  // Init-failure cleanup (Stop handles the started case).
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::Stop() {
  static Mutex stop_mu;
  MutexLock l(&stop_mu);
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The pool destructor drains any still-queued closures; by the time
  // the loop exited there are none (the drain barrier waits them out),
  // but destroying here keeps that invariant local.
  pool_.reset();
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(wake_fd_);
  wake_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  started_.store(false, std::memory_order_release);
}

void Server::WakeLoop() {
  const uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(wake_fd_, &one, sizeof(one));
  } while (r < 0 && errno == EINTR);
  // EAGAIN means the counter is already nonzero: the loop will wake.
}

void Server::EventLoop() {
  std::vector<struct ::epoll_event> events(64);
  bool draining = false;
  uint64_t drain_deadline_ns = 0;
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); i++) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else if (fd == listen_fd_) {
        if (!draining) AcceptConnections();
      } else {
        auto it = conns_->map.find(fd);
        if (it == conns_->map.end()) continue;
        std::shared_ptr<Conn> conn = it->second;
        if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 &&
            !conn->input_closed) {
          HandleReadable(conn);
        }
      }
    }

    // Flush worker-produced output and reap finished connections. The
    // conn list is copied because MaybeFinishConn erases from the map.
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns_->map.size());
    for (auto& entry : conns_->map) snapshot.push_back(entry.second);
    for (const std::shared_ptr<Conn>& conn : snapshot) FlushOutput(conn);
    for (const std::shared_ptr<Conn>& conn : snapshot) MaybeFinishConn(conn);

    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline_ns = env_->NowNanos() + uint64_t{10} * 1'000'000'000;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      // Stop reading: every frame already parsed still executes and its
      // response still flushes, but nothing new is accepted.
      for (auto& entry : conns_->map) {
        Conn* conn = entry.second.get();
        if (!conn->input_closed) {
          conn->input_closed = true;
          UpdateEpollInterest(epoll_fd_, conn->fd, false,
                              conn->epollout_armed);
        }
      }
    }

    if (draining) {
      bool done = jobs_in_flight_.load(std::memory_order_acquire) == 0;
      if (done) {
        for (auto& entry : conns_->map) {
          Conn* conn = entry.second.get();
          MutexLock cl(&conn->mu);
          if (conn->job_active || !conn->pending.empty() ||
              !conn->out.empty()) {
            done = false;
            break;
          }
        }
      }
      // The deadline only covers clients too slow to read their flushed
      // replies; requests themselves always finish (the pool drains).
      if (done || (env_->NowNanos() > drain_deadline_ns &&
                   jobs_in_flight_.load(std::memory_order_acquire) == 0)) {
        DrainAndCloseAll();
        break;
      }
    }
  }
}

void Server::AcceptConnections() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accept queue drained (or a transient error)
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    struct ::epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_->map[fd] = conn;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  Stats* stats = db_->stats();
  char buf[64 * 1024];
  bool submit_job = false;
  while (true) {
    const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn->input_closed = true;  // reset or fatal socket error
      break;
    }
    if (r == 0) {
      conn->input_closed = true;
      break;
    }
    conn->in.append(buf, static_cast<size_t>(r));
    stats->Add(Counter::kServerBytesIn, static_cast<uint64_t>(r));
    // Keep draining the socket; a batch-first client typically delivers
    // one whole frame per read.
  }

  while (true) {
    QueuedFrame qf;
    const wire::DecodeResult result =
        wire::DecodeFrame(&conn->in, options_.max_frame_bytes, &qf.frame);
    if (result == wire::DecodeResult::kNeedMore) break;
    if (result != wire::DecodeResult::kFrame) {
      // Framing is lost: answer with one error frame and close. The
      // request id is unknowable, so 0 is echoed.
      wire::StatusResponse err;
      err.status = result == wire::DecodeResult::kTooLarge
                       ? Status::InvalidArgument("frame exceeds size limit")
                       : Status::Corruption("malformed request frame");
      std::string body;
      err.EncodeTo(&body);
      std::string frame;
      wire::EncodeFrame(&frame, wire::MessageType::kErrorResponse, 0,
                        Slice(body));
      {
        MutexLock l(&conn->mu);
        conn->out.append(frame);
        conn->want_close = true;
      }
      conn->in.clear();
      conn->input_closed = true;
      break;
    }
    qf.enqueue_ns = env_->NowNanos();
    MutexLock l(&conn->mu);
    conn->pending.push_back(std::move(qf));
    if (!conn->job_active) {
      conn->job_active = true;
      jobs_in_flight_.fetch_add(1, std::memory_order_acq_rel);
      submit_job = true;
    }
  }
  if (conn->input_closed) {
    // Stop watching for input; output interest (if armed) survives.
    UpdateEpollInterest(epoll_fd_, conn->fd, false, conn->epollout_armed);
  }
  if (submit_job) {
    std::shared_ptr<Conn> ref = conn;
    pool_->Submit([this, ref] { RunConnJobs(ref); });
  }
}

void Server::FlushOutput(const std::shared_ptr<Conn>& conn) {
  std::string chunk;
  {
    MutexLock l(&conn->mu);
    if (conn->out.empty()) {
      if (conn->epollout_armed) {
        conn->epollout_armed = false;
        UpdateEpollInterest(epoll_fd_, conn->fd, !conn->input_closed, false);
      }
      return;
    }
    chunk.swap(conn->out);
  }
  Stats* stats = db_->stats();
  size_t sent = 0;
  bool broken = false;
  while (sent < chunk.size()) {
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not kill
    // the host process with SIGPIPE.
    const ssize_t r = ::send(conn->fd, chunk.data() + sent,
                             chunk.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      broken = true;  // peer reset: drop the rest, reap the connection
      break;
    }
    sent += static_cast<size_t>(r);
  }
  if (sent > 0) stats->Add(Counter::kServerBytesOut, sent);
  MutexLock l(&conn->mu);
  if (broken) {
    conn->out.clear();
    conn->want_close = true;
    conn->input_closed = true;
    return;
  }
  if (sent < chunk.size()) {
    // Workers may have appended while the lock was dropped; the
    // unwritten tail goes back in front to preserve frame order.
    conn->out.insert(0, chunk, sent, chunk.size() - sent);
    if (!conn->epollout_armed) {
      conn->epollout_armed = true;
      UpdateEpollInterest(epoll_fd_, conn->fd, !conn->input_closed, true);
    }
  }
}

void Server::MaybeFinishConn(const std::shared_ptr<Conn>& conn) {
  bool finish;
  {
    MutexLock l(&conn->mu);
    const bool idle = !conn->job_active && conn->pending.empty();
    const bool flushed = conn->out.empty();
    finish = idle && flushed && (conn->input_closed || conn->want_close);
  }
  if (finish) DestroyConn(conn);
}

void Server::DestroyConn(const std::shared_ptr<Conn>& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_->map.erase(conn->fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  // Jobs have drained (checked under mu before finish), so this thread
  // is the sole owner of the snapshot registry now. Disconnect releases
  // whatever the client leaked.
  for (auto& entry : conn->snapshots) {
    db_->ReleaseSnapshot(entry.second);
  }
  conn->snapshots.clear();
}

void Server::DrainAndCloseAll() {
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_->map.size());
  for (auto& entry : conns_->map) all.push_back(entry.second);
  for (const std::shared_ptr<Conn>& conn : all) {
    FlushOutput(conn);
    DestroyConn(conn);
  }
}

// NOLINTNEXTLINE(performance-unnecessary-value-param) -- see server.h
void Server::RunConnJobs(std::shared_ptr<Conn> conn) {
  Stats* stats = db_->stats();
  while (true) {
    QueuedFrame qf;
    {
      MutexLock l(&conn->mu);
      qf = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    stats->AddTime(Timer::kServerQueue, env_->NowNanos() - qf.enqueue_ns);
    std::string out;
    const bool keep = HandleFrame(conn.get(), qf, &out);
    bool done = false;
    {
      MutexLock l(&conn->mu);
      conn->out.append(out);
      if (!keep) {
        conn->want_close = true;
        conn->pending.clear();
      }
      if (conn->pending.empty()) {
        conn->job_active = false;
        done = true;
      }
    }
    if (done) break;
  }
  jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  WakeLoop();
}

bool Server::HandleFrame(Conn* conn, const QueuedFrame& frame,
                         std::string* out) {
  Stats* stats = db_->stats();
  stats->Add(Counter::kServerRequests);
  const uint32_t id = frame.frame.request_id;
  const Slice body(frame.frame.body);

  // Resolves a wire snapshot id against this connection's registry.
  // id 0 = latest state; an unknown id is a per-request error, not a
  // protocol violation.
  auto resolve_snapshot = [conn](uint64_t snapshot_id, const Snapshot** snap,
                                 Status* error) {
    *snap = nullptr;
    if (snapshot_id == 0) return true;
    auto it = conn->snapshots.find(snapshot_id);
    if (it == conn->snapshots.end()) {
      *error = Status::InvalidArgument("unknown snapshot id");
      return false;
    }
    *snap = it->second;
    return true;
  };

  switch (frame.frame.type) {
    case wire::MessageType::kGetRequest: {
      wire::GetRequest req;
      if (!req.DecodeFrom(body)) break;
      wire::GetResponse resp;
      const Snapshot* snap = nullptr;
      if (resolve_snapshot(req.snapshot_id, &snap, &resp.status)) {
        ReadOptions ro;
        ro.snapshot = snap;
        resp.status = db_->Get(ro, req.key, &resp.value);
      }
      stats->Add(Counter::kServerBatchKeys);
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kGetResponse, id,
                        Slice(rbody));
      return true;
    }
    case wire::MessageType::kMultiGetRequest: {
      wire::MultiGetRequest req;
      if (!req.DecodeFrom(body)) break;
      wire::MultiGetResponse resp;
      const Snapshot* snap = nullptr;
      if (resolve_snapshot(req.snapshot_id, &snap, &resp.status)) {
        ReadOptions ro;
        ro.snapshot = snap;
        resp.status =
            db_->MultiGet(ro, req.keys, &resp.values, &resp.statuses);
        if (!resp.status.ok() && resp.status.IsNotFound()) {
          // DB::MultiGet returns OK at batch level even when every key
          // is NotFound; a NotFound return would mean an aborted batch.
          // Normalize defensively so the wire contract stays simple.
          resp.status = Status::OK();
        }
      }
      stats->Add(Counter::kServerBatchKeys, req.keys.size());
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kMultiGetResponse, id,
                        Slice(rbody));
      return true;
    }
    case wire::MessageType::kWriteRequest: {
      wire::WriteRequest req;
      if (!req.DecodeFrom(body)) break;
      wire::StatusResponse resp;
      uint32_t count = 0;
      if (!wire::ValidateBatchRep(Slice(req.batch_rep), &count)) {
        resp.status = Status::InvalidArgument("malformed write batch");
      } else {
        WriteBatch batch;
        resp.status = WriteBatch::SetContents(&batch, Slice(req.batch_rep));
        if (resp.status.ok()) {
          WriteOptions wo;
          wo.sync = req.sync;
          wo.disable_wal = req.disable_wal;
          resp.status = db_->Write(wo, &batch);
        }
      }
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kWriteResponse, id,
                        Slice(rbody));
      return true;
    }
    case wire::MessageType::kNewSnapshotRequest: {
      if (!body.empty()) break;
      wire::NewSnapshotResponse resp;
      const Snapshot* snap = db_->GetSnapshot();
      resp.snapshot_id = conn->next_snapshot_id++;
      resp.sequence = snap->sequence();
      conn->snapshots[resp.snapshot_id] = snap;
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kNewSnapshotResponse, id,
                        Slice(rbody));
      return true;
    }
    case wire::MessageType::kReleaseSnapshotRequest: {
      wire::ReleaseSnapshotRequest req;
      if (!req.DecodeFrom(body)) break;
      wire::StatusResponse resp;
      auto it = conn->snapshots.find(req.snapshot_id);
      if (it == conn->snapshots.end()) {
        resp.status = Status::InvalidArgument("unknown snapshot id");
      } else {
        db_->ReleaseSnapshot(it->second);
        conn->snapshots.erase(it);
      }
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kReleaseSnapshotResponse, id,
                        Slice(rbody));
      return true;
    }
    case wire::MessageType::kPingRequest: {
      if (!body.empty()) break;
      wire::StatusResponse resp;
      std::string rbody;
      resp.EncodeTo(&rbody);
      wire::EncodeFrame(out, wire::MessageType::kPingResponse, id,
                        Slice(rbody));
      return true;
    }
    default:
      break;
  }

  // Unknown type or an undecodable body for a known type: the client's
  // framing may be fine but its encoder is not to be trusted — answer
  // with an error and close.
  wire::StatusResponse err;
  err.status = Status::InvalidArgument("malformed request body");
  std::string rbody;
  err.EncodeTo(&rbody);
  wire::EncodeFrame(out, wire::MessageType::kErrorResponse, id, Slice(rbody));
  return false;
}

}  // namespace lilsm
