#include "server/wire_protocol.h"

#include <algorithm>

#include "util/coding.h"
#include "util/crc32c.h"

namespace lilsm {
namespace wire {

void EncodeFrame(std::string* out, MessageType type, uint32_t request_id,
                 const Slice& body) {
  const size_t payload_len = 1 + 4 + body.size();
  const size_t payload_start = out->size() + kFrameHeaderBytes;
  out->reserve(out->size() + kFrameHeaderBytes + payload_len);
  PutFixed32(out, static_cast<uint32_t>(payload_len));
  PutFixed32(out, 0);  // crc placeholder, patched below
  out->push_back(static_cast<char>(type));
  PutFixed32(out, request_id);
  out->append(body.data(), body.size());
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(out->data() + payload_start, payload_len));
  EncodeFixed32(out->data() + payload_start - 4, crc);
}

DecodeResult DecodeFrame(std::string* buf, uint32_t max_payload,
                         Frame* frame) {
  max_payload = std::min(max_payload, kMaxPayloadBytes);
  if (buf->size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  const uint32_t payload_len = DecodeFixed32(buf->data());
  if (payload_len > max_payload) return DecodeResult::kTooLarge;
  // A payload must at least hold the type byte and request id.
  if (payload_len < 5) return DecodeResult::kBadFrame;
  if (buf->size() < kFrameHeaderBytes + payload_len) {
    return DecodeResult::kNeedMore;
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(buf->data() + 4));
  const char* payload = buf->data() + kFrameHeaderBytes;
  if (crc32c::Value(payload, payload_len) != expected_crc) {
    return DecodeResult::kBadCrc;
  }
  frame->type = static_cast<MessageType>(payload[0]);
  frame->request_id = DecodeFixed32(payload + 1);
  frame->body.assign(payload + 5, payload_len - 5);
  buf->erase(0, kFrameHeaderBytes + payload_len);
  return DecodeResult::kFrame;
}

void EncodeStatus(std::string* out, const Status& status) {
  out->push_back(static_cast<char>(status.code_byte()));
  const std::string& msg = status.message();
  PutVarint32(out, static_cast<uint32_t>(msg.size()));
  out->append(msg);
}

bool DecodeStatus(Slice* input, Status* status) {
  if (input->empty()) return false;
  const uint8_t code = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  uint32_t len = 0;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *status = Status::FromWire(code, Slice(input->data(), len));
  input->remove_prefix(len);
  return true;
}

// ---- requests ----

void GetRequest::EncodeTo(std::string* out) const {
  PutFixed64(out, snapshot_id);
  PutFixed64(out, key);
}

bool GetRequest::DecodeFrom(Slice input) {
  return GetFixed64(&input, &snapshot_id) && GetFixed64(&input, &key) &&
         input.empty();
}

void MultiGetRequest::EncodeTo(std::string* out) const {
  PutFixed64(out, snapshot_id);
  PutVarint32(out, static_cast<uint32_t>(keys.size()));
  for (Key key : keys) PutFixed64(out, key);
}

bool MultiGetRequest::DecodeFrom(Slice input) {
  uint32_t count = 0;
  if (!GetFixed64(&input, &snapshot_id) || !GetVarint32(&input, &count)) {
    return false;
  }
  if (input.size() != static_cast<size_t>(count) * 8) return false;
  keys.resize(count);
  for (uint32_t i = 0; i < count; i++) {
    GetFixed64(&input, &keys[i]);
  }
  return true;
}

void WriteRequest::EncodeTo(std::string* out) const {
  uint8_t flags = 0;
  if (sync.has_value()) flags |= 1;
  if (sync.value_or(false)) flags |= 2;
  if (disable_wal) flags |= 4;
  out->push_back(static_cast<char>(flags));
  out->append(batch_rep);
}

bool WriteRequest::DecodeFrom(Slice input) {
  if (input.empty()) return false;
  const uint8_t flags = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if ((flags & ~7u) != 0) return false;
  sync = (flags & 1) != 0 ? std::optional<bool>((flags & 2) != 0)
                          : std::nullopt;
  disable_wal = (flags & 4) != 0;
  batch_rep.assign(input.data(), input.size());
  return true;
}

void ReleaseSnapshotRequest::EncodeTo(std::string* out) const {
  PutFixed64(out, snapshot_id);
}

bool ReleaseSnapshotRequest::DecodeFrom(Slice input) {
  return GetFixed64(&input, &snapshot_id) && input.empty();
}

// ---- responses ----

void GetResponse::EncodeTo(std::string* out) const {
  EncodeStatus(out, status);
  if (status.ok()) PutLengthPrefixedSlice(out, Slice(value));
}

bool GetResponse::DecodeFrom(Slice input) {
  if (!DecodeStatus(&input, &status)) return false;
  if (status.ok()) {
    Slice v;
    if (!GetLengthPrefixedSlice(&input, &v)) return false;
    value.assign(v.data(), v.size());
  }
  return input.empty();
}

void MultiGetResponse::EncodeTo(std::string* out) const {
  EncodeStatus(out, status);
  if (!status.ok()) return;
  PutVarint32(out, static_cast<uint32_t>(statuses.size()));
  for (size_t i = 0; i < statuses.size(); i++) {
    EncodeStatus(out, statuses[i]);
    if (statuses[i].ok()) {
      PutLengthPrefixedSlice(out, Slice(values[i]));
    }
  }
}

bool MultiGetResponse::DecodeFrom(Slice input) {
  statuses.clear();
  values.clear();
  if (!DecodeStatus(&input, &status)) return false;
  if (!status.ok()) return input.empty();
  uint32_t count = 0;
  if (!GetVarint32(&input, &count)) return false;
  statuses.reserve(count);
  values.resize(count);
  for (uint32_t i = 0; i < count; i++) {
    Status s;
    if (!DecodeStatus(&input, &s)) return false;
    if (s.ok()) {
      Slice v;
      if (!GetLengthPrefixedSlice(&input, &v)) return false;
      values[i].assign(v.data(), v.size());
    }
    statuses.push_back(std::move(s));
  }
  return input.empty();
}

void NewSnapshotResponse::EncodeTo(std::string* out) const {
  EncodeStatus(out, status);
  if (status.ok()) {
    PutFixed64(out, snapshot_id);
    PutFixed64(out, sequence);
  }
}

bool NewSnapshotResponse::DecodeFrom(Slice input) {
  if (!DecodeStatus(&input, &status)) return false;
  if (status.ok()) {
    if (!GetFixed64(&input, &snapshot_id) || !GetFixed64(&input, &sequence)) {
      return false;
    }
  }
  return input.empty();
}

void StatusResponse::EncodeTo(std::string* out) const {
  EncodeStatus(out, status);
}

bool StatusResponse::DecodeFrom(Slice input) {
  return DecodeStatus(&input, &status) && input.empty();
}

bool ValidateBatchRep(const Slice& rep, uint32_t* count) {
  // Mirrors WriteBatch::InsertInto's walk: sequence (8B) | count (4B) |
  // records, each record a type byte + fixed64 key (+ length-prefixed
  // value for puts).
  constexpr size_t kHeader = 12;
  *count = 0;
  if (rep.size() < kHeader) return false;
  Slice input(rep.data() + kHeader, rep.size() - kHeader);
  const uint32_t declared = DecodeFixed32(rep.data() + 8);
  uint32_t found = 0;
  while (!input.empty()) {
    const char type_byte = input[0];
    input.remove_prefix(1);
    uint64_t key = 0;
    if (!GetFixed64(&input, &key)) return false;
    if (type_byte == kTypeValue) {
      Slice value;
      if (!GetLengthPrefixedSlice(&input, &value)) return false;
    } else if (type_byte != kTypeDeletion) {
      return false;
    }
    found++;
  }
  if (found != declared) return false;
  *count = found;
  return true;
}

}  // namespace wire
}  // namespace lilsm
