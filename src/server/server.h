// Server: the lilsm_server host side of the host/handle split. One
// nonblocking epoll event loop owns every client connection on a
// unix-domain socket; complete request frames are handed to a ThreadPool
// whose workers call straight into the DB (MultiGet/Write/snapshots), so
// concurrent client writes merge in the group-commit queue and batched
// reads fan into the async I/O path. Workers never touch the sockets:
// they append encoded response frames to per-connection output buffers
// and wake the loop through an eventfd, which keeps all socket I/O on
// one thread (see DESIGN.md "Service layer" for the state machine).
//
// Per-connection guarantees:
//  * requests execute in arrival order (one worker job per connection at
//    a time drains that connection's queue), so a client observes its
//    own writes;
//  * snapshots created over the wire are connection-scoped and released
//    when the connection closes, however it closes;
//  * a malformed frame (bad CRC, oversized or runt length) poisons only
//    that connection: it gets one kErrorResponse and a close, while the
//    event loop and every other client keep running.
//
// Stop() is the graceful-shutdown path used by the SIGINT/SIGTERM
// handler in lilsm_server: stop accepting, stop reading, drain every
// in-flight request, flush the replies, release client snapshots, and
// return — after which the caller closes the DB, so a restart replays
// the WAL to exactly the acknowledged state.
#ifndef LILSM_SERVER_SERVER_H_
#define LILSM_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "lsm/db.h"
#include "util/status.h"

namespace lilsm {

class ThreadPool;

struct ServerOptions {
  /// Filesystem path of the unix-domain listening socket. A stale socket
  /// file from a previous run is unlinked at Start.
  std::string socket_path;

  /// Worker threads executing requests against the DB. More workers let
  /// more client batches overlap their I/O waits (and merge their writes
  /// into group commits).
  int num_workers = 4;

  /// Per-frame payload ceiling; frames declaring more are a protocol
  /// violation (kErrorResponse + close). Clamped to wire::kMaxPayloadBytes.
  uint32_t max_frame_bytes = 16u << 20;

  /// listen(2) backlog for the accept queue.
  int listen_backlog = 128;

  Status Validate() const;
};

class Server {
 public:
  /// Binds the socket, spawns the event loop and worker pool, and
  /// returns a running server. `db` must outlive the server and stay
  /// open until after Stop() returns.
  static Status Start(DB* db, const ServerOptions& options,
                      std::unique_ptr<Server>* server);

  /// Stops (gracefully, draining in-flight requests) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful shutdown: close the listening socket, stop reading new
  /// requests, finish every request already received, flush the
  /// responses, release connection snapshots, close every connection,
  /// then join the event loop and workers. Idempotent and thread-safe —
  /// safe to call from a signal-forwarding thread while clients are
  /// mid-request.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }

  /// Diagnostics (racy snapshots; tests poll them).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int connections_active() const {
    return connections_active_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct QueuedFrame;

  Server(DB* db, const ServerOptions& options);

  Status Init();
  void EventLoop();
  void WakeLoop();

  void AcceptConnections();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void FlushOutput(const std::shared_ptr<Conn>& conn);
  void MaybeFinishConn(const std::shared_ptr<Conn>& conn);
  void DestroyConn(const std::shared_ptr<Conn>& conn);
  void DrainAndCloseAll();

  /// Worker-side: drains `conn`'s pending frame queue, executing each
  /// request against the DB and appending the response frames.
  // The by-value shared_ptr is load-bearing: the worker-pool closure may
  // outlive the epoll loop's map entry, so the job keeps its own reference.
  // NOLINTNEXTLINE(performance-unnecessary-value-param)
  void RunConnJobs(std::shared_ptr<Conn> conn);
  /// Executes one request frame; appends the encoded response frame(s)
  /// to *out. Returns false when the connection must close (protocol
  /// violation inside the body).
  bool HandleFrame(Conn* conn, const QueuedFrame& frame, std::string* out);

  DB* const db_;
  const ServerOptions options_;
  Env* env_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> jobs_in_flight_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<int> connections_active_{0};

  // Connections are owned by the event loop thread (fd -> conn); workers
  // hold shared_ptr refs only for the buffers/queues inside.
  struct ConnMap;
  std::unique_ptr<ConnMap> conns_;
};

}  // namespace lilsm

#endif  // LILSM_SERVER_SERVER_H_
