// SegmentedTable: the paper's LearnedIndexTable (Section 4.2).
//
// On-disk layout:
//   [data region]  count fixed-size entries, sorted by user key:
//                    key_size bytes big-endian key (zero padded)
//                    8  bytes tag = (sequence << 8) | ValueType
//                    value_size bytes value
//   [bloom block]  checksummed bloom filter over the user keys
//   [index blob]   checksummed EncodeIndexWithType() of the trained index
//   [meta block]   checksummed table parameters (geometry, count, range)
//   [footer]       handles + magic
//
// Point lookups predict an entry range with the learned index, fetch that
// range with one pread aligned to the I/O block size, and binary search
// inside the fetched bytes — exactly the paper's read path (Figure 1C).
#ifndef LILSM_TABLE_SEGMENTED_TABLE_H_
#define LILSM_TABLE_SEGMENTED_TABLE_H_

#include <vector>

#include "bloom/bloom.h"
#include "table/table.h"

namespace lilsm {

class SegmentedTableBuilder final : public TableBuilder {
 public:
  /// Creates `fname` for writing. Check status() before use.
  SegmentedTableBuilder(const TableOptions& options, const std::string& fname);
  ~SegmentedTableBuilder() override;

  Status Add(Key key, uint64_t tag, const Slice& value) override;
  Status Finish() override;
  void Abandon() override;

  uint64_t NumEntries() const override { return keys_.size(); }
  uint64_t FileSize() const override { return offset_; }
  Status status() const { return status_; }

 private:
  TableOptions options_;
  std::unique_ptr<WritableFile> file_;
  Status status_;
  std::vector<Key> keys_;
  BloomFilterBuilder bloom_;
  std::string entry_buf_;
  uint64_t offset_ = 0;
  bool finished_ = false;
};

class SegmentedTableReader final : public TableReader {
 public:
  /// Opens `fname`, reading footer, meta, bloom and index blob into memory.
  static Status Open(const TableOptions& options, const std::string& fname,
                     std::unique_ptr<TableReader>* reader);

  Status Get(Key key, std::string* value, uint64_t* tag, bool* found,
             Stats* stats, bool fill_cache) override;
  Status GetWithBounds(Key key, size_t lo, size_t hi, std::string* value,
                       uint64_t* tag, bool* found, Stats* stats,
                       bool fill_cache) override;
  /// Batched lookup that serves a run of sorted keys from one fetched I/O
  /// block where possible: a key inside the key range of the previously
  /// fetched block needs no bloom probe, no index descent, and no disk
  /// read — the per-run amortization DB::MultiGet is built on.
  Status MultiGet(std::span<const Key> keys, const size_t* bounds_lo,
                  const size_t* bounds_hi, std::string* values,
                  uint64_t* tags, bool* founds, Stats* stats,
                  bool fill_cache) override;
  /// Async two-phase MultiGet: plans every key (range check, bloom,
  /// model bounds), decomposes the lookups into merged cache-aware byte
  /// spans, serves all-hit spans from the block cache immediately, and
  /// registers one ReadRequest per cold span with `batch`. FinishMultiGet
  /// searches the fetched spans after the batch's Wait; results are
  /// bit-identical to the synchronous MultiGet.
  Status PrepareMultiGet(std::span<const Key> keys, const size_t* bounds_lo,
                         const size_t* bounds_hi, ReadBatch* batch,
                         std::unique_ptr<PendingMultiGet>* pending,
                         Stats* stats, bool fill_cache) override;
  Status FinishMultiGet(PendingMultiGet* pending, std::string* values,
                        uint64_t* tags, bool* founds, Stats* stats) override;
  std::unique_ptr<TableIterator> NewIterator(bool fill_cache,
                                             size_t readahead_blocks) override;

  uint64_t NumEntries() const override { return count_; }
  Key MinKey() const override { return min_key_; }
  Key MaxKey() const override { return max_key_; }
  const LearnedIndex* index() const override { return index_.get(); }
  Status RetrainIndex(IndexType type, const IndexConfig& config) override;
  size_t IndexMemoryUsage() const override;
  size_t FilterMemoryUsage() const override { return bloom_data_.capacity(); }
  Status ReadAllKeys(std::vector<Key>* keys) override;
  bool ExportIndexSegments(std::vector<LinearSegment>* out,
                           uint32_t* epsilon) override;

  uint32_t entry_size() const { return entry_size_; }

  /// Reads the entry range [lo, hi] (inclusive) with one pread aligned to
  /// the I/O block size, clamped to the end of the data region (the last
  /// segment of a table whose data section ends mid-block must not read
  /// the trailing bloom/index/meta bytes as entries). With a block cache
  /// configured, constituent I/O blocks are served from / inserted into it
  /// (insertion gated by `fill_cache`). On success *base points at entry
  /// `first` inside `scratch`. Exposed for the iterator and the
  /// level-model read path.
  Status ReadEntryRange(size_t lo, size_t hi, std::string* scratch,
                        const char** base, size_t* first, size_t* last,
                        Stats* stats = nullptr, bool fill_cache = true);

  /// Entry-index lower bound via O(log n) single-entry probes; correctness
  /// fallback for Seek() when the model range does not bracket an absent
  /// target key.
  Status FindLowerBound(Key target, size_t* pos);

  Key EntryKeyInBuffer(const char* base, size_t first, size_t i) const {
    return DecodeUserKey(base + (i - first) * entry_size_);
  }

 private:
  friend class SegmentedTableIterator;

  SegmentedTableReader(const TableOptions& options) : options_(options) {}

  Status ReadEntryKey(size_t pos, Key* key);
  /// Bloom probe; false means the key is definitely absent. `stats` (may
  /// be null) overrides options_.stats for this call.
  bool MayContain(Key key, Stats* stats);
  /// Fetch + in-range binary search shared by Get and GetWithBounds.
  Status SearchRange(Key key, size_t lo, size_t hi, std::string* value,
                     uint64_t* tag, bool* found, Stats* stats,
                     bool fill_cache);
  /// Serves the aligned byte range [byte_lo, byte_hi) into `dst` through
  /// the block cache: all-hit spans copy out of the cache with zero Env
  /// reads; otherwise one pread fetches the whole span (the same single
  /// I/O the uncached path issues) and the missing blocks are inserted
  /// when `fill_cache` is set.
  Status FetchAlignedCached(uint64_t byte_lo, uint64_t byte_hi, char* dst,
                            Stats* stats, bool fill_cache);
  /// Binary search entries [lo, hi] inside a fetched buffer (`base` points
  /// at entry `first`) for the exact key; bloom hit/miss attribution is
  /// the caller's.
  bool SearchBuffer(const char* base, size_t first, size_t lo, size_t hi,
                    Key key, std::string* value, uint64_t* tag) const;

  TableOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::unique_ptr<LearnedIndex> index_;
  std::string bloom_data_;
  uint64_t count_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  uint32_t key_size_ = 0;
  uint32_t value_size_ = 0;
  uint32_t entry_size_ = 0;
  uint64_t data_size_ = 0;  // count_ * entry_size_
};

}  // namespace lilsm

#endif  // LILSM_TABLE_SEGMENTED_TABLE_H_
