#include "table/table.h"

#include "table/block_table.h"
#include "table/segmented_table.h"

namespace lilsm {

Status TableReader::MultiGet(std::span<const Key> keys,
                             const size_t* bounds_lo, const size_t* bounds_hi,
                             std::string* values, uint64_t* tags, bool* founds,
                             Stats* stats, bool fill_cache) {
  for (size_t i = 0; i < keys.size(); i++) {
    Status s =
        bounds_lo != nullptr
            ? GetWithBounds(keys[i], bounds_lo[i], bounds_hi[i], &values[i],
                            &tags[i], &founds[i], stats, fill_cache)
            : Get(keys[i], &values[i], &tags[i], &founds[i], stats,
                  fill_cache);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status NewTableBuilder(const TableOptions& options, const std::string& fname,
                       std::unique_ptr<TableBuilder>* builder) {
  if (options.env == nullptr) {
    return Status::InvalidArgument("TableOptions.env is required");
  }
  switch (options.format) {
    case TableFormat::kSegmented: {
      auto b = std::make_unique<SegmentedTableBuilder>(options, fname);
      Status s = b->status();
      if (!s.ok()) return s;
      *builder = std::move(b);
      return Status::OK();
    }
    case TableFormat::kBlocked: {
      auto b = std::make_unique<BlockTableBuilder>(options, fname);
      Status s = b->status();
      if (!s.ok()) return s;
      *builder = std::move(b);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown table format");
}

Status OpenTable(const TableOptions& options, const std::string& fname,
                 std::unique_ptr<TableReader>* reader) {
  if (options.env == nullptr) {
    return Status::InvalidArgument("TableOptions.env is required");
  }
  switch (options.format) {
    case TableFormat::kSegmented:
      return SegmentedTableReader::Open(options, fname, reader);
    case TableFormat::kBlocked:
      return BlockTableReader::Open(options, fname, reader);
  }
  return Status::InvalidArgument("unknown table format");
}

}  // namespace lilsm
