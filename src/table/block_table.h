// BlockTable: the classic LevelDB-style table format, kept as the legacy
// substrate the paper's testbed replaces. Entries are grouped into
// prefix-compressed blocks with restart points; an in-memory index block of
// per-block fence pointers (last key + handle) routes lookups. Unlike the
// segmented format it supports variable-length values.
#ifndef LILSM_TABLE_BLOCK_TABLE_H_
#define LILSM_TABLE_BLOCK_TABLE_H_

#include <vector>

#include "bloom/bloom.h"
#include "table/table.h"

namespace lilsm {

class BlockTableBuilder final : public TableBuilder {
 public:
  BlockTableBuilder(const TableOptions& options, const std::string& fname);
  ~BlockTableBuilder() override;

  Status Add(Key key, uint64_t tag, const Slice& value) override;
  Status Finish() override;
  void Abandon() override;

  uint64_t NumEntries() const override { return num_entries_; }
  uint64_t FileSize() const override { return offset_; }
  Status status() const { return status_; }

 private:
  void FlushBlock();

  static constexpr int kRestartInterval = 16;
  /// Target uncompressed block payload size.
  static constexpr size_t kTargetBlockSize = 4096;

  TableOptions options_;
  std::unique_ptr<WritableFile> file_;
  Status status_;
  BloomFilterBuilder bloom_;

  std::string block_buf_;
  std::vector<uint32_t> restarts_;
  int entries_in_block_ = 0;
  std::string last_key_bytes_;  // encoded key of the previous entry

  // Pending index entries: (last key of block, handle).
  std::vector<std::pair<Key, BlockHandle>> index_entries_;
  Key block_last_key_ = 0;

  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  bool has_entries_ = false;
  Key min_key_ = 0;
  Key max_key_ = 0;
  bool finished_ = false;
};

class BlockTableReader final : public TableReader {
 public:
  static Status Open(const TableOptions& options, const std::string& fname,
                     std::unique_ptr<TableReader>* reader);

  Status Get(Key key, std::string* value, uint64_t* tag, bool* found,
             Stats* stats, bool fill_cache) override;
  /// Async two-phase MultiGet: screens each key (range, bloom), routes it
  /// to its fence-pointer block, dedupes consecutive keys sharing a block,
  /// serves cached blocks immediately, and registers one ReadRequest for
  /// each cold block's raw bytes. FinishMultiGet crc-verifies the fetched
  /// blocks and parses each key's entry. Positional bounds are not
  /// supported (same as GetWithBounds).
  Status PrepareMultiGet(std::span<const Key> keys, const size_t* bounds_lo,
                         const size_t* bounds_hi, ReadBatch* batch,
                         std::unique_ptr<PendingMultiGet>* pending,
                         Stats* stats, bool fill_cache) override;
  Status FinishMultiGet(PendingMultiGet* pending, std::string* values,
                        uint64_t* tags, bool* founds, Stats* stats) override;
  std::unique_ptr<TableIterator> NewIterator(bool fill_cache,
                                             size_t readahead_blocks) override;

  uint64_t NumEntries() const override { return count_; }
  Key MinKey() const override { return min_key_; }
  Key MaxKey() const override { return max_key_; }
  const LearnedIndex* index() const override { return nullptr; }
  Status RetrainIndex(IndexType, const IndexConfig&) override {
    return Status::NotSupported("block tables use fence-pointer blocks");
  }
  size_t IndexMemoryUsage() const override;
  size_t FilterMemoryUsage() const override { return bloom_data_.capacity(); }
  Status ReadAllKeys(std::vector<Key>* keys) override;

 private:
  friend class BlockTableIterator;

  explicit BlockTableReader(const TableOptions& options) : options_(options) {}

  /// Index of the first block whose last key >= key (blocks_.size() if
  /// past the end).
  size_t FindBlock(Key key) const;
  /// Reads (and checksum-verifies) one block, consulting the block cache
  /// first when configured — the cache stores the verified payload keyed
  /// by the block's file offset, so hits skip both the pread and the crc.
  Status ReadBlock(size_t block_idx, std::string* contents,
                   Stats* stats = nullptr, bool fill_cache = true) const;

  struct BlockEntry {
    Key last_key;
    BlockHandle handle;
  };

  TableOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::vector<BlockEntry> blocks_;
  std::string bloom_data_;
  uint64_t count_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  uint32_t key_size_ = 0;
};

/// Parses the entries of one block payload into (key, tag, value) tuples.
/// Exposed for the iterator and for tests.
class BlockParser {
 public:
  BlockParser(const std::string* contents, uint32_t key_size);

  bool Valid() const { return valid_; }
  void SeekToFirst();
  void Seek(Key target);  // first entry with key >= target
  void Next();

  Key key() const { return key_; }
  uint64_t tag() const { return tag_; }
  Slice value() const { return value_; }
  Status status() const { return status_; }

 private:
  bool ParseCurrent();

  const std::string* contents_;
  const uint32_t key_size_;
  size_t data_end_ = 0;      // payload bytes before the restart array
  size_t num_restarts_ = 0;
  size_t current_ = 0;       // offset of the current entry
  size_t next_ = 0;          // offset of the next entry
  std::string key_bytes_;    // reconstructed key (prefix-compressed)
  Key key_ = 0;
  uint64_t tag_ = 0;
  Slice value_;
  bool valid_ = false;
  Status status_;

  uint32_t RestartPoint(size_t i) const;
};

}  // namespace lilsm

#endif  // LILSM_TABLE_BLOCK_TABLE_H_
