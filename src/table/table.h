// Abstract table interfaces. Two on-disk formats implement them:
//
//  * SegmentedTable — the paper's LearnedIndexTable: fixed-size entries,
//    a pluggable serialized learned index, bloom filter, CRC footer.
//  * BlockTable — the classic LevelDB-style format (prefix-compressed
//    blocks indexed by per-block fence pointers), kept as the legacy
//    baseline substrate and as a correctness cross-check.
//
// Entries carry a `tag` = (sequence << 8) | ValueType, exactly the LevelDB
// internal-key trailer; user keys within one table are unique and strictly
// increasing, which is what allows learned indexes to replace fence
// pointers without layout changes (paper Section 2.2).
#ifndef LILSM_TABLE_TABLE_H_
#define LILSM_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "index/index.h"
#include "table/format.h"
#include "util/env.h"
#include "util/lru_cache.h"
#include "util/stats.h"

namespace lilsm {

enum class TableFormat : uint8_t {
  kSegmented = 0,  // the paper's LearnedIndexTable
  kBlocked = 1,    // classic LevelDB block format
};

/// Options governing how tables are written and read.
struct TableOptions {
  Env* env = nullptr;         // required
  Stats* stats = nullptr;     // optional instrumentation sink
  TableFormat format = TableFormat::kSegmented;

  /// Entry geometry for the segmented format (paper: 24-byte keys,
  /// 1000-byte values). Values must have exactly value_size bytes.
  uint32_t key_size = 24;
  uint32_t value_size = 1000;

  int bloom_bits_per_key = 10;

  IndexType index_type = IndexType::kPGM;
  IndexConfig index_config;

  /// Alignment unit for segment fetches.
  uint32_t io_block_size = static_cast<uint32_t>(kIoBlockSize);

  /// Shared block cache consulted before any Env read of table data
  /// (null = off, the paper-reproduction path: every fetch is a device
  /// I/O). Requires cache_file_number to be unique per open file; the
  /// TableCache stamps it when opening readers.
  std::shared_ptr<BlockCache> block_cache;
  /// Cache key namespace for this file's blocks. Only meaningful when
  /// block_cache is set; files opened outside the TableCache leave it 0
  /// and must not share a cache.
  uint64_t cache_file_number = 0;

  uint32_t entry_size() const { return key_size + 8 + value_size; }
};

/// Iterator over a table's entries in key order.
class TableIterator {
 public:
  virtual ~TableIterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with user key >= target.
  virtual void Seek(Key target) = 0;
  virtual void Next() = 0;

  virtual Key key() const = 0;
  virtual uint64_t tag() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

/// Opaque per-run state carried from PrepareMultiGet to FinishMultiGet:
/// each reader derives its own holding the key plan, span buffers, and the
/// ReadRequests it registered with the batch. Destroying a pending object
/// whose batch has not been waited is illegal (requests reference its
/// buffers).
class PendingMultiGet {
 public:
  virtual ~PendingMultiGet() = default;
};

class TableReader {
 public:
  virtual ~TableReader() = default;

  /// Point lookup. On hit sets *found=true, *tag and *value; a bloom
  /// negative or absent key sets *found=false with OK status. `stats`
  /// (when non-null) receives this call's instrumentation instead of the
  /// table's configured sink — the DB threads ReadOptions::stats here.
  /// `fill_cache` = false serves from the block cache but does not
  /// populate it on a miss (ReadOptions::fill_cache).
  virtual Status Get(Key key, std::string* value, uint64_t* tag, bool* found,
                     Stats* stats = nullptr, bool fill_cache = true) = 0;

  /// Point lookup with externally supplied position bounds (inclusive
  /// entry indexes), used by level-granularity models that predict across
  /// a whole level instead of per file. Formats without positional entries
  /// return NotSupported.
  virtual Status GetWithBounds(Key /*key*/, size_t /*lo*/, size_t /*hi*/,
                               std::string* /*value*/, uint64_t* /*tag*/,
                               bool* /*found*/, Stats* /*stats*/ = nullptr,
                               bool /*fill_cache*/ = true) {
    return Status::NotSupported("GetWithBounds");
  }

  /// Batched point lookup over ascending (not necessarily distinct) keys.
  /// For each keys[i]: on a hit sets founds[i]=true plus tags[i] and
  /// values[i]; otherwise founds[i]=false. `bounds_lo`/`bounds_hi` (both
  /// null or both non-null, one inclusive entry range per key) carry the
  /// predictions of a level-granularity model; formats without positional
  /// entries must be called with null bounds. The base implementation
  /// loops Get/GetWithBounds; the segmented format overrides it to reuse
  /// the fetched I/O block across a run of keys, consulting the bloom
  /// filter and learned index only for keys the buffered block cannot
  /// answer.
  virtual Status MultiGet(std::span<const Key> keys, const size_t* bounds_lo,
                          const size_t* bounds_hi, std::string* values,
                          uint64_t* tags, bool* founds, Stats* stats,
                          bool fill_cache = true);

  /// Async MultiGet, phase 1: plans the same lookup MultiGet would run,
  /// serves what the block cache can answer immediately, and registers one
  /// ReadRequest per missing span with `batch` instead of reading. The
  /// caller Wait()s the batch (typically after preparing several runs so
  /// their device reads overlap), then calls FinishMultiGet. Semantics
  /// (keys ascending, optional level-model bounds, fill_cache) match
  /// MultiGet; results are bit-identical to the synchronous path. The
  /// base returns NotSupported — callers fall back to MultiGet per run.
  virtual Status PrepareMultiGet(std::span<const Key> /*keys*/,
                                 const size_t* /*bounds_lo*/,
                                 const size_t* /*bounds_hi*/,
                                 ReadBatch* /*batch*/,
                                 std::unique_ptr<PendingMultiGet>* /*pending*/,
                                 Stats* /*stats*/, bool /*fill_cache*/ = true) {
    return Status::NotSupported("PrepareMultiGet");
  }

  /// Async MultiGet, phase 2 (after the batch's Wait): searches the
  /// fetched spans, fills values/tags/founds exactly like MultiGet, and
  /// inserts cold blocks into the block cache under the fill_cache given
  /// to PrepareMultiGet.
  virtual Status FinishMultiGet(PendingMultiGet* /*pending*/,
                                std::string* /*values*/, uint64_t* /*tags*/,
                                bool* /*founds*/, Stats* /*stats*/) {
    return Status::NotSupported("FinishMultiGet");
  }

  /// `fill_cache` = false keeps the iterator's block fetches from
  /// populating the block cache (scans and compaction inputs must not
  /// evict the point-lookup hot set); cache hits are still served.
  /// `readahead_blocks` > 0 makes the iterator prefetch that many io
  /// blocks past its cursor through Env::NewReadBatch, so sequential
  /// scans overlap their device reads (0 = today's synchronous behavior).
  virtual std::unique_ptr<TableIterator> NewIterator(
      bool fill_cache = true, size_t readahead_blocks = 0) = 0;

  virtual uint64_t NumEntries() const = 0;
  virtual Key MinKey() const = 0;
  virtual Key MaxKey() const = 0;

  /// The in-memory index consulted by Get/Seek.
  virtual const LearnedIndex* index() const = 0;

  /// Retrains the in-memory index with a new type/config by scanning the
  /// data region (the on-disk blob is untouched). This is what lets the
  /// benchmark sweep (index type x boundary) without rewriting data files.
  virtual Status RetrainIndex(IndexType type, const IndexConfig& config) = 0;

  /// Bytes of memory held by the lookup index alone (the paper's
  /// "Memory (B)" axis), excluding bloom filters.
  virtual size_t IndexMemoryUsage() const = 0;

  /// Bytes of memory held by the bloom filter.
  virtual size_t FilterMemoryUsage() const = 0;

  /// Reads every user key into *keys in order (used by level-granularity
  /// model training).
  virtual Status ReadAllKeys(std::vector<Key>* keys) = 0;

  /// Appends this table's trained leaf segments (positions local to the
  /// file) to *out with their training error bound in *epsilon — the
  /// ModelCatalog's zero-I/O stitch input. False when the format keeps no
  /// positional learned index (BlockTable) or the index type is not
  /// segment-based; callers fall back to ReadAllKeys.
  virtual bool ExportIndexSegments(std::vector<LinearSegment>* /*out*/,
                                   uint32_t* /*epsilon*/) {
    return false;
  }
};

class TableBuilder {
 public:
  virtual ~TableBuilder() = default;

  /// Adds an entry; keys must arrive strictly increasing.
  virtual Status Add(Key key, uint64_t tag, const Slice& value) = 0;

  /// Trains the index over the added keys, writes filter/index/meta blocks
  /// and the footer, and syncs. After Finish the builder is exhausted.
  virtual Status Finish() = 0;

  /// Abandons the file contents (caller removes the file).
  virtual void Abandon() = 0;

  virtual uint64_t NumEntries() const = 0;
  /// Bytes of file data written so far (data region only until Finish).
  virtual uint64_t FileSize() const = 0;
};

/// Factory helpers dispatching on options.format.
Status NewTableBuilder(const TableOptions& options, const std::string& fname,
                       std::unique_ptr<TableBuilder>* builder);
Status OpenTable(const TableOptions& options, const std::string& fname,
                 std::unique_ptr<TableReader>* reader);

}  // namespace lilsm

#endif  // LILSM_TABLE_TABLE_H_
