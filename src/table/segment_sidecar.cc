#include "table/segment_sidecar.h"

#include <memory>

#include "index/segment_io.h"
#include "table/format.h"
#include "util/coding.h"

namespace lilsm {

void EncodeSegmentSidecar(const SegmentSidecar& sidecar, std::string* dst) {
  PutVarint32(dst, sidecar.version);
  PutVarint32(dst, static_cast<uint32_t>(sidecar.index_type));
  PutVarint32(dst, sidecar.epsilon);
  PutVarint64(dst, sidecar.entries);
  EncodeSegments(sidecar.segments, dst);
}

Status DecodeSegmentSidecar(Slice* input, SegmentSidecar* out) {
  uint32_t version = 0;
  uint32_t type = 0;
  if (!GetVarint32(input, &version)) {
    return Status::Corruption("segment sidecar: bad version");
  }
  if (version != kSegmentSidecarVersion) {
    return Status::Corruption("segment sidecar: unsupported version");
  }
  if (!GetVarint32(input, &type) || !GetVarint32(input, &out->epsilon) ||
      !GetVarint64(input, &out->entries)) {
    return Status::Corruption("segment sidecar: truncated header");
  }
  out->version = version;
  out->index_type = static_cast<IndexType>(type);
  return DecodeSegments(input, &out->segments);
}

Status ReadSegmentSidecar(Env* env, const std::string& fname,
                          SegmentSidecar* out) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  uint64_t file_size = 0;
  s = env->GetFileSize(fname, &file_size);
  if (!s.ok()) return s;
  Footer footer;
  s = ReadFooter(file.get(), file_size, &footer);
  if (!s.ok()) return s;
  if (footer.segments_handle.size == 0) {
    return Status::NotFound(fname, "table has no segment sidecar");
  }
  if (footer.segments_handle.offset + footer.segments_handle.size >
      file_size) {
    return Status::Corruption("segment sidecar: handle out of bounds");
  }
  std::string payload;
  s = ReadChecksummedBlock(file.get(), footer.segments_handle, &payload);
  if (!s.ok()) return s;
  Slice input(payload);
  return DecodeSegmentSidecar(&input, out);
}

}  // namespace lilsm
