#include "table/segmented_table.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "table/segment_sidecar.h"

namespace lilsm {

namespace {

/// Meta block payload: geometry and key range of the table.
struct MetaBlock {
  uint32_t key_size = 0;
  uint32_t value_size = 0;
  uint64_t count = 0;
  Key min_key = 0;
  Key max_key = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, 1);  // format version
    PutVarint32(dst, key_size);
    PutVarint32(dst, value_size);
    PutVarint64(dst, count);
    PutFixed64(dst, min_key);
    PutFixed64(dst, max_key);
  }

  Status DecodeFrom(Slice* input) {
    uint32_t version = 0;
    if (!GetVarint32(input, &version) || version != 1 ||
        !GetVarint32(input, &key_size) || !GetVarint32(input, &value_size) ||
        !GetVarint64(input, &count) || !GetFixed64(input, &min_key) ||
        !GetFixed64(input, &max_key) || key_size < 8) {
      return Status::Corruption("segmented table: bad meta block");
    }
    return Status::OK();
  }
};

/// Bloom keys are the 8-byte little-endian user key.
Slice BloomKey(Key key, char* buf) {
  EncodeFixed64(buf, key);
  return Slice(buf, 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

SegmentedTableBuilder::SegmentedTableBuilder(const TableOptions& options,
                                             const std::string& fname)
    : options_(options), bloom_(options.bloom_bits_per_key) {
  assert(options_.env != nullptr);
  status_ = options_.env->NewWritableFile(fname, &file_);
  entry_buf_.resize(options_.entry_size());
}

SegmentedTableBuilder::~SegmentedTableBuilder() {
  if (!finished_ && file_ != nullptr) {
    file_->Close();
  }
}

Status SegmentedTableBuilder::Add(Key key, uint64_t tag, const Slice& value) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Status::InvalidArgument("builder already finished");
  }
  if (!keys_.empty() && key <= keys_.back()) {
    status_ = Status::InvalidArgument("keys must be strictly increasing");
    return status_;
  }
  // Tombstones (tag type byte 0 = deletion) carry no value; their slot is
  // zero-padded so the fixed entry geometry holds.
  const bool is_tombstone = (tag & 0xff) == 0;
  if (value.size() != options_.value_size &&
      !(is_tombstone && value.empty())) {
    status_ = Status::InvalidArgument(
        "segmented tables require fixed-size values");
    return status_;
  }

  char* dst = entry_buf_.data();
  EncodeUserKey(key, options_.key_size, dst);
  EncodeFixed64(dst + options_.key_size, tag);
  std::memcpy(dst + options_.key_size + 8, value.data(), value.size());
  if (value.size() < options_.value_size) {
    std::memset(dst + options_.key_size + 8 + value.size(), 0,
                options_.value_size - value.size());
  }
  status_ = file_->Append(Slice(entry_buf_.data(), entry_buf_.size()));
  if (!status_.ok()) return status_;

  keys_.push_back(key);
  char bloom_buf[8];
  bloom_.AddKey(BloomKey(key, bloom_buf));
  offset_ += entry_buf_.size();
  return Status::OK();
}

Status SegmentedTableBuilder::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return Status::InvalidArgument("builder already finished");
  finished_ = true;

  Stats* stats = options_.stats;
  Env* env = options_.env;

  // Train the learned index over the written keys (paper: the training
  // step added to every flush/compaction, measured as kCompactTrain).
  std::unique_ptr<LearnedIndex> index = CreateIndex(options_.index_type);
  {
    ScopedTimer timer(stats, Timer::kCompactTrain, env);
    status_ = index->Build(keys_.data(), keys_.size(), options_.index_config);
  }
  if (!status_.ok()) return status_;
  if (stats != nullptr) stats->Add(Counter::kModelsTrained);

  Footer footer;

  std::string bloom_block;
  bloom_.Finish(&bloom_block);
  status_ = WriteChecksummedBlock(file_.get(), offset_, bloom_block,
                                  &footer.bloom_handle);
  if (!status_.ok()) return status_;
  offset_ += footer.bloom_handle.size;

  // Serialize and write the model (kCompactWriteModel in Figure 9's
  // breakdown).
  {
    ScopedTimer timer(stats, Timer::kCompactWriteModel, env);
    std::string index_blob;
    EncodeIndexWithType(*index, &index_blob);
    status_ = WriteChecksummedBlock(file_.get(), offset_, index_blob,
                                    &footer.index_handle);
    if (!status_.ok()) return status_;
    offset_ += footer.index_handle.size;
  }

  // Model sidecar: the index's leaf segments in the ModelCatalog's stitch
  // format, so a restart rebuilds level models from two preads per file
  // instead of a reader open or a key scan. Index types that cannot
  // export segments write none (zero handle).
  {
    SegmentSidecar sidecar;
    sidecar.index_type = options_.index_type;
    sidecar.entries = keys_.size();
    if (index->ExportSegments(&sidecar.segments, &sidecar.epsilon)) {
      std::string sidecar_block;
      EncodeSegmentSidecar(sidecar, &sidecar_block);
      status_ = WriteChecksummedBlock(file_.get(), offset_, sidecar_block,
                                      &footer.segments_handle);
      if (!status_.ok()) return status_;
      offset_ += footer.segments_handle.size;
    }
  }

  MetaBlock meta;
  meta.key_size = options_.key_size;
  meta.value_size = options_.value_size;
  meta.count = keys_.size();
  meta.min_key = keys_.empty() ? 0 : keys_.front();
  meta.max_key = keys_.empty() ? 0 : keys_.back();
  std::string meta_block;
  meta.EncodeTo(&meta_block);
  status_ = WriteChecksummedBlock(file_.get(), offset_, meta_block,
                                  &footer.meta_handle);
  if (!status_.ok()) return status_;
  offset_ += footer.meta_handle.size;

  std::string footer_block;
  footer.EncodeTo(&footer_block);
  status_ = file_->Append(footer_block);
  if (!status_.ok()) return status_;
  offset_ += footer_block.size();

  status_ = file_->Sync();
  if (status_.ok()) status_ = file_->Close();
  file_.reset();
  return status_;
}

void SegmentedTableBuilder::Abandon() {
  finished_ = true;
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Status SegmentedTableReader::Open(const TableOptions& options,
                                  const std::string& fname,
                                  std::unique_ptr<TableReader>* reader) {
  std::unique_ptr<SegmentedTableReader> r(new SegmentedTableReader(options));
  Status s = options.env->NewRandomAccessFile(fname, &r->file_);
  if (!s.ok()) return s;
  uint64_t file_size = 0;
  s = options.env->GetFileSize(fname, &file_size);
  if (!s.ok()) return s;

  Footer footer;
  s = ReadFooter(r->file_.get(), file_size, &footer);
  if (!s.ok()) return s;

  std::string meta_block;
  s = ReadChecksummedBlock(r->file_.get(), footer.meta_handle, &meta_block);
  if (!s.ok()) return s;
  MetaBlock meta;
  Slice meta_input(meta_block);
  s = meta.DecodeFrom(&meta_input);
  if (!s.ok()) return s;

  r->key_size_ = meta.key_size;
  r->value_size_ = meta.value_size;
  r->entry_size_ = meta.key_size + 8 + meta.value_size;
  r->count_ = meta.count;
  r->min_key_ = meta.min_key;
  r->max_key_ = meta.max_key;
  r->data_size_ = meta.count * r->entry_size_;

  s = ReadChecksummedBlock(r->file_.get(), footer.bloom_handle,
                           &r->bloom_data_);
  if (!s.ok()) return s;

  std::string index_blob;
  s = ReadChecksummedBlock(r->file_.get(), footer.index_handle, &index_blob);
  if (!s.ok()) return s;
  Slice index_input(index_blob);
  s = DecodeIndexWithType(&index_input, &r->index_);
  if (!s.ok()) return s;
  if (r->index_->num_keys() != r->count_) {
    return Status::Corruption("segmented table: index/meta count mismatch");
  }

  *reader = std::move(r);
  return Status::OK();
}

Status SegmentedTableReader::FetchAlignedCached(uint64_t byte_lo,
                                                uint64_t byte_hi, char* dst,
                                                Stats* stats,
                                                bool fill_cache) {
  BlockCache* cache = options_.block_cache.get();
  const uint64_t block = options_.io_block_size;
  const uint64_t file_number = options_.cache_file_number;

  // Probe every constituent block first: an all-hit span is assembled
  // from memory with zero Env reads. Blocks are cached at their canonical
  // length min(block, data_size_ - offset) — byte_hi is either
  // block-aligned or data_size_ itself, so any span fetching a block
  // covers all of it and entries never straddle a cache boundary.
  const size_t num_blocks =
      static_cast<size_t>((byte_hi - byte_lo + block - 1) / block);
  // thread_local to amortize the allocation; cleared before every return
  // so an idle thread does not keep evicted blocks pinned past the
  // cache's charged budget.
  thread_local std::vector<BlockCache::BlockRef> refs;
  refs.assign(num_blocks, nullptr);
  size_t hit_count = 0;
  for (size_t i = 0; i < num_blocks; i++) {
    refs[i] = cache->Lookup(file_number, byte_lo + i * block);
    if (refs[i] != nullptr) hit_count++;
  }

  if (hit_count == num_blocks) {
    if (stats != nullptr) stats->Add(Counter::kBlockCacheHits, num_blocks);
    for (size_t i = 0; i < num_blocks; i++) {
      std::memcpy(dst + i * block, refs[i]->data(), refs[i]->size());
    }
    refs.clear();
    return Status::OK();
  }

  // At least one block is cold: fetch the whole span with the same single
  // aligned pread the uncached path issues, then cache the cold blocks.
  // The counters track what the device saw, not the probes: a partially
  // warm span's cached bytes are discarded in favor of the span pread,
  // so every one of its blocks counts as a miss (hit% then agrees with
  // the Env-read savings instead of overstating them). The disk-read
  // timer likewise wraps only this pread — a span served from memory
  // must not masquerade as device I/O in the stage breakdown.
  if (stats != nullptr) {
    stats->Add(Counter::kBlockCacheMisses, num_blocks);
  }
  const size_t len = static_cast<size_t>(byte_hi - byte_lo);
  Slice contents;
  Status s;
  {
    ScopedTimer timer(stats, Timer::kDiskRead, options_.env);
    s = file_->Read(byte_lo, len, &contents, dst);
  }
  if (!s.ok()) {
    refs.clear();
    return s;
  }
  if (contents.size() < len) {
    refs.clear();
    return Status::Corruption("segmented table: short data read");
  }
  if (contents.data() != dst) std::memmove(dst, contents.data(), len);
  if (fill_cache) {
    uint64_t evicted = 0;
    for (size_t i = 0; i < num_blocks; i++) {
      if (refs[i] != nullptr) continue;
      const uint64_t offset = byte_lo + i * block;
      const size_t block_len =
          static_cast<size_t>(std::min<uint64_t>(block, byte_hi - offset));
      evicted += cache->Insert(file_number, offset,
                               std::string(dst + i * block, block_len));
    }
    if (stats != nullptr && evicted > 0) {
      stats->Add(Counter::kBlockCacheEvictions, evicted);
    }
  }
  refs.clear();
  return Status::OK();
}

Status SegmentedTableReader::ReadEntryRange(size_t lo, size_t hi,
                                            std::string* scratch,
                                            const char** base, size_t* first,
                                            size_t* last, Stats* stats,
                                            bool fill_cache) {
  assert(lo <= hi && hi < count_);
  // Release-mode guard: a prediction from a corrupt or stale index blob
  // must clamp to the entry array instead of reading past the data region.
  if (hi >= count_) hi = count_ - 1;
  if (lo > hi) lo = hi;
  if (stats == nullptr) stats = options_.stats;
  const uint64_t block = options_.io_block_size;
  uint64_t byte_lo = static_cast<uint64_t>(lo) * entry_size_;
  uint64_t byte_hi = static_cast<uint64_t>(hi + 1) * entry_size_;
  // Align the fetch to device blocks: this is the paper's unit of I/O
  // cost. The upper bound is clamped to the data region's end — on the
  // last segment of a table whose data section ends mid-block, the
  // aligned range would otherwise extend into the trailing bloom block
  // (and, were the data region the whole file, past end-of-file).
  byte_lo = (byte_lo / block) * block;
  byte_hi = std::min<uint64_t>(data_size_, ((byte_hi + block - 1) / block) * block);

  const size_t len = static_cast<size_t>(byte_hi - byte_lo);
  if (scratch->size() < len) scratch->resize(len);
  if (options_.block_cache != nullptr) {
    Status s =
        FetchAlignedCached(byte_lo, byte_hi, scratch->data(), stats,
                           fill_cache);
    if (!s.ok()) return s;
  } else {
    Slice contents;
    Status s = file_->Read(byte_lo, len, &contents, scratch->data());
    if (!s.ok()) return s;
    if (contents.size() < len) {
      return Status::Corruption("segmented table: short data read");
    }
    if (contents.data() != scratch->data()) {
      std::memmove(scratch->data(), contents.data(), len);
    }
  }

  // First fully contained entry at or below `lo`.
  const size_t first_entry =
      static_cast<size_t>((byte_lo + entry_size_ - 1) / entry_size_);
  const size_t last_entry = static_cast<size_t>(byte_hi / entry_size_) - 1;
  assert(first_entry <= lo && last_entry >= hi);
  *base = scratch->data() + (first_entry * entry_size_ - byte_lo);
  *first = first_entry;
  *last = std::min<size_t>(last_entry, count_ - 1);
  return Status::OK();
}

Status SegmentedTableReader::ReadEntryKey(size_t pos, Key* key) {
  char buf[64];
  assert(key_size_ <= sizeof(buf));
  Slice contents;
  Status s = file_->Read(static_cast<uint64_t>(pos) * entry_size_, key_size_,
                         &contents, buf);
  if (!s.ok()) return s;
  if (contents.size() < 8) {
    return Status::Corruption("segmented table: short key read");
  }
  *key = DecodeUserKey(contents.data());
  return Status::OK();
}

Status SegmentedTableReader::FindLowerBound(Key target, size_t* pos) {
  size_t lo = 0, hi = count_;  // first entry with key >= target in [lo, hi]
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    Key key = 0;
    Status s = ReadEntryKey(mid, &key);
    if (!s.ok()) return s;
    if (key < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *pos = lo;
  return Status::OK();
}

bool SegmentedTableReader::MayContain(Key key, Stats* stats) {
  if (stats == nullptr) stats = options_.stats;
  ScopedTimer timer(stats, Timer::kBloomCheck, options_.env);
  char bloom_buf[8];
  BloomFilterReader bloom{Slice(bloom_data_)};
  if (!bloom.KeyMayMatch(BloomKey(key, bloom_buf))) {
    if (stats != nullptr) stats->Add(Counter::kBloomNegatives);
    return false;
  }
  return true;
}

Status SegmentedTableReader::SearchRange(Key key, size_t range_lo,
                                         size_t range_hi, std::string* value,
                                         uint64_t* tag, bool* found,
                                         Stats* stats, bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  Env* env = options_.env;
  *found = false;

  // Per-thread scratch instead of a reader member: concurrent point
  // lookups on the same (cached, shared) reader must not share a buffer.
  // Shared across readers on a thread, it amortizes to one allocation at
  // the largest segment size, same as the old per-reader member.
  thread_local std::string get_scratch;

  const char* base = nullptr;
  size_t first = 0, last = 0;
  {
    // With a block cache the fetch may be served from memory, so the
    // disk-read timer moves inside FetchAlignedCached's pread branch (a
    // null Stats* here disables this outer timer); uncached, this outer
    // scope times the single pread exactly as it always did.
    ScopedTimer timer(options_.block_cache == nullptr ? stats : nullptr,
                      Timer::kDiskRead, env);
    Status s = ReadEntryRange(range_lo, range_hi, &get_scratch, &base,
                              &first, &last, stats, fill_cache);
    if (!s.ok()) return s;
    if (stats != nullptr) stats->Add(Counter::kSegmentsFetched);
  }

  {
    ScopedTimer timer(stats, Timer::kBinarySearch, env);
    *found = SearchBuffer(base, first, range_lo, range_hi, key, value, tag);
  }
  if (stats != nullptr) {
    stats->Add(*found ? Counter::kBloomTruePositive
                      : Counter::kBloomFalsePositive);
  }
  return Status::OK();
}

Status SegmentedTableReader::Get(Key key, std::string* value, uint64_t* tag,
                                 bool* found, Stats* stats, bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  *found = false;
  if (count_ == 0 || key < min_key_ || key > max_key_) {
    return Status::OK();
  }
  if (!MayContain(key, stats)) return Status::OK();

  PredictResult prediction;
  {
    ScopedTimer timer(stats, Timer::kIndexPredict, options_.env);
    prediction = index_->Predict(key);
  }
  return SearchRange(key, prediction.lo, prediction.hi, value, tag, found,
                     stats, fill_cache);
}

Status SegmentedTableReader::GetWithBounds(Key key, size_t lo, size_t hi,
                                           std::string* value, uint64_t* tag,
                                           bool* found, Stats* stats,
                                           bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  *found = false;
  if (count_ == 0 || key < min_key_ || key > max_key_) {
    return Status::OK();
  }
  if (hi >= count_) hi = count_ - 1;
  if (lo > hi) lo = hi;
  if (!MayContain(key, stats)) return Status::OK();
  return SearchRange(key, lo, hi, value, tag, found, stats, fill_cache);
}

bool SegmentedTableReader::SearchBuffer(const char* base, size_t first,
                                        size_t lo, size_t hi, Key key,
                                        std::string* value,
                                        uint64_t* tag) const {
  // Lower bound over the inclusive entry range [lo, hi].
  size_t l = lo, h = hi + 1;
  while (l < h) {
    const size_t mid = l + (h - l) / 2;
    if (EntryKeyInBuffer(base, first, mid) < key) {
      l = mid + 1;
    } else {
      h = mid;
    }
  }
  if (l > hi || EntryKeyInBuffer(base, first, l) != key) return false;
  const char* entry = base + (l - first) * entry_size_;
  *tag = DecodeFixed64(entry + key_size_);
  value->assign(entry + key_size_ + 8, value_size_);
  return true;
}

Status SegmentedTableReader::MultiGet(std::span<const Key> keys,
                                      const size_t* bounds_lo,
                                      const size_t* bounds_hi,
                                      std::string* values, uint64_t* tags,
                                      bool* founds, Stats* stats,
                                      bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  Env* env = options_.env;

  // Separate from Get's scratch: a batch interleaved with point lookups
  // (level-model fallbacks) must keep its reusable block intact.
  thread_local std::string batch_scratch;
  const char* base = nullptr;
  size_t buf_first = 0, buf_last = 0;
  bool buffered = false;
  Key buf_first_key = 0, buf_last_key = 0;

  for (size_t i = 0; i < keys.size(); i++) {
    const Key key = keys[i];
    founds[i] = false;
    if (count_ == 0 || key < min_key_ || key > max_key_) continue;

    // A key inside the buffered block's key range is answered exactly from
    // memory: the block holds every entry between its first and last key,
    // so absence here is absence from the table — no bloom probe, no
    // index descent, no I/O.
    if (buffered && key >= buf_first_key && key <= buf_last_key) {
      ScopedTimer timer(stats, Timer::kBinarySearch, env);
      founds[i] =
          SearchBuffer(base, buf_first, buf_first, buf_last, key, &values[i],
                       &tags[i]);
      continue;
    }

    if (!MayContain(key, stats)) continue;

    size_t lo, hi;
    if (bounds_lo != nullptr) {
      lo = bounds_lo[i];
      hi = bounds_hi[i];
      if (hi >= count_) hi = count_ - 1;
      if (lo > hi) lo = hi;
    } else {
      ScopedTimer timer(stats, Timer::kIndexPredict, env);
      const PredictResult prediction = index_->Predict(key);
      lo = prediction.lo;
      hi = prediction.hi;
    }

    {
      // Same timer arrangement as SearchRange: cached fetches time only
      // their actual pread (inside FetchAlignedCached).
      ScopedTimer timer(options_.block_cache == nullptr ? stats : nullptr,
                        Timer::kDiskRead, env);
      Status s = ReadEntryRange(lo, hi, &batch_scratch, &base, &buf_first,
                                &buf_last, stats, fill_cache);
      if (!s.ok()) return s;
      if (stats != nullptr) stats->Add(Counter::kSegmentsFetched);
    }
    buffered = true;
    buf_first_key = EntryKeyInBuffer(base, buf_first, buf_first);
    buf_last_key = EntryKeyInBuffer(base, buf_first, buf_last);

    {
      ScopedTimer timer(stats, Timer::kBinarySearch, env);
      founds[i] =
          SearchBuffer(base, buf_first, lo, hi, key, &values[i], &tags[i]);
    }
    if (stats != nullptr) {
      stats->Add(founds[i] ? Counter::kBloomTruePositive
                           : Counter::kBloomFalsePositive);
    }
  }
  return Status::OK();
}

namespace {

/// Plan state between PrepareMultiGet and FinishMultiGet: the keys that
/// survived range/bloom screening, their search bounds, and the merged
/// aligned byte spans backing them (each span either assembled from cache
/// hits at Prepare time or registered as one ReadRequest).
class SegmentedPendingMultiGet final : public PendingMultiGet {
 public:
  struct Span {
    uint64_t byte_lo = 0;
    uint64_t byte_hi = 0;
    std::string buffer;            // byte_hi - byte_lo bytes
    bool needs_read = false;       // a ReadRequest was registered
    std::vector<bool> block_hit;   // cache probe result per io block
    ReadRequest req;
  };
  struct KeyPlan {
    int span = -1;  // -1: resolved at Prepare (out of range / bloom miss)
    size_t lo = 0;
    size_t hi = 0;  // inclusive entry bounds for the buffer search
  };

  std::vector<Key> keys;
  std::vector<KeyPlan> plans;
  std::vector<Span> spans;
  bool fill_cache = true;
};

}  // namespace

Status SegmentedTableReader::PrepareMultiGet(
    std::span<const Key> keys, const size_t* bounds_lo,
    const size_t* bounds_hi, ReadBatch* batch,
    std::unique_ptr<PendingMultiGet>* pending, Stats* stats, bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  Env* env = options_.env;
  auto p = std::make_unique<SegmentedPendingMultiGet>();
  p->keys.assign(keys.begin(), keys.end());
  p->plans.resize(keys.size());
  p->fill_cache = fill_cache;
  const uint64_t block = options_.io_block_size;

  // Pass 1: screen and bound every key, merging the per-key aligned byte
  // ranges into spans. Keys arrive ascending, so model predictions are
  // (nearly) monotone and consecutive ranges coalesce into the same single
  // I/Os the synchronous path's buffered-block reuse achieves.
  for (size_t i = 0; i < keys.size(); i++) {
    const Key key = keys[i];
    if (count_ == 0 || key < min_key_ || key > max_key_) continue;
    if (!MayContain(key, stats)) continue;
    size_t lo, hi;
    if (bounds_lo != nullptr) {
      lo = bounds_lo[i];
      hi = bounds_hi[i];
      if (hi >= count_) hi = count_ - 1;
      if (lo > hi) lo = hi;
    } else {
      ScopedTimer timer(stats, Timer::kIndexPredict, env);
      const PredictResult prediction = index_->Predict(key);
      lo = prediction.lo;
      hi = prediction.hi;
      if (hi >= count_) hi = count_ - 1;
      if (lo > hi) lo = hi;
    }
    uint64_t byte_lo = (static_cast<uint64_t>(lo) * entry_size_ / block) * block;
    uint64_t byte_hi = std::min<uint64_t>(
        data_size_,
        ((static_cast<uint64_t>(hi + 1) * entry_size_ + block - 1) / block) *
            block);
    if (!p->spans.empty() && byte_lo <= p->spans.back().byte_hi &&
        byte_lo >= p->spans.back().byte_lo) {
      // Overlaps or abuts the previous span: extend it forward.
      SegmentedPendingMultiGet::Span& prev = p->spans.back();
      if (byte_hi > prev.byte_hi) prev.byte_hi = byte_hi;
    } else {
      SegmentedPendingMultiGet::Span span;
      span.byte_lo = byte_lo;
      span.byte_hi = byte_hi;
      p->spans.push_back(std::move(span));
    }
    p->plans[i].span = static_cast<int>(p->spans.size()) - 1;
    p->plans[i].lo = lo;
    p->plans[i].hi = hi;
  }

  // Pass 2: for each span, serve what the block cache holds; anything
  // colder becomes one ReadRequest on the caller's batch. The span list
  // is final here, so the registered request pointers stay stable.
  BlockCache* cache = options_.block_cache.get();
  for (SegmentedPendingMultiGet::Span& span : p->spans) {
    const size_t len = static_cast<size_t>(span.byte_hi - span.byte_lo);
    span.buffer.resize(len);
    const size_t num_blocks =
        static_cast<size_t>((span.byte_hi - span.byte_lo + block - 1) / block);
    if (cache != nullptr) {
      span.block_hit.assign(num_blocks, false);
      size_t hit_count = 0;
      std::vector<BlockCache::BlockRef> refs(num_blocks);
      for (size_t b = 0; b < num_blocks; b++) {
        refs[b] = cache->Lookup(options_.cache_file_number,
                                span.byte_lo + b * block);
        if (refs[b] != nullptr) {
          span.block_hit[b] = true;
          hit_count++;
        }
      }
      if (hit_count == num_blocks) {
        // Fully warm: assemble from memory now — this span never touches
        // the Env (same zero-I/O guarantee as FetchAlignedCached).
        if (stats != nullptr) {
          stats->Add(Counter::kBlockCacheHits, num_blocks);
        }
        for (size_t b = 0; b < num_blocks; b++) {
          std::memcpy(span.buffer.data() + b * block, refs[b]->data(),
                      refs[b]->size());
        }
        continue;
      }
      // Partially warm spans refetch whole, exactly like the synchronous
      // cached path: every block counts as a miss so hit% stays in
      // agreement with the Env-read savings.
      if (stats != nullptr) {
        stats->Add(Counter::kBlockCacheMisses, num_blocks);
      }
    }
    span.needs_read = true;
    span.req.file = file_.get();
    span.req.offset = span.byte_lo;
    span.req.n = len;
    span.req.scratch = span.buffer.data();
    batch->Add(&span.req);
    if (stats != nullptr) stats->Add(Counter::kAsyncReads);
  }

  *pending = std::move(p);
  return Status::OK();
}

Status SegmentedTableReader::FinishMultiGet(PendingMultiGet* pending,
                                            std::string* values,
                                            uint64_t* tags, bool* founds,
                                            Stats* stats) {
  if (stats == nullptr) stats = options_.stats;
  Env* env = options_.env;
  auto* p = static_cast<SegmentedPendingMultiGet*>(pending);
  const uint64_t block = options_.io_block_size;
  BlockCache* cache = options_.block_cache.get();

  // Check the reaped reads and insert the cold blocks under the Prepare
  // call's fill_cache, mirroring FetchAlignedCached's charging rules.
  for (SegmentedPendingMultiGet::Span& span : p->spans) {
    if (stats != nullptr) stats->Add(Counter::kSegmentsFetched);
    if (!span.needs_read) continue;
    if (!span.req.status.ok()) return span.req.status;
    const size_t len = static_cast<size_t>(span.byte_hi - span.byte_lo);
    if (span.req.result.size() < len) {
      return Status::Corruption("segmented table: short data read");
    }
    if (span.req.result.data() != span.buffer.data()) {
      std::memmove(span.buffer.data(), span.req.result.data(), len);
    }
    if (cache != nullptr && p->fill_cache) {
      uint64_t evicted = 0;
      const size_t num_blocks =
          static_cast<size_t>((span.byte_hi - span.byte_lo + block - 1) /
                              block);
      for (size_t b = 0; b < num_blocks; b++) {
        if (span.block_hit[b]) continue;
        const uint64_t offset = span.byte_lo + b * block;
        const size_t block_len = static_cast<size_t>(
            std::min<uint64_t>(block, span.byte_hi - offset));
        evicted += cache->Insert(
            options_.cache_file_number, offset,
            std::string(span.buffer.data() + b * block, block_len));
      }
      if (stats != nullptr && evicted > 0) {
        stats->Add(Counter::kBlockCacheEvictions, evicted);
      }
    }
  }

  for (size_t i = 0; i < p->keys.size(); i++) {
    founds[i] = false;
    const SegmentedPendingMultiGet::KeyPlan& plan = p->plans[i];
    if (plan.span < 0) continue;
    const SegmentedPendingMultiGet::Span& span = p->spans[plan.span];
    const size_t first_entry =
        static_cast<size_t>((span.byte_lo + entry_size_ - 1) / entry_size_);
    const char* base =
        span.buffer.data() + (first_entry * entry_size_ - span.byte_lo);
    {
      ScopedTimer timer(stats, Timer::kBinarySearch, env);
      founds[i] = SearchBuffer(base, first_entry, plan.lo, plan.hi,
                               p->keys[i], &values[i], &tags[i]);
    }
    if (stats != nullptr) {
      stats->Add(founds[i] ? Counter::kBloomTruePositive
                           : Counter::kBloomFalsePositive);
    }
  }
  return Status::OK();
}

Status SegmentedTableReader::RetrainIndex(IndexType type,
                                          const IndexConfig& config) {
  std::vector<Key> keys;
  Status s = ReadAllKeys(&keys);
  if (!s.ok()) return s;
  std::unique_ptr<LearnedIndex> index = CreateIndex(type);
  {
    ScopedTimer timer(options_.stats, Timer::kCompactTrain, options_.env);
    s = index->Build(keys.data(), keys.size(), config);
  }
  if (!s.ok()) return s;
  index_ = std::move(index);
  return Status::OK();
}

size_t SegmentedTableReader::IndexMemoryUsage() const {
  return index_->MemoryUsage();
}

bool SegmentedTableReader::ExportIndexSegments(
    std::vector<LinearSegment>* out, uint32_t* epsilon) {
  // The in-memory index is trained over exactly the table's entry array
  // (Open verifies num_keys == count_), so its leaf segments predict
  // file-local entry positions — the stitch contract.
  return index_->ExportSegments(out, epsilon);
}

Status SegmentedTableReader::ReadAllKeys(std::vector<Key>* keys) {
  keys->clear();
  keys->reserve(count_);
  // Scan the data region in large sequential chunks.
  const size_t chunk_entries =
      std::max<size_t>(1, (1u << 20) / entry_size_);
  std::string scratch(chunk_entries * entry_size_, '\0');
  for (size_t start = 0; start < count_; start += chunk_entries) {
    const size_t n = std::min(chunk_entries, count_ - start);
    Slice contents;
    Status s = file_->Read(static_cast<uint64_t>(start) * entry_size_,
                           n * entry_size_, &contents, scratch.data());
    if (!s.ok()) return s;
    if (contents.size() < n * entry_size_) {
      return Status::Corruption("segmented table: short scan read");
    }
    for (size_t i = 0; i < n; i++) {
      keys->push_back(DecodeUserKey(contents.data() + i * entry_size_));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

/// Streams entries block by block: Seek uses the learned index like a point
/// lookup, then Next() advances inside the fetched block and fetches the
/// following I/O block when exhausted (the paper's range-lookup phase 2).
/// With readahead_blocks > 0, every window load also submits the next K io
/// blocks past the cursor through Env::NewReadBatch; subsequent windows
/// assemble from those completed prefetches instead of blocking reads.
class SegmentedTableIterator final : public TableIterator {
 public:
  SegmentedTableIterator(SegmentedTableReader* reader, bool fill_cache,
                         size_t readahead_blocks)
      : reader_(reader),
        fill_cache_(fill_cache),
        readahead_blocks_(readahead_blocks) {
    if (readahead_blocks_ > 0) {
      batch_ = reader_->options_.env->NewReadBatch(
          static_cast<int>(readahead_blocks_));
    }
  }

  ~SegmentedTableIterator() override {
    // Outstanding requests reference the inflight buffers: reap before
    // dropping them. Anything fetched but never served was wasted
    // readahead.
    if (batch_ != nullptr && !inflight_.empty()) {
      batch_->Wait();
    }
    uint64_t wasted = inflight_.size();
    for (const auto& [offset, rb] : ready_) {
      if (!rb.used) wasted++;
    }
    Stats* stats = reader_->options_.stats;
    if (stats != nullptr && wasted > 0) {
      stats->Add(Counter::kReadaheadWasted, wasted);
    }
  }

  bool Valid() const override {
    return status_.ok() && pos_ < reader_->count_;
  }

  void SeekToFirst() override {
    pos_ = 0;
    EnsureBuffered();
  }

  void Seek(Key target) override {
    if (reader_->count_ == 0) {
      pos_ = 0;
      return;
    }
    if (target <= reader_->min_key_) {
      SeekToFirst();
      return;
    }
    if (target > reader_->max_key_) {
      pos_ = reader_->count_;
      return;
    }

    PredictResult prediction;
    {
      ScopedTimer timer(reader_->options_.stats, Timer::kIndexPredict,
                        reader_->options_.env);
      prediction = reader_->index_->Predict(target);
    }
    // Clamp here, not just in ReadEntryRange: the window arithmetic below
    // indexes the fetched buffer with prediction.hi, so an out-of-range
    // prediction from a corrupt index blob must be pinned to the entry
    // array before it is used.
    if (prediction.hi >= reader_->count_) {
      prediction.hi = reader_->count_ - 1;
    }
    if (prediction.lo > prediction.hi) prediction.lo = prediction.hi;
    const char* base = nullptr;
    size_t first = 0, last = 0;
    status_ = reader_->ReadEntryRange(prediction.lo, prediction.hi, &buffer_,
                                      &base, &first, &last, nullptr,
                                      fill_cache_);
    if (!status_.ok()) return;
    buf_base_offset_ = static_cast<size_t>(base - buffer_.data());
    buf_first_ = first;
    buf_last_ = last;

    const Key range_first = reader_->EntryKeyInBuffer(base, first, prediction.lo);
    const Key range_last = reader_->EntryKeyInBuffer(base, first, prediction.hi);
    if ((target < range_first && prediction.lo != 0) ||
        (target > range_last && prediction.hi != reader_->count_ - 1)) {
      // The model window does not bracket this (absent) target; fall back
      // to an exact binary search over the file.
      size_t pos = 0;
      status_ = reader_->FindLowerBound(target, &pos);
      if (!status_.ok()) return;
      pos_ = pos;
      EnsureBuffered();
      return;
    }

    // Lower bound within [lo, hi].
    size_t lo = prediction.lo, hi = prediction.hi + 1;
    if (target > range_last) {
      lo = hi;  // insertion point just past the window (hi == count_ - 1)
    } else {
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (reader_->EntryKeyInBuffer(base, first, mid) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
    }
    pos_ = lo;
    EnsureBuffered();
    MaybeIssueReadahead();
  }

  void Next() override {
    assert(Valid());
    pos_++;
    EnsureBuffered();
  }

  Key key() const override {
    assert(Valid());
    return DecodeUserKey(EntryPtr());
  }

  uint64_t tag() const override {
    assert(Valid());
    return DecodeFixed64(EntryPtr() + reader_->key_size_);
  }

  Slice value() const override {
    assert(Valid());
    return Slice(EntryPtr() + reader_->key_size_ + 8, reader_->value_size_);
  }

  Status status() const override { return status_; }

 private:
  const char* EntryPtr() const {
    return buffer_.data() + buf_base_offset_ +
           (pos_ - buf_first_) * reader_->entry_size_;
  }

  /// Fetches the I/O block containing pos_ if it is not already buffered:
  /// from completed prefetches when the whole window is ready, else with
  /// the usual synchronous ReadEntryRange. Either way the next readahead
  /// round is submitted afterwards.
  void EnsureBuffered() {
    if (!status_.ok() || pos_ >= reader_->count_) return;
    if (buf_last_ >= buf_first_ && pos_ >= buf_first_ && pos_ <= buf_last_ &&
        buf_last_ != kInvalid) {
      return;
    }
    if (readahead_blocks_ > 0) {
      Reap();
      if (ServeFromPrefetch()) {
        MaybeIssueReadahead();
        return;
      }
    }
    const char* base = nullptr;
    size_t first = 0, last = 0;
    status_ = reader_->ReadEntryRange(pos_, pos_, &buffer_, &base, &first,
                                      &last, nullptr, fill_cache_);
    if (!status_.ok()) return;
    buf_base_offset_ = static_cast<size_t>(base - buffer_.data());
    buf_first_ = first;
    buf_last_ = last;
    MaybeIssueReadahead();
  }

  /// Blocks on the outstanding prefetch batch and moves completed blocks
  /// into the ready map (and the block cache, under fill_cache). Failed
  /// prefetches are dropped: readahead is advisory, the demand read will
  /// retry synchronously and surface the error.
  void Reap() {
    if (inflight_.empty()) return;
    Stats* stats = reader_->options_.stats;
    {
      ScopedTimer timer(stats, Timer::kAsyncReap, reader_->options_.env);
      batch_->Wait();
    }
    if (stats != nullptr) stats->Add(Counter::kAsyncBatches);
    BlockCache* cache = reader_->options_.block_cache.get();
    uint64_t evicted = 0;
    for (std::unique_ptr<PrefetchBlock>& pb : inflight_) {
      if (!pb->req.status.ok() || pb->req.result.size() < pb->buf.size()) {
        continue;
      }
      if (pb->req.result.data() != pb->buf.data()) {
        std::memmove(pb->buf.data(), pb->req.result.data(), pb->buf.size());
      }
      if (cache != nullptr && fill_cache_) {
        evicted += cache->Insert(reader_->options_.cache_file_number,
                                 pb->offset, std::string(pb->buf));
      }
      ready_[pb->offset] = ReadyBlock{std::move(pb->buf), false};
    }
    if (stats != nullptr && evicted > 0) {
      stats->Add(Counter::kBlockCacheEvictions, evicted);
    }
    inflight_.clear();
  }

  /// Assembles the window covering pos_ from ready prefetched blocks.
  /// False when any constituent block is missing (the caller falls back
  /// to a synchronous read). Blocks fully behind the new window are
  /// pruned, counting never-served ones as wasted readahead.
  bool ServeFromPrefetch() {
    const uint64_t block = reader_->options_.io_block_size;
    const uint32_t entry = reader_->entry_size_;
    const uint64_t byte_lo =
        (static_cast<uint64_t>(pos_) * entry / block) * block;
    const uint64_t byte_hi = std::min<uint64_t>(
        reader_->data_size_,
        ((static_cast<uint64_t>(pos_ + 1) * entry + block - 1) / block) *
            block);
    const size_t num_blocks =
        static_cast<size_t>((byte_hi - byte_lo + block - 1) / block);
    for (size_t b = 0; b < num_blocks; b++) {
      if (ready_.find(byte_lo + b * block) == ready_.end()) return false;
    }
    const size_t len = static_cast<size_t>(byte_hi - byte_lo);
    if (buffer_.size() < len) buffer_.resize(len);
    Stats* stats = reader_->options_.stats;
    uint64_t hits = 0;
    for (size_t b = 0; b < num_blocks; b++) {
      ReadyBlock& rb = ready_[byte_lo + b * block];
      std::memcpy(buffer_.data() + b * block, rb.buf.data(), rb.buf.size());
      if (!rb.used) {
        rb.used = true;
        hits++;
      }
    }
    if (stats != nullptr && hits > 0) {
      stats->Add(Counter::kReadaheadHits, hits);
    }
    const size_t first_entry =
        static_cast<size_t>((byte_lo + entry - 1) / entry);
    const size_t last_entry = static_cast<size_t>(byte_hi / entry) - 1;
    buf_base_offset_ = static_cast<size_t>(first_entry * entry - byte_lo);
    buf_first_ = first_entry;
    buf_last_ = std::min<size_t>(last_entry, reader_->count_ - 1);
    // Prune blocks the forward scan can no longer use.
    uint64_t wasted = 0;
    for (auto it = ready_.begin(); it != ready_.end();) {
      if (it->first + block <= byte_lo) {
        if (!it->second.used) wasted++;
        it = ready_.erase(it);
      } else {
        ++it;
      }
    }
    if (stats != nullptr && wasted > 0) {
      stats->Add(Counter::kReadaheadWasted, wasted);
    }
    return true;
  }

  /// Submits up to readahead_blocks_ io blocks past the buffered window.
  /// The first candidate is the block holding entry buf_last_+1 — on a
  /// straddling entry that is the tail block of the current window, which
  /// the next window needs again.
  void MaybeIssueReadahead() {
    if (readahead_blocks_ == 0 || !status_.ok()) return;
    if (buf_last_ == kInvalid || buf_last_ + 1 >= reader_->count_) return;
    const uint64_t block = reader_->options_.io_block_size;
    const uint32_t entry = reader_->entry_size_;
    uint64_t next =
        (static_cast<uint64_t>(buf_last_ + 1) * entry / block) * block;
    Stats* stats = reader_->options_.stats;
    uint64_t submitted = 0;
    for (size_t k = 0; k < readahead_blocks_ && next < reader_->data_size_;
         k++, next += block) {
      if (ready_.find(next) != ready_.end()) continue;
      bool in_flight = false;
      for (const std::unique_ptr<PrefetchBlock>& pb : inflight_) {
        if (pb->offset == next) {
          in_flight = true;
          break;
        }
      }
      if (in_flight) continue;
      auto pb = std::make_unique<PrefetchBlock>();
      pb->offset = next;
      pb->buf.resize(static_cast<size_t>(
          std::min<uint64_t>(block, reader_->data_size_ - next)));
      pb->req.file = reader_->file_.get();
      pb->req.offset = next;
      pb->req.n = pb->buf.size();
      pb->req.scratch = pb->buf.data();
      batch_->Add(&pb->req);
      inflight_.push_back(std::move(pb));
      submitted++;
    }
    if (stats != nullptr && submitted > 0) {
      stats->Add(Counter::kAsyncReads, submitted);
    }
  }

  static constexpr size_t kInvalid = static_cast<size_t>(-1);

  struct PrefetchBlock {
    uint64_t offset = 0;
    std::string buf;
    ReadRequest req;
  };
  struct ReadyBlock {
    std::string buf;
    bool used = false;  // served into at least one window
  };

  SegmentedTableReader* const reader_;
  const bool fill_cache_;
  const size_t readahead_blocks_;
  std::unique_ptr<ReadBatch> batch_;
  std::vector<std::unique_ptr<PrefetchBlock>> inflight_;
  std::map<uint64_t, ReadyBlock> ready_;
  Status status_;
  std::string buffer_;
  size_t buf_base_offset_ = 0;
  size_t buf_first_ = 1;
  size_t buf_last_ = kInvalid;  // kInvalid => nothing buffered
  size_t pos_ = 0;
};

std::unique_ptr<TableIterator> SegmentedTableReader::NewIterator(
    bool fill_cache, size_t readahead_blocks) {
  return std::make_unique<SegmentedTableIterator>(this, fill_cache,
                                                  readahead_blocks);
}

}  // namespace lilsm
