#include "table/block_table.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

namespace lilsm {

namespace {

/// Block meta payload for the block format.
struct BlockMeta {
  uint32_t key_size = 0;
  uint64_t count = 0;
  Key min_key = 0;
  Key max_key = 0;
  uint64_t index_block_entries = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, 2);  // format version (1 = segmented)
    PutVarint32(dst, key_size);
    PutVarint64(dst, count);
    PutFixed64(dst, min_key);
    PutFixed64(dst, max_key);
    PutVarint64(dst, index_block_entries);
  }

  Status DecodeFrom(Slice* input) {
    uint32_t version = 0;
    if (!GetVarint32(input, &version) || version != 2 ||
        !GetVarint32(input, &key_size) || !GetVarint64(input, &count) ||
        !GetFixed64(input, &min_key) || !GetFixed64(input, &max_key) ||
        !GetVarint64(input, &index_block_entries) || key_size < 8) {
      return Status::Corruption("block table: bad meta block");
    }
    return Status::OK();
  }
};

Slice BloomKey(Key key, char* buf) {
  EncodeFixed64(buf, key);
  return Slice(buf, 8);
}

size_t SharedPrefix(const std::string& a, const char* b, size_t b_len) {
  const size_t limit = std::min(a.size(), b_len);
  size_t shared = 0;
  while (shared < limit && a[shared] == b[shared]) shared++;
  return shared;
}

/// In-flight state of a two-phase MultiGet against a block table: one
/// BlockFetch per unique data block touched by the batch (sorted keys make
/// duplicates consecutive), each either served from the block cache at
/// Prepare time or backed by a pending ReadRequest for the raw handle
/// bytes (crc verified at Finish).
class BlockPendingMultiGet final : public PendingMultiGet {
 public:
  struct BlockFetch {
    size_t block_idx = 0;
    bool needs_read = false;
    std::string buffer;   // raw handle bytes (payload + crc) for cold blocks
    std::string payload;  // verified payload; filled at Prepare on cache hits
    ReadRequest req;
  };
  struct KeyPlan {
    int fetch = -1;  // index into fetches; -1 = screened out (absent)
  };

  std::vector<Key> keys;
  std::vector<KeyPlan> plans;
  std::vector<BlockFetch> fetches;
  bool fill_cache = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

BlockTableBuilder::BlockTableBuilder(const TableOptions& options,
                                     const std::string& fname)
    : options_(options), bloom_(options.bloom_bits_per_key) {
  assert(options_.env != nullptr);
  status_ = options_.env->NewWritableFile(fname, &file_);
}

BlockTableBuilder::~BlockTableBuilder() {
  if (!finished_ && file_ != nullptr) {
    file_->Close();
  }
}

Status BlockTableBuilder::Add(Key key, uint64_t tag, const Slice& value) {
  if (!status_.ok()) return status_;
  if (finished_) return Status::InvalidArgument("builder already finished");
  if (has_entries_ && key <= max_key_) {
    status_ = Status::InvalidArgument("keys must be strictly increasing");
    return status_;
  }

  char key_bytes[64];
  assert(options_.key_size <= sizeof(key_bytes));
  EncodeUserKey(key, options_.key_size, key_bytes);

  // Restart point every kRestartInterval entries: full key stored.
  size_t shared = 0;
  if (entries_in_block_ % kRestartInterval == 0) {
    restarts_.push_back(static_cast<uint32_t>(block_buf_.size()));
  } else {
    shared = SharedPrefix(last_key_bytes_, key_bytes, options_.key_size);
  }
  const size_t non_shared = options_.key_size - shared;

  PutVarint32(&block_buf_, static_cast<uint32_t>(shared));
  PutVarint32(&block_buf_, static_cast<uint32_t>(non_shared));
  PutVarint32(&block_buf_, static_cast<uint32_t>(value.size()));
  block_buf_.append(key_bytes + shared, non_shared);
  PutFixed64(&block_buf_, tag);
  block_buf_.append(value.data(), value.size());

  last_key_bytes_.assign(key_bytes, options_.key_size);
  block_last_key_ = key;
  entries_in_block_++;
  num_entries_++;
  char bloom_buf[8];
  bloom_.AddKey(BloomKey(key, bloom_buf));
  if (!has_entries_) {
    min_key_ = key;
    has_entries_ = true;
  }
  max_key_ = key;

  if (block_buf_.size() >= kTargetBlockSize) {
    FlushBlock();
  }
  return status_;
}

void BlockTableBuilder::FlushBlock() {
  if (entries_in_block_ == 0 || !status_.ok()) return;
  // Append the restart array + its length.
  for (uint32_t restart : restarts_) {
    PutFixed32(&block_buf_, restart);
  }
  PutFixed32(&block_buf_, static_cast<uint32_t>(restarts_.size()));

  BlockHandle handle;
  status_ = WriteChecksummedBlock(file_.get(), offset_, block_buf_, &handle);
  if (status_.ok()) {
    offset_ += handle.size;
    index_entries_.emplace_back(block_last_key_, handle);
  }
  block_buf_.clear();
  restarts_.clear();
  entries_in_block_ = 0;
  last_key_bytes_.clear();
}

Status BlockTableBuilder::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return Status::InvalidArgument("builder already finished");
  FlushBlock();
  if (!status_.ok()) return status_;
  finished_ = true;

  Footer footer;

  std::string bloom_block;
  bloom_.Finish(&bloom_block);
  status_ = WriteChecksummedBlock(file_.get(), offset_, bloom_block,
                                  &footer.bloom_handle);
  if (!status_.ok()) return status_;
  offset_ += footer.bloom_handle.size;

  // Index block: the per-block fence pointers.
  std::string index_block;
  PutVarint64(&index_block, index_entries_.size());
  for (const auto& [last_key, handle] : index_entries_) {
    PutFixed64(&index_block, last_key);
    handle.EncodeTo(&index_block);
  }
  status_ = WriteChecksummedBlock(file_.get(), offset_, index_block,
                                  &footer.index_handle);
  if (!status_.ok()) return status_;
  offset_ += footer.index_handle.size;

  BlockMeta meta;
  meta.key_size = options_.key_size;
  meta.count = num_entries_;
  meta.min_key = min_key_;
  meta.max_key = max_key_;
  meta.index_block_entries = index_entries_.size();
  std::string meta_block;
  meta.EncodeTo(&meta_block);
  status_ = WriteChecksummedBlock(file_.get(), offset_, meta_block,
                                  &footer.meta_handle);
  if (!status_.ok()) return status_;
  offset_ += footer.meta_handle.size;

  std::string footer_block;
  footer.EncodeTo(&footer_block);
  status_ = file_->Append(footer_block);
  if (!status_.ok()) return status_;
  offset_ += footer_block.size();

  status_ = file_->Sync();
  if (status_.ok()) status_ = file_->Close();
  file_.reset();
  return status_;
}

void BlockTableBuilder::Abandon() {
  finished_ = true;
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
}

// ---------------------------------------------------------------------------
// BlockParser
// ---------------------------------------------------------------------------

BlockParser::BlockParser(const std::string* contents, uint32_t key_size)
    : contents_(contents), key_size_(key_size) {
  if (contents_->size() < 4) {
    status_ = Status::Corruption("block: too small");
    return;
  }
  num_restarts_ = DecodeFixed32(contents_->data() + contents_->size() - 4);
  const size_t restart_bytes = (num_restarts_ + 1) * 4;
  if (restart_bytes > contents_->size()) {
    status_ = Status::Corruption("block: bad restart count");
    return;
  }
  data_end_ = contents_->size() - restart_bytes;
}

uint32_t BlockParser::RestartPoint(size_t i) const {
  return DecodeFixed32(contents_->data() + data_end_ + i * 4);
}

bool BlockParser::ParseCurrent() {
  if (current_ >= data_end_) {
    valid_ = false;
    return false;
  }
  Slice input(contents_->data() + current_, data_end_ - current_);
  uint32_t shared = 0, non_shared = 0, value_len = 0;
  if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
      !GetVarint32(&input, &value_len) ||
      input.size() < non_shared + 8 + value_len ||
      shared + non_shared != key_size_ || shared > key_bytes_.size()) {
    status_ = Status::Corruption("block: malformed entry");
    valid_ = false;
    return false;
  }
  key_bytes_.resize(shared);
  key_bytes_.append(input.data(), non_shared);
  input.remove_prefix(non_shared);
  key_ = DecodeUserKey(key_bytes_.data());
  tag_ = DecodeFixed64(input.data());
  input.remove_prefix(8);
  value_ = Slice(input.data(), value_len);
  next_ = static_cast<size_t>(input.data() + value_len - contents_->data());
  valid_ = true;
  return true;
}

void BlockParser::SeekToFirst() {
  if (!status_.ok()) return;
  current_ = 0;
  key_bytes_.clear();
  ParseCurrent();
}

void BlockParser::Seek(Key target) {
  if (!status_.ok()) return;
  // Binary search restart points for the last restart with key < target,
  // then scan forward.
  size_t lo = 0, hi = num_restarts_;
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    // Restart entries store the full key; peek at it.
    Slice input(contents_->data() + RestartPoint(mid),
                data_end_ - RestartPoint(mid));
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
        !GetVarint32(&input, &value_len) || shared != 0 ||
        non_shared < 8) {
      status_ = Status::Corruption("block: malformed restart entry");
      valid_ = false;
      return;
    }
    const Key restart_key = DecodeUserKey(input.data());
    if (restart_key < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  current_ = RestartPoint(lo);
  key_bytes_.clear();
  while (ParseCurrent() && key_ < target) {
    current_ = next_;
  }
}

void BlockParser::Next() {
  assert(valid_);
  current_ = next_;
  ParseCurrent();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Status BlockTableReader::Open(const TableOptions& options,
                              const std::string& fname,
                              std::unique_ptr<TableReader>* reader) {
  std::unique_ptr<BlockTableReader> r(new BlockTableReader(options));
  Status s = options.env->NewRandomAccessFile(fname, &r->file_);
  if (!s.ok()) return s;
  uint64_t file_size = 0;
  s = options.env->GetFileSize(fname, &file_size);
  if (!s.ok()) return s;

  Footer footer;
  s = ReadFooter(r->file_.get(), file_size, &footer);
  if (!s.ok()) return s;

  std::string meta_block;
  s = ReadChecksummedBlock(r->file_.get(), footer.meta_handle, &meta_block);
  if (!s.ok()) return s;
  BlockMeta meta;
  Slice meta_input(meta_block);
  s = meta.DecodeFrom(&meta_input);
  if (!s.ok()) return s;
  r->key_size_ = meta.key_size;
  r->count_ = meta.count;
  r->min_key_ = meta.min_key;
  r->max_key_ = meta.max_key;

  s = ReadChecksummedBlock(r->file_.get(), footer.bloom_handle,
                           &r->bloom_data_);
  if (!s.ok()) return s;

  std::string index_block;
  s = ReadChecksummedBlock(r->file_.get(), footer.index_handle, &index_block);
  if (!s.ok()) return s;
  Slice input(index_block);
  uint64_t num_blocks = 0;
  if (!GetVarint64(&input, &num_blocks) ||
      num_blocks != meta.index_block_entries) {
    return Status::Corruption("block table: bad index block");
  }
  r->blocks_.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; i++) {
    BlockEntry entry;
    if (!GetFixed64(&input, &entry.last_key) ||
        !entry.handle.DecodeFrom(&input)) {
      return Status::Corruption("block table: truncated index block");
    }
    r->blocks_.push_back(entry);
  }

  *reader = std::move(r);
  return Status::OK();
}

size_t BlockTableReader::FindBlock(Key key) const {
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), key,
      [](const BlockEntry& b, Key k) { return b.last_key < k; });
  return static_cast<size_t>(it - blocks_.begin());
}

Status BlockTableReader::ReadBlock(size_t block_idx, std::string* contents,
                                   Stats* stats, bool fill_cache) const {
  if (stats == nullptr) stats = options_.stats;
  BlockCache* cache = options_.block_cache.get();
  const BlockHandle& handle = blocks_[block_idx].handle;
  if (cache != nullptr) {
    BlockCache::BlockRef cached =
        cache->Lookup(options_.cache_file_number, handle.offset);
    if (cached != nullptr) {
      // Served from memory: no kDiskRead tick — the stage breakdown must
      // keep agreeing with the device's actual read count.
      if (stats != nullptr) stats->Add(Counter::kBlockCacheHits);
      contents->assign(*cached);
      return Status::OK();
    }
    if (stats != nullptr) stats->Add(Counter::kBlockCacheMisses);
  }
  Status s;
  {
    ScopedTimer timer(stats, Timer::kDiskRead, options_.env);
    s = ReadChecksummedBlock(file_.get(), handle, contents);
  }
  if (!s.ok()) return s;
  if (cache != nullptr && fill_cache) {
    const size_t evicted =
        cache->Insert(options_.cache_file_number, handle.offset, *contents);
    if (stats != nullptr && evicted > 0) {
      stats->Add(Counter::kBlockCacheEvictions, evicted);
    }
  }
  return Status::OK();
}

Status BlockTableReader::Get(Key key, std::string* value, uint64_t* tag,
                             bool* found, Stats* stats, bool fill_cache) {
  if (stats == nullptr) stats = options_.stats;
  *found = false;
  if (count_ == 0 || key < min_key_ || key > max_key_) return Status::OK();

  {
    ScopedTimer timer(stats, Timer::kBloomCheck, options_.env);
    char bloom_buf[8];
    BloomFilterReader bloom{Slice(bloom_data_)};
    if (!bloom.KeyMayMatch(BloomKey(key, bloom_buf))) {
      if (stats != nullptr) {
        stats->Add(Counter::kBloomNegatives);
      }
      return Status::OK();
    }
  }

  size_t block_idx;
  {
    ScopedTimer timer(stats, Timer::kIndexPredict, options_.env);
    block_idx = FindBlock(key);
  }
  if (block_idx >= blocks_.size()) return Status::OK();

  std::string contents;
  Status s = ReadBlock(block_idx, &contents, stats, fill_cache);
  if (!s.ok()) return s;

  ScopedTimer timer(stats, Timer::kBinarySearch, options_.env);
  BlockParser parser(&contents, key_size_);
  parser.Seek(key);
  if (!parser.status().ok()) return parser.status();
  if (parser.Valid() && parser.key() == key) {
    *tag = parser.tag();
    value->assign(parser.value().data(), parser.value().size());
    *found = true;
    if (stats != nullptr) {
      stats->Add(Counter::kBloomTruePositive);
    }
  } else if (stats != nullptr) {
    stats->Add(Counter::kBloomFalsePositive);
  }
  return Status::OK();
}

Status BlockTableReader::PrepareMultiGet(
    std::span<const Key> keys, const size_t* bounds_lo, const size_t* bounds_hi,
    ReadBatch* batch, std::unique_ptr<PendingMultiGet>* pending, Stats* stats,
    bool fill_cache) {
  if (bounds_lo != nullptr || bounds_hi != nullptr) {
    return Status::NotSupported("block tables have no positional bounds");
  }
  if (stats == nullptr) stats = options_.stats;
  auto p = std::make_unique<BlockPendingMultiGet>();
  p->keys.assign(keys.begin(), keys.end());
  p->plans.resize(keys.size());
  p->fill_cache = fill_cache;
  BloomFilterReader bloom{Slice(bloom_data_)};

  // Pass 1: screen each key and route it to its fence-pointer block.
  // Inputs are sorted, so keys landing in the same block are consecutive
  // and share one fetch.
  for (size_t i = 0; i < keys.size(); i++) {
    const Key key = keys[i];
    if (count_ == 0 || key < min_key_ || key > max_key_) continue;
    {
      ScopedTimer timer(stats, Timer::kBloomCheck, options_.env);
      char bloom_buf[8];
      if (!bloom.KeyMayMatch(BloomKey(key, bloom_buf))) {
        if (stats != nullptr) stats->Add(Counter::kBloomNegatives);
        continue;
      }
    }
    size_t block_idx;
    {
      ScopedTimer timer(stats, Timer::kIndexPredict, options_.env);
      block_idx = FindBlock(key);
    }
    if (block_idx >= blocks_.size()) continue;
    if (p->fetches.empty() || p->fetches.back().block_idx != block_idx) {
      BlockPendingMultiGet::BlockFetch fetch;
      fetch.block_idx = block_idx;
      p->fetches.push_back(std::move(fetch));
    }
    p->plans[i].fetch = static_cast<int>(p->fetches.size()) - 1;
  }

  // Pass 2: probe the block cache once per unique block; each miss becomes
  // one ReadRequest for the raw handle bytes (crc verified at Finish).
  // The fetch list is complete, so the ReadRequest addresses registered
  // with the batch stay stable.
  BlockCache* cache = options_.block_cache.get();
  for (auto& fetch : p->fetches) {
    const BlockHandle& handle = blocks_[fetch.block_idx].handle;
    if (cache != nullptr) {
      BlockCache::BlockRef cached =
          cache->Lookup(options_.cache_file_number, handle.offset);
      if (cached != nullptr) {
        if (stats != nullptr) stats->Add(Counter::kBlockCacheHits);
        fetch.payload = *cached;
        continue;
      }
      if (stats != nullptr) stats->Add(Counter::kBlockCacheMisses);
    }
    fetch.needs_read = true;
    fetch.buffer.resize(handle.size);
    fetch.req.file = file_.get();
    fetch.req.offset = handle.offset;
    fetch.req.n = handle.size;
    fetch.req.scratch = fetch.buffer.data();
    batch->Add(&fetch.req);
    if (stats != nullptr) stats->Add(Counter::kAsyncReads);
  }
  *pending = std::move(p);
  return Status::OK();
}

Status BlockTableReader::FinishMultiGet(PendingMultiGet* pending,
                                        std::string* values, uint64_t* tags,
                                        bool* founds, Stats* stats) {
  if (stats == nullptr) stats = options_.stats;
  auto* p = static_cast<BlockPendingMultiGet*>(pending);
  BlockCache* cache = options_.block_cache.get();
  for (auto& fetch : p->fetches) {
    if (!fetch.needs_read) continue;
    if (!fetch.req.status.ok()) return fetch.req.status;
    if (fetch.req.result.size() < fetch.req.n) {
      return Status::Corruption("block table: short block read");
    }
    if (fetch.req.result.data() != fetch.buffer.data()) {
      std::memmove(fetch.buffer.data(), fetch.req.result.data(), fetch.req.n);
    }
    Status s = VerifyChecksummedBlock(fetch.buffer.data(), fetch.req.n,
                                      &fetch.payload);
    if (!s.ok()) return s;
    if (cache != nullptr && p->fill_cache) {
      const size_t evicted =
          cache->Insert(options_.cache_file_number,
                        blocks_[fetch.block_idx].handle.offset, fetch.payload);
      if (stats != nullptr && evicted > 0) {
        stats->Add(Counter::kBlockCacheEvictions, evicted);
      }
    }
  }
  for (size_t i = 0; i < p->keys.size(); i++) {
    founds[i] = false;
    if (p->plans[i].fetch < 0) continue;
    const auto& fetch = p->fetches[static_cast<size_t>(p->plans[i].fetch)];
    ScopedTimer timer(stats, Timer::kBinarySearch, options_.env);
    BlockParser parser(&fetch.payload, key_size_);
    parser.Seek(p->keys[i]);
    if (!parser.status().ok()) return parser.status();
    if (parser.Valid() && parser.key() == p->keys[i]) {
      tags[i] = parser.tag();
      values[i].assign(parser.value().data(), parser.value().size());
      founds[i] = true;
      if (stats != nullptr) stats->Add(Counter::kBloomTruePositive);
    } else if (stats != nullptr) {
      stats->Add(Counter::kBloomFalsePositive);
    }
  }
  return Status::OK();
}

size_t BlockTableReader::IndexMemoryUsage() const {
  return blocks_.capacity() * sizeof(BlockEntry);
}

Status BlockTableReader::ReadAllKeys(std::vector<Key>* keys) {
  keys->clear();
  keys->reserve(count_);
  // A full training scan must not evict the point-lookup hot set.
  auto it = NewIterator(/*fill_cache=*/false, /*readahead_blocks=*/0);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys->push_back(it->key());
  }
  return it->status();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

class BlockTableIterator final : public TableIterator {
 public:
  BlockTableIterator(BlockTableReader* reader, bool fill_cache,
                     size_t readahead_blocks)
      : reader_(reader),
        fill_cache_(fill_cache),
        readahead_blocks_(readahead_blocks) {
    if (readahead_blocks_ > 0) {
      batch_ = reader_->options_.env->NewReadBatch(
          static_cast<int>(readahead_blocks_));
    }
  }

  ~BlockTableIterator() override {
    if (batch_ != nullptr && !inflight_.empty()) {
      // Outstanding requests reference our buffers; drain before freeing.
      batch_->Wait();
    }
    Stats* stats = reader_->options_.stats;
    const size_t wasted = inflight_.size() + ready_.size();
    if (stats != nullptr && wasted > 0) {
      stats->Add(Counter::kReadaheadWasted, wasted);
    }
  }

  bool Valid() const override {
    return status_.ok() && parser_ != nullptr && parser_->Valid();
  }

  void SeekToFirst() override {
    block_idx_ = 0;
    LoadBlock();
    if (parser_ != nullptr) parser_->SeekToFirst();
    SkipExhaustedBlocks();
  }

  void Seek(Key target) override {
    block_idx_ = reader_->FindBlock(target);
    LoadBlock();
    if (parser_ != nullptr) parser_->Seek(target);
    SkipExhaustedBlocks();
  }

  void Next() override {
    assert(Valid());
    parser_->Next();
    SkipExhaustedBlocks();
  }

  Key key() const override { return parser_->key(); }
  uint64_t tag() const override { return parser_->tag(); }
  Slice value() const override { return parser_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return parser_ != nullptr ? parser_->status() : Status::OK();
  }

 private:
  void LoadBlock() {
    parser_.reset();
    if (block_idx_ >= reader_->blocks_.size()) return;
    if (batch_ != nullptr) {
      Reap();
      Stats* stats = reader_->options_.stats;
      // Prefetches behind the cursor (after a backward Seek) can never be
      // served; blocks ahead of it stay available.
      auto it = ready_.begin();
      while (it != ready_.end() && it->first < block_idx_) {
        it = ready_.erase(it);
        if (stats != nullptr) stats->Add(Counter::kReadaheadWasted);
      }
      if (it != ready_.end() && it->first == block_idx_) {
        contents_ = std::move(it->second);
        ready_.erase(it);
        if (stats != nullptr) stats->Add(Counter::kReadaheadHits);
        parser_ =
            std::make_unique<BlockParser>(&contents_, reader_->key_size_);
        MaybeIssueReadahead();
        return;
      }
    }
    status_ = reader_->ReadBlock(block_idx_, &contents_, nullptr,
                                 fill_cache_);
    if (!status_.ok()) return;
    parser_ = std::make_unique<BlockParser>(&contents_, reader_->key_size_);
    MaybeIssueReadahead();
  }

  /// Waits for the outstanding prefetch batch (if any) and moves the
  /// verified payloads into `ready_`. Failed, short, or corrupt prefetches
  /// are dropped — the synchronous path re-reads them on demand, so
  /// readahead never affects results.
  void Reap() {
    if (inflight_.empty()) return;
    Stats* stats = reader_->options_.stats;
    {
      ScopedTimer timer(stats, Timer::kAsyncReap, reader_->options_.env);
      batch_->Wait();
    }
    if (stats != nullptr) stats->Add(Counter::kAsyncBatches);
    BlockCache* cache = reader_->options_.block_cache.get();
    for (auto& pf : inflight_) {
      if (!pf->req.status.ok() || pf->req.result.size() < pf->req.n) {
        if (stats != nullptr) stats->Add(Counter::kReadaheadWasted);
        continue;
      }
      if (pf->req.result.data() != pf->buffer.data()) {
        std::memmove(pf->buffer.data(), pf->req.result.data(), pf->req.n);
      }
      std::string payload;
      if (!VerifyChecksummedBlock(pf->buffer.data(), pf->req.n, &payload)
               .ok()) {
        if (stats != nullptr) stats->Add(Counter::kReadaheadWasted);
        continue;
      }
      if (cache != nullptr && fill_cache_) {
        const size_t evicted = cache->Insert(
            reader_->options_.cache_file_number,
            reader_->blocks_[pf->block_idx].handle.offset, payload);
        if (stats != nullptr && evicted > 0) {
          stats->Add(Counter::kBlockCacheEvictions, evicted);
        }
      }
      ready_[pf->block_idx] = std::move(payload);
    }
    inflight_.clear();
  }

  /// Submits prefetches for up to readahead_blocks_ fence-pointer blocks
  /// past the current one (skipping blocks already reaped). Only called
  /// with the batch drained, so request addresses stay owned by inflight_.
  void MaybeIssueReadahead() {
    if (batch_ == nullptr || !inflight_.empty()) return;
    Stats* stats = reader_->options_.stats;
    const size_t num_blocks = reader_->blocks_.size();
    size_t issued = 0;
    for (size_t next = block_idx_ + 1;
         issued < readahead_blocks_ && next < num_blocks; next++) {
      if (ready_.count(next) != 0) continue;
      auto pf = std::make_unique<PrefetchBlock>();
      pf->block_idx = next;
      const BlockHandle& handle = reader_->blocks_[next].handle;
      pf->buffer.resize(handle.size);
      pf->req.file = reader_->file_.get();
      pf->req.offset = handle.offset;
      pf->req.n = handle.size;
      pf->req.scratch = pf->buffer.data();
      batch_->Add(&pf->req);
      inflight_.push_back(std::move(pf));
      if (stats != nullptr) stats->Add(Counter::kAsyncReads);
      issued++;
    }
  }

  void SkipExhaustedBlocks() {
    while (status_.ok() && parser_ != nullptr && !parser_->Valid() &&
           parser_->status().ok() &&
           block_idx_ + 1 < reader_->blocks_.size()) {
      block_idx_++;
      LoadBlock();
      if (parser_ != nullptr) parser_->SeekToFirst();
    }
  }

  struct PrefetchBlock {
    size_t block_idx = 0;
    std::string buffer;  // raw handle bytes (payload + crc)
    ReadRequest req;
  };

  BlockTableReader* const reader_;
  const bool fill_cache_;
  const size_t readahead_blocks_;
  Status status_;
  size_t block_idx_ = 0;
  std::string contents_;
  std::unique_ptr<BlockParser> parser_;
  std::unique_ptr<ReadBatch> batch_;
  std::vector<std::unique_ptr<PrefetchBlock>> inflight_;
  std::map<size_t, std::string> ready_;  // block_idx -> verified payload
};

std::unique_ptr<TableIterator> BlockTableReader::NewIterator(
    bool fill_cache, size_t readahead_blocks) {
  return std::make_unique<BlockTableIterator>(this, fill_cache,
                                              readahead_blocks);
}

}  // namespace lilsm
