#include "table/format.h"

#include <cstring>

#include "util/crc32c.h"

namespace lilsm {

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  meta_handle.EncodeTo(dst);
  bloom_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  segments_handle.EncodeTo(dst);
  dst->resize(original_size + 4 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed64(dst, kTableMagic);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer: too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  if (DecodeFixed64(magic_ptr) != kTableMagic) {
    return Status::Corruption("footer: bad magic number");
  }
  Slice handles(input->data(), kEncodedLength - 8);
  if (!meta_handle.DecodeFrom(&handles) ||
      !bloom_handle.DecodeFrom(&handles) ||
      !index_handle.DecodeFrom(&handles) ||
      !segments_handle.DecodeFrom(&handles)) {
    return Status::Corruption("footer: bad block handles");
  }
  input->remove_prefix(kEncodedLength);
  return Status::OK();
}

Status WriteChecksummedBlock(WritableFile* file, uint64_t offset,
                             const Slice& contents, BlockHandle* handle) {
  Status s = file->Append(contents);
  if (!s.ok()) return s;
  char trailer[4];
  EncodeFixed32(trailer,
                crc32c::Mask(crc32c::Value(contents.data(), contents.size())));
  s = file->Append(Slice(trailer, 4));
  if (!s.ok()) return s;
  handle->offset = offset;
  handle->size = contents.size() + 4;
  return Status::OK();
}

Status ReadChecksummedBlock(RandomAccessFile* file, const BlockHandle& handle,
                            std::string* result) {
  if (handle.size < 4) {
    return Status::Corruption("block: handle smaller than crc trailer");
  }
  std::string buf(handle.size, '\0');
  Slice contents;
  Status s = file->Read(handle.offset, handle.size, &contents, buf.data());
  if (!s.ok()) return s;
  if (contents.size() != handle.size) {
    return Status::Corruption("block: truncated read");
  }
  return VerifyChecksummedBlock(contents.data(), contents.size(), result);
}

Status VerifyChecksummedBlock(const char* data, size_t size,
                              std::string* result) {
  if (size < 4) {
    return Status::Corruption("block: smaller than crc trailer");
  }
  const size_t payload = size - 4;
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(data + payload));
  const uint32_t actual = crc32c::Value(data, payload);
  if (expected != actual) {
    return Status::Corruption("block: checksum mismatch");
  }
  result->assign(data, payload);
  return Status::OK();
}

Status ReadFooter(RandomAccessFile* file, uint64_t file_size, Footer* footer) {
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("table file too short for footer");
  }
  char buf[Footer::kEncodedLength];
  Slice contents;
  Status s = file->Read(file_size - Footer::kEncodedLength,
                        Footer::kEncodedLength, &contents, buf);
  if (!s.ok()) return s;
  if (contents.size() != Footer::kEncodedLength) {
    return Status::Corruption("footer: truncated read");
  }
  Slice input = contents;
  return footer->DecodeFrom(&input);
}

void EncodeUserKey(uint64_t key, uint32_t key_size, char* dst) {
  for (int i = 0; i < 8; i++) {
    dst[i] = static_cast<char>((key >> (8 * (7 - i))) & 0xFF);
  }
  if (key_size > 8) {
    std::memset(dst + 8, 0, key_size - 8);
  }
}

uint64_t DecodeUserKey(const char* src) {
  uint64_t key = 0;
  for (int i = 0; i < 8; i++) {
    key = (key << 8) | static_cast<uint8_t>(src[i]);
  }
  return key;
}

}  // namespace lilsm
