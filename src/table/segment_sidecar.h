// The model sidecar: a table file's trained index segments persisted as
// a self-checksummed block named by Footer::segments_handle, so DB::Open
// can stitch level models straight from disk — no reader construction,
// no index-blob decode, no key scan. Layout (inside a checksummed block):
//
//   varint32 format version (1)
//   varint32 index type the segments were trained by
//   varint32 epsilon the segments guarantee
//   varint64 entry count of the table
//   varint64 segment count
//   per segment: fixed64 first_key | double slope | double intercept
//
// The version gates decoding; the block checksum (WriteChecksummedBlock)
// plus the entry-count cross-check against the manifest's FileMeta make
// corruption detectable, and every failure mode degrades to the existing
// reader-export / retrain paths.
#ifndef LILSM_TABLE_SEGMENT_SIDECAR_H_
#define LILSM_TABLE_SEGMENT_SIDECAR_H_

#include <string>
#include <vector>

#include "index/index.h"
#include "index/pla.h"
#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

constexpr uint32_t kSegmentSidecarVersion = 1;

struct SegmentSidecar {
  uint32_t version = kSegmentSidecarVersion;
  IndexType index_type = IndexType::kPGM;
  uint32_t epsilon = 0;
  uint64_t entries = 0;
  std::vector<LinearSegment> segments;
};

void EncodeSegmentSidecar(const SegmentSidecar& sidecar, std::string* dst);

Status DecodeSegmentSidecar(Slice* input, SegmentSidecar* out);

/// Fetches `fname`'s sidecar with two preads (footer + block): NotFound
/// when the table carries none, Corruption when the block or its framing
/// is damaged. Deliberately does not construct a TableReader — the whole
/// point is an open path that touches no data or index blocks.
Status ReadSegmentSidecar(Env* env, const std::string& fname,
                          SegmentSidecar* out);

}  // namespace lilsm

#endif  // LILSM_TABLE_SEGMENT_SIDECAR_H_
