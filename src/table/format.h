// On-disk format shared by the table implementations: block handles, the
// footer, and checksummed auxiliary blocks.
#ifndef LILSM_TABLE_FORMAT_H_
#define LILSM_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lilsm {

/// Default device I/O block: segment fetches are aligned to it and the
/// simulated environment counts I/O in these units.
constexpr uint64_t kIoBlockSize = 4096;

/// Identifies a byte range within a table file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }
  bool DecodeFrom(Slice* input) {
    return GetVarint64(input, &offset) && GetVarint64(input, &size);
  }

  /// Maximum encoded size of a handle (two 10-byte varints).
  static constexpr size_t kMaxEncodedLength = 20;
};

/// Fixed-size trailer of every table file:
///   meta_handle | bloom_handle | index_handle | segments_handle
///   | padding | magic(8B)
/// segments_handle names the model sidecar — the trained index's leaf
/// segments, re-loadable at DB::Open without a key scan. A zero handle
/// (offset 0, size 0) means the table carries no sidecar (formats and
/// index types that cannot export segments).
struct Footer {
  BlockHandle meta_handle;
  BlockHandle bloom_handle;
  BlockHandle index_handle;
  BlockHandle segments_handle;

  static constexpr uint64_t kTableMagic = 0x4c534d5441424c45ull;  // "LSMTABLE"
  static constexpr size_t kEncodedLength =
      4 * BlockHandle::kMaxEncodedLength + 8;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

/// Appends `contents` + crc32c trailer to `file` and records the range in
/// `handle` (the crc is included in handle->size).
Status WriteChecksummedBlock(WritableFile* file, uint64_t offset,
                             const Slice& contents, BlockHandle* handle);

/// Reads a block written by WriteChecksummedBlock and verifies its crc.
/// On success `*result` owns the payload bytes (without the crc).
Status ReadChecksummedBlock(RandomAccessFile* file, const BlockHandle& handle,
                            std::string* result);

/// The verify half of ReadChecksummedBlock, for callers that fetched the
/// raw handle bytes themselves (async batch reads): checks the crc32c
/// trailer over `data[0, size)` and assigns the payload (without the crc)
/// to `*result`.
Status VerifyChecksummedBlock(const char* data, size_t size,
                              std::string* result);

/// Reads and decodes the footer of a table file of the given size.
Status ReadFooter(RandomAccessFile* file, uint64_t file_size, Footer* footer);

/// Fixed-width big-endian user-key encoding (sorting as bytes == sorting
/// as integers); the remaining key_size - 8 bytes are zero padding matching
/// the paper's 24-byte key geometry.
void EncodeUserKey(uint64_t key, uint32_t key_size, char* dst);
uint64_t DecodeUserKey(const char* src);

}  // namespace lilsm

#endif  // LILSM_TABLE_FORMAT_H_
