// YCSB core workloads A-F (paper Section 5.6 / Figure 12).
//
//   A: 50% read / 50% update        (zipfian)
//   B: 95% read /  5% update        (zipfian)
//   C: 100% read                    (zipfian)
//   D: 95% read /  5% insert        (latest)
//   E: 95% scan /  5% insert        (zipfian, scan length <= 100)
//   F: 50% read / 50% read-modify-write (zipfian)
#ifndef LILSM_WORKLOAD_YCSB_H_
#define LILSM_WORKLOAD_YCSB_H_

#include <string>

#include "workload/zipf.h"

namespace lilsm {

enum class YcsbWorkload : uint8_t { kA = 0, kB, kC, kD, kE, kF };

inline constexpr YcsbWorkload kAllYcsbWorkloads[] = {
    YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
    YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF,
};

const char* YcsbWorkloadName(YcsbWorkload workload);
bool ParseYcsbWorkload(const std::string& name, YcsbWorkload* workload);

struct YcsbOp {
  enum class Type : uint8_t {
    kRead,
    kUpdate,
    kInsert,
    kScan,
    kReadModifyWrite,
  };
  Type type = Type::kRead;
  /// Index into the loaded key set (for kInsert: index of the new key).
  uint64_t key_index = 0;
  /// Scan length for kScan.
  uint64_t scan_length = 0;
};

class YcsbGenerator {
 public:
  /// `num_keys` is the loaded key-set size; inserts extend it (key_index
  /// values >= num_keys denote freshly inserted keys).
  YcsbGenerator(YcsbWorkload workload, uint64_t num_keys, uint64_t seed);

  YcsbOp Next();

  uint64_t num_keys() const { return num_keys_; }

 private:
  const YcsbWorkload workload_;
  uint64_t num_keys_;
  Random rnd_;
  ZipfGenerator zipf_;
  LatestGenerator latest_;
};

}  // namespace lilsm

#endif  // LILSM_WORKLOAD_YCSB_H_
