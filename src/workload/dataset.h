// Synthetic key distributions matching the CDF classes of the SOSD
// benchmark datasets the paper evaluates (its Figure 5): Random, Segment,
// Longitude, Longlat, Books, FB, Wiki. Real SOSD files are not
// redistributable, so each generator reproduces the qualitative CDF shape
// that drives learned-index behaviour (see DESIGN.md, substitutions).
//
// All generators are deterministic in (dataset, n, seed) and return
// strictly increasing unique u64 keys.
#ifndef LILSM_WORKLOAD_DATASET_H_
#define LILSM_WORKLOAD_DATASET_H_

#include <string>
#include <vector>

#include "index/index.h"

namespace lilsm {

enum class Dataset : uint8_t {
  kRandom = 0,     // uniform over the key space — near-linear CDF
  kSegment = 1,    // piecewise uniform with plateaus — staircase CDF
  kLongitude = 2,  // mixture of Gaussians (place longitudes)
  kLonglat = 3,    // denser multi-modal mixture (interleaved lat/lon)
  kBooks = 4,      // lognormal gaps (sales ranks) — smooth heavy tail
  kFb = 5,         // dense uniform body + extreme upper outliers
  kWiki = 6,       // bursty timestamps — clustered with periodic jumps
};

inline constexpr Dataset kAllDatasets[] = {
    Dataset::kRandom, Dataset::kSegment, Dataset::kLongitude,
    Dataset::kLonglat, Dataset::kBooks, Dataset::kFb, Dataset::kWiki,
};

const char* DatasetName(Dataset dataset);
bool ParseDataset(const std::string& name, Dataset* dataset);

/// Generates `n` strictly increasing unique keys.
std::vector<Key> GenerateKeys(Dataset dataset, size_t n, uint64_t seed);

/// Samples `points` evenly spaced (key, cdf) pairs for plotting (Fig. 5).
std::vector<std::pair<Key, double>> SampleCdf(const std::vector<Key>& keys,
                                              size_t points);

/// Deterministic value bytes for a key, so reads can verify contents.
std::string DeriveValue(Key key, size_t value_size);

}  // namespace lilsm

#endif  // LILSM_WORKLOAD_DATASET_H_
