#include "workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/random.h"

namespace lilsm {

const char* DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kRandom:
      return "random";
    case Dataset::kSegment:
      return "segment";
    case Dataset::kLongitude:
      return "longitude";
    case Dataset::kLonglat:
      return "longlat";
    case Dataset::kBooks:
      return "books";
    case Dataset::kFb:
      return "fb";
    case Dataset::kWiki:
      return "wiki";
  }
  return "unknown";
}

bool ParseDataset(const std::string& name, Dataset* dataset) {
  for (Dataset d : kAllDatasets) {
    if (name == DatasetName(d)) {
      *dataset = d;
      return true;
    }
  }
  return false;
}

namespace {

/// Draw-sort-dedupe over an arbitrary sampler until n unique keys exist.
template <typename Sampler>
std::vector<Key> SampleUnique(size_t n, Sampler&& sample) {
  std::vector<Key> keys;
  keys.reserve(n + n / 8);
  while (true) {
    const size_t missing = n - std::min(n, keys.size());
    const size_t draw = missing + missing / 8 + 64;
    for (size_t i = 0; i < draw; i++) {
      keys.push_back(sample());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (keys.size() >= n) {
      if (keys.size() == n) return keys;
      // Thin evenly rather than truncating, which would clip the upper
      // tail and distort the distribution (e.g. fb's outlier region).
      std::vector<Key> thinned;
      thinned.reserve(n);
      for (size_t i = 0; i < n; i++) {
        thinned.push_back(keys[i * keys.size() / n]);
      }
      return thinned;
    }
  }
}

/// Cumulative-gap construction: increasing by construction.
template <typename GapFn>
std::vector<Key> FromGaps(size_t n, Key start, GapFn&& gap) {
  std::vector<Key> keys;
  keys.reserve(n);
  Key current = start;
  for (size_t i = 0; i < n; i++) {
    keys.push_back(current);
    uint64_t g = gap(i);
    if (g == 0) g = 1;
    current += g;
  }
  return keys;
}

std::vector<Key> GenRandom(size_t n, uint64_t seed) {
  Random rnd(seed);
  return SampleUnique(n, [&] { return rnd.Next() >> 1; });  // [0, 2^63)
}

std::vector<Key> GenSegment(size_t n, uint64_t seed) {
  // Alternating dense and sparse runs produce the staircase CDF of the
  // paper's "Segment" dataset.
  Random rnd(seed);
  const size_t runs = 16;
  const size_t run_len = std::max<size_t>(1, n / runs);
  return FromGaps(n, rnd.Uniform(1 << 20), [&](size_t i) -> uint64_t {
    const bool dense = (i / run_len) % 2 == 0;
    return dense ? 1 + rnd.Uniform(8) : (1 << 16) + rnd.Uniform(1 << 20);
  });
}

std::vector<Key> GenGaussianMixture(size_t n, uint64_t seed, int modes,
                                    double spread) {
  Random rnd(seed);
  std::vector<double> centers(modes), widths(modes);
  for (int m = 0; m < modes; m++) {
    centers[m] = rnd.NextDouble();
    widths[m] = spread * (0.2 + rnd.NextDouble());
  }
  const double scale = 9.0e18;
  return SampleUnique(n, [&]() -> Key {
    const int m = static_cast<int>(rnd.Uniform(modes));
    double x = centers[m] + widths[m] * rnd.NextGaussian();
    x = std::clamp(x, 0.0, 1.0);
    return static_cast<Key>(x * scale);
  });
}

std::vector<Key> GenBooks(size_t n, uint64_t seed) {
  // Lognormal gaps: smooth but heavy-tailed, like sales-rank data.
  Random rnd(seed);
  return FromGaps(n, 0, [&](size_t) -> uint64_t {
    const double g = std::exp(1.5 * rnd.NextGaussian() + 4.0);
    return static_cast<uint64_t>(std::clamp(g, 1.0, 1.0e9));
  });
}

std::vector<Key> GenFb(size_t n, uint64_t seed) {
  // Facebook ids: the hardest SOSD dataset — a body mixing dense local
  // clusters with uniform noise, plus ~0.5% extreme outliers at the top of
  // the key space. The cluster/noise mixture defeats long linear segments
  // the way the real ids' allocation pattern does.
  Random rnd(seed);
  const uint64_t body_range = uint64_t{1} << 40;
  const size_t kClusters = 4096;
  std::vector<uint64_t> centers(kClusters);
  for (uint64_t& c : centers) c = rnd.Uniform(body_range);
  return SampleUnique(n, [&]() -> Key {
    if (rnd.OneIn(200)) {
      return (uint64_t{1} << 62) + (rnd.Next() >> 3);  // outlier region
    }
    if (rnd.OneIn(2)) {
      return rnd.Uniform(body_range);  // uniform noise
    }
    // Dense cluster member: a few dozen ids packed tightly together.
    return centers[rnd.Uniform(kClusters)] + rnd.Uniform(64);
  });
}

std::vector<Key> GenWiki(size_t n, uint64_t seed) {
  // Edit timestamps: bursts of closely spaced keys with periodic jumps
  // (quiet hours), giving a locally flat, globally linear CDF.
  Random rnd(seed);
  const size_t burst = 64;
  return FromGaps(n, uint64_t{1} << 33, [&](size_t i) -> uint64_t {
    if (i % burst == burst - 1) {
      return 40000 + rnd.Uniform(200000);  // inter-burst quiet gap
    }
    return 1 + rnd.Uniform(16);  // within-burst spacing
  });
}

}  // namespace

std::vector<Key> GenerateKeys(Dataset dataset, size_t n, uint64_t seed) {
  switch (dataset) {
    case Dataset::kRandom:
      return GenRandom(n, seed);
    case Dataset::kSegment:
      return GenSegment(n, seed);
    case Dataset::kLongitude:
      return GenGaussianMixture(n, seed, /*modes=*/12, /*spread=*/0.05);
    case Dataset::kLonglat:
      return GenGaussianMixture(n, seed, /*modes=*/40, /*spread=*/0.01);
    case Dataset::kBooks:
      return GenBooks(n, seed);
    case Dataset::kFb:
      return GenFb(n, seed);
    case Dataset::kWiki:
      return GenWiki(n, seed);
  }
  return {};
}

std::vector<std::pair<Key, double>> SampleCdf(const std::vector<Key>& keys,
                                              size_t points) {
  std::vector<std::pair<Key, double>> cdf;
  if (keys.empty() || points == 0) return cdf;
  cdf.reserve(points);
  for (size_t p = 0; p < points; p++) {
    const size_t i = p * (keys.size() - 1) / std::max<size_t>(1, points - 1);
    cdf.emplace_back(keys[i],
                     static_cast<double>(i) /
                         static_cast<double>(keys.size() - 1));
  }
  return cdf;
}

std::string DeriveValue(Key key, size_t value_size) {
  std::string value(value_size, '\0');
  // Repeating 8-byte pattern derived from the key; cheap to generate and
  // verify.
  uint64_t x = key * 0x9E3779B97f4A7C15ull + 1;
  for (size_t i = 0; i < value_size; i += 8) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    const size_t chunk = std::min<size_t>(8, value_size - i);
    std::memcpy(value.data() + i, &x, chunk);
  }
  return value;
}

}  // namespace lilsm
