#include "workload/ycsb.h"

namespace lilsm {

const char* YcsbWorkloadName(YcsbWorkload workload) {
  switch (workload) {
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

bool ParseYcsbWorkload(const std::string& name, YcsbWorkload* workload) {
  if (name.size() != 1) return false;
  const char c = static_cast<char>(std::toupper(name[0]));
  if (c < 'A' || c > 'F') return false;
  *workload = static_cast<YcsbWorkload>(c - 'A');
  return true;
}

YcsbGenerator::YcsbGenerator(YcsbWorkload workload, uint64_t num_keys,
                             uint64_t seed)
    : workload_(workload),
      num_keys_(num_keys == 0 ? 1 : num_keys),
      rnd_(seed),
      zipf_(num_keys_, 0.99, seed ^ 0x5bd1e995),
      latest_(num_keys_, seed ^ 0x2545F491) {}

YcsbOp YcsbGenerator::Next() {
  YcsbOp op;
  const uint64_t pct = rnd_.Uniform(100);
  switch (workload_) {
    case YcsbWorkload::kA:
      op.type = pct < 50 ? YcsbOp::Type::kRead : YcsbOp::Type::kUpdate;
      op.key_index = zipf_.NextScrambled();
      break;
    case YcsbWorkload::kB:
      op.type = pct < 95 ? YcsbOp::Type::kRead : YcsbOp::Type::kUpdate;
      op.key_index = zipf_.NextScrambled();
      break;
    case YcsbWorkload::kC:
      op.type = YcsbOp::Type::kRead;
      op.key_index = zipf_.NextScrambled();
      break;
    case YcsbWorkload::kD:
      if (pct < 95) {
        op.type = YcsbOp::Type::kRead;
        op.key_index = latest_.Next();
      } else {
        op.type = YcsbOp::Type::kInsert;
        op.key_index = num_keys_++;
        latest_.SetN(num_keys_);
      }
      break;
    case YcsbWorkload::kE:
      if (pct < 95) {
        op.type = YcsbOp::Type::kScan;
        op.key_index = zipf_.NextScrambled();
        op.scan_length = 1 + rnd_.Uniform(100);
      } else {
        op.type = YcsbOp::Type::kInsert;
        op.key_index = num_keys_++;
      }
      break;
    case YcsbWorkload::kF:
      op.type = pct < 50 ? YcsbOp::Type::kRead
                         : YcsbOp::Type::kReadModifyWrite;
      op.key_index = zipf_.NextScrambled();
      break;
  }
  return op;
}

}  // namespace lilsm
