// Request distributions for lookup workloads: uniform, YCSB-style
// scrambled Zipfian, and "latest" (recency-skewed).
#ifndef LILSM_WORKLOAD_ZIPF_H_
#define LILSM_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace lilsm {

/// Zipfian generator over [0, n) with YCSB's incremental zeta computation
/// and scrambling (so popular items are spread across the key space).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next raw zipfian rank in [0, n): rank 0 is the most popular.
  uint64_t NextRank();

  /// Next scrambled item in [0, n): popularity spread uniformly.
  uint64_t NextScrambled();

  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
  Random rnd_;
};

/// "Latest" distribution (YCSB workload D): indexes near n-1 are hot.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t n, uint64_t seed) : zipf_(n, 0.99, seed), n_(n) {}

  uint64_t Next() {
    const uint64_t rank = zipf_.NextRank();
    return n_ - 1 - rank;
  }

  /// Grows the window as new items are inserted.
  void SetN(uint64_t n);

 private:
  ZipfGenerator zipf_;
  uint64_t n_;
};

}  // namespace lilsm

#endif  // LILSM_WORKLOAD_ZIPF_H_
