#include "workload/zipf.h"

#include <cmath>

#include "bloom/hash.h"

namespace lilsm {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  // Exact zeta for small n; two-point interpolation of the known
  // asymptotic for large n keeps generator construction O(1)-ish while
  // staying within a few percent of the true value (YCSB does similar).
  const uint64_t kExactLimit = 1 << 20;
  double sum = 0;
  if (n <= kExactLimit) {
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }
  for (uint64_t i = 1; i <= kExactLimit; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  // Integral approximation of the tail.
  const double a = static_cast<double>(kExactLimit);
  const double b = static_cast<double>(n);
  sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rnd_(seed) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::NextRank() {
  const double u = rnd_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ZipfGenerator::NextScrambled() {
  // The offset keeps rank 0 off the Mix64 fixed point at zero, so the
  // hottest item lands at a pseudo-random position like YCSB's FNV hash.
  return Mix64(NextRank() + 0x9E3779B97f4A7C15ull) % n_;
}

void LatestGenerator::SetN(uint64_t n) {
  if (n != n_ && n > 0) {
    n_ = n;
    zipf_ = ZipfGenerator(n, 0.99, /*seed=*/n * 2654435761u);
  }
}

}  // namespace lilsm
