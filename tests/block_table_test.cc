// Classic block-format table: round trips, varlen values, prefix
// compression, restart-point seeks.
#include "table/block_table.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "lsm/dbformat.h"
#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

TableOptions BlockedOptions() {
  TableOptions options;
  options.env = Env::Default();
  options.format = TableFormat::kBlocked;
  options.key_size = 24;
  return options;
}

std::string VarValue(Key key) {
  return "value-" + std::to_string(key % 97) +
         std::string(key % 200, static_cast<char>('a' + key % 26));
}

class BlockTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("blktable");
    keys_ = RandomGapKeys(10000, 707);
    fname_ = dir_->file("000001.lst");
    std::unique_ptr<TableBuilder> builder;
    ASSERT_LILSM_OK(NewTableBuilder(BlockedOptions(), fname_, &builder));
    for (size_t i = 0; i < keys_.size(); i++) {
      ASSERT_LILSM_OK(builder->Add(keys_[i], PackTag(i + 1, kTypeValue),
                                   VarValue(keys_[i])));
    }
    ASSERT_LILSM_OK(builder->Finish());
    ASSERT_LILSM_OK(OpenTable(BlockedOptions(), fname_, &reader_));
  }

  std::unique_ptr<ScratchDir> dir_;
  std::vector<Key> keys_;
  std::string fname_;
  std::unique_ptr<TableReader> reader_;
};

TEST_F(BlockTableTest, GetFindsEveryKeyWithVariableValues) {
  std::string value;
  uint64_t tag;
  bool found;
  for (size_t i = 0; i < keys_.size(); i += 7) {
    ASSERT_LILSM_OK(reader_->Get(keys_[i], &value, &tag, &found));
    ASSERT_TRUE(found) << i;
    ASSERT_EQ(value, VarValue(keys_[i]));
    ASSERT_EQ(TagSequence(tag), i + 1);
  }
}

TEST_F(BlockTableTest, GetMissesAbsentKeys) {
  std::string value;
  uint64_t tag;
  bool found;
  size_t tried = 0;
  for (size_t i = 0; i + 1 < keys_.size() && tried < 300; i += 13) {
    if (keys_[i + 1] - keys_[i] < 2) continue;
    tried++;
    ASSERT_LILSM_OK(reader_->Get(keys_[i] + 1, &value, &tag, &found));
    EXPECT_FALSE(found);
  }
  ASSERT_GT(tried, 50u);
}

TEST_F(BlockTableTest, IteratorFullScan) {
  auto iter = reader_->NewIterator();
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_EQ(iter->key(), keys_[i]);
    ASSERT_EQ(iter->value().ToString(), VarValue(keys_[i]));
    i++;
  }
  ASSERT_LILSM_OK(iter->status());
  EXPECT_EQ(i, keys_.size());
}

TEST_F(BlockTableTest, SeekLowerBound) {
  auto iter = reader_->NewIterator();
  Random rnd(11);
  for (int trial = 0; trial < 300; trial++) {
    const Key target = rnd.Uniform(keys_.back() + 500);
    iter->Seek(target);
    auto expected = std::lower_bound(keys_.begin(), keys_.end(), target);
    if (expected == keys_.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      ASSERT_EQ(iter->key(), *expected);
    }
  }
}

TEST_F(BlockTableTest, MetadataAndMemory) {
  EXPECT_EQ(reader_->NumEntries(), keys_.size());
  EXPECT_EQ(reader_->MinKey(), keys_.front());
  EXPECT_EQ(reader_->MaxKey(), keys_.back());
  EXPECT_GT(reader_->IndexMemoryUsage(), 0u);
  EXPECT_GT(reader_->FilterMemoryUsage(), 0u);
  EXPECT_EQ(reader_->index(), nullptr);
  EXPECT_TRUE(reader_->RetrainIndex(IndexType::kPGM, IndexConfig())
                  .IsNotSupported());
}

TEST_F(BlockTableTest, ReadAllKeysMatches) {
  std::vector<Key> read;
  ASSERT_LILSM_OK(reader_->ReadAllKeys(&read));
  EXPECT_EQ(read, keys_);
}

TEST(BlockTableEdgeTest, EmptyValuesAndSingleEntry) {
  ScratchDir dir("blkedge");
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(
      NewTableBuilder(BlockedOptions(), dir.file("t.lst"), &builder));
  ASSERT_LILSM_OK(builder->Add(42, PackTag(1, kTypeValue), ""));
  ASSERT_LILSM_OK(builder->Finish());
  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(BlockedOptions(), dir.file("t.lst"), &reader));
  std::string value = "sentinel";
  uint64_t tag;
  bool found;
  ASSERT_LILSM_OK(reader->Get(42, &value, &tag, &found));
  ASSERT_TRUE(found);
  EXPECT_TRUE(value.empty());
}

TEST(BlockTableEdgeTest, CorruptBlockDetected) {
  ScratchDir dir("blkedge");
  const std::string fname = dir.file("t.lst");
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(NewTableBuilder(BlockedOptions(), fname, &builder));
  std::vector<Key> keys = RandomGapKeys(3000, 5);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_LILSM_OK(
        builder->Add(keys[i], PackTag(i + 1, kTypeValue), VarValue(keys[i])));
  }
  ASSERT_LILSM_OK(builder->Finish());

  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents[100] = static_cast<char>(contents[100] ^ 0x7f);  // inside block 0
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(BlockedOptions(), fname, &reader));
  std::string value;
  uint64_t tag;
  bool found;
  // The corrupted block must surface as Corruption when read.
  Status s = reader->Get(keys[0], &value, &tag, &found);
  EXPECT_TRUE(s.IsCorruption());
}

}  // namespace
}  // namespace lilsm
