// FaultEnv semantics: durable-prefix accounting, directory-entry
// durability, crash materialization, and the injection knobs the crash
// torture (db_crash_recovery_test) is built on. Everything here runs
// against the real PosixEnv underneath — the wrapper's model must agree
// with what actually lands on disk after MaterializeCrash.
#include "util/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

// Opens `fname` through `env`, appends `data`, optionally syncs, and
// closes. The file handle is scoped: MaterializeCrash requires none live.
void AppendOnce(Env* env, const std::string& fname, const std::string& data,
                bool sync) {
  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(env->NewWritableFile(fname, &file));
  ASSERT_LILSM_OK(file->Append(data));
  if (sync) ASSERT_LILSM_OK(file->Sync());
  ASSERT_LILSM_OK(file->Close());
}

std::string Contents(const std::string& fname) {
  std::string data;
  EXPECT_LILSM_OK(ReadFileToString(Env::Default(), fname, &data));
  return data;
}

TEST(FaultEnvTest, SyncAdvancesDurablePrefix) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(env.NewWritableFile(fname, &file));
  ASSERT_LILSM_OK(file->Append("hello"));
  EXPECT_EQ(env.WrittenBytes(fname), 5u);
  EXPECT_EQ(env.DurableBytes(fname), 0u);

  ASSERT_LILSM_OK(file->Sync());
  EXPECT_EQ(env.DurableBytes(fname), 5u);

  ASSERT_LILSM_OK(file->Append(" world"));
  EXPECT_EQ(env.WrittenBytes(fname), 11u);
  EXPECT_EQ(env.DurableBytes(fname), 5u);  // unsynced suffix at risk
  ASSERT_LILSM_OK(file->Close());
}

TEST(FaultEnvTest, CrashKeepsOnlyDurablePrefix) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  {
    std::unique_ptr<WritableFile> file;
    ASSERT_LILSM_OK(env.NewWritableFile(fname, &file));
    ASSERT_LILSM_OK(file->Append("synced"));
    ASSERT_LILSM_OK(file->Sync());
    ASSERT_LILSM_OK(file->Append("-lost"));
    ASSERT_LILSM_OK(file->Close());
  }
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));

  env.CutPower();
  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(fname), "synced");
}

TEST(FaultEnvTest, LuckyCrashKeepsEverything) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  AppendOnce(&env, fname, "never-synced", /*sync=*/false);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kEverything));
  EXPECT_EQ(Contents(fname), "never-synced");
}

TEST(FaultEnvTest, RandomPrefixSurvivalIsBounded) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  {
    std::unique_ptr<WritableFile> file;
    ASSERT_LILSM_OK(env.NewWritableFile(fname, &file));
    ASSERT_LILSM_OK(file->Append("abcd"));
    ASSERT_LILSM_OK(file->Sync());
    ASSERT_LILSM_OK(file->Append("efgh"));
    ASSERT_LILSM_OK(file->Close());
  }
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kRandomPrefix, 42));
  const std::string data = Contents(fname);
  ASSERT_GE(data.size(), 4u);  // the synced prefix always survives
  ASSERT_LE(data.size(), 8u);
  EXPECT_EQ(data, std::string("abcdefgh").substr(0, data.size()));
}

TEST(FaultEnvTest, UnsyncedDirectoryEntryVanishes) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  // Data fully synced but the parent directory never was: the inode is
  // durable, its name is not — the file is unreachable after a crash.
  AppendOnce(&env, fname, "data", /*sync=*/true);
  EXPECT_EQ(env.DurableBytes(fname), 4u);
  EXPECT_FALSE(env.EntryDurable(fname));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_FALSE(env.FileExists(fname));
  EXPECT_FALSE(Env::Default()->FileExists(fname));
}

TEST(FaultEnvTest, SyncDirMakesEntriesDurable) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  AppendOnce(&env, fname, "data", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  EXPECT_TRUE(env.EntryDurable(fname));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(fname), "data");
}

TEST(FaultEnvTest, UnsyncedRenameRollsBack) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string current = dir.file("CURRENT");
  const std::string tmp = dir.file("tmp");

  // Install "old" durably, then rename a new version over it without a
  // directory sync: the crash must expose the OLD binding again.
  AppendOnce(&env, current, "old", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  AppendOnce(&env, tmp, "new", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  ASSERT_LILSM_OK(env.RenameFile(tmp, current));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(current), "old");
  EXPECT_EQ(Contents(tmp), "new");  // the durable tmp binding persists
}

TEST(FaultEnvTest, SyncedRenameSurvives) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string current = dir.file("CURRENT");
  const std::string tmp = dir.file("tmp");

  AppendOnce(&env, current, "old", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  AppendOnce(&env, tmp, "new", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  ASSERT_LILSM_OK(env.RenameFile(tmp, current));
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(current), "new");
  EXPECT_FALSE(env.FileExists(tmp));
}

TEST(FaultEnvTest, DropSyncsMakeSyncsLie) {
  ScratchDir dir("fault");
  FaultEnvOptions opts;
  opts.drop_syncs = true;
  FaultEnv env(Env::Default(), opts);
  const std::string fname = dir.file("f");

  AppendOnce(&env, fname, "volatile", /*sync=*/true);  // Sync returns OK...
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));            // ...and so does this
  EXPECT_EQ(env.DurableBytes(fname), 0u);              // but nothing stuck
  EXPECT_FALSE(env.EntryDurable(fname));

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_FALSE(env.FileExists(fname));
}

TEST(FaultEnvTest, FailAfterOpsCutsPower) {
  ScratchDir dir("fault");
  FaultEnvOptions opts;
  opts.fail_after_ops = 2;
  FaultEnv env(Env::Default(), opts);

  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(env.NewWritableFile(dir.file("f"), &file));  // op 1
  ASSERT_LILSM_OK(file->Append("x"));                          // op 2
  Status s = file->Append("y");                                // op 3: cut
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(env.powered_off());
  EXPECT_EQ(env.ops_used(), 2u);

  // Nothing mutating works after the cut — including the best-effort
  // Sync a destructor might attempt.
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(env.SyncDir(dir.path()).IsIOError());
  EXPECT_TRUE(env.RemoveFile(dir.file("f")).IsIOError());
  file->Close();
}

TEST(FaultEnvTest, FailAfterBytesTearsTheCrossingAppend) {
  ScratchDir dir("fault");
  FaultEnvOptions opts;
  opts.fail_after_bytes = 6;
  FaultEnv env(Env::Default(), opts);
  const std::string fname = dir.file("f");

  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(env.NewWritableFile(fname, &file));
  ASSERT_LILSM_OK(file->Append("abcd"));  // 4 bytes: under the limit
  Status s = file->Append("efgh");        // crosses at 6: torn after "ef"
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(env.powered_off());
  EXPECT_EQ(env.WrittenBytes(fname), 6u);
  file->Close();

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kEverything));
  EXPECT_EQ(Contents(fname), "abcdef");
}

TEST(FaultEnvTest, MaterializeReArmsTheEnv) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  AppendOnce(&env, fname, "one", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  env.CutPower();
  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_FALSE(env.powered_off());

  // The same wrapper serves the "recovery run": new writes land.
  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(env.NewWritableFile(dir.file("g"), &file));
  ASSERT_LILSM_OK(file->Append("two"));
  ASSERT_LILSM_OK(file->Sync());
  ASSERT_LILSM_OK(file->Close());
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(fname), "one");
  EXPECT_EQ(Contents(dir.file("g")), "two");
}

TEST(FaultEnvTest, AdoptsPreexistingFilesAsDurable) {
  ScratchDir dir("fault");
  const std::string fname = dir.file("pre");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "existing", fname));

  // The wrapper first touches the directory after `pre` already exists;
  // a crash must not delete state the env did not create.
  FaultEnv env(Env::Default());
  AppendOnce(&env, dir.file("new"), "n", /*sync=*/false);
  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(fname), "existing");
  EXPECT_FALSE(env.FileExists(dir.file("new")));
}

TEST(FaultEnvTest, TruncatingReopenRollsBackWithoutDirSync) {
  ScratchDir dir("fault");
  FaultEnv env(Env::Default());
  const std::string fname = dir.file("f");

  AppendOnce(&env, fname, "old-contents", /*sync=*/true);
  ASSERT_LILSM_OK(env.SyncDir(dir.path()));
  // O_TRUNC reopen binds a fresh inode; without a directory sync the
  // durable namespace still points at the old one.
  AppendOnce(&env, fname, "new", /*sync=*/true);

  ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
  EXPECT_EQ(Contents(fname), "old-contents");
}

TEST(FaultEnvTest, StepMatrixWalksEveryCrashPoint) {
  // The pattern the CURRENT-install regression uses: re-run a protocol
  // with the op budget stepped 1, 2, 3, ... and materialize at each cut.
  // Every intermediate image must be one of the protocol's legal states.
  bool completed = false;
  for (uint64_t budget = 1; budget <= 32 && !completed; budget++) {
    ScratchDir dir("fault");
    FaultEnv env(Env::Default());
    const std::string a = dir.file("a");
    const std::string b = dir.file("b");
    {
      env.SetFailAfterOps(budget);
      Status s;
      std::unique_ptr<WritableFile> fa, fb;
      s = env.NewWritableFile(a, &fa);                     // op 1
      if (s.ok()) s = fa->Append("A");                     // op 2
      if (s.ok()) s = fa->Sync();                          // op 3
      if (s.ok()) s = env.SyncDir(dir.path());             // op 4
      if (s.ok()) s = env.NewWritableFile(b, &fb);         // op 5
      if (s.ok()) s = fb->Append("B");                     // op 6
      if (s.ok()) s = fb->Sync();                          // op 7
      if (s.ok()) s = env.SyncDir(dir.path());             // op 8
      if (fa != nullptr) fa->Close();
      if (fb != nullptr) fb->Close();
      ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly));
      const bool a_ok = env.FileExists(a);
      const bool b_ok = env.FileExists(b);
      if (a_ok) {
        EXPECT_EQ(Contents(a), "A");
      }
      if (b_ok) {
        EXPECT_EQ(Contents(b), "B");
      }
      EXPECT_FALSE(!a_ok && b_ok) << "b durable before a at step " << budget;
      if (s.ok()) {
        EXPECT_TRUE(a_ok && b_ok);
        completed = true;  // the protocol ran to completion: matrix done
      }
    }
  }
  EXPECT_TRUE(completed);
}

}  // namespace
}  // namespace lilsm
