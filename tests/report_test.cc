// Report tables and config-space helpers.
#include "core/report.h"

#include <gtest/gtest.h>

#include "core/config.h"

namespace lilsm {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22222"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Each row ends cleanly with a newline.
  EXPECT_EQ(out.back(), '\n');
}

TEST(ReportTableTest, CsvIsCommaSeparated) {
  ReportTable table("demo");
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(FormatMicros(1.234), "1.23");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KB");
  EXPECT_EQ(FormatBytes(3.5e6), "3.50MB");
  EXPECT_EQ(FormatCount(42), "42");
}

TEST(ConfigTest, IndexSetupToString) {
  IndexSetup setup;
  setup.type = IndexType::kPGM;
  setup.position_boundary = 64;
  EXPECT_EQ(setup.ToString(), "PGM/b64");
  setup.granularity = IndexGranularity::kLevel;
  EXPECT_EQ(setup.ToString(), "PGM/b64/L");
}

TEST(ConfigTest, FromPositionBoundaryHalves) {
  EXPECT_EQ(IndexConfig::FromPositionBoundary(64).epsilon, 32u);
  EXPECT_EQ(IndexConfig::FromPositionBoundary(1).epsilon, 1u);
  EXPECT_EQ(IndexSetup{}.ToIndexConfig().epsilon, 32u);
}

TEST(ConfigTest, EnumerateCoversFullGrid) {
  auto space = EnumerateTypeBoundarySpace();
  EXPECT_EQ(space.size(), 7u * 6u);
  // Every type appears with every boundary.
  for (IndexType type : kAllIndexTypes) {
    size_t count = 0;
    for (const IndexSetup& setup : space) {
      if (setup.type == type) count++;
    }
    EXPECT_EQ(count, 6u);
  }
}

}  // namespace
}  // namespace lilsm
