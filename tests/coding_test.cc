// Varint/fixed-width encoding round-trips and malformed-input handling.
#include "util/coding.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace lilsm {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, UINT32_MAX}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 33,
                     UINT64_MAX - 1, UINT64_MAX}) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, FixedEncodingIsLittleEndian) {
  std::string s;
  PutFixed32(&s, 0x04030201u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 2);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(s[3], 4);
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; i++) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
    values.push_back((1u << i) + 1);
  }
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t v = 0;
    ASSERT_TRUE(GetVarint32(&input, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTripRandom) {
  Random rnd(301);
  std::string s;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; i++) {
    values.push_back(rnd.Skewed(63));
  }
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(&input, &v));
    ASSERT_EQ(v, expected);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 35, UINT64_MAX}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint64(&s, UINT64_MAX);  // 10 bytes
  for (size_t cut = 0; cut < s.size(); cut++) {
    Slice input(s.data(), cut);
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(&input, &v)) << "cut " << cut;
  }
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice(std::string(5000, 'z')));
  Slice input(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.size(), 5000u);
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

TEST(CodingTest, LengthPrefixTruncatedPayloadFails) {
  std::string s;
  PutVarint32(&s, 100);  // claims 100 bytes
  s += "only a few";
  Slice input(s);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

TEST(CodingTest, GetFixedConsumesExactly) {
  std::string s;
  PutFixed32(&s, 7);
  PutFixed64(&s, 9);
  Slice input(s);
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(GetFixed32(&input, &a));
  ASSERT_TRUE(GetFixed64(&input, &b));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 9u);
  EXPECT_TRUE(input.empty());
  EXPECT_FALSE(GetFixed32(&input, &a));
}

}  // namespace
}  // namespace lilsm
