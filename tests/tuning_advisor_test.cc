// TuningAdvisor: recommendations respect the budget and the guidelines.
#include "core/tuning_advisor.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

TuningRequest BaseRequest() {
  TuningRequest request;
  request.sample_keys = GenerateKeys(Dataset::kRandom, 50000, 3);
  request.total_keys = 1000000;
  request.index_memory_budget = 4 << 20;
  return request;
}

TEST(TuningAdvisorTest, RecommendationFitsBudget) {
  TuningRequest request = BaseRequest();
  TuningRecommendation rec;
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(request, &rec));
  EXPECT_LE(rec.estimated_index_memory, request.index_memory_budget);
  EXPECT_FALSE(rec.rationale.empty());
  EXPECT_GT(rec.sstable_target_size, 0u);
}

TEST(TuningAdvisorTest, DiminishingReturnsBoundaryIsBlockEntries) {
  TuningRequest request = BaseRequest();
  request.key_size = 24;
  request.value_size = 1000;
  request.io_block_size = 4096;
  TuningRecommendation rec;
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(request, &rec));
  // entry = 24 + 8 + 1000 = 1032 bytes; 4096/1032 = 3 entries per block.
  EXPECT_EQ(rec.diminishing_returns_boundary, 3u);
  EXPECT_GE(rec.setup.position_boundary, 3u);
}

TEST(TuningAdvisorTest, TighterBudgetMeansCoarserBoundary) {
  TuningRequest rich = BaseRequest();
  rich.index_memory_budget = 64 << 20;
  TuningRequest poor = BaseRequest();
  poor.index_memory_budget = 64 << 10;
  TuningRecommendation rich_rec, poor_rec;
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(rich, &rich_rec));
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(poor, &poor_rec));
  EXPECT_LE(rich_rec.setup.position_boundary,
            poor_rec.setup.position_boundary);
}

TEST(TuningAdvisorTest, ReadOnlyWorkloadGetsLevelGranularity) {
  TuningRequest request = BaseRequest();
  request.workload.write_fraction = 0.0;
  request.workload.point_lookup_fraction = 1.0;
  TuningRecommendation rec;
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(request, &rec));
  EXPECT_EQ(rec.setup.granularity, IndexGranularity::kLevel);
  EXPECT_GE(rec.sstable_target_size, uint64_t{128} << 20);
}

TEST(TuningAdvisorTest, WriteHeavyWorkloadKeepsSmallerSstables) {
  TuningRequest request = BaseRequest();
  request.workload.write_fraction = 0.7;
  TuningRecommendation rec;
  ASSERT_LILSM_OK(TuningAdvisor::Recommend(request, &rec));
  EXPECT_LE(rec.sstable_target_size, uint64_t{16} << 20);
  EXPECT_EQ(rec.setup.granularity, IndexGranularity::kFile);
}

TEST(TuningAdvisorTest, NeedsASample) {
  TuningRequest request;
  TuningRecommendation rec;
  EXPECT_TRUE(TuningAdvisor::Recommend(request, &rec).IsInvalidArgument());
}

TEST(TuningAdvisorTest, MemoryEstimateScalesWithTotalKeys) {
  std::vector<Key> sample = GenerateKeys(Dataset::kRandom, 20000, 5);
  const size_t small = TuningAdvisor::EstimateIndexMemory(
      IndexType::kPGM, 64, sample, 100000, 24);
  const size_t large = TuningAdvisor::EstimateIndexMemory(
      IndexType::kPGM, 64, sample, 1000000, 24);
  EXPECT_GT(small, 0u);
  EXPECT_NEAR(static_cast<double>(large) / small, 10.0, 1.0);
}

}  // namespace
}  // namespace lilsm
