// Bulk-loaded B+-tree: Find correctness against std::upper_bound.
#include "index/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;

size_t ReferenceFind(const std::vector<Key>& keys, Key key) {
  auto it = std::upper_bound(keys.begin(), keys.end(), key);
  if (it == keys.begin()) return 0;
  return static_cast<size_t>(it - keys.begin()) - 1;
}

class BTreeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeTest, FindMatchesReferenceAcrossSizes) {
  for (size_t n : {1ul, 2ul, 15ul, 16ul, 17ul, 1000ul, 50000ul}) {
    std::vector<Key> keys = RandomGapKeys(n, n * 31 + 7);
    SegmentBTree tree;
    tree.BulkLoad(keys, GetParam());
    Random rnd(n);
    for (int trial = 0; trial < 500; trial++) {
      const Key probe = rnd.Uniform(keys.back() + 100);
      ASSERT_EQ(tree.Find(probe), ReferenceFind(keys, probe))
          << "n=" << n << " probe=" << probe;
    }
    // Exact keys must map to themselves.
    for (size_t i = 0; i < keys.size(); i += std::max<size_t>(1, n / 50)) {
      ASSERT_EQ(tree.Find(keys[i]), i);
    }
  }
}

TEST_P(BTreeTest, HeightIsLogarithmic) {
  std::vector<Key> keys = RandomGapKeys(10000, 3);
  SegmentBTree tree;
  tree.BulkLoad(keys, GetParam());
  const uint32_t fanout = std::max(2u, GetParam());
  size_t expected_height = 1;
  size_t capacity = fanout;
  while (capacity < keys.size()) {
    capacity *= fanout;
    expected_height++;
  }
  EXPECT_EQ(tree.height(), expected_height);
}

TEST_P(BTreeTest, MemoryUsageGrowsWithKeys) {
  SegmentBTree small, large;
  small.BulkLoad(RandomGapKeys(100, 1), GetParam());
  large.BulkLoad(RandomGapKeys(10000, 1), GetParam());
  EXPECT_GT(large.MemoryUsage(), small.MemoryUsage());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeTest,
                         ::testing::Values(2u, 4u, 16u, 64u, 256u));

TEST(BTreeEdgeTest, EmptyTree) {
  SegmentBTree tree;
  tree.BulkLoad({}, 16);
  EXPECT_TRUE(tree.empty());
}

TEST(BTreeEdgeTest, KeyBeforeAllMapsToZero) {
  SegmentBTree tree;
  tree.BulkLoad({100, 200, 300}, 16);
  EXPECT_EQ(tree.Find(50), 0u);
  EXPECT_EQ(tree.Find(100), 0u);
  EXPECT_EQ(tree.Find(250), 1u);
  EXPECT_EQ(tree.Find(1000), 2u);
}

}  // namespace
}  // namespace lilsm
