// Shared block cache, DB level: cached results are bit-identical to the
// uncached paper path under randomized churn, eviction keeps the cache
// within budget, compaction invalidates deleted files' blocks, SimEnv I/O
// drops on skewed read-only workloads, and fill_cache=false scans leave
// the cache untouched. The concurrent test runs under TSan in CI.
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/db.h"
#include "tests/test_util.h"
#include "util/sim_env.h"
#include "workload/dataset.h"
#include "workload/zipf.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 56;

DBOptions SmallOptions(size_t block_cache_bytes,
                       TableFormat format = TableFormat::kSegmented) {
  DBOptions options;
  options.write_buffer_size = 64 << 10;
  options.sstable_target_size = 32 << 10;
  options.l0_compaction_trigger = 2;
  options.key_size = 24;
  options.value_size = format == TableFormat::kSegmented ? kValueSize : 0;
  options.table_format = format;
  options.block_cache_bytes = block_cache_bytes;
  return options;
}

std::string ValueFor(Key key, uint64_t version) {
  return DeriveValue(key ^ (version * 0x9E3779B9), kValueSize);
}

/// Applies one pseudo-random mutation step to `db` and mirrors it in
/// `model`; identical seeds produce identical histories across DBs.
void ApplyChurnStep(DB* db, std::map<Key, std::string>* model,
                    const std::vector<Key>& keys, Random* rnd, uint64_t i) {
  const Key key = keys[rnd->Uniform(keys.size())];
  switch (rnd->Uniform(10)) {
    case 0:
      ASSERT_LILSM_OK(db->Delete(key));
      model->erase(key);
      break;
    case 1:
      if (i % 97 == 0) {
        ASSERT_LILSM_OK(db->FlushMemTable());
      }
      [[fallthrough]];
    default: {
      const std::string value = ValueFor(key, i);
      ASSERT_LILSM_OK(db->Put(key, value));
      (*model)[key] = value;
      break;
    }
  }
}

/// Full read-side comparison of `db` against the model: every live key by
/// Get, randomized MultiGet batches (present + absent keys), and a full
/// iterator scan.
void ExpectMatchesModel(DB* db, const std::map<Key, std::string>& model,
                        const std::vector<Key>& keys, uint64_t seed) {
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    EXPECT_EQ(value, expected) << "key " << key;
  }

  Random rnd(seed);
  std::vector<Key> batch;
  for (int round = 0; round < 20; round++) {
    batch.clear();
    for (int j = 0; j < 64; j++) {
      batch.push_back(keys[rnd.Uniform(keys.size())]);
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    ASSERT_LILSM_OK(db->MultiGet(batch, &values, &statuses));
    for (size_t j = 0; j < batch.size(); j++) {
      auto it = model.find(batch[j]);
      if (it == model.end()) {
        EXPECT_TRUE(statuses[j].IsNotFound()) << "key " << batch[j];
      } else {
        ASSERT_LILSM_OK(statuses[j]);
        EXPECT_EQ(values[j], it->second) << "key " << batch[j];
      }
    }
  }

  auto iter = db->NewIterator();
  auto expected = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(iter->key(), expected->first);
    EXPECT_EQ(iter->value().ToString(), expected->second);
  }
  ASSERT_LILSM_OK(iter->status());
  EXPECT_EQ(expected, model.end());
}

class DbBlockCacheTest : public ::testing::TestWithParam<TableFormat> {};

// The core bit-equivalence contract: a cached DB and an uncached DB fed
// the identical randomized churn history answer Get, MultiGet, and full
// scans identically (both also checked against an in-memory model).
TEST_P(DbBlockCacheTest, CachedMatchesUncachedUnderChurn) {
  ScratchDir dir("dbcache_equiv");
  std::unique_ptr<DB> cached, uncached;
  ASSERT_LILSM_OK(DB::Open(SmallOptions(512 << 10, GetParam()),
                           dir.path() + "/cached", &cached));
  ASSERT_LILSM_OK(DB::Open(SmallOptions(0, GetParam()),
                           dir.path() + "/uncached", &uncached));

  const std::vector<Key> keys = RandomGapKeys(4000, 7);
  std::map<Key, std::string> model_c, model_u;
  Random rnd_c(99), rnd_u(99);
  for (uint64_t i = 0; i < 12'000; i++) {
    ApplyChurnStep(cached.get(), &model_c, keys, &rnd_c, i);
    ApplyChurnStep(uncached.get(), &model_u, keys, &rnd_u, i);
  }
  ASSERT_EQ(model_c, model_u);  // identical histories by construction
  ASSERT_LILSM_OK(cached->FlushMemTable());
  ASSERT_LILSM_OK(uncached->FlushMemTable());

  ExpectMatchesModel(cached.get(), model_c, keys, 1);
  ExpectMatchesModel(uncached.get(), model_u, keys, 1);
  // Re-read so the second pass is served from a warm cache.
  ExpectMatchesModel(cached.get(), model_c, keys, 2);
  EXPECT_GT(cached->stats()->Count(Counter::kBlockCacheHits), 0u);
  EXPECT_EQ(uncached->stats()->Count(Counter::kBlockCacheHits), 0u);
  EXPECT_EQ(uncached->stats()->Count(Counter::kBlockCacheMisses), 0u);
  EXPECT_EQ(uncached->BlockCacheMemory(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Formats, DbBlockCacheTest,
                         ::testing::Values(TableFormat::kSegmented,
                                           TableFormat::kBlocked));

// A cache far smaller than the working set must evict (not grow past its
// budget) while every lookup stays correct.
TEST(DbBlockCacheEvictionTest, EvictionUnderCapacityPressure) {
  ScratchDir dir("dbcache_evict");
  constexpr size_t kCapacity = 32 << 10;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(SmallOptions(kCapacity), dir.path() + "/db", &db));

  const std::vector<Key> keys = RandomGapKeys(6000, 21);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  std::string value;
  for (int pass = 0; pass < 2; pass++) {
    for (size_t i = 0; i < keys.size(); i += 3) {
      ASSERT_LILSM_OK(db->Get(keys[i], &value));
      EXPECT_EQ(value, ValueFor(keys[i], 0));
    }
  }
  EXPECT_GT(db->stats()->Count(Counter::kBlockCacheEvictions), 0u);
  EXPECT_LE(db->BlockCacheMemory(), kCapacity);
  EXPECT_GT(db->BlockCacheMemory(), 0u);
}

// After compaction deletes input files, their blocks are purged: no stale
// block is served (reads see the post-compaction values) and the purged
// bytes are returned to the budget.
TEST(DbBlockCacheInvalidationTest, CompactionPurgesDeletedFilesBlocks) {
  ScratchDir dir("dbcache_inval");
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(
      DB::Open(SmallOptions(4 << 20), dir.path() + "/db", &db));

  const std::vector<Key> keys = RandomGapKeys(3000, 5);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (Key key : keys) {  // warm the cache with the old files' blocks
    ASSERT_LILSM_OK(db->Get(key, &value));
  }
  const size_t warm = db->BlockCacheMemory();
  ASSERT_GT(warm, 0u);

  // Rewrite everything and merge the tree: the warmed files all die, and
  // obsolete-file GC purges their blocks as each compaction retires them.
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 1)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  ASSERT_LILSM_OK(db->CompactAll());
  EXPECT_LT(db->BlockCacheMemory(), warm);

  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    EXPECT_EQ(value, ValueFor(key, 1)) << "stale value for key " << key;
  }
  // Re-reads repopulated from the live files only.
  EXPECT_GT(db->BlockCacheMemory(), 0u);
}

// The acceptance criterion: on a zipfian read-only workload whose hot set
// fits in the cache, per-op Env reads drop measurably versus cache-off,
// with bit-identical results.
TEST(DbBlockCacheIoTest, ZipfianReadsCutEnvReads) {
  ScratchDir dir("dbcache_io");
  SimEnvOptions sim_options;
  sim_options.read_base_latency_ns = 0;  // count I/O, don't simulate it
  sim_options.read_per_byte_ns = 0.0;

  const std::vector<Key> keys = RandomGapKeys(8000, 13);
  ZipfGenerator zipf(keys.size(), 0.99, 17);
  std::vector<Key> requests;
  for (int i = 0; i < 20'000; i++) {
    requests.push_back(keys[zipf.NextScrambled()]);
  }

  uint64_t reads[2] = {0, 0};
  std::vector<std::string> results[2];
  for (int cached = 0; cached < 2; cached++) {
    SimEnv env(Env::Default(), sim_options);
    DBOptions options = SmallOptions(cached ? (8 << 20) : 0);
    options.env = &env;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(
        options, dir.path() + (cached ? "/cached" : "/uncached"), &db));
    for (Key key : keys) {
      ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
    }
    ASSERT_LILSM_OK(db->FlushMemTable());
    ASSERT_LILSM_OK(db->CompactUntilStable());

    const uint64_t before = env.io_stats()->random_reads.load();
    std::string value;
    for (Key key : requests) {
      ASSERT_LILSM_OK(db->Get(key, &value));
      results[cached].push_back(value);
    }
    reads[cached] = env.io_stats()->random_reads.load() - before;
  }
  EXPECT_EQ(results[0], results[1]);  // bit-identical answers
  // The zipfian hot set fits: the cached run must do far fewer device
  // reads (empirically ~0 after warmup; assert a conservative 2x).
  EXPECT_LT(reads[1] * 2, reads[0]);
}

// fill_cache=false serves hits but never populates: a full cold scan with
// it set leaves the cache empty, and subsequent point lookups with the
// default options do populate it.
TEST(DbBlockCacheFillTest, FillCacheFalseDoesNotPopulate) {
  ScratchDir dir("dbcache_fill");
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(
      DB::Open(SmallOptions(4 << 20), dir.path() + "/db", &db));
  const std::vector<Key> keys = RandomGapKeys(3000, 3);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  ReadOptions no_fill;
  no_fill.fill_cache = false;
  {
    auto iter = db->NewIterator(no_fill);
    size_t n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    ASSERT_LILSM_OK(iter->status());
    EXPECT_EQ(n, keys.size());
  }
  std::string value;
  ASSERT_LILSM_OK(db->Get(no_fill, keys[0], &value));
  EXPECT_EQ(db->BlockCacheMemory(), 0u);

  ASSERT_LILSM_OK(db->Get(keys[0], &value));  // default: fills
  EXPECT_GT(db->BlockCacheMemory(), 0u);
}

// Concurrent hits, misses, evictions, and compaction-driven invalidation
// on a tiny cache; runs under TSan/ASan in CI. Asserts only per-thread
// read correctness (each writer's keys are disjoint and written once).
TEST(DbBlockCacheConcurrencyTest, ConcurrentHitMissChurnIsRaceFree) {
  ScratchDir dir("dbcache_conc");
  DBOptions options = SmallOptions(64 << 10);
  options.concurrency = ConcurrencyMode::kBackground;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  constexpr uint64_t kPerWriter = 4000;
  auto key_for = [](uint64_t writer, uint64_t i) {
    return writer * 1'000'000 + i + 1;
  };
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (uint64_t w = 0; w < 2; w++) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter && !failed.load(); i++) {
        const Key key = key_for(w, i);
        if (!db->Put(key, ValueFor(key, 0)).ok()) failed.store(true);
      }
    });
  }
  for (int r = 0; r < 3; r++) {
    threads.emplace_back([&, r] {
      Random rnd(55 + r);
      std::string value;
      for (int i = 0; i < 6000 && !failed.load(); i++) {
        const uint64_t w = rnd.Uniform(2);
        const Key key = key_for(w, rnd.Uniform(kPerWriter));
        Status s = db->Get(key, &value);
        if (s.ok()) {
          if (value != ValueFor(key, 0)) failed.store(true);
        } else if (!s.IsNotFound()) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (uint64_t w = 0; w < 2; w++) {
    for (uint64_t i = 0; i < kPerWriter; i += 7) {
      ASSERT_LILSM_OK(db->Get(key_for(w, i), &value));
      EXPECT_EQ(value, ValueFor(key_for(w, i), 0));
    }
  }
}

}  // namespace
}  // namespace lilsm
