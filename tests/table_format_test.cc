// On-disk format primitives: handles, footer, checksummed blocks, user-key
// encoding.
#include "table/format.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

TEST(BlockHandleTest, RoundTrip) {
  BlockHandle handle;
  handle.offset = 123456789;
  handle.size = 42;
  std::string encoded;
  handle.EncodeTo(&encoded);
  BlockHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input));
  EXPECT_EQ(decoded.offset, handle.offset);
  EXPECT_EQ(decoded.size, handle.size);
}

TEST(FooterTest, RoundTripAndFixedSize) {
  Footer footer;
  footer.meta_handle = {100, 10};
  footer.bloom_handle = {200, 20};
  footer.index_handle = {300, 30};
  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(encoded.size(), Footer::kEncodedLength);

  Footer decoded;
  Slice input(encoded);
  ASSERT_LILSM_OK(decoded.DecodeFrom(&input));
  EXPECT_EQ(decoded.meta_handle.offset, 100u);
  EXPECT_EQ(decoded.bloom_handle.size, 20u);
  EXPECT_EQ(decoded.index_handle.offset, 300u);
}

TEST(FooterTest, RejectsBadMagic) {
  Footer footer;
  std::string encoded;
  footer.EncodeTo(&encoded);
  encoded.back() = static_cast<char>(encoded.back() ^ 1);
  Footer decoded;
  Slice input(encoded);
  EXPECT_TRUE(decoded.DecodeFrom(&input).IsCorruption());
}

TEST(ChecksummedBlockTest, WriteReadVerify) {
  ScratchDir dir("fmt");
  const std::string fname = dir.file("blk");
  std::unique_ptr<WritableFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewWritableFile(fname, &file));
  const std::string payload(10000, 'p');
  BlockHandle handle;
  ASSERT_LILSM_OK(WriteChecksummedBlock(file.get(), 0, payload, &handle));
  ASSERT_LILSM_OK(file->Close());
  EXPECT_EQ(handle.size, payload.size() + 4);

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &reader));
  std::string contents;
  ASSERT_LILSM_OK(ReadChecksummedBlock(reader.get(), handle, &contents));
  EXPECT_EQ(contents, payload);

  // Any flipped byte must be caught.
  BlockHandle bad = handle;
  std::string raw;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &raw));
  raw[500] = static_cast<char>(raw[500] ^ 0xff);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), raw, fname));
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &reader));
  EXPECT_TRUE(ReadChecksummedBlock(reader.get(), bad, &contents)
                  .IsCorruption());
}

TEST(UserKeyCodecTest, BigEndianOrderMatchesIntegerOrder) {
  Random rnd(3);
  char a_buf[24], b_buf[24];
  for (int trial = 0; trial < 2000; trial++) {
    const uint64_t a = rnd.Next();
    const uint64_t b = rnd.Next();
    EncodeUserKey(a, 24, a_buf);
    EncodeUserKey(b, 24, b_buf);
    EXPECT_EQ(a < b, memcmp(a_buf, b_buf, 24) < 0);
    EXPECT_EQ(DecodeUserKey(a_buf), a);
  }
}

TEST(UserKeyCodecTest, PaddingIsZero) {
  char buf[24];
  EncodeUserKey(0x0102030405060708ull, 24, buf);
  for (int i = 8; i < 24; i++) EXPECT_EQ(buf[i], 0);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(buf[7]), 0x08);
}

}  // namespace
}  // namespace lilsm
