// Stats timers/counters and per-level read accounting.
#include "util/stats.h"

#include <gtest/gtest.h>

namespace lilsm {
namespace {

TEST(StatsTest, CountersAccumulate) {
  Stats stats;
  stats.Add(Counter::kPointLookups);
  stats.Add(Counter::kPointLookups, 9);
  EXPECT_EQ(stats.Count(Counter::kPointLookups), 10u);
  EXPECT_EQ(stats.Count(Counter::kRangeLookups), 0u);
}

TEST(StatsTest, TimersTrackTotalsAndMeans) {
  Stats stats;
  stats.AddTime(Timer::kDiskRead, 1000);
  stats.AddTime(Timer::kDiskRead, 3000);
  EXPECT_EQ(stats.TimeNanos(Timer::kDiskRead), 4000u);
  EXPECT_EQ(stats.TimerCount(Timer::kDiskRead), 2u);
  EXPECT_DOUBLE_EQ(stats.MeanMicros(Timer::kDiskRead), 2.0);
}

TEST(StatsTest, ScopedTimerRecordsElapsed) {
  Stats stats;
  Env* env = Env::Default();
  {
    ScopedTimer timer(&stats, Timer::kBloomCheck, env);
    volatile int x = 0;
    for (int i = 0; i < 10000; i++) x = x + i;
  }
  EXPECT_EQ(stats.TimerCount(Timer::kBloomCheck), 1u);
  EXPECT_GT(stats.TimeNanos(Timer::kBloomCheck), 0u);
}

TEST(StatsTest, NullTargetIsNoOp) {
  Env* env = Env::Default();
  ScopedTimer timer(nullptr, Timer::kBloomCheck, env);  // must not crash
}

TEST(StatsTest, LevelReadsAttributeByLevel) {
  Stats stats;
  stats.AddLevelRead(0, 100);
  stats.AddLevelRead(2, 300);
  stats.AddLevelRead(2, 200);
  EXPECT_EQ(stats.LevelReadNanos(0), 100u);
  EXPECT_EQ(stats.LevelReads(2), 2u);
  EXPECT_EQ(stats.LevelReadNanos(2), 500u);
  stats.AddLevelRead(99, 5);  // out of range: ignored, no crash
}

TEST(StatsTest, ResetClearsEverything) {
  Stats stats;
  stats.Add(Counter::kWrites, 5);
  stats.AddTime(Timer::kDiskRead, 100);
  stats.AddLevelRead(1, 10);
  stats.Reset();
  EXPECT_EQ(stats.Count(Counter::kWrites), 0u);
  EXPECT_EQ(stats.TimeNanos(Timer::kDiskRead), 0u);
  EXPECT_EQ(stats.LevelReads(1), 0u);
}

TEST(StatsTest, NamesAreStable) {
  EXPECT_STREQ(TimerName(Timer::kDiskRead), "disk_read");
  EXPECT_STREQ(TimerName(Timer::kCompactTrain), "compact_train");
  EXPECT_STREQ(CounterName(Counter::kBloomNegatives), "bloom_negatives");
  EXPECT_STREQ(TimerName(Timer::kMultiGet), "multiget");
  EXPECT_STREQ(CounterName(Counter::kMultiGetKeys), "multiget_keys");
  EXPECT_STREQ(CounterName(Counter::kMultiGetBatches), "multiget_batches");
  // Every enum value must have a real name (no "unknown" holes).
  for (int t = 0; t < static_cast<int>(Timer::kNumTimers); t++) {
    EXPECT_STRNE(TimerName(static_cast<Timer>(t)), "unknown") << t;
  }
  for (int c = 0; c < static_cast<int>(Counter::kNumCounters); c++) {
    EXPECT_STRNE(CounterName(static_cast<Counter>(c)), "unknown") << c;
  }
}

TEST(StatsTest, ToStringListsActiveEntries) {
  Stats stats;
  stats.Add(Counter::kFlushes, 3);
  stats.AddTime(Timer::kCompactTotal, 5000);
  const std::string out = stats.ToString();
  EXPECT_NE(out.find("flushes"), std::string::npos);
  EXPECT_NE(out.find("compact_total"), std::string::npos);
  EXPECT_EQ(out.find("disk_read"), std::string::npos);
}

}  // namespace
}  // namespace lilsm
