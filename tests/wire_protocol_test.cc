// Wire-protocol robustness: every message round-trips bit-identically,
// and truncated / corrupt-CRC / oversized / runt frames decode to clean
// errors — the framing layer must never crash, over-consume, or hand a
// damaged payload to the dispatcher.
#include "server/wire_protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lsm/write_batch.h"
#include "tests/test_util.h"
#include "util/coding.h"

namespace lilsm {
namespace wire {
namespace {

Frame DecodeOne(std::string buf) {
  Frame frame;
  EXPECT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame), DecodeResult::kFrame);
  EXPECT_TRUE(buf.empty());
  return frame;
}

TEST(WireFrameTest, RoundTripsTypeIdAndBody) {
  std::string buf;
  EncodeFrame(&buf, MessageType::kMultiGetRequest, 0xdeadbeef,
              Slice("payload bytes"));
  Frame frame = DecodeOne(buf);
  EXPECT_EQ(frame.type, MessageType::kMultiGetRequest);
  EXPECT_EQ(frame.request_id, 0xdeadbeefu);
  EXPECT_EQ(frame.body, "payload bytes");
}

TEST(WireFrameTest, RoundTripsEmptyBodyAndBinaryBody) {
  std::string buf;
  EncodeFrame(&buf, MessageType::kPingRequest, 1, Slice());
  Frame frame = DecodeOne(buf);
  EXPECT_EQ(frame.type, MessageType::kPingRequest);
  EXPECT_TRUE(frame.body.empty());

  std::string binary("\x00\xff\x00\x01", 4);
  buf.clear();
  EncodeFrame(&buf, MessageType::kWriteRequest, 2, Slice(binary));
  frame = DecodeOne(buf);
  EXPECT_EQ(frame.body, binary);
}

TEST(WireFrameTest, DecodesBackToBackFramesInOneBuffer) {
  std::string buf;
  EncodeFrame(&buf, MessageType::kGetRequest, 1, Slice("a"));
  EncodeFrame(&buf, MessageType::kGetRequest, 2, Slice("bb"));
  Frame frame;
  ASSERT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame), DecodeResult::kFrame);
  EXPECT_EQ(frame.request_id, 1u);
  ASSERT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame), DecodeResult::kFrame);
  EXPECT_EQ(frame.request_id, 2u);
  EXPECT_TRUE(buf.empty());
}

TEST(WireFrameTest, TruncatedFramesNeedMoreAtEveryPrefix) {
  std::string full;
  EncodeFrame(&full, MessageType::kGetRequest, 7, Slice("body"));
  // Every strict prefix must report kNeedMore and leave the buffer alone.
  for (size_t cut = 0; cut < full.size(); cut++) {
    std::string buf = full.substr(0, cut);
    const std::string before = buf;
    Frame frame;
    EXPECT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame),
              DecodeResult::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(buf, before);
  }
}

TEST(WireFrameTest, EveryFlippedBitFailsTheCrc) {
  std::string full;
  EncodeFrame(&full, MessageType::kGetRequest, 7, Slice("crc coverage"));
  // Flip one bit anywhere in the payload (or its stored CRC): decode must
  // report kBadCrc, never a frame with damaged contents.
  for (size_t i = 4; i < full.size(); i++) {
    std::string buf = full;
    buf[i] = static_cast<char>(buf[i] ^ 0x20);
    Frame frame;
    EXPECT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame),
              DecodeResult::kBadCrc)
        << "flipped byte " << i;
  }
}

TEST(WireFrameTest, OversizedAndRuntLengthsAreRejected) {
  // A frame declaring more than the limit is kTooLarge even before the
  // payload arrives (the event loop must not buffer it).
  std::string buf;
  PutFixed32(&buf, 1024);
  PutFixed32(&buf, 0);  // crc, never checked
  Frame frame;
  EXPECT_EQ(DecodeFrame(&buf, /*max_payload=*/512, &frame),
            DecodeResult::kTooLarge);

  // A payload too small to hold type + request id is structurally broken.
  for (uint32_t len = 0; len < 5; len++) {
    buf.clear();
    PutFixed32(&buf, len);
    PutFixed32(&buf, 0);
    buf.append(len, 'x');
    EXPECT_EQ(DecodeFrame(&buf, kMaxPayloadBytes, &frame),
              DecodeResult::kBadFrame)
        << "declared length " << len;
  }
}

TEST(WireFrameTest, MaxPayloadClampsToProtocolCeiling) {
  std::string buf;
  PutFixed32(&buf, kMaxPayloadBytes + 1);
  PutFixed32(&buf, 0);
  Frame frame;
  // Even a caller passing a huge limit cannot exceed the protocol cap.
  EXPECT_EQ(DecodeFrame(&buf, 0xffffffffu, &frame), DecodeResult::kTooLarge);
}

TEST(WireStatusTest, RoundTripsEveryCode) {
  const Status cases[] = {
      Status::OK(),
      Status::NotFound("k"),
      Status::Corruption("bad block", "table 7"),
      Status::NotSupported("nope"),
      Status::InvalidArgument("flag"),
      Status::IOError("disk", "sector 9"),
  };
  for (const Status& in : cases) {
    std::string buf;
    EncodeStatus(&buf, in);
    Slice input(buf);
    Status out;
    ASSERT_TRUE(DecodeStatus(&input, &out));
    EXPECT_TRUE(input.empty());
    EXPECT_EQ(out.ToString(), in.ToString());
  }
}

TEST(WireStatusTest, OutOfRangeCodeDecodesToCorruption) {
  std::string buf;
  buf.push_back(static_cast<char>(99));
  PutVarint32(&buf, 0);
  Slice input(buf);
  Status out;
  ASSERT_TRUE(DecodeStatus(&input, &out));
  EXPECT_TRUE(out.IsCorruption());
}

TEST(WireMessageTest, GetRequestRoundTrip) {
  GetRequest in;
  in.snapshot_id = 42;
  in.key = 0x0123456789abcdefull;
  std::string buf;
  in.EncodeTo(&buf);
  GetRequest out;
  ASSERT_TRUE(out.DecodeFrom(Slice(buf)));
  EXPECT_EQ(out.snapshot_id, in.snapshot_id);
  EXPECT_EQ(out.key, in.key);
  // Trailing garbage is a malformed body.
  buf.push_back('x');
  EXPECT_FALSE(out.DecodeFrom(Slice(buf)));
}

TEST(WireMessageTest, MultiGetRequestRoundTripAndCountMismatch) {
  MultiGetRequest in;
  in.snapshot_id = 7;
  for (Key k = 100; k < 140; k++) in.keys.push_back(k);
  std::string buf;
  in.EncodeTo(&buf);
  MultiGetRequest out;
  ASSERT_TRUE(out.DecodeFrom(Slice(buf)));
  EXPECT_EQ(out.keys, in.keys);
  // A count that disagrees with the byte length must be rejected — it is
  // how a malicious frame would request a huge allocation.
  buf.resize(buf.size() - 8);
  EXPECT_FALSE(out.DecodeFrom(Slice(buf)));
}

TEST(WireMessageTest, WriteRequestRoundTripsSyncTristate) {
  for (int variant = 0; variant < 3; variant++) {
    WriteRequest in;
    in.sync = variant == 0 ? std::nullopt
                           : std::optional<bool>(variant == 2);
    in.disable_wal = variant == 1;
    in.batch_rep = "opaque batch bytes";
    std::string buf;
    in.EncodeTo(&buf);
    WriteRequest out;
    ASSERT_TRUE(out.DecodeFrom(Slice(buf)));
    EXPECT_EQ(out.sync, in.sync);
    EXPECT_EQ(out.disable_wal, in.disable_wal);
    EXPECT_EQ(out.batch_rep, in.batch_rep);
  }
  // Unknown flag bits come from a newer (or broken) client: reject.
  std::string buf;
  buf.push_back(static_cast<char>(0x10));
  WriteRequest out;
  EXPECT_FALSE(out.DecodeFrom(Slice(buf)));
}

TEST(WireMessageTest, ResponsesRoundTrip) {
  GetResponse get_in;
  get_in.value = "some value";
  std::string buf;
  get_in.EncodeTo(&buf);
  GetResponse get_out;
  ASSERT_TRUE(get_out.DecodeFrom(Slice(buf)));
  EXPECT_EQ(get_out.value, get_in.value);

  MultiGetResponse mg_in;
  mg_in.statuses = {Status::OK(), Status::NotFound("k"), Status::OK()};
  mg_in.values = {"v0", "", "v2"};
  buf.clear();
  mg_in.EncodeTo(&buf);
  MultiGetResponse mg_out;
  ASSERT_TRUE(mg_out.DecodeFrom(Slice(buf)));
  ASSERT_EQ(mg_out.statuses.size(), 3u);
  EXPECT_TRUE(mg_out.statuses[0].ok());
  EXPECT_TRUE(mg_out.statuses[1].IsNotFound());
  EXPECT_EQ(mg_out.values[0], "v0");
  EXPECT_EQ(mg_out.values[2], "v2");

  // An error batch status carries no per-key section.
  MultiGetResponse err_in;
  err_in.status = Status::IOError("backing file");
  buf.clear();
  err_in.EncodeTo(&buf);
  MultiGetResponse err_out;
  ASSERT_TRUE(err_out.DecodeFrom(Slice(buf)));
  EXPECT_TRUE(err_out.status.IsIOError());
  EXPECT_TRUE(err_out.statuses.empty());

  NewSnapshotResponse snap_in;
  snap_in.snapshot_id = 3;
  snap_in.sequence = 991;
  buf.clear();
  snap_in.EncodeTo(&buf);
  NewSnapshotResponse snap_out;
  ASSERT_TRUE(snap_out.DecodeFrom(Slice(buf)));
  EXPECT_EQ(snap_out.snapshot_id, 3u);
  EXPECT_EQ(snap_out.sequence, 991u);
}

TEST(WireBatchRepTest, AcceptsRealBatchesRejectsDamage) {
  WriteBatch batch;
  batch.Put(1, "one");
  batch.Delete(2);
  batch.Put(3, "three");
  const Slice rep = batch.Contents();
  uint32_t count = 0;
  ASSERT_TRUE(ValidateBatchRep(rep, &count));
  EXPECT_EQ(count, 3u);

  // Truncated record tail.
  EXPECT_FALSE(ValidateBatchRep(Slice(rep.data(), rep.size() - 1), &count));
  // Shorter than the 12-byte header.
  EXPECT_FALSE(ValidateBatchRep(Slice(rep.data(), 11), &count));
  // Unknown record type byte.
  std::string bad(rep.data(), rep.size());
  bad[12] = static_cast<char>(0x7f);
  EXPECT_FALSE(ValidateBatchRep(Slice(bad), &count));
  // Count field disagreeing with the records present.
  std::string miscount(rep.data(), rep.size());
  EncodeFixed32(miscount.data() + 8, 2);
  EXPECT_FALSE(ValidateBatchRep(Slice(miscount), &count));
  // An empty batch is structurally valid.
  WriteBatch empty;
  ASSERT_TRUE(ValidateBatchRep(empty.Contents(), &count));
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace wire
}  // namespace lilsm
