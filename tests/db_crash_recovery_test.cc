// Randomized kill-restart torture and targeted crash regressions over
// FaultEnv: after any simulated power cut, the recovered DB must hold an
// exact prefix of the committed write sequence — nothing invented, no
// gaps, and (under sync_wal) nothing acked lost. Also the CURRENT-install
// step-crash matrix, the typed mid-log corruption refusal, and the
// persisted-model sidecar paths (zero-key-scan opens, corrupt-sidecar
// fallback).
//
// Schedule count: LILSM_TORTURE_SCHEDULES (default 1000). CI's sanitizer
// jobs bound it; a local `LILSM_TORTURE_SCHEDULES=20000 ./db_crash_
// recovery_test` runs a deeper soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "table/format.h"
#include "tests/test_util.h"
#include "util/fault_env.h"
#include "util/random.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 16;

int Schedules() {
  const char* env = std::getenv("LILSM_TORTURE_SCHEDULES");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1000;
}

// The committed value for the i-th write of a schedule: ties the payload
// to both the key and the write index so distinct states differ.
std::string ValueAt(Key key, uint64_t index) {
  return DeriveValue(key ^ (index * 0x9E3779B97F4A7C15ull), kValueSize);
}

DBOptions TortureOptions(Env* env, Random* rnd) {
  DBOptions options;
  options.env = env;
  options.key_size = 24;
  options.value_size = kValueSize;
  // Tiny, randomized geometry so schedules crash inside flushes,
  // compactions, and WAL rolls — not just between Puts.
  options.write_buffer_size = 1024 << rnd->Uniform(7);  // 1 KiB .. 64 KiB
  options.sstable_target_size = 8 << 10;
  options.l0_compaction_trigger = 2;
  return options;
}

// One serial kill-restart schedule. Writes key i = 0, 1, 2, ... (values
// bound to i), cuts power mid-stream via a random ops- or bytes-limit,
// materializes the crash, recovers, and asserts the surviving state is
// model(p) for a single prefix length p with floor <= p <= attempted.
void RunSerialSchedule(uint64_t seed) {
  Random rnd(seed);
  ScratchDir dir("crash");
  FaultEnv env(Env::Default());
  const std::string dbname = dir.file("db");
  const bool sync = rnd.OneIn(2);
  const uint64_t target_writes = 40 + rnd.Uniform(200);

  uint64_t acked = 0;
  bool failed = false;
  {
    DBOptions options = TortureOptions(&env, &rnd);
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
    // Arm the fault after Open so the cut lands in the write path (the
    // open/recovery path gets its own step matrix below).
    if (rnd.OneIn(2)) {
      env.SetFailAfterOps(1 + rnd.Uniform(120));
    } else {
      env.SetFailAfterBytes(256 + rnd.Uniform(24 << 10));
    }
    WriteOptions wopts;
    wopts.sync = sync;
    for (uint64_t i = 0; i < target_writes; i++) {
      if (!db->Put(wopts, i, ValueAt(i, i)).ok()) {
        failed = true;
        break;
      }
      acked++;
    }
    env.CutPower();  // limit never reached: crash right here instead
  }
  const uint64_t attempted = acked + (failed ? 1 : 0);
  const CrashSurvival survival = static_cast<CrashSurvival>(rnd.Uniform(3));
  ASSERT_LILSM_OK(env.MaterializeCrash(survival, rnd.Next()));

  // Recover and hunt for the prefix point.
  DBOptions options = TortureOptions(&env, &rnd);
  std::unique_ptr<DB> db;
  Status open_status = DB::Open(options, dbname, &db);
  ASSERT_TRUE(open_status.ok()) << "schedule " << seed << " failed to recover: "
                                << open_status.ToString();
  uint64_t p = 0;
  std::string value;
  while (p < attempted) {
    Status s = db->Get(p, &value);
    if (s.IsNotFound()) break;
    ASSERT_TRUE(s.ok()) << "schedule " << seed << " key " << p << ": "
                        << s.ToString();
    ASSERT_EQ(value, ValueAt(p, p))
        << "schedule " << seed << " recovered a wrong value for key " << p;
    p++;
  }
  // No gaps: everything past the prefix point must be absent.
  for (uint64_t i = p; i < attempted + 4; i++) {
    Status s = db->Get(i, &value);
    ASSERT_TRUE(s.IsNotFound())
        << "schedule " << seed << ": key " << i
        << " survived past the recovery prefix p=" << p;
  }
  const uint64_t floor = sync ? acked : 0;
  ASSERT_GE(p, floor) << "schedule " << seed
                      << " lost acked synced writes (acked=" << acked << ")";
  ASSERT_LE(p, attempted) << "schedule " << seed << " invented writes";
}

TEST(DbCrashTortureTest, SerialSchedulesRecoverAPrefix) {
  const int schedules = Schedules();
  for (int i = 0; i < schedules; i++) {
    RunSerialSchedule(0x5EED0000u + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "stopping after first divergent schedule";
    }
  }
}

// Group-commit schedule: four writers with disjoint key ranges race
// sync_wal'd Puts into the group-commit queue while a random fault cuts
// power. Batches from different writers share WAL records, so this
// exercises crashes on group boundaries; per writer, the recovered keys
// must still be an exact prefix of its sequence covering every ack.
void RunGroupCommitSchedule(uint64_t seed) {
  constexpr int kWriters = 4;
  constexpr uint64_t kStride = 1u << 20;  // disjoint per-writer key ranges
  Random rnd(seed);
  ScratchDir dir("crashgc");
  FaultEnv env(Env::Default());
  const std::string dbname = dir.file("db");
  const uint64_t per_writer = 20 + rnd.Uniform(60);

  uint64_t acked[kWriters] = {};
  {
    DBOptions options = TortureOptions(&env, &rnd);
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
    env.SetFailAfterOps(1 + rnd.Uniform(200));
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; w++) {
      threads.emplace_back([&, w] {
        WriteOptions wopts;
        wopts.sync = true;
        for (uint64_t i = 0; i < per_writer; i++) {
          const Key key = static_cast<Key>(w) * kStride + i;
          if (!db->Put(wopts, key, ValueAt(key, i)).ok()) break;
          acked[w]++;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    env.CutPower();
  }
  ASSERT_LILSM_OK(
      env.MaterializeCrash(static_cast<CrashSurvival>(rnd.Uniform(3)),
                           rnd.Next()));

  DBOptions options = TortureOptions(&env, &rnd);
  std::unique_ptr<DB> db;
  Status open_status = DB::Open(options, dbname, &db);
  ASSERT_TRUE(open_status.ok()) << "schedule " << seed << " failed to recover: "
                                << open_status.ToString();
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    uint64_t p = 0;
    while (p < per_writer) {
      const Key key = static_cast<Key>(w) * kStride + p;
      Status s = db->Get(key, &value);
      if (s.IsNotFound()) break;
      ASSERT_LILSM_OK(s);
      ASSERT_EQ(value, ValueAt(key, p)) << "schedule " << seed;
      p++;
    }
    for (uint64_t i = p; i < per_writer; i++) {
      const Key key = static_cast<Key>(w) * kStride + i;
      ASSERT_TRUE(db->Get(key, &value).IsNotFound())
          << "schedule " << seed << " writer " << w << ": gap before key "
          << key;
    }
    // Group commit syncs before acking: every acked write must survive;
    // at most the single in-flight write may land beyond the acks.
    ASSERT_GE(p, acked[w]) << "schedule " << seed << " writer " << w
                           << " lost acked writes";
    ASSERT_LE(p, acked[w] + 1) << "schedule " << seed << " writer " << w
                               << " invented writes";
  }
}

TEST(DbCrashTortureTest, GroupCommitSchedulesKeepEveryAck) {
  const int schedules = std::max(Schedules() / 10, 5);
  for (int i = 0; i < schedules; i++) {
    RunGroupCommitSchedule(0x6C0DE000u + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "stopping after first divergent schedule";
    }
  }
}

// With a volatile write cache (syncs dropped), a crash may lose any
// suffix — the contract degrades to "recovers cleanly, invents nothing,
// correct values for whatever survives". Prefix equality is deliberately
// NOT asserted: dropped syncs can legally tear each WAL independently.
TEST(DbCrashTortureTest, DroppedSyncsStillRecoverCleanly) {
  const int schedules = std::max(Schedules() / 10, 5);
  for (int i = 0; i < schedules; i++) {
    const uint64_t seed = 0xD20Bu + static_cast<uint64_t>(i);
    Random rnd(seed);
    ScratchDir dir("crashds");
    FaultEnvOptions fopts;
    fopts.drop_syncs = true;
    FaultEnv env(Env::Default(), fopts);
    const std::string dbname = dir.file("db");
    const uint64_t writes = 40 + rnd.Uniform(120);
    {
      DBOptions options = TortureOptions(&env, &rnd);
      std::unique_ptr<DB> db;
      ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
      WriteOptions wopts;
      wopts.sync = true;  // acked-and-synced... into the lying cache
      for (uint64_t k = 0; k < writes; k++) {
        ASSERT_LILSM_OK(db->Put(wopts, k, ValueAt(k, k)));
      }
      env.CutPower();
    }
    ASSERT_LILSM_OK(env.MaterializeCrash(
        static_cast<CrashSurvival>(rnd.Uniform(3)), rnd.Next()));

    DBOptions options = TortureOptions(&env, &rnd);
    std::unique_ptr<DB> db;
    Status open_status = DB::Open(options, dbname, &db);
    ASSERT_TRUE(open_status.ok()) << "schedule " << seed
                                  << " failed to recover: "
                                  << open_status.ToString();
    std::string value;
    for (uint64_t k = 0; k < writes + 4; k++) {
      Status s = db->Get(k, &value);
      if (s.IsNotFound()) continue;
      ASSERT_TRUE(s.ok()) << "schedule " << seed << ": " << s.ToString();
      ASSERT_TRUE(k < writes && value == ValueAt(k, k))
          << "schedule " << seed << " invented or corrupted key " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// CURRENT-install step-crash matrix (the tmp-write + rename + dir-fsync
// protocol): crash after every k-th env op of a reopen, materialize the
// adversarial image, and require full recovery of the committed data.
// ---------------------------------------------------------------------------

TEST(DbCrashRecoveryTest, CurrentInstallSurvivesEveryStepCrash) {
  ScratchDir dir("crash");
  FaultEnv env(Env::Default());
  const std::string dbname = dir.file("db");
  constexpr uint64_t kKeys = 64;

  {
    DBOptions options;
    options.env = &env;
    options.value_size = kValueSize;
    options.write_buffer_size = 1 << 10;  // several flushes + compactions
    options.sstable_target_size = 8 << 10;
    options.l0_compaction_trigger = 2;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
    WriteOptions wopts;
    wopts.sync = true;
    for (uint64_t k = 0; k < kKeys; k++) {
      ASSERT_LILSM_OK(db->Put(wopts, k, ValueAt(k, k)));
    }
  }

  bool completed = false;
  for (uint64_t budget = 1; budget <= 400 && !completed; budget++) {
    env.SetFailAfterOps(budget);
    DBOptions options;
    options.env = &env;
    options.value_size = kValueSize;
    {
      // A reopen replays WALs, rewrites MANIFEST, and swaps CURRENT; the
      // budget walks a power cut through every step of that protocol.
      std::unique_ptr<DB> db;
      completed = DB::Open(options, dbname, &db).ok();
    }
    ASSERT_LILSM_OK(env.MaterializeCrash(CrashSurvival::kDurableOnly,
                                         /*seed=*/budget));
    std::unique_ptr<DB> db;
    Status open_status = DB::Open(options, dbname, &db);
    ASSERT_TRUE(open_status.ok())
        << "unrecoverable image after crashing at op " << budget << ": "
        << open_status.ToString();
    std::string value;
    for (uint64_t k = 0; k < kKeys; k++) {
      Status get_status = db->Get(k, &value);
      ASSERT_TRUE(get_status.ok()) << "crash at op " << budget << " lost key "
                                   << k << ": " << get_status.ToString();
      ASSERT_EQ(value, ValueAt(k, k)) << "crash at op " << budget;
    }
  }
  EXPECT_TRUE(completed) << "open never ran to completion within the matrix";
}

// Mid-log WAL damage (intact records beyond it) must fail recovery with
// Corruption — silently truncating there would drop acked writes.
TEST(DbCrashRecoveryTest, MidWalCorruptionRefusesToOpen) {
  ScratchDir dir("crash");
  const std::string dbname = dir.file("db");
  {
    DBOptions options;
    options.value_size = kValueSize;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
    for (uint64_t k = 0; k < 8; k++) {
      ASSERT_LILSM_OK(db->Put(k, ValueAt(k, k)));
    }
  }
  // Find the live WAL and flip one byte of the FIRST record's payload.
  std::vector<std::string> children;
  ASSERT_LILSM_OK(Env::Default()->GetChildren(dbname, &children));
  std::string wal;
  for (const std::string& name : children) {
    uint64_t number = 0;
    if (ParseFileName(name, &number) == FileKind::kWalFile) {
      wal = dbname + "/" + name;
    }
  }
  ASSERT_FALSE(wal.empty());
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), wal, &contents));
  ASSERT_GT(contents.size(), 16u);
  contents[9] = static_cast<char>(contents[9] ^ 0x01);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, wal));

  DBOptions options;
  options.value_size = kValueSize;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(options, dbname, &db).IsCorruption());
}

// ---------------------------------------------------------------------------
// Persisted learned models: the sidecar open path.
// ---------------------------------------------------------------------------

DBOptions MaintainedOptions(ModelPersistence persistence) {
  DBOptions options;
  options.value_size = kValueSize;
  options.write_buffer_size = 8 << 10;
  options.sstable_target_size = 16 << 10;
  options.l0_compaction_trigger = 2;
  options.index_granularity = IndexGranularity::kLevel;
  options.level_model_policy = LevelModelPolicy::kCompactionMaintained;
  options.model_persistence = persistence;
  options.index_type = IndexType::kPGM;
  return options;
}

// Builds a compacted DB whose tables all carry sidecars; returns the keys.
std::vector<Key> BuildMaintainedDb(const std::string& dbname) {
  std::vector<Key> keys = testing_util::RandomGapKeys(1200, 77);
  std::unique_ptr<DB> db;
  EXPECT_LILSM_OK(DB::Open(MaintainedOptions(ModelPersistence::kSidecar),
                           dbname, &db));
  for (Key k : keys) EXPECT_LILSM_OK(db->Put(k, ValueAt(k, 0)));
  EXPECT_LILSM_OK(db->CompactAll());
  return keys;
}

TEST(ModelPersistenceTest, SidecarOpenReadsZeroKeys) {
  ScratchDir dir("sidecar");
  const std::string dbname = dir.file("db");
  const std::vector<Key> keys = BuildMaintainedDb(dbname);

  // Open from sidecars: models stitched from disk, zero key-scan bytes.
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(
      DB::Open(MaintainedOptions(ModelPersistence::kSidecar), dbname, &db));
  EXPECT_GT(db->stats()->Count(Counter::kModelsLoadedFromDisk), 0u);
  EXPECT_EQ(db->stats()->Count(Counter::kModelSidecarFallbacks), 0u);
  EXPECT_EQ(db->stats()->Count(Counter::kModelBuildBytesRead), 0u)
      << "sidecar open scanned keys";
  EXPECT_GT(db->stats()->TimerCount(Timer::kModelLoad), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kRecover), 0u);

  // And the stitched models serve bit-identical results to a catalog
  // retrained from a full key scan.
  std::vector<std::string> sidecar_values(keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_LILSM_OK(db->Get(keys[i], &sidecar_values[i]));
  }
  db.reset();
  ASSERT_LILSM_OK(DB::Open(MaintainedOptions(ModelPersistence::kRetrainOnOpen),
                           dbname, &db));
  EXPECT_GT(db->stats()->Count(Counter::kModelBuildBytesRead), 0u)
      << "retrain-on-open did not scan keys";
  EXPECT_EQ(db->stats()->Count(Counter::kModelsLoadedFromDisk), 0u);
  std::string value;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_LILSM_OK(db->Get(keys[i], &value));
    ASSERT_EQ(value, sidecar_values[i]) << "key " << keys[i];
  }
}

TEST(ModelPersistenceTest, CorruptSidecarFallsBackAndServes) {
  ScratchDir dir("sidecar");
  const std::string dbname = dir.file("db");
  const std::vector<Key> keys = BuildMaintainedDb(dbname);

  // Flip one byte inside every table's sidecar block (found through the
  // footer), leaving the rest of each file intact.
  std::vector<std::string> children;
  ASSERT_LILSM_OK(Env::Default()->GetChildren(dbname, &children));
  int mangled = 0;
  for (const std::string& name : children) {
    uint64_t number = 0;
    if (ParseFileName(name, &number) != FileKind::kTableFile) continue;
    const std::string path = dbname + "/" + name;
    uint64_t file_size = 0;
    ASSERT_LILSM_OK(Env::Default()->GetFileSize(path, &file_size));
    Footer footer;
    {
      std::unique_ptr<RandomAccessFile> file;
      ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(path, &file));
      ASSERT_LILSM_OK(ReadFooter(file.get(), file_size, &footer));
    }
    ASSERT_GT(footer.segments_handle.size, 0u) << path << " has no sidecar";
    std::string contents;
    ASSERT_LILSM_OK(ReadFileToString(Env::Default(), path, &contents));
    const size_t at = static_cast<size_t>(footer.segments_handle.offset);
    contents[at] = static_cast<char>(contents[at] ^ 0x01);
    ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, path));
    mangled++;
  }
  ASSERT_GT(mangled, 0);

  // Open still succeeds: every sidecar load fails its checksum and falls
  // back to the reader-export path, and queries stay correct.
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(
      DB::Open(MaintainedOptions(ModelPersistence::kSidecar), dbname, &db));
  EXPECT_GT(db->stats()->Count(Counter::kModelSidecarFallbacks), 0u);
  EXPECT_EQ(db->stats()->Count(Counter::kModelsLoadedFromDisk), 0u);
  std::string value;
  for (Key k : keys) {
    ASSERT_LILSM_OK(db->Get(k, &value));
    ASSERT_EQ(value, ValueAt(k, 0)) << "key " << k;
  }
}

TEST(ModelPersistenceTest, StitchInMemoryIgnoresSidecars) {
  ScratchDir dir("sidecar");
  const std::string dbname = dir.file("db");
  const std::vector<Key> keys = BuildMaintainedDb(dbname);

  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(
      MaintainedOptions(ModelPersistence::kStitchInMemory), dbname, &db));
  EXPECT_EQ(db->stats()->Count(Counter::kModelsLoadedFromDisk), 0u);
  EXPECT_EQ(db->stats()->Count(Counter::kModelSidecarFallbacks), 0u);
  std::string value;
  for (Key k : keys) {
    ASSERT_LILSM_OK(db->Get(k, &value));
    ASSERT_EQ(value, ValueAt(k, 0)) << "key " << k;
  }
}

// The WAL-records-replayed counter is visible after a recovering open.
TEST(DbCrashRecoveryTest, ReplayCounterCountsRecords) {
  ScratchDir dir("crash");
  const std::string dbname = dir.file("db");
  {
    DBOptions options;
    options.value_size = kValueSize;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
    for (uint64_t k = 0; k < 12; k++) {
      ASSERT_LILSM_OK(db->Put(k, ValueAt(k, k)));
    }
  }
  DBOptions options;
  options.value_size = kValueSize;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dbname, &db));
  EXPECT_EQ(db->stats()->Count(Counter::kWalRecordsReplayed), 12u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kRecover), 0u);
}

}  // namespace
}  // namespace lilsm
