// SegmentedTable (LearnedIndexTable) round-trip, lookup, iterator-seek,
// retraining and corruption tests, across every index type.
#include "table/segmented_table.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"
#include "lsm/dbformat.h"
#include "util/sim_env.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 64;

TableOptions MakeOptions(IndexType type, uint32_t boundary) {
  TableOptions options;
  options.env = Env::Default();
  options.key_size = 24;
  options.value_size = kValueSize;
  options.index_type = type;
  options.index_config = IndexConfig::FromPositionBoundary(boundary);
  return options;
}

Status BuildTable(const TableOptions& options, const std::string& fname,
                  const std::vector<Key>& keys) {
  std::unique_ptr<TableBuilder> builder;
  Status s = NewTableBuilder(options, fname, &builder);
  if (!s.ok()) return s;
  for (size_t i = 0; i < keys.size(); i++) {
    s = builder->Add(keys[i], PackTag(i + 1, kTypeValue),
                     DeriveValue(keys[i], kValueSize));
    if (!s.ok()) return s;
  }
  return builder->Finish();
}

class SegmentedTableTest : public ::testing::TestWithParam<IndexType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("segtable");
    options_ = MakeOptions(GetParam(), 32);
    keys_ = RandomGapKeys(20000, 77, /*max_gap=*/5000);
    fname_ = dir_->file("000001.lst");
    ASSERT_LILSM_OK(BuildTable(options_, fname_, keys_));
    ASSERT_LILSM_OK(OpenTable(options_, fname_, &reader_));
  }

  std::unique_ptr<ScratchDir> dir_;
  TableOptions options_;
  std::vector<Key> keys_;
  std::string fname_;
  std::unique_ptr<TableReader> reader_;
};

TEST_P(SegmentedTableTest, MetadataMatches) {
  EXPECT_EQ(reader_->NumEntries(), keys_.size());
  EXPECT_EQ(reader_->MinKey(), keys_.front());
  EXPECT_EQ(reader_->MaxKey(), keys_.back());
  ASSERT_NE(reader_->index(), nullptr);
  EXPECT_EQ(reader_->index()->type(), GetParam());
}

TEST_P(SegmentedTableTest, GetFindsEveryKey) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (size_t i = 0; i < keys_.size(); i += 3) {
    ASSERT_LILSM_OK(reader_->Get(keys_[i], &value, &tag, &found));
    ASSERT_TRUE(found) << "key index " << i;
    EXPECT_EQ(TagSequence(tag), i + 1);
    EXPECT_EQ(value, DeriveValue(keys_[i], kValueSize));
  }
}

TEST_P(SegmentedTableTest, GetMissesAbsentKeys) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  size_t tried = 0;
  for (size_t i = 0; i + 1 < keys_.size() && tried < 500; i += 17) {
    if (keys_[i + 1] - keys_[i] < 2) continue;
    const Key absent = keys_[i] + 1;
    tried++;
    ASSERT_LILSM_OK(reader_->Get(absent, &value, &tag, &found));
    EXPECT_FALSE(found) << "absent key " << absent;
  }
  ASSERT_GT(tried, 100u);
}

TEST_P(SegmentedTableTest, IteratorScansInOrder) {
  auto iter = reader_->NewIterator();
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_LT(i, keys_.size());
    ASSERT_EQ(iter->key(), keys_[i]);
    ASSERT_EQ(iter->value().size(), kValueSize);
    i++;
  }
  ASSERT_LILSM_OK(iter->status());
  EXPECT_EQ(i, keys_.size());
}

TEST_P(SegmentedTableTest, SeekHasLowerBoundSemantics) {
  auto iter = reader_->NewIterator();
  Random rnd(6);
  for (int trial = 0; trial < 300; trial++) {
    const Key target = rnd.Uniform(keys_.back() + 1000);
    iter->Seek(target);
    auto expected = std::lower_bound(keys_.begin(), keys_.end(), target);
    if (expected == keys_.end()) {
      EXPECT_FALSE(iter->Valid()) << "target " << target;
    } else {
      ASSERT_TRUE(iter->Valid()) << "target " << target;
      EXPECT_EQ(iter->key(), *expected) << "target " << target;
    }
  }
}

TEST_P(SegmentedTableTest, SeekThenScanCrossesBlocks) {
  auto iter = reader_->NewIterator();
  const size_t start = keys_.size() / 2;
  iter->Seek(keys_[start]);
  for (size_t i = start; i < std::min(keys_.size(), start + 500); i++) {
    ASSERT_TRUE(iter->Valid());
    ASSERT_EQ(iter->key(), keys_[i]);
    iter->Next();
  }
}

TEST_P(SegmentedTableTest, RetrainSwapsIndexAcrossAllTypes) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (IndexType type : kAllIndexTypes) {
    ASSERT_LILSM_OK(
        reader_->RetrainIndex(type, IndexConfig::FromPositionBoundary(16)));
    ASSERT_EQ(reader_->index()->type(), type);
    for (size_t i = 0; i < keys_.size(); i += 97) {
      ASSERT_LILSM_OK(reader_->Get(keys_[i], &value, &tag, &found));
      ASSERT_TRUE(found) << IndexTypeName(type) << " key index " << i;
    }
  }
}

TEST_P(SegmentedTableTest, GetWithBoundsHonorsWindow) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (size_t i = 0; i < keys_.size(); i += 111) {
    const size_t lo = i >= 5 ? i - 5 : 0;
    const size_t hi = std::min(keys_.size() - 1, i + 5);
    ASSERT_LILSM_OK(
        reader_->GetWithBounds(keys_[i], lo, hi, &value, &tag, &found));
    ASSERT_TRUE(found);
    EXPECT_EQ(value, DeriveValue(keys_[i], kValueSize));
  }
}

TEST_P(SegmentedTableTest, MultiGetMatchesGetOnSortedRuns) {
  // Ascending mix of present, absent-in-gap, and duplicate keys: the
  // batched path's block reuse must be invisible in the results.
  std::vector<Key> batch;
  for (size_t i = 0; i < keys_.size(); i += 97) {
    batch.push_back(keys_[i]);
    batch.push_back(keys_[i]);      // duplicate: served from the buffer
    batch.push_back(keys_[i] + 1);  // gaps are >= 1: usually absent
  }
  std::sort(batch.begin(), batch.end());

  std::vector<std::string> values(batch.size());
  std::vector<uint64_t> tags(batch.size(), 0);
  std::unique_ptr<bool[]> founds(new bool[batch.size()]);
  Stats local;
  ASSERT_LILSM_OK(reader_->MultiGet(batch, nullptr, nullptr, values.data(),
                                    tags.data(), founds.get(), &local));

  std::string expected;
  uint64_t expected_tag = 0;
  bool expected_found = false;
  for (size_t i = 0; i < batch.size(); i++) {
    ASSERT_LILSM_OK(reader_->Get(batch[i], &expected, &expected_tag,
                                 &expected_found));
    ASSERT_EQ(founds[i], expected_found) << "key " << batch[i];
    if (expected_found) {
      ASSERT_EQ(values[i], expected) << "key " << batch[i];
      ASSERT_EQ(tags[i], expected_tag) << "key " << batch[i];
    }
  }
  // The per-call sink saw the batch's probes, and the duplicates were
  // answered without a second bloom probe (fewer probes than keys).
  EXPECT_GT(local.TimerCount(Timer::kBloomCheck), 0u);
  EXPECT_LT(local.TimerCount(Timer::kBloomCheck), batch.size());
}

TEST_P(SegmentedTableTest, ReadAllKeysRoundTrips) {
  std::vector<Key> read_keys;
  ASSERT_LILSM_OK(reader_->ReadAllKeys(&read_keys));
  EXPECT_EQ(read_keys, keys_);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, SegmentedTableTest, ::testing::ValuesIn(kAllIndexTypes),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(IndexTypeName(info.param));
    });

// ---- format-level failure behaviour ----

TEST(SegmentedTableFormatTest, RejectsWrongValueSize) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(NewTableBuilder(options, dir.file("t.lst"), &builder));
  EXPECT_TRUE(builder->Add(1, PackTag(1, kTypeValue), Slice("short"))
                  .IsInvalidArgument());
}

TEST(SegmentedTableFormatTest, RejectsNonIncreasingKeys) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(NewTableBuilder(options, dir.file("t.lst"), &builder));
  std::string value(kValueSize, 'x');
  ASSERT_LILSM_OK(builder->Add(10, PackTag(1, kTypeValue), value));
  EXPECT_TRUE(
      builder->Add(10, PackTag(2, kTypeValue), value).IsInvalidArgument());
  EXPECT_TRUE(
      builder->Add(5, PackTag(3, kTypeValue), value).IsInvalidArgument());
}

TEST(SegmentedTableFormatTest, DetectsCorruptFooterMagic) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  const std::string fname = dir.file("t.lst");
  ASSERT_LILSM_OK(BuildTable(options, fname, RandomGapKeys(500, 9)));

  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents.back() = static_cast<char>(contents.back() ^ 0x5a);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(OpenTable(options, fname, &reader).IsCorruption());
}

TEST(SegmentedTableFormatTest, DetectsCorruptTrailerBlocks) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  const std::string fname = dir.file("t.lst");
  std::vector<Key> keys = RandomGapKeys(2000, 10);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));

  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  // Flip a byte in the trailer region (bloom/index/meta blocks follow the
  // data region and are all checksummed).
  const size_t data_bytes = keys.size() * options.entry_size();
  contents[data_bytes + 100] = static_cast<char>(contents[data_bytes + 100] ^ 0xff);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(OpenTable(options, fname, &reader).IsCorruption());
}

TEST(SegmentedTableFormatTest, EmptyFileFailsCleanly) {
  ScratchDir dir("segfmt");
  const std::string fname = dir.file("t.lst");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), Slice(), fname));
  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(
      OpenTable(MakeOptions(IndexType::kPGM, 32), fname, &reader)
          .IsCorruption());
}

TEST(SegmentedTableIoTest, PointLookupCostsOneAlignedRead) {
  // With a small boundary an entire predicted segment fits in <= 2 device
  // blocks, so a Get costs exactly one pread of bounded size.
  ScratchDir dir("segio");
  SimEnvOptions sim_options;
  sim_options.read_base_latency_ns = 0;  // keep the test fast
  SimEnv sim(Env::Default(), sim_options);
  TableOptions options = MakeOptions(IndexType::kPGM, 8);
  options.env = &sim;
  const std::string fname = dir.file("t.lst");
  std::vector<Key> keys = RandomGapKeys(20000, 12);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));
  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(options, fname, &reader));

  sim.io_stats()->Reset();
  std::string value;
  uint64_t tag;
  bool found;
  const uint64_t lookups = 200;
  Random rnd(3);
  for (uint64_t i = 0; i < lookups; i++) {
    const Key key = keys[rnd.Uniform(keys.size())];
    ASSERT_LILSM_OK(reader->Get(key, &value, &tag, &found));
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(sim.io_stats()->random_reads.load(), lookups);
  // boundary 8 * 96-byte entries < 1 block; alignment can touch 2.
  EXPECT_LE(sim.io_stats()->blocks_read.load(), 2 * lookups);
}

// ---- end-of-data boundary behaviour ----

/// RandomAccessFile decorator that fails any read crossing the file's
/// end: the regression oracle for the aligned-fetch clamp (a pread past
/// EOF would silently short-read instead of erroring on POSIX).
class StrictBoundsFile final : public RandomAccessFile {
 public:
  StrictBoundsFile(std::unique_ptr<RandomAccessFile> base, uint64_t size)
      : base_(std::move(base)), size_(size) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (offset + n > size_) {
      return Status::IOError("StrictBoundsFile",
                             "read crosses end-of-file");
    }
    return base_->Read(offset, n, result, scratch);
  }

 private:
  const std::unique_ptr<RandomAccessFile> base_;
  const uint64_t size_;
};

/// Env decorator wrapping every random-access file in StrictBoundsFile.
class StrictBoundsEnv final : public Env {
 public:
  explicit StrictBoundsEnv(Env* base) : base_(base) {}

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    uint64_t size = 0;
    Status s = base_->GetFileSize(fname, &size);
    if (!s.ok()) return s;
    std::unique_ptr<RandomAccessFile> file;
    s = base_->NewRandomAccessFile(fname, &file);
    if (!s.ok()) return s;
    *result = std::make_unique<StrictBoundsFile>(std::move(file), size);
    return Status::OK();
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowNanos() override { return base_->NowNanos(); }

 private:
  Env* const base_;
};

/// The aligned fetch must clamp at the end of the data region: with a
/// 96-byte entry and 4096-byte I/O blocks, count=101 ends the data
/// section mid-block (9696 bytes), so an unclamped aligned fetch of the
/// last segment would read trailing bloom/index bytes as entries — and,
/// under a reader whose file ends at the data region's block boundary,
/// cross EOF. Every access pattern that touches the last entries runs
/// against the strict-bounds env.
TEST(SegmentedTableBoundaryTest, LastSegmentClampsToDataEnd) {
  ScratchDir dir("segbound");
  TableOptions options = MakeOptions(IndexType::kPGM, 64);
  const std::string fname = dir.file("t.lst");
  // 101 * 96 = 9696 bytes of data: ends mid-way through block 2.
  std::vector<Key> keys = RandomGapKeys(101, 42);
  ASSERT_NE((keys.size() * options.entry_size()) % kIoBlockSize, 0u);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));

  StrictBoundsEnv strict(Env::Default());
  options.env = &strict;
  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(options, fname, &reader));

  // Point lookups across the whole table, hammering the tail.
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_LILSM_OK(reader->Get(keys[i], &value, &tag, &found));
    ASSERT_TRUE(found) << "key index " << i;
    EXPECT_EQ(value, DeriveValue(keys[i], kValueSize));
  }
  // Absent keys past the last entry's block boundary.
  ASSERT_LILSM_OK(reader->Get(keys.back() - 1, &value, &tag, &found));
  ASSERT_LILSM_OK(
      reader->GetWithBounds(keys.back(), keys.size() - 2, keys.size() + 50,
                            &value, &tag, &found));
  EXPECT_TRUE(found);

  // Full scan and tail seeks drive the iterator's block-by-block fetches
  // through the final partial block.
  auto iter = reader->NewIterator();
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  ASSERT_LILSM_OK(iter->status());
  EXPECT_EQ(n, keys.size());
  iter->Seek(keys.back());
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), keys.back());
  iter->Seek(keys.back() + 1);
  EXPECT_FALSE(iter->Valid());
  ASSERT_LILSM_OK(iter->status());

  // The batched path's block reuse around the tail.
  std::vector<Key> batch = {keys[keys.size() - 3], keys[keys.size() - 2],
                            keys.back(), keys.back() + 10};
  std::vector<std::string> values(batch.size());
  std::vector<uint64_t> tags(batch.size());
  std::unique_ptr<bool[]> founds(new bool[batch.size()]);
  ASSERT_LILSM_OK(reader->MultiGet(batch, nullptr, nullptr, values.data(),
                                   tags.data(), founds.get(), nullptr));
  EXPECT_TRUE(founds[0] && founds[1] && founds[2]);
  EXPECT_FALSE(founds[3]);
}

/// The same boundary contract holds with a block cache attached: cached
/// assembly of the final partial block must match the direct read.
TEST(SegmentedTableBoundaryTest, LastSegmentCachedMatchesDirect) {
  ScratchDir dir("segbound_cache");
  TableOptions options = MakeOptions(IndexType::kPGM, 64);
  const std::string fname = dir.file("t.lst");
  std::vector<Key> keys = RandomGapKeys(101, 43);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));

  StrictBoundsEnv strict(Env::Default());
  options.env = &strict;
  options.block_cache = std::make_shared<BlockCache>(1 << 20);
  options.cache_file_number = 1;
  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(options, fname, &reader));

  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (int pass = 0; pass < 2; pass++) {  // cold then fully cached
    for (size_t i = 0; i < keys.size(); i++) {
      ASSERT_LILSM_OK(reader->Get(keys[i], &value, &tag, &found));
      ASSERT_TRUE(found) << "pass " << pass << " key index " << i;
      EXPECT_EQ(value, DeriveValue(keys[i], kValueSize));
    }
  }
  EXPECT_GT(options.block_cache->hits(), 0u);
}

}  // namespace
}  // namespace lilsm
