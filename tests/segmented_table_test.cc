// SegmentedTable (LearnedIndexTable) round-trip, lookup, iterator-seek,
// retraining and corruption tests, across every index type.
#include "table/segmented_table.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"
#include "lsm/dbformat.h"
#include "util/sim_env.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 64;

TableOptions MakeOptions(IndexType type, uint32_t boundary) {
  TableOptions options;
  options.env = Env::Default();
  options.key_size = 24;
  options.value_size = kValueSize;
  options.index_type = type;
  options.index_config = IndexConfig::FromPositionBoundary(boundary);
  return options;
}

Status BuildTable(const TableOptions& options, const std::string& fname,
                  const std::vector<Key>& keys) {
  std::unique_ptr<TableBuilder> builder;
  Status s = NewTableBuilder(options, fname, &builder);
  if (!s.ok()) return s;
  for (size_t i = 0; i < keys.size(); i++) {
    s = builder->Add(keys[i], PackTag(i + 1, kTypeValue),
                     DeriveValue(keys[i], kValueSize));
    if (!s.ok()) return s;
  }
  return builder->Finish();
}

class SegmentedTableTest : public ::testing::TestWithParam<IndexType> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("segtable");
    options_ = MakeOptions(GetParam(), 32);
    keys_ = RandomGapKeys(20000, 77, /*max_gap=*/5000);
    fname_ = dir_->file("000001.lst");
    ASSERT_LILSM_OK(BuildTable(options_, fname_, keys_));
    ASSERT_LILSM_OK(OpenTable(options_, fname_, &reader_));
  }

  std::unique_ptr<ScratchDir> dir_;
  TableOptions options_;
  std::vector<Key> keys_;
  std::string fname_;
  std::unique_ptr<TableReader> reader_;
};

TEST_P(SegmentedTableTest, MetadataMatches) {
  EXPECT_EQ(reader_->NumEntries(), keys_.size());
  EXPECT_EQ(reader_->MinKey(), keys_.front());
  EXPECT_EQ(reader_->MaxKey(), keys_.back());
  ASSERT_NE(reader_->index(), nullptr);
  EXPECT_EQ(reader_->index()->type(), GetParam());
}

TEST_P(SegmentedTableTest, GetFindsEveryKey) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (size_t i = 0; i < keys_.size(); i += 3) {
    ASSERT_LILSM_OK(reader_->Get(keys_[i], &value, &tag, &found));
    ASSERT_TRUE(found) << "key index " << i;
    EXPECT_EQ(TagSequence(tag), i + 1);
    EXPECT_EQ(value, DeriveValue(keys_[i], kValueSize));
  }
}

TEST_P(SegmentedTableTest, GetMissesAbsentKeys) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  size_t tried = 0;
  for (size_t i = 0; i + 1 < keys_.size() && tried < 500; i += 17) {
    if (keys_[i + 1] - keys_[i] < 2) continue;
    const Key absent = keys_[i] + 1;
    tried++;
    ASSERT_LILSM_OK(reader_->Get(absent, &value, &tag, &found));
    EXPECT_FALSE(found) << "absent key " << absent;
  }
  ASSERT_GT(tried, 100u);
}

TEST_P(SegmentedTableTest, IteratorScansInOrder) {
  auto iter = reader_->NewIterator();
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_LT(i, keys_.size());
    ASSERT_EQ(iter->key(), keys_[i]);
    ASSERT_EQ(iter->value().size(), kValueSize);
    i++;
  }
  ASSERT_LILSM_OK(iter->status());
  EXPECT_EQ(i, keys_.size());
}

TEST_P(SegmentedTableTest, SeekHasLowerBoundSemantics) {
  auto iter = reader_->NewIterator();
  Random rnd(6);
  for (int trial = 0; trial < 300; trial++) {
    const Key target = rnd.Uniform(keys_.back() + 1000);
    iter->Seek(target);
    auto expected = std::lower_bound(keys_.begin(), keys_.end(), target);
    if (expected == keys_.end()) {
      EXPECT_FALSE(iter->Valid()) << "target " << target;
    } else {
      ASSERT_TRUE(iter->Valid()) << "target " << target;
      EXPECT_EQ(iter->key(), *expected) << "target " << target;
    }
  }
}

TEST_P(SegmentedTableTest, SeekThenScanCrossesBlocks) {
  auto iter = reader_->NewIterator();
  const size_t start = keys_.size() / 2;
  iter->Seek(keys_[start]);
  for (size_t i = start; i < std::min(keys_.size(), start + 500); i++) {
    ASSERT_TRUE(iter->Valid());
    ASSERT_EQ(iter->key(), keys_[i]);
    iter->Next();
  }
}

TEST_P(SegmentedTableTest, RetrainSwapsIndexAcrossAllTypes) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (IndexType type : kAllIndexTypes) {
    ASSERT_LILSM_OK(
        reader_->RetrainIndex(type, IndexConfig::FromPositionBoundary(16)));
    ASSERT_EQ(reader_->index()->type(), type);
    for (size_t i = 0; i < keys_.size(); i += 97) {
      ASSERT_LILSM_OK(reader_->Get(keys_[i], &value, &tag, &found));
      ASSERT_TRUE(found) << IndexTypeName(type) << " key index " << i;
    }
  }
}

TEST_P(SegmentedTableTest, GetWithBoundsHonorsWindow) {
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  for (size_t i = 0; i < keys_.size(); i += 111) {
    const size_t lo = i >= 5 ? i - 5 : 0;
    const size_t hi = std::min(keys_.size() - 1, i + 5);
    ASSERT_LILSM_OK(
        reader_->GetWithBounds(keys_[i], lo, hi, &value, &tag, &found));
    ASSERT_TRUE(found);
    EXPECT_EQ(value, DeriveValue(keys_[i], kValueSize));
  }
}

TEST_P(SegmentedTableTest, MultiGetMatchesGetOnSortedRuns) {
  // Ascending mix of present, absent-in-gap, and duplicate keys: the
  // batched path's block reuse must be invisible in the results.
  std::vector<Key> batch;
  for (size_t i = 0; i < keys_.size(); i += 97) {
    batch.push_back(keys_[i]);
    batch.push_back(keys_[i]);      // duplicate: served from the buffer
    batch.push_back(keys_[i] + 1);  // gaps are >= 1: usually absent
  }
  std::sort(batch.begin(), batch.end());

  std::vector<std::string> values(batch.size());
  std::vector<uint64_t> tags(batch.size(), 0);
  std::unique_ptr<bool[]> founds(new bool[batch.size()]);
  Stats local;
  ASSERT_LILSM_OK(reader_->MultiGet(batch, nullptr, nullptr, values.data(),
                                    tags.data(), founds.get(), &local));

  std::string expected;
  uint64_t expected_tag = 0;
  bool expected_found = false;
  for (size_t i = 0; i < batch.size(); i++) {
    ASSERT_LILSM_OK(reader_->Get(batch[i], &expected, &expected_tag,
                                 &expected_found));
    ASSERT_EQ(founds[i], expected_found) << "key " << batch[i];
    if (expected_found) {
      ASSERT_EQ(values[i], expected) << "key " << batch[i];
      ASSERT_EQ(tags[i], expected_tag) << "key " << batch[i];
    }
  }
  // The per-call sink saw the batch's probes, and the duplicates were
  // answered without a second bloom probe (fewer probes than keys).
  EXPECT_GT(local.TimerCount(Timer::kBloomCheck), 0u);
  EXPECT_LT(local.TimerCount(Timer::kBloomCheck), batch.size());
}

TEST_P(SegmentedTableTest, ReadAllKeysRoundTrips) {
  std::vector<Key> read_keys;
  ASSERT_LILSM_OK(reader_->ReadAllKeys(&read_keys));
  EXPECT_EQ(read_keys, keys_);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, SegmentedTableTest, ::testing::ValuesIn(kAllIndexTypes),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(IndexTypeName(info.param));
    });

// ---- format-level failure behaviour ----

TEST(SegmentedTableFormatTest, RejectsWrongValueSize) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(NewTableBuilder(options, dir.file("t.lst"), &builder));
  EXPECT_TRUE(builder->Add(1, PackTag(1, kTypeValue), Slice("short"))
                  .IsInvalidArgument());
}

TEST(SegmentedTableFormatTest, RejectsNonIncreasingKeys) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  std::unique_ptr<TableBuilder> builder;
  ASSERT_LILSM_OK(NewTableBuilder(options, dir.file("t.lst"), &builder));
  std::string value(kValueSize, 'x');
  ASSERT_LILSM_OK(builder->Add(10, PackTag(1, kTypeValue), value));
  EXPECT_TRUE(
      builder->Add(10, PackTag(2, kTypeValue), value).IsInvalidArgument());
  EXPECT_TRUE(
      builder->Add(5, PackTag(3, kTypeValue), value).IsInvalidArgument());
}

TEST(SegmentedTableFormatTest, DetectsCorruptFooterMagic) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  const std::string fname = dir.file("t.lst");
  ASSERT_LILSM_OK(BuildTable(options, fname, RandomGapKeys(500, 9)));

  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents.back() = static_cast<char>(contents.back() ^ 0x5a);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(OpenTable(options, fname, &reader).IsCorruption());
}

TEST(SegmentedTableFormatTest, DetectsCorruptTrailerBlocks) {
  ScratchDir dir("segfmt");
  TableOptions options = MakeOptions(IndexType::kPGM, 32);
  const std::string fname = dir.file("t.lst");
  std::vector<Key> keys = RandomGapKeys(2000, 10);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));

  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  // Flip a byte in the trailer region (bloom/index/meta blocks follow the
  // data region and are all checksummed).
  const size_t data_bytes = keys.size() * options.entry_size();
  contents[data_bytes + 100] = static_cast<char>(contents[data_bytes + 100] ^ 0xff);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(OpenTable(options, fname, &reader).IsCorruption());
}

TEST(SegmentedTableFormatTest, EmptyFileFailsCleanly) {
  ScratchDir dir("segfmt");
  const std::string fname = dir.file("t.lst");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), Slice(), fname));
  std::unique_ptr<TableReader> reader;
  EXPECT_TRUE(
      OpenTable(MakeOptions(IndexType::kPGM, 32), fname, &reader)
          .IsCorruption());
}

TEST(SegmentedTableIoTest, PointLookupCostsOneAlignedRead) {
  // With a small boundary an entire predicted segment fits in <= 2 device
  // blocks, so a Get costs exactly one pread of bounded size.
  ScratchDir dir("segio");
  SimEnvOptions sim_options;
  sim_options.read_base_latency_ns = 0;  // keep the test fast
  SimEnv sim(Env::Default(), sim_options);
  TableOptions options = MakeOptions(IndexType::kPGM, 8);
  options.env = &sim;
  const std::string fname = dir.file("t.lst");
  std::vector<Key> keys = RandomGapKeys(20000, 12);
  ASSERT_LILSM_OK(BuildTable(options, fname, keys));
  std::unique_ptr<TableReader> reader;
  ASSERT_LILSM_OK(OpenTable(options, fname, &reader));

  sim.io_stats()->Reset();
  std::string value;
  uint64_t tag;
  bool found;
  const uint64_t lookups = 200;
  Random rnd(3);
  for (uint64_t i = 0; i < lookups; i++) {
    const Key key = keys[rnd.Uniform(keys.size())];
    ASSERT_LILSM_OK(reader->Get(key, &value, &tag, &found));
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(sim.io_stats()->random_reads.load(), lookups);
  // boundary 8 * 96-byte entries < 1 block; alignment can touch 2.
  EXPECT_LE(sim.io_stats()->blocks_read.load(), 2 * lookups);
}

}  // namespace
}  // namespace lilsm
