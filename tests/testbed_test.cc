// Testbed integration: load, point/range/YCSB/write runs, reconfiguration.
#include "core/testbed.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

Testbed::Options SmallBedOptions(const std::string& dir) {
  Testbed::Options options;
  options.dir = dir;
  options.defaults.num_keys = 20000;
  options.defaults.num_ops = 500;
  options.defaults.value_size = 64;
  options.defaults.write_buffer_size = 256 << 10;
  options.defaults.sstable_target_size = 128 << 10;
  options.setup.type = IndexType::kPGM;
  options.setup.position_boundary = 64;
  options.sim.read_base_latency_ns = 0;  // keep tests fast
  options.sim.read_per_byte_ns = 0;
  return options;
}

TEST(TestbedTest, LoadsAndAnswersPointLookups) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  EXPECT_EQ(bed->keys().size(), 20000u);

  RunMetrics metrics;
  ASSERT_LILSM_OK(bed->RunPointLookups(500, /*zipfian=*/false, &metrics));
  EXPECT_EQ(metrics.latency_ns.Count(), 500u);
  EXPECT_GT(metrics.index_memory, 0u);
  EXPECT_GT(metrics.io_reads, 0u);
  EXPECT_EQ(metrics.stats.Count(Counter::kPointLookups), 500u);
}

TEST(TestbedTest, ReconfigureSweepsTypesWithoutReload) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  size_t previous_memory = 0;
  for (IndexType type : kAllIndexTypes) {
    IndexSetup setup;
    setup.type = type;
    setup.position_boundary = 32;
    ASSERT_LILSM_OK(bed->Reconfigure(setup));
    RunMetrics metrics;
    ASSERT_LILSM_OK(bed->RunPointLookups(200, false, &metrics));
    EXPECT_EQ(metrics.latency_ns.Count(), 200u);
    EXPECT_GT(metrics.index_memory, 0u);
    previous_memory = metrics.index_memory;
  }
  (void)previous_memory;
}

TEST(TestbedTest, RangeLookupsReturnMetrics) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  RunMetrics metrics;
  ASSERT_LILSM_OK(bed->RunRangeLookups(100, /*range_len=*/32, &metrics));
  EXPECT_EQ(metrics.latency_ns.Count(), 100u);
  EXPECT_EQ(metrics.stats.Count(Counter::kRangeLookups), 100u);
}

TEST(TestbedTest, WriteOnlyRecordsCompactionBreakdown) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  RunMetrics metrics;
  ASSERT_LILSM_OK(bed->RunWriteOnly(20000, &metrics));
  EXPECT_GT(metrics.stats.TimeNanos(Timer::kCompactTotal), 0u);
  EXPECT_GT(metrics.stats.TimeNanos(Timer::kCompactTrain), 0u);
  EXPECT_GT(metrics.stats.TimeNanos(Timer::kCompactWriteModel), 0u);
  // Training is a small share of total compaction (Observation 4).
  EXPECT_LT(metrics.stats.TimeNanos(Timer::kCompactTrain),
            metrics.stats.TimeNanos(Timer::kCompactTotal));
}

TEST(TestbedTest, YcsbMixesRun) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  for (YcsbWorkload w : kAllYcsbWorkloads) {
    RunMetrics metrics;
    ASSERT_LILSM_OK(bed->RunYcsb(w, 300, &metrics));
    EXPECT_EQ(metrics.latency_ns.Count(), 300u) << YcsbWorkloadName(w);
  }
}

TEST(TestbedTest, LevelGranularityRuns) {
  ScratchDir dir("bed");
  Testbed::Options options = SmallBedOptions(dir.file("db"));
  options.setup.granularity = IndexGranularity::kLevel;
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(options, &bed));
  RunMetrics metrics;
  ASSERT_LILSM_OK(bed->RunPointLookups(300, false, &metrics));
  EXPECT_EQ(metrics.latency_ns.Count(), 300u);
}

TEST(TestbedTest, AbsentKeysAreAbsent) {
  ScratchDir dir("bed");
  std::unique_ptr<Testbed> bed;
  ASSERT_LILSM_OK(Testbed::Create(SmallBedOptions(dir.file("db")), &bed));
  std::string value;
  int absent = 0;
  for (uint64_t i = 0; i < 100; i++) {
    if (bed->db()->Get(bed->AbsentKey(i), &value).IsNotFound()) absent++;
  }
  EXPECT_EQ(absent, 100);
}

}  // namespace
}  // namespace lilsm
