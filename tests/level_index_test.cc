// LevelIndexStore: build-over-files, stamp invalidation, bound mapping.
#include "lsm/level_index.h"

#include <gtest/gtest.h>

#include "lsm/dbformat.h"
#include "table/segmented_table.h"
#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

class LevelIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("levelidx");
    options_.env = Env::Default();
    options_.value_size = 32;
    cache_ = std::make_unique<TableCache>(options_, dir_->path(), 64);
    keys_ = RandomGapKeys(9000, 11);

    // Three disjoint files covering thirds of the key range.
    for (int f = 0; f < 3; f++) {
      const uint64_t number = f + 1;
      std::unique_ptr<TableBuilder> builder;
      ASSERT_LILSM_OK(NewTableBuilder(
          options_, TableFileName(dir_->path(), number), &builder));
      FileMeta meta;
      meta.number = number;
      const size_t begin = f * 3000, end = begin + 3000;
      for (size_t i = begin; i < end; i++) {
        ASSERT_LILSM_OK(builder->Add(keys_[i], PackTag(i + 1, kTypeValue),
                                     DeriveValue(keys_[i], 32)));
      }
      ASSERT_LILSM_OK(builder->Finish());
      meta.entries = 3000;
      meta.smallest = keys_[begin];
      meta.largest = keys_[end - 1];
      files_.push_back(meta);
    }
  }

  std::unique_ptr<ScratchDir> dir_;
  TableOptions options_;
  std::unique_ptr<TableCache> cache_;
  std::vector<Key> keys_;
  std::vector<FileMeta> files_;
  Stats stats_;
};

TEST_F(LevelIndexTest, BuildsAndPredictsAcrossFiles) {
  LevelIndexStore store(Env::Default(), &stats_);
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32),
                                    /*stamp=*/1));
  ASSERT_TRUE(store.HasModel(1));
  EXPECT_GT(store.MemoryUsage(), 0u);
  EXPECT_GT(stats_.TimerCount(Timer::kLevelIndexBuild), 0u);

  // Every key's local window must contain its within-file position.
  for (size_t i = 0; i < keys_.size(); i += 13) {
    const size_t file_idx = i / 3000;
    const size_t local = i % 3000;
    size_t lo = 0, hi = 0;
    ASSERT_TRUE(
        store.PredictInFile(1, keys_[i], file_idx, /*stamp=*/1, &lo, &hi));
    ASSERT_LE(lo, local) << "key index " << i;
    ASSERT_GE(hi, local) << "key index " << i;
    ASSERT_LT(hi, 3000u);
  }
}

TEST_F(LevelIndexTest, StampChangeForcesRebuild) {
  LevelIndexStore store(Env::Default(), &stats_);
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32), 1));
  const uint64_t builds_before = stats_.TimerCount(Timer::kLevelIndexBuild);
  // Same stamp: cached.
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32), 1));
  EXPECT_EQ(stats_.TimerCount(Timer::kLevelIndexBuild), builds_before);
  // New stamp: rebuilt.
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32), 2));
  EXPECT_GT(stats_.TimerCount(Timer::kLevelIndexBuild), builds_before);
  // Predictions are stamp-checked: a reader pinned to the old version
  // falls back instead of consulting the newer model.
  size_t lo, hi;
  EXPECT_FALSE(store.PredictInFile(1, keys_[0], 0, /*stamp=*/1, &lo, &hi));
  EXPECT_TRUE(store.PredictInFile(1, keys_[0], 0, /*stamp=*/2, &lo, &hi));
  // Stale stamps never downgrade a newer model (monotone rebuilds).
  const uint64_t builds_now = stats_.TimerCount(Timer::kLevelIndexBuild);
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32), 1));
  EXPECT_EQ(stats_.TimerCount(Timer::kLevelIndexBuild), builds_now);
  EXPECT_TRUE(store.PredictInFile(1, keys_[0], 0, /*stamp=*/2, &lo, &hi));
}

TEST_F(LevelIndexTest, InvalidateDropsModels) {
  LevelIndexStore store(Env::Default(), &stats_);
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kPGM,
                                    IndexConfig::FromPositionBoundary(32), 1));
  store.InvalidateAll();
  EXPECT_FALSE(store.HasModel(1));
  EXPECT_EQ(store.MemoryUsage(), 0u);
  size_t lo, hi;
  EXPECT_FALSE(store.PredictInFile(1, keys_[0], 0, /*stamp=*/1, &lo, &hi));
}

TEST_F(LevelIndexTest, GetWithBoundsServesLevelPredictions) {
  LevelIndexStore store(Env::Default(), &stats_);
  ASSERT_LILSM_OK(store.EnsureBuilt(1, files_, cache_.get(), IndexType::kRMI,
                                    IndexConfig::FromPositionBoundary(64), 1));
  std::string value;
  uint64_t tag;
  bool found;
  for (size_t i = 0; i < keys_.size(); i += 101) {
    const size_t file_idx = i / 3000;
    size_t lo = 0, hi = 0;
    ASSERT_TRUE(
        store.PredictInFile(1, keys_[i], file_idx, /*stamp=*/1, &lo, &hi));
    std::shared_ptr<TableReader> reader;
    ASSERT_LILSM_OK(cache_->GetReader(files_[file_idx].number, &reader));
    ASSERT_LILSM_OK(
        reader->GetWithBounds(keys_[i], lo, hi, &value, &tag, &found));
    ASSERT_TRUE(found) << "key index " << i;
    ASSERT_EQ(value, DeriveValue(keys_[i], 32));
  }
}

TEST_F(LevelIndexTest, EmptyLevelIsNoOp) {
  LevelIndexStore store(Env::Default(), &stats_);
  ASSERT_LILSM_OK(store.EnsureBuilt(2, {}, cache_.get(), IndexType::kPGM,
                                    IndexConfig(), 1));
  EXPECT_FALSE(store.HasModel(2));
}

}  // namespace
}  // namespace lilsm
