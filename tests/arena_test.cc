// Arena allocation: alignment, growth, large blocks.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/random.h"

namespace lilsm {
namespace {

TEST(ArenaTest, EmptyArenaHasNoUsage) {
  Arena arena;
  EXPECT_EQ(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  Random rnd(71);
  std::vector<std::pair<char*, size_t>> allocations;
  for (int i = 0; i < 2000; i++) {
    const size_t size = 1 + rnd.Skewed(12);
    char* p = arena.Allocate(size);
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xff, size);
    allocations.emplace_back(p, size);
  }
  // Verify every allocation still holds its fill pattern.
  for (size_t i = 0; i < allocations.size(); i++) {
    auto [p, size] = allocations[i];
    for (size_t b = 0; b < size; b++) {
      ASSERT_EQ(static_cast<unsigned char>(p[b]), i & 0xff);
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  Random rnd(73);
  for (int i = 0; i < 500; i++) {
    arena.Allocate(1 + rnd.Uniform(7));  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
  }
}

TEST(ArenaTest, LargeAllocationsGetOwnBlocks) {
  Arena arena;
  const size_t before = arena.MemoryUsage();
  char* p = arena.Allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 1 << 20);
  EXPECT_GE(arena.MemoryUsage() - before, size_t{1} << 20);
}

}  // namespace
}  // namespace lilsm
