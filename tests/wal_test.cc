// WAL record framing: round trips, torn tails, corrupt payloads.
#include "lsm/wal.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

Status OpenWriter(const std::string& fname, std::unique_ptr<LogWriter>* w) {
  std::unique_ptr<WritableFile> file;
  Status s = Env::Default()->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  *w = std::make_unique<LogWriter>(std::move(file));
  return Status::OK();
}

Status OpenReader(const std::string& fname, std::unique_ptr<LogReader>* r) {
  std::unique_ptr<SequentialFile> file;
  Status s = Env::Default()->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  *r = std::make_unique<LogReader>(std::move(file));
  return Status::OK();
}

TEST(WalTest, RecordsRoundTrip) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::vector<std::string> records = {"", "a", std::string(100000, 'z')};
  Random rnd(5);
  for (int i = 0; i < 200; i++) {
    records.push_back(std::string(rnd.Uniform(500), static_cast<char>(i)));
  }
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    for (const std::string& record : records) {
      ASSERT_LILSM_OK(writer->AddRecord(record));
    }
    ASSERT_LILSM_OK(writer->Close());
  }
  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader->ReadRecord(&record));
    ASSERT_EQ(record, expected);
  }
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_FALSE(reader->hit_corruption());
}

TEST(WalTest, TornTailStopsReplay) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    ASSERT_LILSM_OK(writer->AddRecord("first"));
    ASSERT_LILSM_OK(writer->AddRecord("second-record-payload"));
    ASSERT_LILSM_OK(writer->Close());
  }
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents.resize(contents.size() - 4);  // tear the last payload
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  ASSERT_TRUE(reader->ReadRecord(&record));
  EXPECT_EQ(record, "first");
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_TRUE(reader->hit_corruption());
}

TEST(WalTest, CorruptPayloadDetectedByCrc) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    ASSERT_LILSM_OK(writer->AddRecord("good-record"));
    ASSERT_LILSM_OK(writer->Close());
  }
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents[contents.size() - 2] =
      static_cast<char>(contents[contents.size() - 2] ^ 0x40);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_TRUE(reader->hit_corruption());
}

TEST(WalTest, EmptyFileIsCleanEof) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), Slice(), fname));
  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_FALSE(reader->hit_corruption());
}

}  // namespace
}  // namespace lilsm
