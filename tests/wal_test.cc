// WAL record framing: round trips, torn tails, corrupt payloads.
#include "lsm/wal.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

Status OpenWriter(const std::string& fname, std::unique_ptr<LogWriter>* w) {
  std::unique_ptr<WritableFile> file;
  Status s = Env::Default()->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  *w = std::make_unique<LogWriter>(std::move(file));
  return Status::OK();
}

Status OpenReader(const std::string& fname, std::unique_ptr<LogReader>* r) {
  std::unique_ptr<SequentialFile> file;
  Status s = Env::Default()->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  *r = std::make_unique<LogReader>(std::move(file));
  return Status::OK();
}

TEST(WalTest, RecordsRoundTrip) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::vector<std::string> records = {"", "a", std::string(100000, 'z')};
  Random rnd(5);
  for (int i = 0; i < 200; i++) {
    records.push_back(std::string(rnd.Uniform(500), static_cast<char>(i)));
  }
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    for (const std::string& record : records) {
      ASSERT_LILSM_OK(writer->AddRecord(record));
    }
    ASSERT_LILSM_OK(writer->Close());
  }
  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader->ReadRecord(&record));
    ASSERT_EQ(record, expected);
  }
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_FALSE(reader->hit_corruption());
}

TEST(WalTest, TornTailStopsReplay) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    ASSERT_LILSM_OK(writer->AddRecord("first"));
    ASSERT_LILSM_OK(writer->AddRecord("second-record-payload"));
    ASSERT_LILSM_OK(writer->Close());
  }
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents.resize(contents.size() - 4);  // tear the last payload
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  ASSERT_TRUE(reader->ReadRecord(&record));
  EXPECT_EQ(record, "first");
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_TRUE(reader->hit_corruption());
}

TEST(WalTest, CorruptPayloadDetectedByCrc) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  {
    std::unique_ptr<LogWriter> writer;
    ASSERT_LILSM_OK(OpenWriter(fname, &writer));
    ASSERT_LILSM_OK(writer->AddRecord("good-record"));
    ASSERT_LILSM_OK(writer->Close());
  }
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  contents[contents.size() - 2] =
      static_cast<char>(contents[contents.size() - 2] ^ 0x40);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));

  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_TRUE(reader->hit_corruption());
}

TEST(WalTest, EmptyFileIsCleanEof) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), Slice(), fname));
  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  EXPECT_FALSE(reader->ReadRecord(&record));
  EXPECT_FALSE(reader->hit_corruption());
  EXPECT_EQ(reader->result(), LogReadStatus::kEof);
}

// ---------------------------------------------------------------------------
// Typed classification: every way a log can end or be damaged, with the
// LogReadStatus recovery keys on. A crash can only tear the tail
// (kTornTail, clean end of log); damage with intact records after it is
// mid-log corruption (kCorruption, recovery must fail loudly).
// ---------------------------------------------------------------------------

// Writes `records` to a fresh log and returns the raw bytes.
std::string BuildLog(const std::string& fname,
                     const std::vector<std::string>& records) {
  std::unique_ptr<LogWriter> writer;
  EXPECT_LILSM_OK(OpenWriter(fname, &writer));
  for (const std::string& record : records) {
    EXPECT_LILSM_OK(writer->AddRecord(record));
  }
  EXPECT_LILSM_OK(writer->Close());
  std::string contents;
  EXPECT_LILSM_OK(ReadFileToString(Env::Default(), fname, &contents));
  return contents;
}

// Replays `contents` as a log file; returns the terminal status and the
// records successfully read.
LogReadStatus Replay(const std::string& fname, const std::string& contents,
                     std::vector<std::string>* read) {
  EXPECT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));
  std::unique_ptr<LogReader> reader;
  EXPECT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  read->clear();
  while (reader->Read(&record) == LogReadStatus::kOk) {
    read->push_back(record);
  }
  return reader->result();
}

TEST(WalTypedTest, CleanEndOfLogIsEof) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  const std::string contents = BuildLog(fname, {"a", "b"});
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kEof);
  EXPECT_EQ(read, (std::vector<std::string>{"a", "b"}));
}

TEST(WalTypedTest, EofInsideHeaderIsTornTail) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::string contents = BuildLog(fname, {"first", "second"});
  // Keep record one plus 3 bytes of record two's 8-byte header.
  contents.resize(8 + 5 + 3);
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kTornTail);
  EXPECT_EQ(read, (std::vector<std::string>{"first"}));
}

TEST(WalTypedTest, EofInsidePayloadIsTornTail) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::string contents = BuildLog(fname, {"first", "second-payload"});
  contents.resize(contents.size() - 4);
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kTornTail);
  EXPECT_EQ(read, (std::vector<std::string>{"first"}));
}

TEST(WalTypedTest, CrcMismatchOnFinalRecordIsTornTail) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  // Flip a payload byte of the last record: full length present, bad
  // checksum, nothing after — the shape of partially persisted sectors.
  std::string contents = BuildLog(fname, {"first", "second"});
  contents.back() = static_cast<char>(contents.back() ^ 0x01);
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kTornTail);
  EXPECT_EQ(read, (std::vector<std::string>{"first"}));
}

TEST(WalTypedTest, CrcMismatchMidLogIsCorruption) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  // Flip a payload byte of record ONE while an intact record follows: a
  // crash cannot produce this, so it must refuse, not truncate.
  std::string contents = BuildLog(fname, {"first", "second"});
  contents[8] = static_cast<char>(contents[8] ^ 0x01);
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kCorruption);
  EXPECT_TRUE(read.empty());
}

TEST(WalTypedTest, GarbageLengthAtTailIsTornTail) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::string contents = BuildLog(fname, {"first"});
  // Append a scribbled header claiming an absurd (> 1 GiB) payload with
  // only a few bytes behind it: the torn final record of a crash.
  contents.append("\xff\xff\xff\xff", 4);  // crc
  contents.append("\xff\xff\xff\x7f", 4);  // length = 0x7fffffff
  contents.append("junk");
  std::vector<std::string> read;
  EXPECT_EQ(Replay(fname, contents, &read), LogReadStatus::kTornTail);
  EXPECT_EQ(read, (std::vector<std::string>{"first"}));
}

TEST(WalTypedTest, TerminalStatusIsSticky) {
  ScratchDir dir("wal");
  const std::string fname = dir.file("log");
  std::string contents = BuildLog(fname, {"first", "second"});
  contents[8] = static_cast<char>(contents[8] ^ 0x01);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), contents, fname));
  std::unique_ptr<LogReader> reader;
  ASSERT_LILSM_OK(OpenReader(fname, &reader));
  std::string record;
  EXPECT_EQ(reader->Read(&record), LogReadStatus::kCorruption);
  // Further reads must not skip past the damage to the intact record.
  EXPECT_EQ(reader->Read(&record), LogReadStatus::kCorruption);
  EXPECT_TRUE(reader->hit_corruption());
}

}  // namespace
}  // namespace lilsm
