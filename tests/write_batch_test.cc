// WriteBatch: counts, sequence plumbing, contents round-trip, replay.
#include "lsm/write_batch.h"

#include <gtest/gtest.h>

#include "lsm/memtable.h"
#include "tests/test_util.h"

namespace lilsm {
namespace {

TEST(WriteBatchTest, EmptyBatch) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0u);
}

TEST(WriteBatchTest, CountTracksOperations) {
  WriteBatch batch;
  batch.Put(1, "a");
  batch.Put(2, "b");
  batch.Delete(1);
  EXPECT_EQ(batch.Count(), 3u);
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
}

TEST(WriteBatchTest, InsertIntoAppliesSequences) {
  WriteBatch batch;
  batch.Put(10, "first");
  batch.Delete(10);
  batch.Put(10, "second");
  MemTable mem;
  ASSERT_LILSM_OK(batch.InsertInto(&mem, 100));
  std::string value;
  ValueType type;
  // Sequence 102 (the final put) must win.
  ASSERT_TRUE(mem.Get(10, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(type, kTypeValue);
  EXPECT_EQ(value, "second");
  // At snapshot 101 the tombstone wins.
  ASSERT_TRUE(mem.Get(10, 101, &value, &type));
  EXPECT_EQ(type, kTypeDeletion);
  // At snapshot 100 the first put wins.
  ASSERT_TRUE(mem.Get(10, 100, &value, &type));
  EXPECT_EQ(value, "first");
}

TEST(WriteBatchTest, SequenceAccessors) {
  WriteBatch batch;
  batch.Put(1, "x");
  WriteBatch::SetSequence(&batch, 777);
  EXPECT_EQ(WriteBatch::Sequence(batch), 777u);
}

TEST(WriteBatchTest, ContentsRoundTrip) {
  WriteBatch batch;
  batch.Put(5, "five");
  batch.Delete(6);
  WriteBatch::SetSequence(&batch, 9);

  WriteBatch restored;
  ASSERT_LILSM_OK(WriteBatch::SetContents(&restored, batch.Contents()));
  EXPECT_EQ(restored.Count(), 2u);
  EXPECT_EQ(WriteBatch::Sequence(restored), 9u);

  MemTable mem;
  ASSERT_LILSM_OK(restored.InsertInto(&mem, 9));
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(5, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(value, "five");
  ASSERT_TRUE(mem.Get(6, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(type, kTypeDeletion);
}

TEST(WriteBatchTest, MalformedContentsRejected) {
  WriteBatch batch;
  EXPECT_TRUE(WriteBatch::SetContents(&batch, Slice("tiny")).IsCorruption());

  // Claimed count exceeds actual records.
  WriteBatch source;
  source.Put(1, "x");
  std::string contents = source.Contents().ToString();
  contents[8] = 5;  // count = 5, but only one record follows
  ASSERT_LILSM_OK(WriteBatch::SetContents(&batch, contents));
  MemTable mem;
  EXPECT_TRUE(batch.InsertInto(&mem, 1).IsCorruption());
}

TEST(WriteBatchTest, LargeValuesSurvive) {
  WriteBatch batch;
  const std::string big(1 << 20, 'B');
  batch.Put(3, big);
  MemTable mem;
  ASSERT_LILSM_OK(batch.InsertInto(&mem, 1));
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(3, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(value, big);
}

}  // namespace
}  // namespace lilsm
