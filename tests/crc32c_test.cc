// CRC32C known-answer tests and masking behaviour.
#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace lilsm {
namespace crc32c {
namespace {

TEST(Crc32cTest, StandardResults) {
  // Known-answer vectors from the CRC32C specification (iSCSI / RFC 3720,
  // also used by LevelDB's crc32c_test).
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x8a9136aau);
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x62a8ab43u);
  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x46dd794eu);
  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x113fdb5cu);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
  EXPECT_NE(Value("a", 1), Value("b", 1));
}

TEST(Crc32cTest, ExtendComposes) {
  std::string hello = "hello ";
  std::string world = "world";
  std::string both = hello + world;
  EXPECT_EQ(Value(both.data(), both.size()),
            Extend(Value(hello.data(), hello.size()), world.data(),
                   world.size()));
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  const uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Value("", 0), 0u);
}

}  // namespace
}  // namespace crc32c
}  // namespace lilsm
