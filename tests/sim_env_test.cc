// SimEnv: I/O counters and calibrated latency injection.
#include "util/sim_env.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

TEST(SimEnvTest, CountsReadsAndBlocks) {
  ScratchDir dir("simenv");
  SimEnvOptions options;
  options.read_base_latency_ns = 0;
  options.read_per_byte_ns = 0;
  SimEnv sim(Env::Default(), options);

  const std::string fname = dir.file("f");
  ASSERT_LILSM_OK(
      WriteStringToFile(&sim, std::string(64 << 10, 'd'), fname));
  EXPECT_GT(sim.io_stats()->writes.load(), 0u);
  EXPECT_GE(sim.io_stats()->write_bytes.load(), uint64_t{64} << 10);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(sim.NewRandomAccessFile(fname, &file));
  std::string scratch(8192, '\0');
  Slice result;
  sim.io_stats()->Reset();

  // 100 bytes at offset 0: one block.
  ASSERT_LILSM_OK(file->Read(0, 100, &result, scratch.data()));
  EXPECT_EQ(sim.io_stats()->random_reads.load(), 1u);
  EXPECT_EQ(sim.io_stats()->blocks_read.load(), 1u);

  // 100 bytes straddling a block boundary: two blocks.
  ASSERT_LILSM_OK(file->Read(4090, 100, &result, scratch.data()));
  EXPECT_EQ(sim.io_stats()->blocks_read.load(), 3u);

  // 8 KiB aligned: exactly two blocks.
  ASSERT_LILSM_OK(file->Read(8192, 8192, &result, scratch.data()));
  EXPECT_EQ(sim.io_stats()->blocks_read.load(), 5u);
  EXPECT_EQ(sim.io_stats()->random_read_bytes.load(), 100u + 100u + 8192u);
}

TEST(SimEnvTest, InjectsConfiguredLatency) {
  ScratchDir dir("simenv");
  SimEnvOptions options;
  options.read_base_latency_ns = 50000;  // 50us: far above pread cost
  options.read_per_byte_ns = 0;
  SimEnv sim(Env::Default(), options);

  const std::string fname = dir.file("f");
  ASSERT_LILSM_OK(WriteStringToFile(&sim, std::string(4096, 'd'), fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(sim.NewRandomAccessFile(fname, &file));

  char scratch[256];
  Slice result;
  const uint64_t start = sim.NowNanos();
  const int reads = 20;
  for (int i = 0; i < reads; i++) {
    ASSERT_LILSM_OK(file->Read(0, 100, &result, scratch));
  }
  const uint64_t elapsed = sim.NowNanos() - start;
  EXPECT_GE(elapsed, uint64_t{reads} * 50000);
  EXPECT_GE(sim.io_stats()->simulated_wait_ns.load(),
            uint64_t{reads} * 50000);
}

TEST(SimEnvTest, PassesThroughFileOps) {
  ScratchDir dir("simenv");
  SimEnv sim(Env::Default());
  ASSERT_LILSM_OK(WriteStringToFile(&sim, "abc", dir.file("f")));
  EXPECT_TRUE(sim.FileExists(dir.file("f")));
  uint64_t size = 0;
  ASSERT_LILSM_OK(sim.GetFileSize(dir.file("f"), &size));
  EXPECT_EQ(size, 3u);
  ASSERT_LILSM_OK(sim.RenameFile(dir.file("f"), dir.file("g")));
  EXPECT_FALSE(sim.FileExists(dir.file("f")));
  ASSERT_LILSM_OK(sim.RemoveFile(dir.file("g")));
}

/// Queues `sizes` as one batch at the given depth and returns the modeled
/// wait charged by Wait() (simulated_wait_ns delta). All reads start at
/// offset 0, so with per_byte=1.0 each request's latency is base + size.
uint64_t BatchWaitNs(SimEnv* sim, RandomAccessFile* file, int io_depth,
                     const std::vector<size_t>& sizes) {
  std::vector<ReadRequest> reqs(sizes.size());
  std::vector<std::string> scratch(sizes.size());
  auto batch = sim->NewReadBatch(io_depth);
  for (size_t i = 0; i < sizes.size(); i++) {
    scratch[i].resize(sizes[i]);
    reqs[i].file = file;
    reqs[i].n = sizes[i];
    reqs[i].scratch = scratch[i].data();
    batch->Add(&reqs[i]);
  }
  const uint64_t before = sim->io_stats()->simulated_wait_ns.load();
  EXPECT_TRUE(batch->Wait().ok());
  for (const ReadRequest& r : reqs) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.result.size(), r.n);
  }
  return sim->io_stats()->simulated_wait_ns.load() - before;
}

TEST(SimEnvTest, BatchChargesWaveMaxNotSum) {
  ScratchDir dir("simenv");
  SimEnvOptions options;
  options.read_base_latency_ns = 1000;
  options.read_per_byte_ns = 1.0;  // Latency = 1000 + n, exactly.
  SimEnv sim(Env::Default(), options);
  const std::string fname = dir.file("f");
  ASSERT_LILSM_OK(WriteStringToFile(&sim, std::string(4096, 'd'), fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(sim.NewRandomAccessFile(fname, &file));

  // Five reads at depth 2: waves (100,200) (300,400) (500) cost their
  // maxima 1200 + 1400 + 1500 = 4100 — overlap pays max, not sum.
  EXPECT_EQ(BatchWaitNs(&sim, file.get(), 2, {100, 200, 300, 400, 500}),
            4100u);

  // Depth >= batch size: one wave, the single slowest read.
  EXPECT_EQ(BatchWaitNs(&sim, file.get(), 8, {100, 200, 300, 400, 500}),
            1500u);

  // Counters are charged per request exactly as in the serial path.
  sim.io_stats()->Reset();
  BatchWaitNs(&sim, file.get(), 4, {100, 200, 300});
  EXPECT_EQ(sim.io_stats()->random_reads.load(), 3u);
  EXPECT_EQ(sim.io_stats()->random_read_bytes.load(), 600u);
}

TEST(SimEnvTest, BatchDepthOneIsExactSequentialSum) {
  ScratchDir dir("simenv");
  SimEnvOptions options;
  options.read_base_latency_ns = 1000;
  options.read_per_byte_ns = 1.0;
  SimEnv sim(Env::Default(), options);
  const std::string fname = dir.file("f");
  ASSERT_LILSM_OK(WriteStringToFile(&sim, std::string(4096, 'd'), fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(sim.NewRandomAccessFile(fname, &file));

  // io_depth=1 must reproduce synchronous accounting to the nanosecond:
  // (1000+100) + (1000+200) + (1000+300) = 3600.
  EXPECT_EQ(BatchWaitNs(&sim, file.get(), 1, {100, 200, 300}), 3600u);
}

TEST(SimEnvTest, DeviceQueueDepthCapsBatchWaves) {
  ScratchDir dir("simenv");
  SimEnvOptions options;
  options.read_base_latency_ns = 1000;
  options.read_per_byte_ns = 1.0;
  options.io_depth = 2;  // The modeled device admits two in flight.
  SimEnv sim(Env::Default(), options);
  const std::string fname = dir.file("f");
  ASSERT_LILSM_OK(WriteStringToFile(&sim, std::string(4096, 'd'), fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(sim.NewRandomAccessFile(fname, &file));

  // The caller asks for depth 16 but the device caps waves at 2, so the
  // charge matches the depth-2 schedule from BatchChargesWaveMaxNotSum.
  EXPECT_EQ(BatchWaitNs(&sim, file.get(), 16, {100, 200, 300, 400, 500}),
            4100u);
}

TEST(SimEnvTest, DefaultCalibrationMatchesPaperTable1) {
  // ~2.1 us per 4 KiB read (paper Table 1's Disk I/O row).
  SimEnvOptions options;
  const double per_4k =
      options.read_base_latency_ns + options.read_per_byte_ns * 4096;
  EXPECT_NEAR(per_4k, 2100.0, 300.0);
}

}  // namespace
}  // namespace lilsm
