// Spline corridor: interpolation error bound and structure invariants.
#include "index/spline.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

struct SplineCase {
  Dataset dataset;
  uint32_t epsilon;
};

class SplinePropertyTest : public ::testing::TestWithParam<SplineCase> {};

TEST_P(SplinePropertyTest, InterpolationWithinEpsilon) {
  const SplineCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 3);
  auto points = BuildSplineCorridor(keys.data(), keys.size(), c.epsilon);
  ASSERT_GE(points.size(), 2u);
  EXPECT_EQ(points.front().x, keys.front());
  EXPECT_EQ(points.back().x, keys.back());

  for (size_t i = 0; i < keys.size(); i++) {
    const size_t seg = FindSplineSegment(points, keys[i]);
    const double predicted = InterpolateSpline(points, seg, keys[i]);
    ASSERT_NEAR(predicted, static_cast<double>(i), c.epsilon + 1e-6)
        << "key index " << i;
  }
}

TEST_P(SplinePropertyTest, PointsAreStrictlyIncreasing) {
  const SplineCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 3);
  auto points = BuildSplineCorridor(keys.data(), keys.size(), c.epsilon);
  for (size_t i = 1; i < points.size(); i++) {
    ASSERT_GT(points[i].x, points[i - 1].x);
    ASSERT_GT(points[i].y, points[i - 1].y);
  }
}

TEST_P(SplinePropertyTest, LargerEpsilonFewerPoints) {
  const SplineCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 3);
  auto tight = BuildSplineCorridor(keys.data(), keys.size(), c.epsilon);
  auto loose = BuildSplineCorridor(keys.data(), keys.size(), c.epsilon * 8);
  EXPECT_LE(loose.size(), tight.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplinePropertyTest,
    ::testing::Values(SplineCase{Dataset::kRandom, 4},
                      SplineCase{Dataset::kRandom, 64},
                      SplineCase{Dataset::kBooks, 8},
                      SplineCase{Dataset::kFb, 16},
                      SplineCase{Dataset::kWiki, 8},
                      SplineCase{Dataset::kLonglat, 32}),
    [](const ::testing::TestParamInfo<SplineCase>& info) {
      return std::string(DatasetName(info.param.dataset)) + "_eps" +
             std::to_string(info.param.epsilon);
    });

TEST(SplineEdgeTest, TinyInputs) {
  std::vector<Key> one = {5};
  EXPECT_EQ(BuildSplineCorridor(one.data(), 1, 4).size(), 1u);
  std::vector<Key> two = {5, 9};
  auto points = BuildSplineCorridor(two.data(), 2, 4);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].x, 5u);
  EXPECT_EQ(points[1].x, 9u);
}

TEST(SplineEdgeTest, SerializationRoundTrip) {
  std::vector<Key> keys = testing_util::RandomGapKeys(3000, 17);
  auto points = BuildSplineCorridor(keys.data(), keys.size(), 16);
  std::string blob;
  EncodeSplinePoints(points, &blob);
  Slice input(blob);
  std::vector<SplinePoint> decoded;
  ASSERT_LILSM_OK(DecodeSplinePoints(&input, &decoded));
  ASSERT_EQ(decoded.size(), points.size());
  for (size_t i = 0; i < points.size(); i++) {
    EXPECT_EQ(decoded[i].x, points[i].x);
    EXPECT_EQ(decoded[i].y, points[i].y);
  }
}

TEST(SplineEdgeTest, LinearDataCollapsesToTwoPoints) {
  std::vector<Key> keys;
  for (Key k = 0; k < 5000; k++) keys.push_back(k * 3);
  auto points = BuildSplineCorridor(keys.data(), keys.size(), 2);
  EXPECT_EQ(points.size(), 2u);
}

}  // namespace
}  // namespace lilsm
