// MemTable: versioned reads, tombstones, snapshot visibility, iteration.
#include "lsm/memtable.h"

#include <gtest/gtest.h>

namespace lilsm {
namespace {

TEST(MemTableTest, AddThenGet) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "ten");
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(10, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(type, kTypeValue);
  EXPECT_EQ(value, "ten");
  EXPECT_FALSE(mem.Get(11, kMaxSequenceNumber, &value, &type));
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(2, kTypeValue, 10, "v2");
  mem.Add(3, kTypeValue, 10, "v3");
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(10, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(value, "v3");
}

TEST(MemTableTest, SnapshotVisibility) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(5, kTypeValue, 10, "v5");
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(10, /*snapshot=*/3, &value, &type));
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(mem.Get(10, /*snapshot=*/5, &value, &type));
  EXPECT_EQ(value, "v5");
}

TEST(MemTableTest, TombstonesAreVisible) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(2, kTypeDeletion, 10, "");
  std::string value;
  ValueType type;
  ASSERT_TRUE(mem.Get(10, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(type, kTypeDeletion);
}

TEST(MemTableTest, IteratorOrdersByKeyThenNewestFirst) {
  MemTable mem;
  mem.Add(1, kTypeValue, 20, "b1");
  mem.Add(2, kTypeValue, 10, "a2");
  mem.Add(3, kTypeValue, 20, "b3");
  auto iter = mem.NewIterator();
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 10u);
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 20u);
  EXPECT_EQ(TagSequence(iter->tag()), 3u);  // newest version of 20 first
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 20u);
  EXPECT_EQ(TagSequence(iter->tag()), 1u);
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(MemTableTest, IteratorSeek) {
  MemTable mem;
  for (Key k = 0; k < 100; k++) {
    mem.Add(k + 1, kTypeValue, k * 10, "v");
  }
  auto iter = mem.NewIterator();
  iter->Seek(55);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 60u);
  iter->Seek(990);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 990u);
  iter->Seek(991);
  EXPECT_FALSE(iter->Valid());
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mem;
  const size_t before = mem.ApproximateMemoryUsage();
  for (Key k = 0; k < 1000; k++) {
    mem.Add(k + 1, kTypeValue, k, std::string(100, 'x'));
  }
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(mem.NumEntries(), 1000u);
}

TEST(MemTableTest, EmptyValueRoundTrips) {
  MemTable mem;
  mem.Add(1, kTypeValue, 5, "");
  std::string value = "sentinel";
  ValueType type;
  ASSERT_TRUE(mem.Get(5, kMaxSequenceNumber, &value, &type));
  EXPECT_EQ(type, kTypeValue);
  EXPECT_TRUE(value.empty());
}

}  // namespace
}  // namespace lilsm
