// TableCache: reuse, LRU eviction, option propagation, block-cache
// invalidation, and the SetIndexOptions-vs-GetReader race regression
// (this suite runs under TSan in CI).
#include "lsm/table_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

class TableCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("tcache");
    options_.env = Env::Default();
    options_.value_size = 16;
    for (uint64_t number = 1; number <= 6; number++) {
      std::unique_ptr<TableBuilder> builder;
      ASSERT_LILSM_OK(NewTableBuilder(
          options_, TableFileName(dir_->path(), number), &builder));
      std::vector<Key> keys = RandomGapKeys(100, number);
      for (size_t i = 0; i < keys.size(); i++) {
        ASSERT_LILSM_OK(builder->Add(keys[i], PackTag(i + 1, kTypeValue),
                                     DeriveValue(keys[i], 16)));
      }
      ASSERT_LILSM_OK(builder->Finish());
    }
  }

  std::unique_ptr<ScratchDir> dir_;
  TableOptions options_;
};

TEST_F(TableCacheTest, ReusesOpenReaders) {
  TableCache cache(options_, dir_->path(), 8);
  std::shared_ptr<TableReader> a, b;
  ASSERT_LILSM_OK(cache.GetReader(1, &a));
  ASSERT_LILSM_OK(cache.GetReader(1, &b));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(TableCacheTest, EvictsBeyondCapacity) {
  TableCache cache(options_, dir_->path(), 3);
  std::shared_ptr<TableReader> reader;
  for (uint64_t number = 1; number <= 6; number++) {
    ASSERT_LILSM_OK(cache.GetReader(number, &reader));
  }
  EXPECT_EQ(cache.size(), 3u);
  // The evicted table reopens transparently.
  ASSERT_LILSM_OK(cache.GetReader(1, &reader));
  EXPECT_EQ(reader->NumEntries(), 100u);
}

TEST_F(TableCacheTest, LruKeepsRecentlyUsed) {
  TableCache cache(options_, dir_->path(), 2);
  std::shared_ptr<TableReader> r1, r2, r3, r1_again;
  ASSERT_LILSM_OK(cache.GetReader(1, &r1));
  ASSERT_LILSM_OK(cache.GetReader(2, &r2));
  ASSERT_LILSM_OK(cache.GetReader(1, &r1));   // touch 1
  ASSERT_LILSM_OK(cache.GetReader(3, &r3));   // evicts 2
  ASSERT_LILSM_OK(cache.GetReader(1, &r1_again));
  EXPECT_EQ(r1.get(), r1_again.get());  // 1 survived
}

TEST_F(TableCacheTest, ExplicitEvict) {
  TableCache cache(options_, dir_->path(), 8);
  std::shared_ptr<TableReader> a, b;
  ASSERT_LILSM_OK(cache.GetReader(1, &a));
  cache.Evict(1);
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_LILSM_OK(cache.GetReader(1, &b));
  EXPECT_NE(a.get(), b.get());
}

TEST_F(TableCacheTest, MissingFileReportsError) {
  TableCache cache(options_, dir_->path(), 8);
  std::shared_ptr<TableReader> reader;
  EXPECT_FALSE(cache.GetReader(999, &reader).ok());
}

TEST_F(TableCacheTest, MemoryAccountingSumsCachedReaders) {
  TableCache cache(options_, dir_->path(), 8);
  std::shared_ptr<TableReader> reader;
  EXPECT_EQ(cache.TotalIndexMemory(), 0u);
  ASSERT_LILSM_OK(cache.GetReader(1, &reader));
  const size_t one = cache.TotalIndexMemory();
  EXPECT_GT(one, 0u);
  ASSERT_LILSM_OK(cache.GetReader(2, &reader));
  EXPECT_GT(cache.TotalIndexMemory(), one);
  EXPECT_GT(cache.TotalFilterMemory(), 0u);
}

TEST_F(TableCacheTest, SetIndexOptionsAffectsNewOpens) {
  TableCache cache(options_, dir_->path(), 8);
  cache.SetIndexOptions(IndexType::kRMI,
                        IndexConfig::FromPositionBoundary(16));
  EXPECT_EQ(cache.options().index_type, IndexType::kRMI);
  EXPECT_EQ(cache.options().index_config.epsilon, 8u);
}

// Regression: SetIndexOptions used to mutate options_ without mu_ while
// concurrent GetReader calls read it for cache misses ("quiescent-only"
// by convention). Both now go through the mutex; this hammers misses
// (capacity 2 over 6 files guarantees reopen churn) against a
// reconfiguration loop and must be TSan-clean.
TEST_F(TableCacheTest, ConcurrentGetReaderAndSetIndexOptions) {
  TableCache cache(options_, dir_->path(), 2);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread reconfigurer([&] {
    const IndexType types[] = {IndexType::kPGM, IndexType::kPLR,
                               IndexType::kRMI};
    for (int i = 0; i < 400; i++) {
      cache.SetIndexOptions(types[i % 3],
                            IndexConfig::FromPositionBoundary(16u << (i % 3)));
      (void)cache.options();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      uint64_t number = 1 + t;
      while (!stop.load()) {
        std::shared_ptr<TableReader> reader;
        if (!cache.GetReader(1 + number % 6, &reader).ok() ||
            reader->NumEntries() != 100u) {
          failed.store(true);
          return;
        }
        number++;
      }
    });
  }
  reconfigurer.join();
  for (auto& thread : readers) thread.join();
  EXPECT_FALSE(failed.load());
}

// Evicting a file (it was deleted by compaction GC) purges its blocks
// from the shared block cache; other files' blocks survive.
TEST_F(TableCacheTest, EvictPurgesBlockCacheEntries) {
  TableOptions options = options_;
  options.block_cache = std::make_shared<BlockCache>(4 << 20);
  TableCache cache(options, dir_->path(), 8);
  std::shared_ptr<TableReader> r1, r2;
  ASSERT_LILSM_OK(cache.GetReader(1, &r1));
  ASSERT_LILSM_OK(cache.GetReader(2, &r2));
  std::string value;
  uint64_t tag = 0;
  bool found = false;
  std::vector<Key> keys1, keys2;
  ASSERT_LILSM_OK(r1->ReadAllKeys(&keys1));
  ASSERT_LILSM_OK(r2->ReadAllKeys(&keys2));
  ASSERT_LILSM_OK(r1->Get(keys1[0], &value, &tag, &found));
  ASSERT_LILSM_OK(r2->Get(keys2[0], &value, &tag, &found));
  const size_t warm = options.block_cache->MemoryUsage();
  ASSERT_GT(warm, 0u);

  cache.Evict(1);
  const size_t after = options.block_cache->MemoryUsage();
  EXPECT_LT(after, warm);
  EXPECT_GT(after, 0u);  // file 2's blocks survive

  cache.Clear();
  EXPECT_EQ(options.block_cache->MemoryUsage(), 0u);
}

}  // namespace
}  // namespace lilsm
