// Zipf generator skew and YCSB mix proportions.
#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <map>

#include "workload/zipf.h"

namespace lilsm {
namespace {

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfGenerator zipf(10000, 0.99, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[zipf.NextRank()]++;
  int max_count = 0;
  uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0u);
  // Head heaviness: top rank alone takes >5% under theta=0.99.
  EXPECT_GT(max_count, 5000);
}

TEST(ZipfTest, RanksStayInRange) {
  ZipfGenerator zipf(1000, 0.99, 9);
  for (int i = 0; i < 50000; i++) {
    ASSERT_LT(zipf.NextRank(), 1000u);
    ASSERT_LT(zipf.NextScrambled(), 1000u);
  }
}

TEST(ZipfTest, ScramblingSpreadsHotKeys) {
  ZipfGenerator zipf(100000, 0.99, 11);
  // The scrambled hot item should not be item 0.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) counts[zipf.NextScrambled()]++;
  uint64_t hottest = 0;
  int max_count = 0;
  for (const auto& [item, count] : counts) {
    if (count > max_count) {
      max_count = count;
      hottest = item;
    }
  }
  EXPECT_NE(hottest, 0u);
}

TEST(LatestTest, FavorsNewestIndexes) {
  LatestGenerator latest(10000, 13);
  uint64_t sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) sum += latest.Next();
  // Mean far above the uniform midpoint of 5000.
  EXPECT_GT(sum / n, 8000u);
}

class YcsbMixTest : public ::testing::TestWithParam<YcsbWorkload> {};

TEST_P(YcsbMixTest, ProportionsMatchSpec) {
  YcsbGenerator gen(GetParam(), 100000, 17);
  std::map<YcsbOp::Type, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; i++) counts[gen.Next().type]++;

  auto frac = [&](YcsbOp::Type t) {
    return static_cast<double>(counts[t]) / n;
  };
  switch (GetParam()) {
    case YcsbWorkload::kA:
      EXPECT_NEAR(frac(YcsbOp::Type::kRead), 0.5, 0.02);
      EXPECT_NEAR(frac(YcsbOp::Type::kUpdate), 0.5, 0.02);
      break;
    case YcsbWorkload::kB:
      EXPECT_NEAR(frac(YcsbOp::Type::kRead), 0.95, 0.01);
      EXPECT_NEAR(frac(YcsbOp::Type::kUpdate), 0.05, 0.01);
      break;
    case YcsbWorkload::kC:
      EXPECT_EQ(counts[YcsbOp::Type::kRead], n);
      break;
    case YcsbWorkload::kD:
      EXPECT_NEAR(frac(YcsbOp::Type::kRead), 0.95, 0.01);
      EXPECT_NEAR(frac(YcsbOp::Type::kInsert), 0.05, 0.01);
      break;
    case YcsbWorkload::kE:
      EXPECT_NEAR(frac(YcsbOp::Type::kScan), 0.95, 0.01);
      EXPECT_NEAR(frac(YcsbOp::Type::kInsert), 0.05, 0.01);
      break;
    case YcsbWorkload::kF:
      EXPECT_NEAR(frac(YcsbOp::Type::kRead), 0.5, 0.02);
      EXPECT_NEAR(frac(YcsbOp::Type::kReadModifyWrite), 0.5, 0.02);
      break;
  }
}

TEST_P(YcsbMixTest, ScanLengthsBounded) {
  YcsbGenerator gen(GetParam(), 1000, 19);
  for (int i = 0; i < 20000; i++) {
    const YcsbOp op = gen.Next();
    if (op.type == YcsbOp::Type::kScan) {
      ASSERT_GE(op.scan_length, 1u);
      ASSERT_LE(op.scan_length, 100u);
    }
  }
}

TEST_P(YcsbMixTest, InsertsExtendKeyIndexSpace) {
  YcsbGenerator gen(GetParam(), 1000, 21);
  const uint64_t before = gen.num_keys();
  uint64_t inserts = 0;
  for (int i = 0; i < 10000; i++) {
    const YcsbOp op = gen.Next();
    if (op.type == YcsbOp::Type::kInsert) {
      ASSERT_GE(op.key_index, before);
      inserts++;
    } else if (op.type != YcsbOp::Type::kScan) {
      ASSERT_LT(op.key_index, gen.num_keys());
    }
  }
  if (GetParam() == YcsbWorkload::kD || GetParam() == YcsbWorkload::kE) {
    EXPECT_GT(inserts, 0u);
    EXPECT_EQ(gen.num_keys(), before + inserts);
  } else {
    EXPECT_EQ(inserts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, YcsbMixTest, ::testing::ValuesIn(kAllYcsbWorkloads),
    [](const ::testing::TestParamInfo<YcsbWorkload>& info) {
      return std::string("W") + YcsbWorkloadName(info.param);
    });

TEST(YcsbParseTest, Names) {
  YcsbWorkload w;
  ASSERT_TRUE(ParseYcsbWorkload("a", &w));
  EXPECT_EQ(w, YcsbWorkload::kA);
  ASSERT_TRUE(ParseYcsbWorkload("F", &w));
  EXPECT_EQ(w, YcsbWorkload::kF);
  EXPECT_FALSE(ParseYcsbWorkload("G", &w));
  EXPECT_FALSE(ParseYcsbWorkload("", &w));
}

}  // namespace
}  // namespace lilsm
