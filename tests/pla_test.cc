// PLA construction: epsilon guarantee for greedy and optimal builders,
// optimality ordering, and degenerate inputs.
#include "index/pla.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;

/// Max |prediction - true position| across all keys, assigning each key to
/// the segment that covers it.
double MaxError(const std::vector<LinearSegment>& segments,
                const std::vector<Key>& keys) {
  double max_err = 0;
  size_t seg = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    while (seg + 1 < segments.size() &&
           segments[seg + 1].first_key <= keys[i]) {
      seg++;
    }
    const double err =
        std::abs(segments[seg].PredictF(keys[i]) - static_cast<double>(i));
    max_err = std::max(max_err, err);
  }
  return max_err;
}

struct PlaCase {
  Dataset dataset;
  uint32_t epsilon;
};

class PlaPropertyTest : public ::testing::TestWithParam<PlaCase> {};

TEST_P(PlaPropertyTest, GreedyRespectsEpsilon) {
  const PlaCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 5);
  auto segments = GreedyPla(keys.data(), keys.size(), c.epsilon);
  ASSERT_FALSE(segments.empty());
  EXPECT_LE(MaxError(segments, keys), c.epsilon + 1e-6);
}

TEST_P(PlaPropertyTest, OptimalRespectsEpsilon) {
  const PlaCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 5);
  auto segments = OptimalPla(keys.data(), keys.size(), c.epsilon);
  ASSERT_FALSE(segments.empty());
  EXPECT_LE(MaxError(segments, keys), c.epsilon + 1e-6);
}

TEST_P(PlaPropertyTest, OptimalNeverNeedsMoreSegments) {
  const PlaCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 5);
  auto greedy = GreedyPla(keys.data(), keys.size(), c.epsilon);
  auto optimal = OptimalPla(keys.data(), keys.size(), c.epsilon);
  EXPECT_LE(optimal.size(), greedy.size());
}

TEST_P(PlaPropertyTest, SegmentsPartitionTheKeySpace) {
  const PlaCase& c = GetParam();
  std::vector<Key> keys = GenerateKeys(c.dataset, 15000, 5);
  for (auto* segments :
       {new std::vector<LinearSegment>(GreedyPla(keys.data(), keys.size(),
                                                 c.epsilon)),
        new std::vector<LinearSegment>(OptimalPla(keys.data(), keys.size(),
                                                  c.epsilon))}) {
    ASSERT_EQ(segments->front().first_key, keys.front());
    for (size_t i = 1; i < segments->size(); i++) {
      ASSERT_GT((*segments)[i].first_key, (*segments)[i - 1].first_key);
    }
    delete segments;
  }
}

std::vector<PlaCase> PlaCases() {
  std::vector<PlaCase> cases;
  for (Dataset dataset : kAllDatasets) {
    for (uint32_t epsilon : {1u, 8u, 64u, 512u}) {
      cases.push_back({dataset, epsilon});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlaPropertyTest, ::testing::ValuesIn(PlaCases()),
    [](const ::testing::TestParamInfo<PlaCase>& info) {
      return std::string(DatasetName(info.param.dataset)) + "_eps" +
             std::to_string(info.param.epsilon);
    });

TEST(PlaEdgeTest, SinglePoint) {
  const Key key = 7;
  auto greedy = GreedyPla(&key, 1, 8);
  auto optimal = OptimalPla(&key, 1, 8);
  ASSERT_EQ(greedy.size(), 1u);
  ASSERT_EQ(optimal.size(), 1u);
  EXPECT_NEAR(greedy[0].PredictF(7), 0.0, 1e-9);
  EXPECT_NEAR(optimal[0].PredictF(7), 0.0, 8.0);
}

TEST(PlaEdgeTest, CollinearPointsNeedOneSegment) {
  std::vector<Key> keys;
  for (Key k = 0; k < 10000; k++) keys.push_back(k * 17);
  EXPECT_EQ(OptimalPla(keys.data(), keys.size(), 1).size(), 1u);
  EXPECT_EQ(GreedyPla(keys.data(), keys.size(), 1).size(), 1u);
}

TEST(PlaEdgeTest, AdversarialZigZag) {
  // Alternating tiny/huge gaps defeat long segments at small epsilon but
  // the error bound must hold regardless.
  std::vector<Key> keys;
  Key current = 0;
  for (int i = 0; i < 5000; i++) {
    keys.push_back(current);
    current += (i % 2 == 0) ? 1 : 100000;
  }
  for (uint32_t epsilon : {1u, 4u, 16u}) {
    auto segments = OptimalPla(keys.data(), keys.size(), epsilon);
    EXPECT_LE(MaxError(segments, keys), epsilon + 1e-6);
  }
}

TEST(PlaEdgeTest, ExtremeKeyRange) {
  std::vector<Key> keys = {0, 1, 2, uint64_t{1} << 62, (uint64_t{1} << 62) + 1,
                           ~uint64_t{0}};
  auto segments = OptimalPla(keys.data(), keys.size(), 2);
  EXPECT_LE(MaxError(segments, keys), 2 + 1e-6);
}

TEST(PlaEdgeTest, StreamingBuilderMatchesBatch) {
  std::vector<Key> keys = RandomGapKeys(5000, 123);
  auto batch = OptimalPla(keys.data(), keys.size(), 16);

  OptimalPlaBuilder builder(16);
  std::vector<LinearSegment> streamed;
  for (size_t i = 0; i < keys.size(); i++) {
    if (!builder.AddPoint(keys[i], static_cast<int64_t>(i))) {
      streamed.push_back(builder.Finish());
      builder.AddPoint(keys[i], static_cast<int64_t>(i));
    }
  }
  if (builder.has_points()) streamed.push_back(builder.Finish());
  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t i = 0; i < streamed.size(); i++) {
    EXPECT_EQ(streamed[i].first_key, batch[i].first_key);
  }
}

}  // namespace
}  // namespace lilsm
