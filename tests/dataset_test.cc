// Dataset generators: size, uniqueness, determinism, CDF shape markers.
#include "workload/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lilsm {
namespace {

class DatasetTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetTest, ProducesExactlyNStrictlyIncreasingKeys) {
  for (size_t n : {1ul, 2ul, 100ul, 50000ul}) {
    std::vector<Key> keys = GenerateKeys(GetParam(), n, 9);
    ASSERT_EQ(keys.size(), n);
    for (size_t i = 1; i < keys.size(); i++) {
      ASSERT_GT(keys[i], keys[i - 1]) << "at " << i;
    }
  }
}

TEST_P(DatasetTest, DeterministicInSeed) {
  std::vector<Key> a = GenerateKeys(GetParam(), 10000, 42);
  std::vector<Key> b = GenerateKeys(GetParam(), 10000, 42);
  std::vector<Key> c = GenerateKeys(GetParam(), 10000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_P(DatasetTest, CdfSamplesAreMonotone) {
  std::vector<Key> keys = GenerateKeys(GetParam(), 20000, 1);
  auto cdf = SampleCdf(keys, 100);
  ASSERT_EQ(cdf.size(), 100u);
  EXPECT_DOUBLE_EQ(cdf.front().second, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); i++) {
    ASSERT_GE(cdf[i].first, cdf[i - 1].first);
    ASSERT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST_P(DatasetTest, NameParsesBack) {
  Dataset parsed;
  ASSERT_TRUE(ParseDataset(DatasetName(GetParam()), &parsed));
  EXPECT_EQ(parsed, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, DatasetTest, ::testing::ValuesIn(kAllDatasets),
    [](const ::testing::TestParamInfo<Dataset>& info) {
      return std::string(DatasetName(info.param));
    });

TEST(DatasetShapeTest, RandomIsNearUniform) {
  std::vector<Key> keys = GenerateKeys(Dataset::kRandom, 50000, 3);
  // Uniform draws over [0, 2^63): the median should be near 2^62.
  const double mid = static_cast<double>(keys[keys.size() / 2]);
  EXPECT_NEAR(mid / static_cast<double>(uint64_t{1} << 62), 1.0, 0.1);
}

TEST(DatasetShapeTest, FbHasExtremeOutliers) {
  std::vector<Key> keys = GenerateKeys(Dataset::kFb, 50000, 3);
  // Body is below 2^40; outliers above 2^62 must exist but be rare.
  const size_t outliers =
      keys.end() - std::lower_bound(keys.begin(), keys.end(),
                                    uint64_t{1} << 62);
  EXPECT_GT(outliers, 10u);
  EXPECT_LT(outliers, keys.size() / 50);
}

TEST(DatasetShapeTest, SegmentHasGapJumps) {
  std::vector<Key> keys = GenerateKeys(Dataset::kSegment, 50000, 3);
  uint64_t max_gap = 0, min_gap = UINT64_MAX;
  for (size_t i = 1; i < keys.size(); i++) {
    max_gap = std::max(max_gap, keys[i] - keys[i - 1]);
    min_gap = std::min(min_gap, keys[i] - keys[i - 1]);
  }
  EXPECT_GT(max_gap, min_gap * 1000) << "staircase needs contrast";
}

TEST(DatasetShapeTest, HardDatasetsNeedMoreSegmentsThanRandom) {
  // The reason the paper sweeps datasets: model-hard CDFs (fb, wiki) need
  // more PLA segments than uniform data at the same epsilon.
  auto count_segments = [](Dataset d) {
    std::vector<Key> keys = GenerateKeys(d, 50000, 5);
    auto index = CreateIndex(IndexType::kPGM);
    index->Build(keys.data(), keys.size(),
                 IndexConfig::FromPositionBoundary(32));
    return index->SegmentCount();
  };
  const size_t random_segments = count_segments(Dataset::kRandom);
  EXPECT_GT(count_segments(Dataset::kFb), 2 * random_segments);
  EXPECT_GT(count_segments(Dataset::kWiki), 2 * random_segments);
}

TEST(DeriveValueTest, DeterministicAndSized) {
  EXPECT_EQ(DeriveValue(1, 100).size(), 100u);
  EXPECT_EQ(DeriveValue(1, 100), DeriveValue(1, 100));
  EXPECT_NE(DeriveValue(1, 100), DeriveValue(2, 100));
  EXPECT_EQ(DeriveValue(7, 0).size(), 0u);
  EXPECT_EQ(DeriveValue(7, 3).size(), 3u);
}

}  // namespace
}  // namespace lilsm
