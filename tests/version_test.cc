// VersionEdit encoding, Version invariants, VersionSet recovery and
// compaction picking.
#include "lsm/version.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

FileMeta MakeFile(uint64_t number, Key smallest, Key largest,
                  uint64_t size = 1000, uint64_t entries = 10) {
  FileMeta meta;
  meta.number = number;
  meta.smallest = smallest;
  meta.largest = largest;
  meta.file_size = size;
  meta.entries = entries;
  return meta;
}

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetLogNumber(12);
  edit.SetNextFileNumber(99);
  edit.SetLastSequence(123456789);
  edit.SetCompactPointer(3, 42);
  edit.RemoveFile(1, 7);
  edit.AddFile(2, MakeFile(8, 100, 200, 5000, 50));

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_LILSM_OK(decoded.DecodeFrom(encoded));
  EXPECT_TRUE(decoded.has_log_number_);
  EXPECT_EQ(decoded.log_number_, 12u);
  EXPECT_EQ(decoded.next_file_number_, 99u);
  EXPECT_EQ(decoded.last_sequence_, 123456789u);
  ASSERT_EQ(decoded.compact_pointers_.size(), 1u);
  EXPECT_EQ(decoded.compact_pointers_[0].second, 42u);
  ASSERT_EQ(decoded.deleted_files_.size(), 1u);
  ASSERT_EQ(decoded.new_files_.size(), 1u);
  EXPECT_EQ(decoded.new_files_[0].second.largest, 200u);
}

TEST(VersionEditTest, RejectsGarbage) {
  VersionEdit edit;
  EXPECT_TRUE(edit.DecodeFrom(Slice("\xff\xff\xff garbage")).IsCorruption());
}

TEST(VersionTest, FindFileBinarySearches) {
  Version v;
  v.files_[1] = {MakeFile(1, 10, 20), MakeFile(2, 30, 40),
                 MakeFile(3, 50, 60)};
  EXPECT_EQ(v.FindFile(1, 15), 0);
  EXPECT_EQ(v.FindFile(1, 30), 1);
  EXPECT_EQ(v.FindFile(1, 40), 1);
  EXPECT_EQ(v.FindFile(1, 60), 2);
  EXPECT_EQ(v.FindFile(1, 25), -1);  // gap
  EXPECT_EQ(v.FindFile(1, 5), -1);   // before
  EXPECT_EQ(v.FindFile(1, 70), -1);  // after
}

TEST(VersionTest, GetOverlappingAndBelow) {
  Version v;
  v.files_[2] = {MakeFile(1, 10, 20), MakeFile(2, 30, 40),
                 MakeFile(3, 50, 60)};
  EXPECT_EQ(v.GetOverlapping(2, 15, 35).size(), 2u);
  EXPECT_EQ(v.GetOverlapping(2, 21, 29).size(), 0u);
  EXPECT_EQ(v.GetOverlapping(2, 0, 100).size(), 3u);
  EXPECT_TRUE(v.KeyMayExistBelow(1, 35));
  EXPECT_FALSE(v.KeyMayExistBelow(2, 35));
  EXPECT_FALSE(v.KeyMayExistBelow(1, 25));
}

TEST(VersionSetTest, CreateRecoverRoundTrip) {
  ScratchDir dir("vset");
  {
    VersionSet versions(Env::Default(), dir.path());
    ASSERT_LILSM_OK(versions.CreateNew());
    VersionEdit edit;
    edit.AddFile(0, MakeFile(5, 1, 100));
    edit.AddFile(1, MakeFile(6, 1, 50));
    edit.SetLogNumber(7);
    versions.SetLastSequence(321);
    ASSERT_LILSM_OK(versions.LogAndApply(&edit));
  }
  VersionSet recovered(Env::Default(), dir.path());
  ASSERT_LILSM_OK(recovered.Recover());
  EXPECT_EQ(recovered.current().NumFiles(0), 1);
  EXPECT_EQ(recovered.current().NumFiles(1), 1);
  EXPECT_EQ(recovered.log_number(), 7u);
  EXPECT_EQ(recovered.last_sequence(), 321u);
  // New file numbers must not collide with recovered ones.
  EXPECT_GT(recovered.NewFileNumber(), 6u);
}

TEST(VersionSetTest, ApplyRemovesAndSortsFiles) {
  ScratchDir dir("vset");
  VersionSet versions(Env::Default(), dir.path());
  ASSERT_LILSM_OK(versions.CreateNew());
  VersionEdit add;
  add.AddFile(1, MakeFile(10, 500, 600));
  add.AddFile(1, MakeFile(11, 100, 200));
  add.AddFile(0, MakeFile(12, 1, 9));
  add.AddFile(0, MakeFile(13, 2, 8));
  ASSERT_LILSM_OK(versions.LogAndApply(&add));
  // L1 sorted by smallest; L0 newest (highest number) first.
  EXPECT_EQ(versions.current().files(1)[0].number, 11u);
  EXPECT_EQ(versions.current().files(0)[0].number, 13u);

  VersionEdit remove;
  remove.RemoveFile(1, 11);
  ASSERT_LILSM_OK(versions.LogAndApply(&remove));
  ASSERT_EQ(versions.current().NumFiles(1), 1);
  EXPECT_EQ(versions.current().files(1)[0].number, 10u);
}

TEST(VersionSetTest, PicksL0WhenTriggered) {
  ScratchDir dir("vset");
  VersionSet versions(Env::Default(), dir.path());
  ASSERT_LILSM_OK(versions.CreateNew());
  VersionEdit edit;
  for (uint64_t i = 0; i < 4; i++) {
    edit.AddFile(0, MakeFile(10 + i, i * 10, i * 10 + 15));
  }
  edit.AddFile(1, MakeFile(20, 0, 100));
  ASSERT_LILSM_OK(versions.LogAndApply(&edit));

  VersionSet::CompactionPick pick;
  ASSERT_TRUE(versions.PickCompaction(4, 1 << 20, 10, &pick));
  EXPECT_EQ(pick.level, 0);
  EXPECT_EQ(pick.inputs.size(), 4u);
  EXPECT_EQ(pick.next_inputs.size(), 1u);
}

TEST(VersionSetTest, PicksOversizedLevel) {
  ScratchDir dir("vset");
  VersionSet versions(Env::Default(), dir.path());
  ASSERT_LILSM_OK(versions.CreateNew());
  VersionEdit edit;
  // L1 capacity with base 1 MiB and ratio 10 is 10 MiB; add 20 MiB.
  for (uint64_t i = 0; i < 20; i++) {
    edit.AddFile(1, MakeFile(30 + i, i * 100, i * 100 + 50, 1 << 20));
  }
  ASSERT_LILSM_OK(versions.LogAndApply(&edit));
  VersionSet::CompactionPick pick;
  ASSERT_TRUE(versions.PickCompaction(4, 1 << 20, 10, &pick));
  EXPECT_EQ(pick.level, 1);
  EXPECT_EQ(pick.inputs.size(), 1u);  // partial compaction: one file
}

TEST(VersionSetTest, NothingToPickWhenWithinCapacity) {
  ScratchDir dir("vset");
  VersionSet versions(Env::Default(), dir.path());
  ASSERT_LILSM_OK(versions.CreateNew());
  VersionEdit edit;
  edit.AddFile(1, MakeFile(40, 0, 10, 1000));
  ASSERT_LILSM_OK(versions.LogAndApply(&edit));
  VersionSet::CompactionPick pick;
  EXPECT_FALSE(versions.PickCompaction(4, 1 << 20, 10, &pick));
}

TEST(VersionSetTest, RoundRobinPointerAdvances) {
  ScratchDir dir("vset");
  VersionSet versions(Env::Default(), dir.path());
  ASSERT_LILSM_OK(versions.CreateNew());
  VersionEdit edit;
  for (uint64_t i = 0; i < 12; i++) {
    edit.AddFile(1, MakeFile(50 + i, i * 100, i * 100 + 50, 1 << 20));
  }
  ASSERT_LILSM_OK(versions.LogAndApply(&edit));

  VersionSet::CompactionPick first, second;
  ASSERT_TRUE(versions.PickCompaction(4, 1 << 18, 10, &first));
  VersionEdit ptr;
  ptr.SetCompactPointer(1, first.inputs[0].largest);
  ASSERT_LILSM_OK(versions.LogAndApply(&ptr));
  ASSERT_TRUE(versions.PickCompaction(4, 1 << 18, 10, &second));
  EXPECT_GT(second.inputs[0].smallest, first.inputs[0].largest);
}

TEST(VersionSetTest, CorruptCurrentFileFailsRecovery) {
  ScratchDir dir("vset");
  {
    VersionSet versions(Env::Default(), dir.path());
    ASSERT_LILSM_OK(versions.CreateNew());
  }
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "nonsense\n",
                                    CurrentFileName(dir.path())));
  VersionSet versions(Env::Default(), dir.path());
  EXPECT_FALSE(versions.Recover().ok());
}

TEST(FileNameTest, ParseRoundTrip) {
  uint64_t number = 0;
  EXPECT_EQ(ParseFileName("000123.lst", &number), FileKind::kTableFile);
  EXPECT_EQ(number, 123u);
  EXPECT_EQ(ParseFileName("000007.log", &number), FileKind::kWalFile);
  EXPECT_EQ(ParseFileName("MANIFEST-000002", &number),
            FileKind::kManifestFile);
  EXPECT_EQ(number, 2u);
  EXPECT_EQ(ParseFileName("CURRENT", &number), FileKind::kCurrentFile);
  EXPECT_EQ(ParseFileName("000009.tmp", &number), FileKind::kTempFile);
  EXPECT_EQ(ParseFileName("junk", &number), FileKind::kUnknown);
  EXPECT_EQ(ParseFileName("abc.lst", &number), FileKind::kUnknown);
}

}  // namespace
}  // namespace lilsm
