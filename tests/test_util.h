// Shared test helpers: scratch directories and key-set builders.
#ifndef LILSM_TESTS_TEST_UTIL_H_
#define LILSM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/index.h"
#include "util/env.h"
#include "util/random.h"

namespace lilsm {
namespace testing_util {

/// A per-test scratch directory under /tmp, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info != nullptr ? info->name() : "anon";
    // Sanitize parameterized test names ("Case/3" etc.).
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    path_ = "/tmp/lilsm_test_" + tag + "_" + name;
    Cleanup();
    Env::Default()->CreateDir(path_);
  }

  ~ScratchDir() { Cleanup(); }

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  void Cleanup() { RemoveTree(path_, 0); }

  static void RemoveTree(const std::string& dir, int depth) {
    if (depth > 4) return;  // scratch trees are shallow by construction
    Env* env = Env::Default();
    std::vector<std::string> children;
    if (env->GetChildren(dir, &children).ok()) {
      for (const std::string& child : children) {
        if (child == "." || child == "..") continue;
        const std::string path = dir + "/" + child;
        if (!env->RemoveFile(path).ok()) {
          RemoveTree(path, depth + 1);  // a subdirectory
        }
      }
    }
    env->RemoveDir(dir);
  }

  std::string path_;
};

/// n strictly increasing keys with pseudo-random gaps.
inline std::vector<Key> RandomGapKeys(size_t n, uint64_t seed,
                                      uint64_t max_gap = 1000) {
  Random rnd(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  Key current = rnd.Uniform(1000);
  for (size_t i = 0; i < n; i++) {
    keys.push_back(current);
    current += 1 + rnd.Uniform(max_gap);
  }
  return keys;
}

#define ASSERT_LILSM_OK(expr)                                 \
  do {                                                        \
    ::lilsm::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();      \
  } while (0)

#define EXPECT_LILSM_OK(expr)                                 \
  do {                                                        \
    ::lilsm::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();      \
  } while (0)

}  // namespace testing_util
}  // namespace lilsm

#endif  // LILSM_TESTS_TEST_UTIL_H_
