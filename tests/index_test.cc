// Property tests for the learned index library: for every index type, over
// every key distribution and epsilon, Predict must return a window that
// contains the true position (the invariant the whole read path rests on),
// serialization must round-trip, and memory accounting must be sane.
#include "index/index.h"

#include <gtest/gtest.h>

#include "index/pgm.h"
#include "index/plex.h"
#include "index/rmi.h"
#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;

struct IndexCase {
  IndexType type;
  Dataset dataset;
  uint32_t epsilon;
};

std::string CaseName(const ::testing::TestParamInfo<IndexCase>& info) {
  return std::string(IndexTypeName(info.param.type)) + "_" +
         DatasetName(info.param.dataset) + "_eps" +
         std::to_string(info.param.epsilon);
}

class IndexPropertyTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  void SetUp() override {
    const IndexCase& c = GetParam();
    keys_ = GenerateKeys(c.dataset, 20000, /*seed=*/7);
    config_ = IndexConfig::FromPositionBoundary(2 * c.epsilon);
    index_ = CreateIndex(c.type);
    ASSERT_NE(index_, nullptr);
    ASSERT_LILSM_OK(index_->Build(keys_.data(), keys_.size(), config_));
  }

  std::vector<Key> keys_;
  IndexConfig config_;
  std::unique_ptr<LearnedIndex> index_;
};

TEST_P(IndexPropertyTest, EveryKeyWithinPredictedWindow) {
  for (size_t i = 0; i < keys_.size(); i++) {
    const PredictResult r = index_->Predict(keys_[i]);
    ASSERT_LE(r.lo, i) << "key index " << i;
    ASSERT_GE(r.hi, i) << "key index " << i;
    ASSERT_LE(r.lo, r.pos);
    ASSERT_LE(r.pos, r.hi);
    ASSERT_LT(r.hi, keys_.size());
  }
}

TEST_P(IndexPropertyTest, WindowWidthRespectsBoundary) {
  // RMI's window is trained, not configured; every other index must stay
  // within the configured position boundary (plus the floor slack of 1).
  if (GetParam().type == IndexType::kRMI) GTEST_SKIP();
  const size_t max_width = config_.position_boundary() + 3;
  for (size_t i = 0; i < keys_.size(); i += 7) {
    const PredictResult r = index_->Predict(keys_[i]);
    ASSERT_LE(r.width(), max_width) << "at key index " << i;
  }
}

TEST_P(IndexPropertyTest, SerializationRoundTripsPredictions) {
  std::string blob;
  EncodeIndexWithType(*index_, &blob);
  Slice input(blob);
  std::unique_ptr<LearnedIndex> decoded;
  ASSERT_LILSM_OK(DecodeIndexWithType(&input, &decoded));
  ASSERT_EQ(decoded->type(), index_->type());
  ASSERT_EQ(decoded->num_keys(), index_->num_keys());
  ASSERT_EQ(decoded->SegmentCount(), index_->SegmentCount());
  for (size_t i = 0; i < keys_.size(); i += 13) {
    const PredictResult a = index_->Predict(keys_[i]);
    const PredictResult b = decoded->Predict(keys_[i]);
    ASSERT_EQ(a.lo, b.lo) << "at key index " << i;
    ASSERT_EQ(a.hi, b.hi) << "at key index " << i;
  }
  EXPECT_TRUE(input.empty()) << "decoder must consume the whole blob";
}

TEST_P(IndexPropertyTest, AbsentKeysStillReturnClampedWindows) {
  Random rnd(99);
  for (int i = 0; i < 2000; i++) {
    const Key probe = rnd.Next();
    const PredictResult r = index_->Predict(probe);
    ASSERT_LE(r.lo, r.hi);
    ASSERT_LT(r.hi, keys_.size());
  }
}

TEST_P(IndexPropertyTest, MemoryAndSegmentsAreAccounted) {
  EXPECT_GT(index_->MemoryUsage(), 0u);
  EXPECT_GT(index_->SegmentCount(), 0u);
  EXPECT_EQ(index_->num_keys(), keys_.size());
}

TEST_P(IndexPropertyTest, RebuildReplacesPreviousState) {
  std::vector<Key> other = RandomGapKeys(500, 1234);
  ASSERT_LILSM_OK(index_->Build(other.data(), other.size(), config_));
  EXPECT_EQ(index_->num_keys(), other.size());
  for (size_t i = 0; i < other.size(); i++) {
    const PredictResult r = index_->Predict(other[i]);
    ASSERT_LE(r.lo, i);
    ASSERT_GE(r.hi, i);
  }
}

std::vector<IndexCase> AllCases() {
  std::vector<IndexCase> cases;
  for (IndexType type : kAllIndexTypes) {
    for (Dataset dataset : kAllDatasets) {
      for (uint32_t epsilon : {4u, 32u, 128u}) {
        cases.push_back(IndexCase{type, dataset, epsilon});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, IndexPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ---- edge cases shared across types ----

class IndexEdgeTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(IndexEdgeTest, SingleKey) {
  auto index = CreateIndex(GetParam());
  const Key key = 42;
  ASSERT_LILSM_OK(index->Build(&key, 1, IndexConfig()));
  const PredictResult r = index->Predict(42);
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 0u);
  EXPECT_EQ(index->num_keys(), 1u);
}

TEST_P(IndexEdgeTest, TwoKeys) {
  auto index = CreateIndex(GetParam());
  const Key keys[] = {10, 1000000};
  ASSERT_LILSM_OK(index->Build(keys, 2, IndexConfig()));
  for (size_t i = 0; i < 2; i++) {
    const PredictResult r = index->Predict(keys[i]);
    EXPECT_LE(r.lo, i);
    EXPECT_GE(r.hi, i);
  }
}

TEST_P(IndexEdgeTest, DenseSequentialKeys) {
  auto index = CreateIndex(GetParam());
  std::vector<Key> keys(5000);
  for (size_t i = 0; i < keys.size(); i++) keys[i] = i + 1;
  IndexConfig config = IndexConfig::FromPositionBoundary(16);
  ASSERT_LILSM_OK(index->Build(keys.data(), keys.size(), config));
  // Perfectly linear data: PLA/spline types need very few segments (RMI
  // sizes its second level by a count heuristic, FP by the boundary).
  if (GetParam() != IndexType::kFencePointer &&
      GetParam() != IndexType::kRMI) {
    EXPECT_LE(index->SegmentCount(), 64u);
  }
  for (size_t i = 0; i < keys.size(); i += 17) {
    const PredictResult r = index->Predict(keys[i]);
    ASSERT_LE(r.lo, i);
    ASSERT_GE(r.hi, i);
  }
}

TEST_P(IndexEdgeTest, RejectsUnsortedKeys) {
  auto index = CreateIndex(GetParam());
  const Key keys[] = {5, 3, 9};
  EXPECT_TRUE(index->Build(keys, 3, IndexConfig()).IsInvalidArgument());
}

TEST_P(IndexEdgeTest, RejectsDuplicateKeys) {
  auto index = CreateIndex(GetParam());
  const Key keys[] = {5, 5, 9};
  EXPECT_TRUE(index->Build(keys, 3, IndexConfig()).IsInvalidArgument());
}

TEST_P(IndexEdgeTest, ExtremeKeyValues) {
  auto index = CreateIndex(GetParam());
  std::vector<Key> keys = {0, 1, uint64_t{1} << 32, uint64_t{1} << 62,
                           ~uint64_t{0} - 1, ~uint64_t{0}};
  ASSERT_LILSM_OK(index->Build(keys.data(), keys.size(), IndexConfig()));
  for (size_t i = 0; i < keys.size(); i++) {
    const PredictResult r = index->Predict(keys[i]);
    ASSERT_LE(r.lo, i) << "key " << keys[i];
    ASSERT_GE(r.hi, i) << "key " << keys[i];
  }
}

TEST_P(IndexEdgeTest, DecodeRejectsTruncatedBlob) {
  auto index = CreateIndex(GetParam());
  std::vector<Key> keys = RandomGapKeys(1000, 5);
  ASSERT_LILSM_OK(index->Build(keys.data(), keys.size(), IndexConfig()));
  std::string blob;
  EncodeIndexWithType(*index, &blob);
  // Chop the blob at several points; decode must fail, never crash.
  for (size_t cut : {size_t{0}, size_t{1}, blob.size() / 2,
                     blob.size() - 1}) {
    Slice input(blob.data(), cut);
    std::unique_ptr<LearnedIndex> decoded;
    EXPECT_FALSE(DecodeIndexWithType(&input, &decoded).ok())
        << "cut at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, IndexEdgeTest, ::testing::ValuesIn(kAllIndexTypes),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(IndexTypeName(info.param));
    });

// ---- type-specific behaviour ----

TEST(IndexTypeNames, ParseRoundTrip) {
  for (IndexType type : kAllIndexTypes) {
    IndexType parsed;
    ASSERT_TRUE(ParseIndexType(IndexTypeName(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  IndexType parsed;
  EXPECT_FALSE(ParseIndexType("btree", &parsed));
  EXPECT_TRUE(ParseIndexType("pgm", &parsed));
  EXPECT_EQ(parsed, IndexType::kPGM);
}

TEST(PgmIndexTest, RecursiveLevelsTerminateAtSingleRoot) {
  std::vector<Key> keys = RandomGapKeys(50000, 3);
  PgmIndex index;
  IndexConfig config = IndexConfig::FromPositionBoundary(16);
  ASSERT_LILSM_OK(index.Build(keys.data(), keys.size(), config));
  EXPECT_GE(index.Height(), 2u);  // 50k keys at eps=8 need internal levels
  EXPECT_LE(index.Height(), 6u);
}

TEST(PgmIndexTest, FewerSegmentsThanGreedyPlr) {
  // The optimal PLA guarantee: PGM's leaf segmentation never needs more
  // segments than the greedy shrinking cone at the same epsilon.
  std::vector<Key> keys = GenerateKeys(Dataset::kBooks, 30000, 11);
  IndexConfig config = IndexConfig::FromPositionBoundary(64);
  auto pgm = CreateIndex(IndexType::kPGM);
  auto plr = CreateIndex(IndexType::kPLR);
  ASSERT_LILSM_OK(pgm->Build(keys.data(), keys.size(), config));
  ASSERT_LILSM_OK(plr->Build(keys.data(), keys.size(), config));
  EXPECT_LE(pgm->SegmentCount(), plr->SegmentCount());
}

TEST(RmiIndexTest, TrainedWindowsReported) {
  std::vector<Key> keys = GenerateKeys(Dataset::kRandom, 30000, 17);
  RmiIndex index;
  IndexConfig config = IndexConfig::FromPositionBoundary(32);
  ASSERT_LILSM_OK(index.Build(keys.data(), keys.size(), config));
  EXPECT_GT(index.MeanErrorWindow(), 0.0);
  EXPECT_GE(index.MaxErrorWindow(), 1u);
}

TEST(RmiIndexTest, ExplicitLeafCountHonored) {
  std::vector<Key> keys = RandomGapKeys(10000, 23);
  RmiIndex index;
  IndexConfig config;
  config.rmi_leaf_models = 256;
  ASSERT_LILSM_OK(index.Build(keys.data(), keys.size(), config));
  EXPECT_EQ(index.SegmentCount(), 256u);
}

TEST(PlexIndexTest, HistTreeDeepensWithData) {
  std::vector<Key> keys = GenerateKeys(Dataset::kLonglat, 50000, 29);
  PlexIndex index;
  IndexConfig config = IndexConfig::FromPositionBoundary(16);
  config.plex_leaf_threshold = 4;
  ASSERT_LILSM_OK(index.Build(keys.data(), keys.size(), config));
  EXPECT_GE(index.TreeHeight(), 1u);
}

TEST(FenceIndexTest, MemoryScalesWithStoredKeyBytes) {
  std::vector<Key> keys = RandomGapKeys(10000, 31);
  IndexConfig config = IndexConfig::FromPositionBoundary(16);
  config.stored_key_bytes = 24;
  auto fat = CreateIndex(IndexType::kFencePointer);
  ASSERT_LILSM_OK(fat->Build(keys.data(), keys.size(), config));
  config.stored_key_bytes = 8;
  auto thin = CreateIndex(IndexType::kFencePointer);
  ASSERT_LILSM_OK(thin->Build(keys.data(), keys.size(), config));
  EXPECT_GT(fat->MemoryUsage(), thin->MemoryUsage());
}

TEST(IndexComparisonTest, LearnedIndexesBeatFencePointersOnMemory) {
  // Observation 1 in miniature: on uniform data at moderate boundaries,
  // every learned index uses less memory than fence pointers.
  std::vector<Key> keys = GenerateKeys(Dataset::kRandom, 50000, 37);
  IndexConfig config = IndexConfig::FromPositionBoundary(64);
  auto fence = CreateIndex(IndexType::kFencePointer);
  ASSERT_LILSM_OK(fence->Build(keys.data(), keys.size(), config));
  for (IndexType type : {IndexType::kPLR, IndexType::kPGM,
                         IndexType::kRadixSpline, IndexType::kRMI}) {
    auto learned = CreateIndex(type);
    ASSERT_LILSM_OK(learned->Build(keys.data(), keys.size(), config));
    EXPECT_LT(learned->MemoryUsage(), fence->MemoryUsage())
        << IndexTypeName(type);
  }
}

}  // namespace
}  // namespace lilsm
